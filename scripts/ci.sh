#!/usr/bin/env bash
# Configure + build + test, exiting non-zero on any failure.
#
# Usage:
#   scripts/ci.sh               # full lane: build everything, run all tests
#   scripts/ci.sh --smoke       # fast lane: unit-labeled tests only
#   scripts/ci.sh --faults      # fault lane: run the fault-injection suite
#                               # (ctest -L fault) twice — a Release build,
#                               # then an ASan+UBSan build — with a fixed
#                               # chaos seed (FCBENCH_FAULT_SEED, default 42)
#                               # so failures reproduce locally
#   scripts/ci.sh --tsan        # race lane: ThreadSanitizer build, run the
#                               # concurrency- and fault-labeled suites
#                               # (ctest -L 'concurrency|fault') so the
#                               # engine's locking protocols are model-checked
#                               # against real interleavings
#   scripts/ci.sh --perf-smoke  # perf lane: Release build, run micro_bitio,
#                               # micro_parallel (threads 1/2/4 scaling
#                               # curve), micro_select (oracle-vs-auto
#                               # adaptive selection) and micro_ingest
#                               # (WAL ingest/recovery), micro_shard_ingest
#                               # (sharded multi-tenant scaling; + a reduced
#                               # micro_codecs pass when built) and write
#                               # BENCH_*.json artifacts;
#                               # no thresholds are enforced — the JSON
#                               # records the perf trajectory only
#
# Environment:
#   BUILD_DIR   build directory (default: build)
#   BUILD_TYPE  CMake build type (default: Release)
#   JOBS        parallelism (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
JOBS=${JOBS:-$(nproc)}

if [[ "${1:-}" == "--perf-smoke" ]]; then
  # Throughput numbers are meaningless under sanitizers; refuse to record
  # them into the trajectory.
  if [[ "${CXXFLAGS:-}${CFLAGS:-}" == *sanitize* ]]; then
    echo "perf-smoke: skipped (sanitizer flags detected)"
    exit 0
  fi
  if [[ "${BUILD_TYPE}" != "Release" ]]; then
    echo "perf-smoke: forcing BUILD_TYPE=Release (was ${BUILD_TYPE})"
    BUILD_TYPE=Release
  fi
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
    -DFCBENCH_BUILD_TESTS=OFF
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_all
  # Reduced scale keeps the lane fast; the trajectory compares like against
  # like because the scale knobs are recorded in the bench banner.
  FCBENCH_BENCH_BYTES=${FCBENCH_BENCH_BYTES:-2097152} \
  FCBENCH_BENCH_REPEATS=${FCBENCH_BENCH_REPEATS:-3} \
    "${BUILD_DIR}/bench/micro_bitio" --json=BENCH_micro_codecs.json
  # Parallel-engine scaling curve (serial vs par-* at 1/2/4 threads). The
  # artifact records whatever the runner's core count allows; single-core
  # hosts legitimately produce a flat curve.
  FCBENCH_BENCH_BYTES=${FCBENCH_BENCH_BYTES:-2097152} \
  FCBENCH_BENCH_REPEATS=${FCBENCH_BENCH_REPEATS:-3} \
    "${BUILD_DIR}/bench/micro_parallel" --threads=1,2,4 \
    --json=BENCH_parallel_scaling.json
  # Adaptive-selection trajectory: oracle-vs-auto CR and selection
  # overhead across the nine synthetic generators (uploaded with the
  # other BENCH_*.json artifacts). Smaller default scale than the other
  # benches: the oracle compresses every chunk with every candidate.
  FCBENCH_BENCH_BYTES=${FCBENCH_BENCH_BYTES:-1048576} \
    "${BUILD_DIR}/bench/micro_select" --json=BENCH_adaptive_selection.json
  # Ingest-engine trajectory: WAL append throughput under the three
  # durability policies, recovery replay speed, flushed-segment CR, and
  # the metrics-enabled-vs-idle overhead check. The full registry
  # snapshot after the run is itself an artifact (BENCH_ prefix so the
  # CI upload glob picks it up).
  FCBENCH_BENCH_BYTES=${FCBENCH_BENCH_BYTES:-2097152} \
  FCBENCH_BENCH_REPEATS=${FCBENCH_BENCH_REPEATS:-3} \
    "${BUILD_DIR}/bench/micro_ingest" --json=BENCH_ingest_throughput.json \
    --metrics-json=BENCH_metrics_snapshot.json
  # Acceptance gate: span tracing must stay within its 2% append budget
  # (the trace-overhead row compares disabled tracing against 1/64
  # sampling; the disabled side is one relaxed load per span site).
  python3 - BENCH_ingest_throughput.json <<'PYEOF'
import json, sys
rows = json.load(open(sys.argv[1]))
row = next(r for r in rows if r["method"] == "trace-overhead")
pct, budget = row["overhead_pct"], row["budget_pct"]
print(f"perf-smoke: trace overhead {pct:+.2f}% (budget {budget}%)")
if pct >= budget:
    sys.exit(f"perf-smoke: trace overhead {pct:.2f}% exceeds {budget}% budget")
PYEOF
  # Sharded-ingest scaling curve: 64k series over 8 shards on 1/2/4/8
  # writer threads, with and without per-shard fsync. Flat on single-core
  # runners; the artifact still records the admission+routing overhead.
  FCBENCH_BENCH_BYTES=${FCBENCH_BENCH_BYTES:-2097152} \
  FCBENCH_BENCH_REPEATS=${FCBENCH_BENCH_REPEATS:-3} \
    "${BUILD_DIR}/bench/micro_shard_ingest" --json=BENCH_ingest_scaling.json
  if [[ -x "${BUILD_DIR}/bench/micro_codecs" ]]; then
    "${BUILD_DIR}/bench/micro_codecs" \
      --benchmark_filter='BM_(Huffman|Fse|Simple8b|TimestampCodec)' \
      --benchmark_min_time=0.05
  else
    echo "perf-smoke: micro_codecs not built (google-benchmark missing); skipped"
  fi
  exit 0
fi

if [[ "${1:-}" == "--faults" ]]; then
  export FCBENCH_FAULT_SEED=${FCBENCH_FAULT_SEED:-42}
  # Pass 1: Release — the sweep at full speed.
  cmake -B "${BUILD_DIR}-faults" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${BUILD_DIR}-faults" -j "${JOBS}" --target fault_injection_test fcbench_cli
  ctest --test-dir "${BUILD_DIR}-faults" --output-on-failure -j "${JOBS}" -L fault
  # Sample trace artifact: a fully-sampled ingest with one-shot faults
  # injected at retry-protected sites (the ladder absorbs them, so the
  # run succeeds while the timeline shows errno-tagged io.attempt retry
  # spans), exported as Chrome trace JSON (Perfetto-loadable) and
  # uploaded by the workflow. The python check proves the file parses
  # before it is called an artifact.
  FCBENCH_FAILPOINTS="lsm.flush=err@1" \
    "${BUILD_DIR}-faults/examples/fcbench_cli" trace \
    --out="${BUILD_DIR}-faults/fault_trace.json" --series=16 --rows=1024
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "${BUILD_DIR}-faults/fault_trace.json"
  echo "fault-lane trace artifact: ${BUILD_DIR}-faults/fault_trace.json"
  # Pass 2: ASan+UBSan — every injected error path runs under the
  # sanitizers, so a leak or UB on a rarely-taken failure branch fails
  # the lane instead of shipping.
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1"
  cmake -B "${BUILD_DIR}-faults-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
  cmake --build "${BUILD_DIR}-faults-asan" -j "${JOBS}" --target fault_injection_test
  ctest --test-dir "${BUILD_DIR}-faults-asan" --output-on-failure -j "${JOBS}" -L fault
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  export FCBENCH_FAULT_SEED=${FCBENCH_FAULT_SEED:-42}
  # TSAN_OPTIONS makes a detected race abort the test instead of just
  # logging it, so the lane goes red.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 abort_on_error=1}"
  SAN_FLAGS="-fsanitize=thread -g -O1"
  cmake -B "${BUILD_DIR}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
  cmake --build "${BUILD_DIR}-tsan" -j "${JOBS}" \
    --target concurrency_test lsm_test shard_test fault_injection_test \
    obs_test
  # -L takes a regex: one lane covers the thread-heavy suites AND the
  # fault suites (their injected error paths take rarely-exercised locks).
  ctest --test-dir "${BUILD_DIR}-tsan" --output-on-failure -j "${JOBS}" \
    -L 'concurrency|fault'
  exit 0
fi

CTEST_ARGS=(--output-on-failure -j "${JOBS}")
if [[ "${1:-}" == "--smoke" ]]; then
  CTEST_ARGS+=(-L unit)
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" "${CTEST_ARGS[@]}"
