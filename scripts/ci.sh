#!/usr/bin/env bash
# Configure + build + test, exiting non-zero on any failure.
#
# Usage:
#   scripts/ci.sh            # full lane: build everything, run all tests
#   scripts/ci.sh --smoke    # fast lane: unit-labeled tests only
#
# Environment:
#   BUILD_DIR   build directory (default: build)
#   BUILD_TYPE  CMake build type (default: Release)
#   JOBS        parallelism (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
JOBS=${JOBS:-$(nproc)}

CTEST_ARGS=(--output-on-failure -j "${JOBS}")
if [[ "${1:-}" == "--smoke" ]]; then
  CTEST_ARGS+=(-L unit)
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" "${CTEST_ARGS[@]}"
