#ifndef FCBENCH_CORE_COMPRESSOR_H_
#define FCBENCH_CORE_COMPRESSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/format.h"
#include "gpusim/device.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::select {
struct SelectionTrace;
}  // namespace fcbench::select

namespace fcbench {

/// Hardware platform a method targets (Table 1 "arch.").
enum class Arch { kCpu, kGpu };

/// Predictor/trait family used for the Figure 6b grouping.
enum class PredictorClass {
  kLorenzo,     // fpzip, ndzip (CPU+GPU)
  kDelta,       // Gorilla, BUFF, GFC, MPC
  kDictionary,  // bitshuffle::LZ4/zstd, Chimp, nvCOMP::LZ4, SPDP
  kPrediction,  // pFPC, nvCOMP::bitcomp
  kNeural,      // Dzip-style
};

std::string_view PredictorClassName(PredictorClass p);

/// Static metadata of a compression method (the Table 1 row).
struct CompressorTraits {
  std::string name;
  int year = 0;
  std::string domain;  // "HPC", "Database", "general"
  Arch arch = Arch::kCpu;
  PredictorClass predictor = PredictorClass::kDelta;
  bool parallel = false;
  bool supports_f32 = true;
  bool supports_f64 = true;
  /// True when the method needs dimensional extent for best ratios (§6.1.5).
  bool uses_dimensions = false;
};

/// Runtime knobs shared by all methods.
struct CompressorConfig {
  /// Worker threads for parallel methods (pFPC defaults to 8 pthreads).
  int threads = 8;
  /// Block/page size in bytes for blockable methods; 0 = method default.
  /// Swept by the Table 10 experiment (4 KiB / 64 KiB / 8 MiB).
  size_t block_size = 0;
  /// `par-<method>` adapters only: raw bytes per parallel chunk, rounded
  /// down to a whole element count (0 = 256 KiB default). The chunked
  /// wire format depends on this value but never on `threads`.
  size_t chunk_bytes = 0;
  /// Effort level (search depth for dictionary methods).
  int level = 1;
  /// fpzip only: number of most-significant bits kept per value
  /// (0 = lossless). fpzip is the one studied method with a native lossy
  /// mode (paper §3.1: "provides both lossless and lossy compression").
  int fpzip_precision_bits = 0;
  /// auto/auto-speed/auto-ratio only: probe sample bytes per chunk
  /// (0 = $FCBENCH_SELECT_PROBE_BYTES or 16 KiB) and decision-cache
  /// capacity (<0 = $FCBENCH_SELECT_CACHE or 1024; 0 disables).
  size_t select_probe_bytes = 0;
  int select_cache = -1;
  /// auto* only: when non-null, per-chunk selection decisions are
  /// appended here (the --explain API). Not owned; must outlive every
  /// Compress call. See select/selector.h.
  select::SelectionTrace* selection_trace = nullptr;
};

/// Abstract lossless floating-point compressor; every §3/§4 method
/// implements this interface.
///
/// Compress/Decompress operate on raw little-endian IEEE-754 arrays; `desc`
/// carries element type and dimensional extent. Implementations must be
/// exactly invertible: Decompress(Compress(x)) == x bit-for-bit (BUFF is
/// the documented exception when `desc.precision_digits` understates the
/// data's precision — see §3.3).
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual const CompressorTraits& traits() const = 0;

  /// Compresses `input` (desc.num_bytes() bytes), appending to `out`.
  virtual Status Compress(ByteSpan input, const DataDesc& desc,
                          Buffer* out) = 0;

  /// Decompresses a stream produced by Compress with the same `desc`,
  /// appending to `out`.
  virtual Status Decompress(ByteSpan input, const DataDesc& desc,
                            Buffer* out) = 0;

  /// For GPU-simulated methods: modeled device timing (kernel + PCIe
  /// copies) of the most recent Compress/Decompress call. CPU methods
  /// return nullptr and are timed by wall clock (paper §5.2 methodology).
  virtual const gpusim::GpuTiming* last_gpu_timing() const { return nullptr; }
};

/// Factory signature used by the registry. A std::function (not a bare
/// function pointer) so adapter registrations — the `par-<method>`
/// chunk-parallel wrappers — can close over the wrapped method's name.
using CompressorFactory =
    std::function<std::unique_ptr<Compressor>(const CompressorConfig&)>;

/// Central registry of every studied method. Names follow the paper:
///   pfpc, spdp, fpzip, bitshuffle_lz4, bitshuffle_zstd, ndzip_cpu, buff,
///   gorilla, chimp128, gfc, mpc, nv_lz4, nv_bitcomp, ndzip_gpu, dzip_nn
/// plus a chunk-parallel `par-<method>` variant of every lossless CPU
/// method (see core/chunked.h) and the online adaptive selectors `auto`,
/// `auto-speed`, `auto-ratio` (see select/auto_compressor.h).
class CompressorRegistry {
 public:
  static CompressorRegistry& Global();

  void Register(std::string name, CompressorFactory factory);

  /// Instantiates a method by name; error if unknown.
  Result<std::unique_ptr<Compressor>> Create(
      std::string_view name, const CompressorConfig& config = {}) const;

  /// Names in registration (paper table column) order.
  std::vector<std::string> Names() const;

  bool Contains(std::string_view name) const;

 private:
  std::vector<std::pair<std::string, CompressorFactory>> entries_;
};

/// Registers the full method suite (idempotent). Called by the registry on
/// first use; exposed for tests.
void RegisterAllCompressors();

}  // namespace fcbench

#endif  // FCBENCH_CORE_COMPRESSOR_H_
