#include <algorithm>
#include <mutex>
#include <sstream>

#include "compressors/bitshuffle.h"
#include "compressors/buff.h"
#include "compressors/chimp.h"
#include "compressors/fpzip.h"
#include "compressors/gorilla.h"
#include "compressors/ndzip.h"
#include "compressors/pfpc.h"
#include "compressors/spdp.h"
#include "core/chunked.h"
#include "core/compressor.h"
#include "gpusim/gfc.h"
#include "gpusim/mpc.h"
#include "gpusim/ndzip_gpu.h"
#include "gpusim/nvcomp_sim.h"
#include "nn/nn_coder.h"
#include "select/auto_compressor.h"

namespace fcbench {

std::string_view PredictorClassName(PredictorClass p) {
  switch (p) {
    case PredictorClass::kLorenzo:
      return "LORENZO";
    case PredictorClass::kDelta:
      return "DELTA";
    case PredictorClass::kDictionary:
      return "DICTIONARY";
    case PredictorClass::kPrediction:
      return "PREDICTION";
    case PredictorClass::kNeural:
      return "NEURAL";
  }
  return "?";
}

std::string DataDesc::ToString() const {
  std::ostringstream os;
  os << DTypeName(dtype) << "[";
  for (size_t i = 0; i < extent.size(); ++i) {
    if (i) os << "x";
    os << extent[i];
  }
  os << "]";
  if (precision_digits > 0) os << " p=" << precision_digits;
  return os.str();
}

namespace {
/// Runs the suite registration exactly once. Register() itself does not
/// call this, so RegisterAllCompressors can use Global() freely.
void EnsureRegistered() {
  static const bool done = [] {
    RegisterAllCompressors();
    return true;
  }();
  (void)done;
}
}  // namespace

CompressorRegistry& CompressorRegistry::Global() {
  static CompressorRegistry* registry = new CompressorRegistry();
  return *registry;
}

void CompressorRegistry::Register(std::string name,
                                  CompressorFactory factory) {
  for (auto& [n, f] : entries_) {
    if (n == name) {
      f = std::move(factory);  // idempotent re-registration
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

Result<std::unique_ptr<Compressor>> CompressorRegistry::Create(
    std::string_view name, const CompressorConfig& config) const {
  EnsureRegistered();
  for (const auto& [n, f] : entries_) {
    if (n == name) return f(config);
  }
  return Status::InvalidArgument("unknown compressor: " + std::string(name));
}

std::vector<std::string> CompressorRegistry::Names() const {
  EnsureRegistered();
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [n, f] : entries_) names.push_back(n);
  return names;
}

bool CompressorRegistry::Contains(std::string_view name) const {
  EnsureRegistered();
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == name; });
}

void RegisterAllCompressors() {
  // Table 4 column order (CPU methods, then GPU methods), plus the NN
  // coder the paper surveys but excludes from the main tables.
  auto& r = CompressorRegistry::Global();
  r.Register("pfpc", &compressors::PfpcCompressor::Make);
  r.Register("spdp", &compressors::SpdpCompressor::Make);
  r.Register("fpzip", &compressors::FpzipCompressor::Make);
  r.Register("bitshuffle_lz4", &compressors::BitshuffleCompressor::MakeLz4);
  r.Register("bitshuffle_zstd", &compressors::BitshuffleCompressor::MakeZstd);
  r.Register("ndzip_cpu", &compressors::NdzipCompressor::Make);
  r.Register("buff", &compressors::BuffCompressor::Make);
  r.Register("gorilla", &compressors::GorillaCompressor::Make);
  r.Register("chimp128", &compressors::ChimpCompressor::Make);
  r.Register("gfc", &gpusim::GfcCompressor::Make);
  r.Register("mpc", &gpusim::MpcCompressor::Make);
  r.Register("nv_lz4", &gpusim::NvLz4SimCompressor::Make);
  r.Register("nv_bitcomp", &gpusim::NvBitcompSimCompressor::Make);
  r.Register("ndzip_gpu", &gpusim::NdzipGpuCompressor::Make);
  r.Register("dzip_nn", &nn::DzipNnCompressor::Make);

  // Chunk-parallel `par-<method>` adapters (core/chunked.h) for every
  // lossless CPU method. Excluded: the GPU-simulated methods (their
  // modeled device timing would be lost behind the wrapper), buff (its
  // documented lossy-without-precision exception would leak through the
  // par- name), and dzip_nn (per-call model retraining makes chunked
  // round trips impractically slow).
  for (const char* base :
       {"pfpc", "spdp", "fpzip", "bitshuffle_lz4", "bitshuffle_zstd",
        "ndzip_cpu", "gorilla", "chimp128"}) {
    r.Register(std::string("par-") + base,
               [base](const CompressorConfig& config) {
                 return ChunkedCompressor::Make(base, config);
               });
  }

  // Online adaptive selectors (select/auto_compressor.h): per-chunk
  // method choice over the same lossless CPU suite, one registration per
  // §7.3 objective. Their mixed-method containers are self-describing,
  // so decoding never needs to know which objective produced them.
  for (Objective objective :
       {Objective::kBalanced, Objective::kSpeed,
        Objective::kStorageReduction}) {
    r.Register(std::string(select::AutoMethodName(objective)),
               [objective](const CompressorConfig& config) {
                 return select::AutoCompressor::Make(objective, config);
               });
  }
}

}  // namespace fcbench
