#ifndef FCBENCH_CORE_CONTAINER_H_
#define FCBENCH_CORE_CONTAINER_H_

#include <string>
#include <string_view>

#include "core/compressor.h"
#include "core/format.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench {

/// Metadata of a .fcz container, readable without decompressing.
struct ContainerInfo {
  std::string method;
  DataDesc desc;
  uint64_t raw_bytes = 0;
  uint64_t payload_bytes = 0;
};

/// Self-describing compressed container (the `.fcz` format the CLI
/// produces). A container records which registry method compressed the
/// payload and the full DataDesc, so decompression needs no side channel,
/// plus xxHash64 checksums of both the compressed payload and the raw
/// data: bit flips anywhere in the file are *guaranteed* to be reported
/// as corruption, independent of each codec's own (best-effort) checks.
///
/// Layout (little endian):
///   u32   magic "FCZ2"
///   u8    version (1)
///   varint method_len, method bytes
///   u8    dtype (0=f32, 1=f64)
///   u8    precision_digits
///   varint rank, rank x varint extent
///   varint raw_bytes
///   u64   xxh64(raw)
///   varint payload_bytes
///   u64   xxh64(payload)
///   payload
class FczContainer {
 public:
  static constexpr uint32_t kMagic = 0x3246435Au;  // "ZCF2" LE -> "FCZ2"
  static constexpr uint8_t kVersion = 1;

  /// Compresses `raw` with registry method `method` and appends a full
  /// container to `out`.
  static Status Pack(std::string_view method, const DataDesc& desc,
                     ByteSpan raw, const CompressorConfig& config,
                     Buffer* out);

  /// Parses the header only (no payload decode, no checksum of payload).
  static Result<ContainerInfo> Inspect(ByteSpan container);

  /// Verifies checksums, decompresses, and returns the raw bytes. `info`
  /// receives the header metadata when non-null.
  static Result<Buffer> Unpack(ByteSpan container,
                               ContainerInfo* info = nullptr);
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_CONTAINER_H_
