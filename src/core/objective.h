#ifndef FCBENCH_CORE_OBJECTIVE_H_
#define FCBENCH_CORE_OBJECTIVE_H_

#include <string_view>

namespace fcbench {

/// What the user optimizes for (paper §7.3's three recommendation rows).
/// Shared by the offline RecommendationEngine (core/recommend.h) and the
/// online per-chunk selector (select/selector.h): both answer "which
/// method?", one from benchmark sweeps, the other from the data itself.
enum class Objective {
  kStorageReduction,  // best compression ratio
  kSpeed,             // shortest end-to-end wall time
  kBalanced,          // rank-sum of ratio and wall time
};

/// Canonical short name used in rationales, traces and CLI flags.
inline std::string_view ObjectiveName(Objective o) {
  switch (o) {
    case Objective::kStorageReduction:
      return "storage";
    case Objective::kSpeed:
      return "speed";
    case Objective::kBalanced:
      return "balanced";
  }
  return "?";
}

}  // namespace fcbench

#endif  // FCBENCH_CORE_OBJECTIVE_H_
