#include "core/recommend.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "select/features.h"
#include "util/entropy.h"

namespace fcbench {

namespace {

/// Groups results by method over a dataset filter.
struct MethodAgg {
  std::vector<double> crs;
  std::vector<double> walls;
};

std::map<std::string, MethodAgg> Aggregate(
    const std::vector<RunResult>& results,
    const std::function<bool(const RunResult&)>& keep) {
  std::map<std::string, MethodAgg> agg;
  for (const auto& r : results) {
    if (!r.ok || !keep(r)) continue;
    auto& a = agg[r.method];
    a.crs.push_back(r.cr);
    a.walls.push_back(r.comp_wall_ms + r.decomp_wall_ms);
  }
  return agg;
}

data::Domain DatasetDomain(const std::string& name) {
  const data::DatasetInfo* info = data::FindDataset(name);
  return info != nullptr ? info->domain : data::Domain::kDatabase;
}

}  // namespace

RecommendationEngine::RecommendationEngine(std::vector<RunResult> results)
    : results_(std::move(results)) {}

Recommendation RecommendationEngine::Recommend(data::Domain domain,
                                               Objective objective) const {
  auto agg = Aggregate(results_, [&](const RunResult& r) {
    return DatasetDomain(r.dataset) == domain;
  });
  Recommendation best;
  double best_score = 0;
  bool first = true;
  for (const auto& [method, a] : agg) {
    double hcr = HarmonicMean(a.crs.data(), a.crs.size());
    double wall = ArithmeticMean(a.walls.data(), a.walls.size());
    double score = 0;
    switch (objective) {
      case Objective::kStorageReduction:
        score = hcr;
        break;
      case Objective::kSpeed:
        score = wall > 0 ? 1.0 / wall : 0;
        break;
      case Objective::kBalanced:
        score = (wall > 0 && hcr > 1.0) ? (hcr - 1.0) / wall : 0;
        break;
    }
    if (first || score > best_score) {
      first = false;
      best_score = score;
      best.method = method;
      best.harmonic_cr = hcr;
      best.mean_wall_ms = wall;
    }
  }
  // Same metric vocabulary as the online selector's rationales
  // (select/features.h), so the offline map and --explain traces agree
  // on what the words mean.
  std::ostringstream os;
  os << "objective=" << ObjectiveName(objective) << ": best ";
  switch (objective) {
    case Objective::kStorageReduction:
      os << select::kVocabHarmonicCr;
      break;
    case Objective::kSpeed:
      os << select::kVocabWallMs;
      break;
    case Objective::kBalanced:
      os << "(" << select::kVocabHarmonicCr << "-1)/"
         << select::kVocabWallMs;
      break;
  }
  os << " on " << data::DomainName(domain) << " datasets";
  best.rationale = os.str();
  return best;
}

Recommendation RecommendationEngine::RecommendGeneral() const {
  // Rank-sum over harmonic CR (descending) and wall time (ascending),
  // mirroring the paper's "balanced performance" criterion for
  // bitshuffle::zstd / MPC.
  auto agg = Aggregate(results_, [](const RunResult&) { return true; });
  struct Row {
    std::string method;
    double hcr, wall;
  };
  std::vector<Row> rows;
  for (const auto& [method, a] : agg) {
    rows.push_back({method, HarmonicMean(a.crs.data(), a.crs.size()),
                    ArithmeticMean(a.walls.data(), a.walls.size())});
  }
  // Tied metric values share their average rank (standard rank-sum);
  // the historical per-position ranks made equal-CR methods rank in
  // whatever order the sort left them.
  std::vector<double> rank_sum(rows.size(), 0);
  auto add_ranks = [&](auto key, bool descending) {
    std::vector<size_t> idx(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return descending ? key(rows[a]) > key(rows[b])
                        : key(rows[a]) < key(rows[b]);
    });
    for (size_t pos = 0; pos < idx.size();) {
      size_t end = pos + 1;
      while (end < idx.size() &&
             key(rows[idx[end]]) == key(rows[idx[pos]])) {
        ++end;
      }
      const double avg =
          (static_cast<double>(pos) + static_cast<double>(end - 1)) / 2.0;
      for (size_t k = pos; k < end; ++k) rank_sum[idx[k]] += avg;
      pos = end;
    }
  };
  add_ranks([](const Row& r) { return r.hcr; }, /*descending=*/true);
  add_ranks([](const Row& r) { return r.wall; }, /*descending=*/false);

  Recommendation best;
  double best_rank = 1e300;
  bool first = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    // Equal rank sums break toward the better compressor, then the
    // lexicographically smaller name, so the map is deterministic.
    const bool wins =
        first || rank_sum[i] < best_rank ||
        (rank_sum[i] == best_rank &&
         (rows[i].hcr > best.harmonic_cr ||
          (rows[i].hcr == best.harmonic_cr && rows[i].method < best.method)));
    if (wins) {
      first = false;
      best_rank = rank_sum[i];
      best.method = rows[i].method;
      best.harmonic_cr = rows[i].hcr;
      best.mean_wall_ms = rows[i].wall;
    }
  }
  std::ostringstream os;
  os << "objective=" << ObjectiveName(Objective::kBalanced) << ": lowest "
     << select::kVocabRankSum << " of " << select::kVocabHarmonicCr
     << " and " << select::kVocabWallMs;
  best.rationale = os.str();
  return best;
}

std::string RecommendationEngine::RenderMap() const {
  std::ostringstream os;
  os << "Recommendation map (paper §7.3):\n";
  for (data::Domain d :
       {data::Domain::kHpc, data::Domain::kTimeSeries,
        data::Domain::kObservation, data::Domain::kDatabase}) {
    auto rec = Recommend(d, Objective::kStorageReduction);
    os << "  storage/" << data::DomainName(d) << ": " << rec.method
       << " (harmonic CR " << rec.harmonic_cr << ")\n";
  }
  for (data::Domain d :
       {data::Domain::kHpc, data::Domain::kTimeSeries,
        data::Domain::kObservation, data::Domain::kDatabase}) {
    auto rec = Recommend(d, Objective::kSpeed);
    os << "  speed/" << data::DomainName(d) << ": " << rec.method << " ("
       << rec.mean_wall_ms << " ms end-to-end)\n";
  }
  auto g = RecommendGeneral();
  os << "  general: " << g.method << " (" << g.rationale << ")\n";
  return os.str();
}

}  // namespace fcbench
