#ifndef FCBENCH_CORE_RUNNER_H_
#define FCBENCH_CORE_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "data/dataset.h"

namespace fcbench {

/// One (method, dataset) measurement, following the §5.2 protocol:
/// repeated runs, averaged, timing instrumented around the
/// compress/decompress calls only (I/O excluded); for GPU-simulated
/// methods the device cost model supplies CT/DT and the end-to-end wall
/// time additionally charges the host-to-device/device-to-host copies
/// (Table 6's definition).
struct RunResult {
  std::string method;
  std::string dataset;
  bool ok = false;
  std::string error;

  uint64_t orig_bytes = 0;
  uint64_t comp_bytes = 0;
  double cr = 0;        // compression ratio = orig / comp
  double ct_gbps = 0;   // compression throughput
  double dt_gbps = 0;   // decompression throughput
  double comp_wall_ms = 0;    // end-to-end compress time (incl. transfers)
  double decomp_wall_ms = 0;  // end-to-end decompress time
  uint64_t peak_mem_bytes = 0;  // compression working-set high water mark
  bool round_trip_exact = false;
};

/// Runs the benchmark protocol over methods x datasets.
class BenchmarkRunner {
 public:
  struct Options {
    /// Repetitions per measurement (the paper uses 10; scaled default 3).
    int repeats = 3;
    /// Approximate per-dataset payload size to generate.
    uint64_t dataset_bytes = 4ull << 20;
    /// Verify round trips (skipped for BUFF on full-precision data, which
    /// is lossy by design; the result records exactness regardless).
    bool verify = true;
    /// Opt-in parallel mode for the §5.2 protocol: methods that have a
    /// chunk-parallel `par-<method>` registry variant are run through it
    /// (results then carry the par- name). Methods without a variant run
    /// unchanged, so a full sweep still covers the whole suite.
    bool parallel = false;
    uint64_t seed = 42;
    CompressorConfig config;
  };

  BenchmarkRunner() = default;
  explicit BenchmarkRunner(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Runs one method on one generated dataset.
  RunResult RunOne(Compressor* comp, const data::Dataset& ds) const;

  /// Runs a method by registry name. With options().parallel set, the
  /// name is first resolved through ResolveMethod().
  RunResult RunOne(const std::string& method, const data::Dataset& ds) const;

  /// The registry name the options map `method` to: "par-<method>" when
  /// parallel mode is on and that variant exists, else `method` itself.
  std::string ResolveMethod(const std::string& method) const;

  /// Full sweep: every method name x every dataset in `datasets`.
  /// Datasets are generated once and reused across methods.
  std::vector<RunResult> RunAll(
      const std::vector<std::string>& methods,
      const std::vector<data::DatasetInfo>& datasets) const;

 private:
  Options options_ = {};
};

/// Aggregations used throughout §6: harmonic-mean CR and arithmetic-mean
/// throughput per method (paper §5.2), with failed runs skipped.
struct MethodSummary {
  std::string method;
  double harmonic_cr = 0;
  double mean_ct_gbps = 0;
  double mean_dt_gbps = 0;
  double mean_comp_wall_ms = 0;
  double mean_decomp_wall_ms = 0;
  int failures = 0;
  int runs = 0;
};

std::vector<MethodSummary> Summarize(const std::vector<RunResult>& results);

/// Builds the N x k score matrix (datasets x methods) of compression
/// ratios for the Friedman/Nemenyi analysis. Failed entries score 0
/// (ranked last, like the paper's "-" cells).
std::vector<std::vector<double>> CrMatrix(
    const std::vector<RunResult>& results,
    const std::vector<std::string>& methods,
    const std::vector<std::string>& datasets);

}  // namespace fcbench

#endif  // FCBENCH_CORE_RUNNER_H_
