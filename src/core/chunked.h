#ifndef FCBENCH_CORE_CHUNKED_H_
#define FCBENCH_CORE_CHUNKED_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/compressor.h"

namespace fcbench {

/// Generic chunk-parallel adapter: wraps any registry method, splits the
/// input into fixed-size element-aligned chunks, compresses the chunks in
/// parallel on the shared pool, and emits a framed container that decodes
/// either in parallel or one chunk at a time (random access).
///
/// Container layout (all integers little-endian / varint):
///   u32     magic "FCPK"
///   varint  version (1)
///   varint  raw_bytes         total uncompressed payload
///   varint  chunk_raw_bytes   raw bytes per chunk (last chunk may be short)
///   varint  num_chunks
///   varint  payload_size[num_chunks]
///   u64     xxh64 of every byte above (header + directory)
///   payload bytes, concatenated in chunk order
///
/// Determinism: the layout is a pure function of (input, wrapped method,
/// chunk_raw_bytes). `CompressorConfig::threads` only bounds execution
/// parallelism — the inner method always runs with threads=1 so that
/// thread-count-sensitive wrapped formats (pFPC's chunk directory) cannot
/// leak scheduling into the bytes. Output is byte-identical for any
/// thread count.
class ChunkedCompressor : public Compressor {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 << 10;

  /// Wraps registry method `method`; fails if the method is unknown.
  static Result<std::unique_ptr<Compressor>> Wrap(
      std::string_view method, const CompressorConfig& config = {});

  /// Registry-facing factory: same as Wrap but never fails at
  /// construction — an unknown base method surfaces as an error status
  /// from Compress/Decompress instead.
  static std::unique_ptr<Compressor> Make(std::string method,
                                          const CompressorConfig& config);

  ChunkedCompressor(std::string method, const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }
  const std::string& base_method() const { return method_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  /// Parsed directory of a chunked stream; offsets index into the same
  /// span that was passed to ReadIndex.
  struct Index {
    uint64_t raw_bytes = 0;
    uint64_t chunk_raw_bytes = 0;
    std::vector<uint64_t> payload_sizes;
    std::vector<size_t> payload_offsets;

    size_t num_chunks() const { return payload_sizes.size(); }
    /// Raw (uncompressed) byte count of chunk `i`.
    uint64_t RawSizeOfChunk(size_t i) const;
  };

  /// Validates and parses the container header + directory (checksummed;
  /// truncation and bit corruption both surface as Corruption).
  static Result<Index> ReadIndex(ByteSpan input);

  /// Decodes only chunk `index`, appending its raw bytes to `out`. `desc`
  /// is the descriptor of the *whole* array (as passed to Decompress);
  /// used for element width and total-size validation. This is the
  /// random-access path query engines use to touch one chunk of a column.
  Status DecompressChunk(ByteSpan input, const DataDesc& desc, size_t index,
                         Buffer* out);

 private:
  Status DecodeOne(const Index& idx, ByteSpan input, const DataDesc& desc,
                   size_t chunk, Buffer* out);

  CompressorTraits traits_;
  std::string method_;
  CompressorConfig inner_config_;  // threads pinned to 1; see class doc
  size_t chunk_bytes_;
  int threads_;
  Status init_status_;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_CHUNKED_H_
