#ifndef FCBENCH_CORE_CHUNKED_H_
#define FCBENCH_CORE_CHUNKED_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/compressor.h"

namespace fcbench {

/// Generic chunk-parallel adapter: wraps any registry method, splits the
/// input into fixed-size element-aligned chunks, compresses the chunks in
/// parallel on the shared pool, and emits a framed container that decodes
/// either in parallel or one chunk at a time (random access).
///
/// Container layout (all integers little-endian / varint):
///   u32     magic "FCPK"
///   varint  version (1 = single method, 2 = mixed methods)
///   varint  raw_bytes         total uncompressed payload
///   varint  chunk_raw_bytes   raw bytes per chunk (last chunk may be short)
///   [v2]    varint num_methods, then per method: varint len, name bytes
///   varint  num_chunks
///   [v2]    varint method_id[num_chunks]   index into the method table
///   varint  payload_size[num_chunks]
///   u64     xxh64 of every byte above (header + directory)
///   payload bytes, concatenated in chunk order
///
/// Version 1 streams carry no method metadata — the wrapping layer (the
/// par-<m> registry name, a ColumnStore manifest) names the method.
/// Version 2 streams are self-describing mixed-method containers: every
/// chunk names its own method via the table, which is what the online
/// selector (select/auto_compressor.h) emits. Both versions checksum
/// the whole header+directory, and a v2 method table may only name
/// plain base methods — adapter names (par-*, auto*) are rejected at
/// parse time so a hostile container cannot nest decoders.
///
/// Determinism: the layout is a pure function of (input, wrapped method,
/// chunk_raw_bytes). `CompressorConfig::threads` only bounds execution
/// parallelism — the inner method always runs with threads=1 so that
/// thread-count-sensitive wrapped formats (pFPC's chunk directory) cannot
/// leak scheduling into the bytes. Output is byte-identical for any
/// thread count.
class ChunkedCompressor : public Compressor {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 << 10;
  static constexpr uint32_t kMagic = 0x4B504346u;  // "FCPK"
  static constexpr uint64_t kVersionSingle = 1;
  static constexpr uint64_t kVersionMixed = 2;
  /// Directory plausibility bounds shared by writer and reader.
  static constexpr uint64_t kMaxMethods = 64;
  static constexpr uint64_t kMaxMethodNameLen = 48;

  /// Wraps registry method `method`; fails if the method is unknown.
  static Result<std::unique_ptr<Compressor>> Wrap(
      std::string_view method, const CompressorConfig& config = {});

  /// Registry-facing factory: same as Wrap but never fails at
  /// construction — an unknown base method surfaces as an error status
  /// from Compress/Decompress instead.
  static std::unique_ptr<Compressor> Make(std::string method,
                                          const CompressorConfig& config);

  ChunkedCompressor(std::string method, const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }
  const std::string& base_method() const { return method_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  /// Parsed directory of a chunked stream; offsets index into the same
  /// span that was passed to ReadIndex.
  struct Index {
    uint64_t version = kVersionSingle;
    uint64_t raw_bytes = 0;
    uint64_t chunk_raw_bytes = 0;
    /// Mixed containers only (version 2): method table + per-chunk ids.
    std::vector<std::string> methods;
    std::vector<uint32_t> method_ids;
    std::vector<uint64_t> payload_sizes;
    std::vector<size_t> payload_offsets;

    size_t num_chunks() const { return payload_sizes.size(); }
    /// Raw (uncompressed) byte count of chunk `i`.
    uint64_t RawSizeOfChunk(size_t i) const;
    /// Method recorded for chunk `i`; empty for version-1 streams (the
    /// wrapping layer knows the method).
    std::string_view MethodOfChunk(size_t i) const;
  };

  /// Validates and parses the container header + directory (checksummed;
  /// truncation and bit corruption both surface as Corruption). Mixed
  /// (v2) directories additionally validate every per-chunk method id
  /// against the method table and every table entry against the
  /// plain-method naming rule.
  static Result<Index> ReadIndex(ByteSpan input);

  /// Serializes a header+directory for `payload_sizes` chunks,
  /// appending to `out`. With a non-empty `methods` table (and matching
  /// `method_ids`) a version-2 mixed directory is written; otherwise
  /// version 1. The payload bytes follow the returned header verbatim.
  static Status WriteDirectory(uint64_t raw_bytes, uint64_t chunk_raw_bytes,
                               const std::vector<std::string>& methods,
                               const std::vector<uint32_t>& method_ids,
                               const std::vector<uint64_t>& payload_sizes,
                               Buffer* out);

  /// Decodes chunk `chunk` of a parsed container: uses the directory's
  /// recorded method for mixed streams, `fallback_method` for v1
  /// streams. Shared by the par-* adapter and the auto selector.
  static Status DecodeChunkWithIndex(const Index& idx, ByteSpan input,
                                     const DataDesc& desc, size_t chunk,
                                     std::string_view fallback_method,
                                     const CompressorConfig& inner_config,
                                     Buffer* out);

  /// Decodes only chunk `index`, appending its raw bytes to `out`. `desc`
  /// is the descriptor of the *whole* array (as passed to Decompress);
  /// used for element width and total-size validation. This is the
  /// random-access path query engines use to touch one chunk of a column.
  Status DecompressChunk(ByteSpan input, const DataDesc& desc, size_t index,
                         Buffer* out);

 private:
  Status DecodeOne(const Index& idx, ByteSpan input, const DataDesc& desc,
                   size_t chunk, Buffer* out);

  CompressorTraits traits_;
  std::string method_;
  CompressorConfig inner_config_;  // threads pinned to 1; see class doc
  size_t chunk_bytes_;
  int threads_;
  Status init_status_;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_CHUNKED_H_
