#ifndef FCBENCH_CORE_FORMAT_H_
#define FCBENCH_CORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcbench {

/// Element type of a floating-point dataset (Table 1 "precision": S or D).
enum class DType { kFloat32, kFloat64 };

inline size_t DTypeSize(DType t) { return t == DType::kFloat32 ? 4 : 8; }
inline const char* DTypeName(DType t) {
  return t == DType::kFloat32 ? "f32" : "f64";
}

/// Describes the logical layout of a buffer of floating-point values.
///
/// Prediction-based compressors (fpzip, ndzip, pFPC, GFC, MPC) consume the
/// dimensional extent to build their hypercube/chunk structure; the paper's
/// §6.1.5 studies what happens when this metadata is withheld (the data is
/// then treated as one 1-D array, as a column store would).
struct DataDesc {
  DType dtype = DType::kFloat64;
  /// Extent per dimension, slowest-varying first (e.g. {130, 514, 1026}).
  /// Empty means unknown; treated as 1-D.
  std::vector<uint64_t> extent;
  /// Decimal digits to preserve; only BUFF consumes this (its lossless
  /// bound). 0 means "full precision requested".
  int precision_digits = 0;

  int rank() const { return static_cast<int>(extent.size()); }

  uint64_t num_elements() const {
    if (extent.empty()) return 0;
    uint64_t n = 1;
    for (uint64_t e : extent) n *= e;
    return n;
  }

  uint64_t num_bytes() const { return num_elements() * DTypeSize(dtype); }

  /// The same data reinterpreted as a flat 1-D array (column-store view).
  DataDesc As1D() const {
    DataDesc d = *this;
    d.extent = {num_elements()};
    return d;
  }

  static DataDesc Make(DType t, std::vector<uint64_t> ext,
                       int precision_digits = 0) {
    DataDesc d;
    d.dtype = t;
    d.extent = std::move(ext);
    d.precision_digits = precision_digits;
    return d;
  }

  std::string ToString() const;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_FORMAT_H_
