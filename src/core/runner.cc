#include "core/runner.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "util/entropy.h"
#include "util/mem_tracker.h"
#include "util/timer.h"

namespace fcbench {

RunResult BenchmarkRunner::RunOne(Compressor* comp,
                                  const data::Dataset& ds) const {
  RunResult r;
  r.method = comp->traits().name;
  r.dataset = ds.info->name;
  r.orig_bytes = ds.bytes.size();

  const CompressorTraits& traits = comp->traits();
  if ((ds.desc.dtype == DType::kFloat32 && !traits.supports_f32) ||
      (ds.desc.dtype == DType::kFloat64 && !traits.supports_f64)) {
    r.error = "precision not supported";
    return r;
  }

  double comp_s = 0, decomp_s = 0, comp_wall = 0, decomp_wall = 0;
  Buffer compressed;
  for (int rep = 0; rep < options_.repeats; ++rep) {
    compressed.Clear();
    MemTracker::Global().ResetPeak();
    Timer t;
    Status st = comp->Compress(ds.bytes.span(), ds.desc, &compressed);
    double wall = t.ElapsedSeconds();
    if (!st.ok()) {
      r.error = st.ToString();
      return r;
    }
    r.peak_mem_bytes =
        std::max<uint64_t>(r.peak_mem_bytes, MemTracker::Global().peak());
    if (const gpusim::GpuTiming* gt = comp->last_gpu_timing()) {
      comp_s += gt->kernel_seconds;
      comp_wall += gt->total_seconds();
    } else {
      comp_s += wall;
      comp_wall += wall;
    }
  }

  Buffer decompressed;
  for (int rep = 0; rep < options_.repeats; ++rep) {
    decompressed.Clear();
    Timer t;
    Status st = comp->Decompress(compressed.span(), ds.desc, &decompressed);
    double wall = t.ElapsedSeconds();
    if (!st.ok()) {
      r.error = "decompress: " + st.ToString();
      return r;
    }
    if (const gpusim::GpuTiming* gt = comp->last_gpu_timing()) {
      decomp_s += gt->kernel_seconds;
      decomp_wall += gt->total_seconds();
    } else {
      decomp_s += wall;
      decomp_wall += wall;
    }
  }

  r.ok = true;
  r.comp_bytes = compressed.size();
  r.cr = compressed.empty()
             ? 0.0
             : static_cast<double>(r.orig_bytes) / compressed.size();
  double reps = options_.repeats;
  r.ct_gbps = ThroughputGBps(r.orig_bytes, comp_s / reps);
  r.dt_gbps = ThroughputGBps(r.orig_bytes, decomp_s / reps);
  r.comp_wall_ms = comp_wall / reps * 1e3;
  r.decomp_wall_ms = decomp_wall / reps * 1e3;

  if (options_.verify) {
    r.round_trip_exact =
        decompressed.size() == ds.bytes.size() &&
        std::memcmp(decompressed.data(), ds.bytes.data(), ds.bytes.size()) ==
            0;
  }
  return r;
}

std::string BenchmarkRunner::ResolveMethod(const std::string& method) const {
  if (!options_.parallel || method.rfind("par-", 0) == 0) return method;
  // The auto selectors are chunk-parallel already; there is no par-auto
  // to prefer, the name passes through unchanged.
  if (method.rfind("auto", 0) == 0) return method;
  std::string par = "par-" + method;
  return CompressorRegistry::Global().Contains(par) ? par : method;
}

RunResult BenchmarkRunner::RunOne(const std::string& raw_method,
                                  const data::Dataset& ds) const {
  const std::string method = ResolveMethod(raw_method);
  auto cr = CompressorRegistry::Global().Create(method, options_.config);
  if (!cr.ok()) {
    RunResult r;
    r.method = method;
    r.dataset = ds.info->name;
    r.error = cr.status().ToString();
    return r;
  }
  return RunOne(cr.value().get(), ds);
}

std::vector<RunResult> BenchmarkRunner::RunAll(
    const std::vector<std::string>& methods,
    const std::vector<data::DatasetInfo>& datasets) const {
  std::vector<RunResult> results;
  for (const auto& info : datasets) {
    auto ds = data::GenerateDataset(info, options_.dataset_bytes,
                                    options_.seed);
    if (!ds.ok()) {
      for (const auto& m : methods) {
        RunResult r;
        r.method = m;
        r.dataset = info.name;
        r.error = ds.status().ToString();
        results.push_back(r);
      }
      continue;
    }
    for (const auto& m : methods) {
      results.push_back(RunOne(m, ds.value()));
    }
  }
  return results;
}

std::vector<MethodSummary> Summarize(const std::vector<RunResult>& results) {
  std::map<std::string, std::vector<const RunResult*>> by_method;
  std::vector<std::string> order;
  for (const auto& r : results) {
    if (by_method.find(r.method) == by_method.end()) order.push_back(r.method);
    by_method[r.method].push_back(&r);
  }
  std::vector<MethodSummary> out;
  for (const auto& m : order) {
    MethodSummary s;
    s.method = m;
    std::vector<double> crs, cts, dts, cw, dw;
    for (const RunResult* r : by_method[m]) {
      ++s.runs;
      if (!r->ok) {
        ++s.failures;
        continue;
      }
      crs.push_back(r->cr);
      cts.push_back(r->ct_gbps);
      dts.push_back(r->dt_gbps);
      cw.push_back(r->comp_wall_ms);
      dw.push_back(r->decomp_wall_ms);
    }
    s.harmonic_cr = HarmonicMean(crs.data(), crs.size());
    s.mean_ct_gbps = ArithmeticMean(cts.data(), cts.size());
    s.mean_dt_gbps = ArithmeticMean(dts.data(), dts.size());
    s.mean_comp_wall_ms = ArithmeticMean(cw.data(), cw.size());
    s.mean_decomp_wall_ms = ArithmeticMean(dw.data(), dw.size());
    out.push_back(s);
  }
  return out;
}

std::vector<std::vector<double>> CrMatrix(
    const std::vector<RunResult>& results,
    const std::vector<std::string>& methods,
    const std::vector<std::string>& datasets) {
  std::map<std::pair<std::string, std::string>, double> lookup;
  for (const auto& r : results) {
    lookup[{r.dataset, r.method}] = r.ok ? r.cr : 0.0;
  }
  std::vector<std::vector<double>> m;
  for (const auto& d : datasets) {
    std::vector<double> row;
    for (const auto& meth : methods) {
      auto it = lookup.find({d, meth});
      row.push_back(it != lookup.end() ? it->second : 0.0);
    }
    m.push_back(row);
  }
  return m;
}

}  // namespace fcbench
