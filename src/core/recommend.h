#ifndef FCBENCH_CORE_RECOMMEND_H_
#define FCBENCH_CORE_RECOMMEND_H_

#include <string>
#include <vector>

#include "core/objective.h"
#include "core/runner.h"
#include "data/dataset.h"

namespace fcbench {

/// One recommendation with its supporting evidence. `rationale` is
/// phrased in the same metric vocabulary the online selector's traces
/// use (select/features.h: harmonic_cr, wall_ms, rank_sum), so offline
/// map and online --explain output read as one system.
struct Recommendation {
  std::string method;
  double harmonic_cr = 0;
  double mean_wall_ms = 0;
  std::string rationale;
};

/// The §7.3 recommendation map, computed from actual benchmark results
/// rather than hard-coded: e.g. "for users focused on storage reduction we
/// recommend <best-CR method per domain>".
class RecommendationEngine {
 public:
  explicit RecommendationEngine(std::vector<RunResult> results);

  /// Best method for `objective` restricted to datasets of `domain`.
  Recommendation Recommend(data::Domain domain, Objective objective) const;

  /// Best all-round method across every domain (the paper's "general
  /// users" row; rank-sum over CR and end-to-end time, tied metric
  /// values sharing their average rank). Rank-sum ties break toward the
  /// higher harmonic CR, then the lexicographically smaller name, so
  /// the map is deterministic.
  Recommendation RecommendGeneral() const;

  /// Renders the full recommendation map as text.
  std::string RenderMap() const;

 private:
  std::vector<RunResult> results_;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_RECOMMEND_H_
