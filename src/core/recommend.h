#ifndef FCBENCH_CORE_RECOMMEND_H_
#define FCBENCH_CORE_RECOMMEND_H_

#include <string>
#include <vector>

#include "core/runner.h"
#include "data/dataset.h"

namespace fcbench {

/// What the user optimizes for (paper §7.3's three recommendation rows).
enum class Objective {
  kStorageReduction,  // best compression ratio
  kSpeed,             // shortest end-to-end wall time
  kBalanced,          // rank-sum of ratio and wall time
};

/// One recommendation with its supporting evidence.
struct Recommendation {
  std::string method;
  double harmonic_cr = 0;
  double mean_wall_ms = 0;
  std::string rationale;
};

/// The §7.3 recommendation map, computed from actual benchmark results
/// rather than hard-coded: e.g. "for users focused on storage reduction we
/// recommend <best-CR method per domain>".
class RecommendationEngine {
 public:
  explicit RecommendationEngine(std::vector<RunResult> results);

  /// Best method for `objective` restricted to datasets of `domain`.
  Recommendation Recommend(data::Domain domain, Objective objective) const;

  /// Best all-round method across every domain (the paper's "general
  /// users" row; rank-sum over CR and end-to-end time).
  Recommendation RecommendGeneral() const;

  /// Renders the full recommendation map as text.
  std::string RenderMap() const;

 private:
  std::vector<RunResult> results_;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_RECOMMEND_H_
