#include "core/container.h"

#include "util/bitio.h"
#include "util/hash.h"

namespace fcbench {

namespace {

constexpr uint64_t kMaxRank = 8;

Status ParseHeader(ByteSpan in, size_t* off, ContainerInfo* info,
                   uint64_t* raw_hash, uint64_t* payload_hash) {
  uint32_t magic = 0;
  uint8_t version = 0;
  if (!GetFixed(in, off, &magic) || magic != FczContainer::kMagic ||
      !GetFixed(in, off, &version) || version != FczContainer::kVersion) {
    return Status::Corruption("fcz: bad magic or version");
  }
  uint64_t name_len = 0;
  if (!GetVarint64(in, off, &name_len) || name_len > 64 ||
      *off + name_len > in.size()) {
    return Status::Corruption("fcz: bad method name");
  }
  info->method.assign(reinterpret_cast<const char*>(in.data() + *off),
                      name_len);
  *off += name_len;

  uint8_t dtype = 0, digits = 0;
  uint64_t rank = 0;
  if (!GetFixed(in, off, &dtype) || dtype > 1 ||
      !GetFixed(in, off, &digits) || !GetVarint64(in, off, &rank) ||
      rank > kMaxRank) {
    return Status::Corruption("fcz: bad descriptor");
  }
  info->desc.dtype = dtype ? DType::kFloat64 : DType::kFloat32;
  info->desc.precision_digits = digits;
  info->desc.extent.resize(rank);
  for (auto& e : info->desc.extent) {
    if (!GetVarint64(in, off, &e)) {
      return Status::Corruption("fcz: bad extent");
    }
  }

  if (!GetVarint64(in, off, &info->raw_bytes) ||
      !GetFixed(in, off, raw_hash) ||
      !GetVarint64(in, off, &info->payload_bytes) ||
      !GetFixed(in, off, payload_hash)) {
    return Status::Corruption("fcz: truncated header");
  }
  if (info->raw_bytes != info->desc.num_bytes()) {
    return Status::Corruption("fcz: descriptor/raw size mismatch");
  }
  if (info->payload_bytes > in.size() - *off) {
    return Status::Corruption("fcz: truncated payload");
  }
  return Status::OK();
}

}  // namespace

Status FczContainer::Pack(std::string_view method, const DataDesc& desc,
                          ByteSpan raw, const CompressorConfig& config,
                          Buffer* out) {
  if (raw.size() != desc.num_bytes()) {
    return Status::InvalidArgument("fcz: raw size disagrees with desc");
  }
  if (method.size() > 64) {
    return Status::InvalidArgument("fcz: method name too long");
  }
  FCB_ASSIGN_OR_RETURN(auto comp,
                       CompressorRegistry::Global().Create(method, config));
  Buffer payload;
  FCB_RETURN_IF_ERROR(comp->Compress(raw, desc, &payload));

  PutFixed(out, kMagic);
  out->PushBack(kVersion);
  PutVarint64(out, method.size());
  out->Append(method.data(), method.size());
  out->PushBack(desc.dtype == DType::kFloat64 ? 1 : 0);
  out->PushBack(static_cast<uint8_t>(desc.precision_digits));
  PutVarint64(out, desc.extent.size());
  for (uint64_t e : desc.extent) PutVarint64(out, e);
  PutVarint64(out, raw.size());
  PutFixed(out, XxHash64(raw));
  PutVarint64(out, payload.size());
  PutFixed(out, XxHash64(payload.span()));
  out->Append(payload.span());
  return Status::OK();
}

Result<ContainerInfo> FczContainer::Inspect(ByteSpan container) {
  ContainerInfo info;
  size_t off = 0;
  uint64_t raw_hash = 0, payload_hash = 0;
  FCB_RETURN_IF_ERROR(
      ParseHeader(container, &off, &info, &raw_hash, &payload_hash));
  return info;
}

Result<Buffer> FczContainer::Unpack(ByteSpan container, ContainerInfo* info) {
  ContainerInfo local;
  size_t off = 0;
  uint64_t raw_hash = 0, payload_hash = 0;
  FCB_RETURN_IF_ERROR(
      ParseHeader(container, &off, &local, &raw_hash, &payload_hash));
  ByteSpan payload = container.subspan(off, local.payload_bytes);
  if (XxHash64(payload) != payload_hash) {
    return Status::Corruption("fcz: payload checksum mismatch");
  }

  FCB_ASSIGN_OR_RETURN(auto comp,
                       CompressorRegistry::Global().Create(local.method));
  Buffer raw;
  FCB_RETURN_IF_ERROR(comp->Decompress(payload, local.desc, &raw));
  if (raw.size() != local.raw_bytes) {
    return Status::Corruption("fcz: decompressed size mismatch");
  }
  if (XxHash64(raw.span()) != raw_hash) {
    return Status::Corruption("fcz: raw checksum mismatch");
  }
  if (info != nullptr) *info = local;
  return raw;
}

}  // namespace fcbench
