#ifndef FCBENCH_CORE_STREAMING_H_
#define FCBENCH_CORE_STREAMING_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/compressor.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench {

/// Frame-based streaming compression for in-situ pipelines (§1.1: one
/// simulation time step arrives at a time and must be compressed and
/// shipped before the next). Each Append() call becomes one
/// self-contained frame — compressed independently with the configured
/// method and checksummed — so a reader can decode frames as they arrive
/// and a corrupted frame does not poison the rest of the stream.
///
/// Frame layout: varint raw_bytes, u8 dtype, varint payload_bytes,
/// u64 xxh64(payload), payload. The writer emits frames into any Buffer
/// (append-only); the reader walks them forward.
class StreamWriter {
 public:
  /// Creates a writer producing frames compressed by registry method
  /// `method`. Fails if the method is unknown.
  static Result<StreamWriter> Open(std::string_view method,
                                   const CompressorConfig& config = {});

  /// Creates a writer whose frames are chunk-parallel containers of
  /// `method` (core/chunked.h): each Append compresses its chunks on the
  /// shared pool, which keeps an in-situ producer ahead of the simulation
  /// even for large time steps. Works for any registry method, including
  /// ones without a registered par- variant. Frame layout is unchanged —
  /// the chunked container is just the payload — and payload bytes are
  /// independent of the thread count. The auto selectors (`auto`,
  /// `auto-speed`, `auto-ratio`) are accepted too and used directly:
  /// their mixed-method containers are already chunk-parallel.
  static Result<StreamWriter> OpenChunked(std::string_view method,
                                          const CompressorConfig& config = {});

  /// Compresses one chunk (a whole number of `dtype` elements) into a
  /// frame appended to `out`.
  Status Append(ByteSpan chunk, DType dtype, Buffer* out);

  /// Total raw bytes accepted and frame bytes emitted so far.
  uint64_t raw_bytes() const { return raw_bytes_; }
  uint64_t frame_bytes() const { return frame_bytes_; }

 private:
  StreamWriter() = default;
  std::unique_ptr<Compressor> compressor_;
  uint64_t raw_bytes_ = 0;
  uint64_t frame_bytes_ = 0;
};

/// Forward reader over a stream of frames produced by StreamWriter.
class StreamReader {
 public:
  /// Creates a reader decoding with registry method `method` (the same
  /// one the writer used; streams are method-tagged at a higher layer,
  /// e.g. the .fcz container or the ColumnStore manifest).
  static Result<StreamReader> Open(std::string_view method,
                                   const CompressorConfig& config = {});

  /// Reader counterpart of StreamWriter::OpenChunked: decodes frames
  /// whose payloads are chunk-parallel containers of `method`.
  static Result<StreamReader> OpenChunked(std::string_view method,
                                          const CompressorConfig& config = {});

  /// True when at least one more frame starts at the current position.
  bool HasNext(ByteSpan stream) const { return offset_ < stream.size(); }

  /// Decodes the next frame, appending the raw chunk bytes to `out` and
  /// advancing the internal offset. Frame checksums are verified before
  /// decoding.
  Status Next(ByteSpan stream, Buffer* out);

  /// Byte offset of the next frame.
  size_t offset() const { return offset_; }

 private:
  StreamReader() = default;
  std::unique_ptr<Compressor> compressor_;
  size_t offset_ = 0;
};

}  // namespace fcbench

#endif  // FCBENCH_CORE_STREAMING_H_
