#include "core/streaming.h"

#include "core/chunked.h"
#include "select/auto_compressor.h"
#include "util/bitio.h"
#include "util/hash.h"

namespace fcbench {

Result<StreamWriter> StreamWriter::Open(std::string_view method,
                                        const CompressorConfig& config) {
  StreamWriter w;
  FCB_ASSIGN_OR_RETURN(w.compressor_,
                       CompressorRegistry::Global().Create(method, config));
  return w;
}

Result<StreamWriter> StreamWriter::OpenChunked(
    std::string_view method, const CompressorConfig& config) {
  // The auto selectors already emit chunk-parallel containers; wrapping
  // them again would nest frames for no benefit.
  if (select::ParseAutoMethod(method, nullptr)) return Open(method, config);
  StreamWriter w;
  FCB_ASSIGN_OR_RETURN(w.compressor_,
                       ChunkedCompressor::Wrap(method, config));
  return w;
}

Status StreamWriter::Append(ByteSpan chunk, DType dtype, Buffer* out) {
  const size_t esize = DTypeSize(dtype);
  if (chunk.size() % esize != 0) {
    return Status::InvalidArgument(
        "stream: chunk is not a whole element count");
  }
  DataDesc desc;
  desc.dtype = dtype;
  desc.extent = {chunk.size() / esize};

  Buffer payload;
  FCB_RETURN_IF_ERROR(compressor_->Compress(chunk, desc, &payload));

  size_t frame_start = out->size();
  PutVarint64(out, chunk.size());
  out->PushBack(dtype == DType::kFloat64 ? 1 : 0);
  PutVarint64(out, payload.size());
  PutFixed(out, XxHash64(payload.span()));
  out->Append(payload.span());

  raw_bytes_ += chunk.size();
  frame_bytes_ += out->size() - frame_start;
  return Status::OK();
}

Result<StreamReader> StreamReader::Open(std::string_view method,
                                        const CompressorConfig& config) {
  StreamReader r;
  FCB_ASSIGN_OR_RETURN(r.compressor_,
                       CompressorRegistry::Global().Create(method, config));
  return r;
}

Result<StreamReader> StreamReader::OpenChunked(
    std::string_view method, const CompressorConfig& config) {
  if (select::ParseAutoMethod(method, nullptr)) return Open(method, config);
  StreamReader r;
  FCB_ASSIGN_OR_RETURN(r.compressor_,
                       ChunkedCompressor::Wrap(method, config));
  return r;
}

Status StreamReader::Next(ByteSpan stream, Buffer* out) {
  size_t off = offset_;
  uint64_t raw_bytes = 0, payload_bytes = 0, hash = 0;
  uint8_t dtype_byte = 0;
  if (!GetVarint64(stream, &off, &raw_bytes) ||
      !GetFixed(stream, &off, &dtype_byte) || dtype_byte > 1 ||
      !GetVarint64(stream, &off, &payload_bytes) ||
      !GetFixed(stream, &off, &hash)) {
    return Status::Corruption("stream: bad frame header");
  }
  // Overflow-safe form: off <= stream.size() after the header parse, so
  // the subtraction cannot wrap (`off + payload_bytes` could, for a
  // hostile 64-bit length).
  if (payload_bytes > stream.size() - off) {
    return Status::Corruption("stream: truncated frame payload");
  }
  const DType dtype = dtype_byte ? DType::kFloat64 : DType::kFloat32;
  const size_t esize = DTypeSize(dtype);
  if (raw_bytes % esize != 0) {
    return Status::Corruption("stream: frame size not a whole element");
  }

  ByteSpan payload = stream.subspan(off, payload_bytes);
  if (XxHash64(payload) != hash) {
    return Status::Corruption("stream: frame checksum mismatch");
  }

  DataDesc desc;
  desc.dtype = dtype;
  desc.extent = {raw_bytes / esize};
  size_t before = out->size();
  Status st = compressor_->Decompress(payload, desc, out);
  if (st.ok() && out->size() - before != raw_bytes) {
    st = Status::Corruption("stream: frame size mismatch after decode");
  }
  if (!st.ok()) {
    // A failed decode must not leak partial output: roll `out` back to
    // its pre-call size so the caller's buffer holds exactly the frames
    // that decoded successfully.
    out->Resize(before);
    return st;
  }
  offset_ = off + payload_bytes;
  return Status::OK();
}

}  // namespace fcbench
