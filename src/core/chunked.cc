#include "core/chunked.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/bitio.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace fcbench {

namespace {

/// Adapter names may never appear inside a mixed method table: a
/// container that nests auto/par decoders could recurse on hostile
/// input. Only plain base methods are storable.
bool IsPlainMethodName(std::string_view name) {
  if (name.empty() || name.size() > ChunkedCompressor::kMaxMethodNameLen) {
    return false;
  }
  if (name.rfind("par-", 0) == 0 || name.rfind("auto", 0) == 0) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t ChunkedCompressor::Index::RawSizeOfChunk(size_t i) const {
  uint64_t begin = chunk_raw_bytes * i;
  return std::min<uint64_t>(chunk_raw_bytes, raw_bytes - begin);
}

std::string_view ChunkedCompressor::Index::MethodOfChunk(size_t i) const {
  if (version != kVersionMixed || i >= method_ids.size()) return {};
  return methods[method_ids[i]];
}

Result<std::unique_ptr<Compressor>> ChunkedCompressor::Wrap(
    std::string_view method, const CompressorConfig& config) {
  auto wrapped =
      std::make_unique<ChunkedCompressor>(std::string(method), config);
  if (!wrapped->init_status_.ok()) return wrapped->init_status_;
  return std::unique_ptr<Compressor>(std::move(wrapped));
}

std::unique_ptr<Compressor> ChunkedCompressor::Make(
    std::string method, const CompressorConfig& config) {
  return std::make_unique<ChunkedCompressor>(std::move(method), config);
}

ChunkedCompressor::ChunkedCompressor(std::string method,
                                     const CompressorConfig& config)
    : method_(std::move(method)),
      inner_config_(config),
      chunk_bytes_(config.chunk_bytes ? config.chunk_bytes
                                      : kDefaultChunkBytes),
      threads_(ThreadPool::ResolveThreads(config.threads)) {
  // Inner methods always run single-threaded: outer chunks carry the
  // parallelism, and thread-count-sensitive inner formats (pFPC) must not
  // make par-* output depend on the thread budget.
  inner_config_.threads = 1;

  auto probe = CompressorRegistry::Global().Create(method_, inner_config_);
  if (!probe.ok()) {
    init_status_ = probe.status();
    traits_.name = "par-" + method_;
    return;
  }
  traits_ = probe.value()->traits();
  traits_.name = "par-" + method_;
  traits_.parallel = true;
}

Status ChunkedCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  FCB_RETURN_IF_ERROR(init_status_);
  if (input.size() != desc.num_bytes()) {
    return Status::InvalidArgument("chunked: desc/input size mismatch");
  }
  const size_t esize = DTypeSize(desc.dtype);
  const size_t chunk_elems = std::max<size_t>(1, chunk_bytes_ / esize);
  const uint64_t chunk_raw = chunk_elems * esize;
  const uint64_t nchunks =
      input.empty() ? 0 : (input.size() + chunk_raw - 1) / chunk_raw;

  obs::ScopedSpan span("chunked.compress", nchunks, input.size());
  std::vector<Buffer> parts(nchunks);
  std::vector<Status> stats(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        uint64_t begin = c * chunk_raw;
        uint64_t len = std::min<uint64_t>(chunk_raw, input.size() - begin);
        DataDesc chunk_desc;
        chunk_desc.dtype = desc.dtype;
        chunk_desc.extent = {len / esize};
        chunk_desc.precision_digits = desc.precision_digits;
        // A fresh inner instance per chunk: Compressor instances are
        // single-call; sharing one across concurrent chunks would race.
        auto inner =
            CompressorRegistry::Global().Create(method_, inner_config_);
        if (!inner.ok()) {
          stats[c] = inner.status();
          return;
        }
        stats[c] = inner.value()->Compress(input.subspan(begin, len),
                                           chunk_desc, &parts[c]);
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);

  std::vector<uint64_t> payload_sizes(parts.size());
  uint64_t out_bytes = 0;
  for (size_t c = 0; c < parts.size(); ++c) {
    payload_sizes[c] = parts[c].size();
    out_bytes += parts[c].size();
  }
  FCB_RETURN_IF_ERROR(WriteDirectory(input.size(), chunk_raw, {}, {},
                                     payload_sizes, out));
  for (const auto& p : parts) out->Append(p.span());
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("chunked.compress.chunks")->Add(nchunks);
  reg.GetCounter("chunked.compress.raw_bytes")->Add(input.size());
  reg.GetCounter("chunked.compress.out_bytes")->Add(out_bytes);
  return Status::OK();
}

Status ChunkedCompressor::WriteDirectory(
    uint64_t raw_bytes, uint64_t chunk_raw_bytes,
    const std::vector<std::string>& methods,
    const std::vector<uint32_t>& method_ids,
    const std::vector<uint64_t>& payload_sizes, Buffer* out) {
  const bool mixed = !methods.empty();
  if (mixed && (methods.size() > kMaxMethods ||
                method_ids.size() != payload_sizes.size())) {
    return Status::InvalidArgument("chunked: malformed method directory");
  }
  for (const auto& m : methods) {
    if (!IsPlainMethodName(m)) {
      return Status::InvalidArgument("chunked: '" + m +
                                     "' is not a storable method name");
    }
  }
  for (uint32_t id : method_ids) {
    if (id >= methods.size()) {
      return Status::InvalidArgument("chunked: method id out of range");
    }
  }
  Buffer header;
  PutFixed(&header, kMagic);
  PutVarint64(&header, mixed ? kVersionMixed : kVersionSingle);
  PutVarint64(&header, raw_bytes);
  PutVarint64(&header, chunk_raw_bytes);
  if (mixed) {
    PutVarint64(&header, methods.size());
    for (const auto& m : methods) {
      PutVarint64(&header, m.size());
      header.Append(m.data(), m.size());
    }
  }
  PutVarint64(&header, payload_sizes.size());
  if (mixed) {
    for (uint32_t id : method_ids) PutVarint64(&header, id);
  }
  for (uint64_t s : payload_sizes) PutVarint64(&header, s);
  PutFixed(&header, XxHash64(header.span()));
  out->Append(header.span());
  return Status::OK();
}

Result<ChunkedCompressor::Index> ChunkedCompressor::ReadIndex(
    ByteSpan input) {
  size_t off = 0;
  uint32_t magic = 0;
  Index idx;
  if (!GetFixed(input, &off, &magic) || magic != kMagic ||
      !GetVarint64(input, &off, &idx.version) ||
      (idx.version != kVersionSingle && idx.version != kVersionMixed)) {
    return Status::Corruption("chunked: bad magic/version");
  }
  if (!GetVarint64(input, &off, &idx.raw_bytes) ||
      !GetVarint64(input, &off, &idx.chunk_raw_bytes)) {
    return Status::Corruption("chunked: truncated header");
  }
  if (idx.version == kVersionMixed) {
    uint64_t nmethods = 0;
    if (!GetVarint64(input, &off, &nmethods) || nmethods == 0 ||
        nmethods > kMaxMethods) {
      return Status::Corruption("chunked: implausible method table");
    }
    idx.methods.reserve(nmethods);
    for (uint64_t m = 0; m < nmethods; ++m) {
      uint64_t len = 0;
      if (!GetVarint64(input, &off, &len) || len > kMaxMethodNameLen ||
          len > input.size() - off) {
        return Status::Corruption("chunked: truncated method table");
      }
      std::string name(reinterpret_cast<const char*>(input.data() + off),
                       len);
      off += len;
      if (!IsPlainMethodName(name)) {
        return Status::Corruption(
            "chunked: non-storable method name in table");
      }
      idx.methods.push_back(std::move(name));
    }
  }
  uint64_t nchunks = 0;
  if (!GetVarint64(input, &off, &nchunks)) {
    return Status::Corruption("chunked: truncated header");
  }
  // Structural plausibility before any allocation: the chunk count must
  // follow from the sizes, and each directory entry needs >= 1 byte.
  uint64_t expect_chunks =
      idx.raw_bytes == 0
          ? 0
          : (idx.chunk_raw_bytes == 0
                 ? ~uint64_t{0}
                 : (idx.raw_bytes + idx.chunk_raw_bytes - 1) /
                       idx.chunk_raw_bytes);
  if (nchunks != expect_chunks || nchunks > input.size() - off) {
    return Status::Corruption("chunked: implausible chunk directory");
  }
  if (idx.version == kVersionMixed) {
    idx.method_ids.resize(nchunks);
    for (auto& id : idx.method_ids) {
      uint64_t raw_id = 0;
      if (!GetVarint64(input, &off, &raw_id)) {
        return Status::Corruption("chunked: truncated method ids");
      }
      if (raw_id >= idx.methods.size()) {
        return Status::Corruption("chunked: chunk method id out of range");
      }
      id = static_cast<uint32_t>(raw_id);
    }
  }
  idx.payload_sizes.resize(nchunks);
  for (auto& s : idx.payload_sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("chunked: truncated directory");
    }
  }
  uint64_t want_hash = 0;
  uint64_t got_hash = XxHash64(input.subspan(0, off));
  if (!GetFixed(input, &off, &want_hash) || want_hash != got_hash) {
    return Status::Corruption("chunked: directory checksum mismatch");
  }
  idx.payload_offsets.resize(nchunks);
  size_t pos = off;
  for (size_t c = 0; c < nchunks; ++c) {
    idx.payload_offsets[c] = pos;
    if (idx.payload_sizes[c] > input.size() - pos) {
      return Status::Corruption("chunked: truncated chunk payloads");
    }
    pos += idx.payload_sizes[c];
  }
  if (pos != input.size()) {
    return Status::Corruption("chunked: trailing bytes after payloads");
  }
  return idx;
}

Status ChunkedCompressor::DecodeChunkWithIndex(
    const Index& idx, ByteSpan input, const DataDesc& desc, size_t chunk,
    std::string_view fallback_method, const CompressorConfig& inner_config,
    Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  const uint64_t raw = idx.RawSizeOfChunk(chunk);
  DataDesc chunk_desc;
  chunk_desc.dtype = desc.dtype;
  chunk_desc.extent = {raw / esize};
  chunk_desc.precision_digits = desc.precision_digits;
  std::string_view method = idx.MethodOfChunk(chunk);
  if (method.empty()) method = fallback_method;
  if (method.empty()) {
    return Status::Corruption("chunked: stream names no method for chunk");
  }
  auto inner = CompressorRegistry::Global().Create(method, inner_config);
  if (!inner.ok()) return inner.status();
  size_t before = out->size();
  FCB_RETURN_IF_ERROR(inner.value()->Decompress(
      input.subspan(idx.payload_offsets[chunk], idx.payload_sizes[chunk]),
      chunk_desc, out));
  if (out->size() - before != raw) {
    return Status::Corruption("chunked: chunk size mismatch after decode");
  }
  return Status::OK();
}

Status ChunkedCompressor::DecodeOne(const Index& idx, ByteSpan input,
                                    const DataDesc& desc, size_t chunk,
                                    Buffer* out) {
  return DecodeChunkWithIndex(idx, input, desc, chunk, method_,
                              inner_config_, out);
}

Status ChunkedCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                     Buffer* out) {
  FCB_RETURN_IF_ERROR(init_status_);
  FCB_ASSIGN_OR_RETURN(Index idx, ReadIndex(input));
  if (idx.raw_bytes != desc.num_bytes()) {
    return Status::Corruption("chunked: declared size disagrees with desc");
  }
  const size_t esize = DTypeSize(desc.dtype);
  if (idx.raw_bytes % esize != 0 || idx.chunk_raw_bytes % esize != 0) {
    return Status::Corruption("chunked: sizes not element-aligned");
  }

  const size_t nchunks = idx.num_chunks();
  const size_t base = out->size();
  out->Resize(base + idx.raw_bytes);
  std::vector<Status> stats(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        Buffer part;
        Status st = DecodeOne(idx, input, desc, c, &part);
        if (!st.ok()) {
          stats[c] = st;
          return;
        }
        std::memcpy(out->data() + base + c * idx.chunk_raw_bytes,
                    part.data(), part.size());
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("chunked.decompress.chunks")->Add(nchunks);
  reg.GetCounter("chunked.decompress.raw_bytes")->Add(idx.raw_bytes);
  return Status::OK();
}

Status ChunkedCompressor::DecompressChunk(ByteSpan input,
                                          const DataDesc& desc, size_t index,
                                          Buffer* out) {
  FCB_RETURN_IF_ERROR(init_status_);
  FCB_ASSIGN_OR_RETURN(Index idx, ReadIndex(input));
  if (idx.raw_bytes != desc.num_bytes()) {
    return Status::Corruption("chunked: declared size disagrees with desc");
  }
  const size_t esize = DTypeSize(desc.dtype);
  if (idx.raw_bytes % esize != 0 || idx.chunk_raw_bytes % esize != 0) {
    return Status::Corruption("chunked: sizes not element-aligned");
  }
  if (index >= idx.num_chunks()) {
    return Status::InvalidArgument("chunked: chunk index out of range");
  }
  return DecodeOne(idx, input, desc, index, out);
}

}  // namespace fcbench
