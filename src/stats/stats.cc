#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace fcbench::stats {

namespace {

/// q_{0.05} critical values of the Nemenyi test for k = 2..20 treatments
/// (studentized range statistic / sqrt(2); Demsar 2006, Table 5a).
constexpr double kNemenyiQ05[] = {
    0,     0,     1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031,
    3.102, 3.164, 3.219, 3.268, 3.313, 3.354, 3.391, 3.426, 3.458,
    3.489, 3.517, 3.544};

/// Ranks one row (higher score = rank 1), averaging ties.
std::vector<double> RankRow(const std::vector<double>& row) {
  size_t k = row.size();
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return row[a] > row[b]; });
  std::vector<double> ranks(k);
  size_t i = 0;
  while (i < k) {
    size_t j = i;
    while (j + 1 < k && row[order[j + 1]] == row[order[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores) {
  if (scores.empty()) return {};
  size_t k = scores[0].size();
  std::vector<double> sum(k, 0.0);
  for (const auto& row : scores) {
    auto ranks = RankRow(row);
    for (size_t j = 0; j < k; ++j) sum[j] += ranks[j];
  }
  for (auto& s : sum) s /= static_cast<double>(scores.size());
  return sum;
}

double GammaP(double a, double x) {
  if (x < 0 || a <= 0) return 0;
  if (x == 0) return 0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q, then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double ChiSquareSf(double x, int df) {
  if (x <= 0) return 1.0;
  return 1.0 - GammaP(df / 2.0, x / 2.0);
}

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

Result<FriedmanResult> FriedmanTest(
    const std::vector<std::vector<double>>& scores, double alpha) {
  if (scores.empty()) {
    return Status::InvalidArgument("friedman: no datasets");
  }
  size_t k = scores[0].size();
  if (k < 2) return Status::InvalidArgument("friedman: need >= 2 methods");
  for (const auto& row : scores) {
    if (row.size() != k) {
      return Status::InvalidArgument("friedman: ragged score matrix");
    }
  }
  FriedmanResult r;
  r.k = static_cast<int>(k);
  r.n = static_cast<int>(scores.size());
  r.avg_ranks = AverageRanks(scores);

  double sum_sq = 0;
  for (double rj : r.avg_ranks) sum_sq += rj * rj;
  double n = r.n, kk = r.k;
  r.chi2 = 12.0 * n / (kk * (kk + 1.0)) *
           (sum_sq - kk * (kk + 1.0) * (kk + 1.0) / 4.0);
  r.p_value = ChiSquareSf(r.chi2, r.k - 1);
  r.reject_h0 = r.p_value < alpha;
  return r;
}

double NemenyiCriticalDifference(int k, int n) {
  if (k < 2 || n < 1) return 0;
  double q = (k <= 20) ? kNemenyiQ05[k] : kNemenyiQ05[20];
  return q * std::sqrt(k * (k + 1.0) / (6.0 * n));
}

CdDiagram BuildCdDiagram(const std::vector<std::string>& names,
                         const std::vector<double>& avg_ranks,
                         int n_datasets) {
  CdDiagram d;
  d.critical_difference =
      NemenyiCriticalDifference(static_cast<int>(names.size()), n_datasets);
  for (size_t i = 0; i < names.size(); ++i) {
    d.ordered.push_back({names[i], avg_ranks[i]});
  }
  std::sort(d.ordered.begin(), d.ordered.end(),
            [](const CdEntry& a, const CdEntry& b) {
              return a.avg_rank < b.avg_rank;
            });
  // Maximal cliques of adjacent methods within one CD.
  size_t k = d.ordered.size();
  for (size_t i = 0; i < k; ++i) {
    size_t j = i;
    while (j + 1 < k && d.ordered[j + 1].avg_rank - d.ordered[i].avg_rank <=
                            d.critical_difference) {
      ++j;
    }
    if (j > i) {
      // Keep only maximal cliques (skip if contained in the previous one).
      if (d.cliques.empty() ||
          d.cliques.back().second < static_cast<int>(j)) {
        d.cliques.push_back({static_cast<int>(i), static_cast<int>(j)});
      }
    }
  }
  return d;
}

std::string CdDiagram::Render() const {
  std::ostringstream os;
  os << "critical difference (Nemenyi, alpha=0.05): " << critical_difference
     << "\n";
  for (size_t i = 0; i < ordered.size(); ++i) {
    os << "  " << (i + 1) << ". " << ordered[i].name << "  (avg rank "
       << ordered[i].avg_rank << ")\n";
  }
  for (const auto& [a, b] : cliques) {
    os << "  no significant difference: [" << ordered[a].name << " .. "
       << ordered[b].name << "]\n";
  }
  return os.str();
}

MannWhitneyResult MannWhitneyUTest(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   double alpha) {
  MannWhitneyResult r;
  size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0) return r;

  // Rank the pooled sample with tie averaging.
  std::vector<std::pair<double, int>> pooled;  // (value, sample id)
  pooled.reserve(na + nb);
  for (double v : a) pooled.push_back({v, 0});
  for (double v : b) pooled.push_back({v, 1});
  std::sort(pooled.begin(), pooled.end());
  size_t n = pooled.size();
  std::vector<double> ranks(n);
  double tie_correction = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && pooled[j + 1].first == pooled[i].first) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    size_t t = j - i + 1;
    if (t > 1) {
      tie_correction += static_cast<double>(t) * t * t - t;
    }
    for (size_t q = i; q <= j; ++q) ranks[q] = avg;
    i = j + 1;
  }
  double ra = 0;
  for (size_t q = 0; q < n; ++q) {
    if (pooled[q].second == 0) ra += ranks[q];
  }
  double u1 = ra - static_cast<double>(na) * (na + 1) / 2.0;
  double u2 = static_cast<double>(na) * nb - u1;
  r.u = std::min(u1, u2);

  double mean_u = static_cast<double>(na) * nb / 2.0;
  double nn = static_cast<double>(n);
  double var_u = static_cast<double>(na) * nb / 12.0 *
                 ((nn + 1.0) - tie_correction / (nn * (nn - 1.0)));
  if (var_u <= 0) {
    r.p_value = 1.0;
    return r;
  }
  r.z = (r.u - mean_u) / std::sqrt(var_u);
  r.p_value = 2.0 * NormalSf(std::fabs(r.z));
  if (r.p_value > 1.0) r.p_value = 1.0;
  r.significant = r.p_value < alpha;
  return r;
}

WilcoxonResult WilcoxonSignedRankTest(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      double alpha) {
  WilcoxonResult r;
  if (a.size() != b.size() || a.empty()) return r;

  // Non-zero paired differences, ranked by absolute magnitude with tie
  // averaging.
  std::vector<std::pair<double, double>> diffs;  // (|d|, sign)
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back({std::fabs(d), d > 0 ? 1.0 : -1.0});
  }
  r.n_effective = static_cast<int>(diffs.size());
  if (diffs.empty()) return r;
  std::sort(diffs.begin(), diffs.end());

  const size_t n = diffs.size();
  double w_plus = 0, w_minus = 0;
  double tie_correction = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && diffs[j + 1].first == diffs[i].first) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    size_t t = j - i + 1;
    if (t > 1) tie_correction += static_cast<double>(t) * t * t - t;
    for (size_t q = i; q <= j; ++q) {
      if (diffs[q].second > 0) {
        w_plus += avg;
      } else {
        w_minus += avg;
      }
    }
    i = j + 1;
  }
  r.w = std::min(w_plus, w_minus);

  double nn = static_cast<double>(n);
  double mean_w = nn * (nn + 1.0) / 4.0;
  double var_w =
      nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0 - tie_correction / 48.0;
  if (var_w <= 0) {
    r.p_value = 1.0;
    return r;
  }
  r.z = (r.w - mean_w) / std::sqrt(var_w);
  r.p_value = 2.0 * NormalSf(std::fabs(r.z));
  if (r.p_value > 1.0) r.p_value = 1.0;
  r.significant = r.p_value < alpha;
  return r;
}

}  // namespace fcbench::stats
