#ifndef FCBENCH_STATS_STATS_H_
#define FCBENCH_STATS_STATS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fcbench::stats {

/// Average ranks of k treatments over N blocks (datasets). `scores[i][j]`
/// is the metric of method j on dataset i; HIGHER is better (ties share
/// averaged ranks, as in Demsar 2006). Returned ranks: 1 = best.
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores);

/// Friedman test result (paper §2.4/§5.4).
struct FriedmanResult {
  double chi2 = 0;       // Friedman chi-square statistic
  double p_value = 1;    // chi-square approximation, df = k-1
  int k = 0;             // number of methods
  int n = 0;             // number of datasets
  std::vector<double> avg_ranks;
  bool reject_h0 = false;  // true -> methods are NOT all equivalent
};

/// Runs the Friedman test on a complete N x k score matrix (higher =
/// better). alpha is the significance level (paper uses 0.05).
Result<FriedmanResult> FriedmanTest(
    const std::vector<std::vector<double>>& scores, double alpha = 0.05);

/// Critical difference of the post-hoc Nemenyi test at alpha = 0.05:
/// CD = q_{0.05,k} * sqrt(k(k+1) / (6N)).
double NemenyiCriticalDifference(int k, int n);

/// One method entry of a critical-difference diagram.
struct CdEntry {
  std::string name;
  double avg_rank;
};

/// Groups of methods whose average ranks differ by less than the CD
/// (the "cliques" connected by a bar in Figure 7b).
struct CdDiagram {
  double critical_difference = 0;
  std::vector<CdEntry> ordered;              // best (lowest rank) first
  std::vector<std::pair<int, int>> cliques;  // [first, last] index ranges

  /// Renders an ASCII version of the Figure 7b diagram.
  std::string Render() const;
};

/// Builds the CD diagram from names + average ranks.
CdDiagram BuildCdDiagram(const std::vector<std::string>& names,
                         const std::vector<double>& avg_ranks, int n_datasets);

/// Mann-Whitney U test (two-sided, normal approximation with tie
/// correction) — used by the §6.1.5 dimensionality experiment (Table 9).
struct MannWhitneyResult {
  double u = 0;
  double z = 0;
  double p_value = 1;
  bool significant = false;  // at the supplied alpha
};

MannWhitneyResult MannWhitneyUTest(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   double alpha = 0.05);

/// Wilcoxon signed-rank test (two-sided, normal approximation with tie
/// correction) over paired samples — Demsar's recommended test for
/// comparing *two* classifiers over multiple datasets, complementing the
/// k-method Friedman test. Zero differences are dropped (Wilcoxon's
/// original treatment).
struct WilcoxonResult {
  double w = 0;        // min(W+, W-)
  double z = 0;        // normal approximation
  double p_value = 1;  // two-sided
  int n_effective = 0;  // pairs with non-zero difference
  bool significant = false;  // at the supplied alpha
};

WilcoxonResult WilcoxonSignedRankTest(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      double alpha = 0.05);

/// Regularized lower incomplete gamma P(a, x); exposed for tests.
double GammaP(double a, double x);

/// Chi-square survival function (1 - CDF) with df degrees of freedom.
double ChiSquareSf(double x, int df);

/// Standard normal survival function.
double NormalSf(double z);

}  // namespace fcbench::stats

#endif  // FCBENCH_STATS_STATS_H_
