#ifndef FCBENCH_CODECS_LZH_H_
#define FCBENCH_CODECS_LZH_H_

#include <cstddef>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// zstd-style codec built from scratch: greedy LZ77 with chained-hash match
/// search over a large window, followed by entropy coding of the separated
/// token streams (literals via canonical Huffman; lengths/distances via
/// byte-split Huffman). It stands in for libzstd as the back-end of
/// bitshuffle::zstd (see DESIGN.md substitution table): like zstd it trades
/// slower, search-heavy compression for fast decompression and a higher
/// ratio than LZ4.
class LzhCodec {
 public:
  /// Entropy stage for the token/literal streams. Real zstd uses FSE
  /// (tANS); canonical Huffman is kept for the ablation bench comparing
  /// the two back-ends on identical LZ77 parses.
  enum class Entropy : uint8_t { kHuffman = 0, kFse = 1 };

  struct Options {
    /// Match-search depth. Higher = better ratio, slower compression.
    int max_chain = 32;
    /// log2 of the sliding window (default 1 MiB).
    int window_log = 20;
    /// Entropy coder for the four token streams.
    Entropy entropy = Entropy::kFse;
  };

  LzhCodec() = default;
  explicit LzhCodec(Options opts) : opts_(opts) {}

  /// Compresses `input`, appending a self-describing frame to `out`.
  void Compress(ByteSpan input, Buffer* out) const;

  /// Decompresses a frame produced by Compress, appending to `out`.
  static Status Decompress(ByteSpan input, Buffer* out);

 private:
  Options opts_;
};

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_LZH_H_
