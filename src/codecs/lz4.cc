#include "codecs/lz4.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/bitio.h"

namespace fcbench::codecs {

namespace {

constexpr int kMinMatch = 4;
constexpr size_t kLastLiterals = 5;   // spec: last 5 bytes always literals
constexpr size_t kMfLimit = 12;       // spec: match must end 12B before end
constexpr int kHashLog = 16;

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

/// Emits a length using the 255-extension scheme, given the nibble already
/// holds min(len, 15).
void EmitLengthExtension(size_t len, Buffer* out) {
  if (len < 15) return;
  len -= 15;
  while (len >= 255) {
    out->PushBack(255);
    len -= 255;
  }
  out->PushBack(static_cast<uint8_t>(len));
}

}  // namespace

void Lz4Codec::Compress(ByteSpan input, Buffer* out) const {
  const uint8_t* src = input.data();
  const size_t n = input.size();

  if (n < kMfLimit + kMinMatch) {
    // Too small for any match: single literals-only sequence.
    uint8_t token = static_cast<uint8_t>(std::min<size_t>(n, 15) << 4);
    out->PushBack(token);
    EmitLengthExtension(n, out);
    out->Append(src, n);
    return;
  }

  // hash -> most recent position; chains via prev table when attempts > 1.
  std::vector<int32_t> head(size_t(1) << kHashLog, -1);
  std::vector<int32_t> prev;
  const bool chained = opts_.max_attempts > 1;
  if (chained) prev.assign(n, -1);

  const size_t match_limit = n - kLastLiterals;
  const size_t input_limit = n - kMfLimit;

  size_t anchor = 0;
  size_t pos = 0;
  while (pos < input_limit) {
    // Find a match at `pos`.
    uint32_t h = Hash4(Read32(src + pos));
    int32_t cand = head[h];
    if (chained) prev[pos] = cand;
    head[h] = static_cast<int32_t>(pos);

    size_t best_len = 0;
    size_t best_dist = 0;
    int attempts = opts_.max_attempts;
    while (cand >= 0 && attempts-- > 0) {
      size_t dist = pos - static_cast<size_t>(cand);
      if (dist > 65535) break;
      if (Read32(src + cand) == Read32(src + pos)) {
        size_t len = kMinMatch;
        while (pos + len < match_limit && src[cand + len] == src[pos + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
        }
      }
      cand = chained ? prev[cand] : -1;
    }

    if (best_len < kMinMatch) {
      ++pos;
      continue;
    }

    // Sequence: literals [anchor, pos) + match (best_dist, best_len).
    size_t lit_len = pos - anchor;
    size_t match_code = best_len - kMinMatch;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4) |
        static_cast<uint8_t>(std::min<size_t>(match_code, 15));
    out->PushBack(token);
    EmitLengthExtension(lit_len, out);
    out->Append(src + anchor, lit_len);
    uint16_t off = static_cast<uint16_t>(best_dist);
    out->Append(&off, 2);
    EmitLengthExtension(match_code, out);

    pos += best_len;
    anchor = pos;

    // Insert skipped positions into the table so later matches can refer
    // back into the covered region (single probe per position).
    if (pos < input_limit) {
      for (size_t p = pos - 2; p < pos; ++p) {
        uint32_t hh = Hash4(Read32(src + p));
        if (chained) prev[p] = head[hh];
        head[hh] = static_cast<int32_t>(p);
      }
    }
  }

  // Final literals-only sequence.
  size_t lit_len = n - anchor;
  uint8_t token = static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4);
  out->PushBack(token);
  EmitLengthExtension(lit_len, out);
  out->Append(src + anchor, lit_len);
}

Status Lz4Codec::Decompress(ByteSpan input, size_t decompressed_size,
                            Buffer* out) const {
  const uint8_t* src = input.data();
  const size_t n = input.size();
  size_t base = out->size();
  out->Resize(base + decompressed_size);
  uint8_t* dst = out->data() + base;
  size_t dpos = 0;
  size_t spos = 0;

  auto read_len_ext = [&](size_t nibble, size_t* len) -> bool {
    *len = nibble;
    if (nibble == 15) {
      uint8_t b;
      do {
        if (spos >= n) return false;
        b = src[spos++];
        *len += b;
      } while (b == 255);
    }
    return true;
  };

  while (spos < n) {
    uint8_t token = src[spos++];
    size_t lit_len;
    if (!read_len_ext(token >> 4, &lit_len)) {
      return Status::Corruption("lz4: truncated literal length");
    }
    if (spos + lit_len > n || dpos + lit_len > decompressed_size) {
      return Status::Corruption("lz4: literal run out of bounds");
    }
    if (lit_len > 0) {  // dst may be null for a zero-size output
      std::memcpy(dst + dpos, src + spos, lit_len);
    }
    spos += lit_len;
    dpos += lit_len;
    if (spos >= n) break;  // final literals-only sequence

    if (spos + 2 > n) return Status::Corruption("lz4: truncated offset");
    uint16_t off;
    std::memcpy(&off, src + spos, 2);
    spos += 2;
    if (off == 0 || off > dpos) {
      return Status::Corruption("lz4: invalid match offset");
    }
    size_t match_code;
    if (!read_len_ext(token & 0x0f, &match_code)) {
      return Status::Corruption("lz4: truncated match length");
    }
    size_t match_len = match_code + kMinMatch;
    if (dpos + match_len > decompressed_size) {
      return Status::Corruption("lz4: match run out of bounds");
    }
    // Byte-by-byte copy: offsets < length overlap intentionally (RLE-ish).
    const uint8_t* from = dst + dpos - off;
    for (size_t i = 0; i < match_len; ++i) dst[dpos + i] = from[i];
    dpos += match_len;
  }

  if (dpos != decompressed_size) {
    return Status::Corruption("lz4: decompressed size mismatch");
  }
  return Status::OK();
}

void Lz4FrameCompress(ByteSpan input, Buffer* out) {
  PutVarint64(out, input.size());
  Lz4Codec().Compress(input, out);
}

Status Lz4FrameDecompress(ByteSpan input, Buffer* out) {
  size_t offset = 0;
  uint64_t orig = 0;
  if (!GetVarint64(input, &offset, &orig)) {
    return Status::Corruption("lz4 frame: bad header");
  }
  return Lz4Codec().Decompress(input.subspan(offset), orig, out);
}

}  // namespace fcbench::codecs
