#ifndef FCBENCH_CODECS_RANGE_CODER_H_
#define FCBENCH_CODECS_RANGE_CODER_H_

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// Byte-oriented range coder (Martin 1979 / Subbotin style) with adaptive
/// frequency models — the "fast range coding method" fpzip uses to encode
/// residual sign/leading-zero symbols (§3.1 of the paper).
class RangeEncoder {
 public:
  explicit RangeEncoder(Buffer* out) : out_(out) {}

  /// Encodes a symbol given its cumulative range [cum_low, cum_high) out of
  /// `total`. total must be <= 2^16.
  void Encode(uint32_t cum_low, uint32_t cum_high, uint32_t total);

  /// Flushes the coder state; call exactly once after the last symbol.
  void Finish();

 private:
  void ShiftLow();

  Buffer* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xffffffffu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

/// Decoder mirroring RangeEncoder.
class RangeDecoder {
 public:
  explicit RangeDecoder(ByteSpan in);

  /// Returns a value in [0, total) locating the next symbol's cumulative
  /// interval. After identifying the symbol, call Consume with its range.
  uint32_t DecodeTarget(uint32_t total);

  /// Advances past the identified symbol.
  void Consume(uint32_t cum_low, uint32_t cum_high, uint32_t total);

  bool overrun() const { return overrun_; }

 private:
  uint8_t NextByte();

  ByteSpan in_;
  size_t pos_ = 0;
  uint32_t range_ = 0xffffffffu;
  uint32_t code_ = 0;
  bool overrun_ = false;
};

/// Adaptive frequency table over `n` symbols with periodic rescaling.
/// Encoder and decoder maintain identical state as symbols stream through.
class AdaptiveModel {
 public:
  explicit AdaptiveModel(int n);

  int num_symbols() const { return static_cast<int>(freq_.size()); }
  uint32_t total() const { return total_; }

  /// Cumulative bounds of symbol s.
  void Bounds(int s, uint32_t* lo, uint32_t* hi) const;

  /// Finds the symbol whose interval contains `target` (linear scan — the
  /// alphabets here are <= 70 symbols).
  int Find(uint32_t target, uint32_t* lo, uint32_t* hi) const;

  /// Records an occurrence (increment + rescale when needed).
  void Update(int s);

 private:
  std::vector<uint32_t> freq_;
  uint32_t total_;
};

/// Convenience: encode symbol `s` through model `m` (updating it).
void EncodeAdaptive(RangeEncoder* enc, AdaptiveModel* m, int s);

/// Convenience: decode one symbol through model `m` (updating it).
int DecodeAdaptive(RangeDecoder* dec, AdaptiveModel* m);

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_RANGE_CODER_H_
