#include "codecs/fse.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/bitio.h"

namespace fcbench::codecs {

namespace {

// floor(log2(v)) for v >= 1.
inline int FloorLog2(uint32_t v) { return 31 - std::countl_zero(v); }

struct SymbolStats {
  uint64_t hist[256] = {0};
  int distinct = 0;
  int last_symbol = 0;
};

SymbolStats CountSymbols(ByteSpan input) {
  SymbolStats s;
  for (uint8_t b : input) ++s.hist[b];
  for (int i = 0; i < 256; ++i) {
    if (s.hist[i] > 0) {
      ++s.distinct;
      s.last_symbol = i;
    }
  }
  return s;
}

}  // namespace

int FseCodec::ChooseTableLog(size_t n, int distinct) {
  // Enough room for every present symbol...
  int min_log = 1;
  while ((1 << min_log) < distinct) ++min_log;
  // ...but never more states than input symbols (a state per symbol is
  // already lossless-optimal) and never above the default budget.
  int log = kDefaultTableLog;
  while (log > min_log && (size_t(1) << log) > n) --log;
  return std::clamp(log, min_log, kMaxTableLog);
}

void FseCodec::NormalizeHistogram(const uint64_t hist[256], int table_log,
                                  uint16_t norm[256]) {
  const uint32_t table_size = 1u << table_log;
  uint64_t total = 0;
  for (int i = 0; i < 256; ++i) total += hist[i];
  std::memset(norm, 0, 256 * sizeof(uint16_t));
  if (total == 0) return;

  // First pass: proportional share, with every present symbol >= 1.
  uint32_t assigned = 0;
  for (int i = 0; i < 256; ++i) {
    if (hist[i] == 0) continue;
    uint64_t share = (hist[i] * table_size + total / 2) / total;
    if (share == 0) share = 1;
    if (share > table_size) share = table_size;
    norm[i] = static_cast<uint16_t>(share);
    assigned += norm[i];
  }

  // Second pass: repair rounding drift by charging the most frequent
  // symbols, which distorts their per-symbol cost the least.
  while (assigned != table_size) {
    int pick = -1;
    for (int i = 0; i < 256; ++i) {
      if (norm[i] == 0) continue;
      if (assigned > table_size) {
        // Need to shrink: pick the largest norm that stays >= 1.
        if (norm[i] > 1 && (pick < 0 || norm[i] > norm[pick])) pick = i;
      } else {
        // Need to grow: pick the symbol with the largest true count.
        if (pick < 0 || hist[i] > hist[pick]) pick = i;
      }
    }
    if (pick < 0) break;  // All norms 1 yet oversubscribed: caller's log
                          // was too small for `distinct`; unreachable via
                          // ChooseTableLog.
    if (assigned > table_size) {
      --norm[pick];
      --assigned;
    } else {
      ++norm[pick];
      ++assigned;
    }
  }
}

Status FseCodec::BuildDecodeTable(const uint16_t norm[256], int table_log,
                                  std::vector<DecodeEntry>* table,
                                  std::vector<uint32_t>* encode_index) {
  if (table_log < 1 || table_log > kMaxTableLog) {
    return Status::Corruption("fse: table_log out of range");
  }
  const uint32_t table_size = 1u << table_log;
  uint32_t total = 0;
  for (int i = 0; i < 256; ++i) total += norm[i];
  if (total != table_size) {
    return Status::Corruption("fse: frequencies do not sum to table size");
  }

  // Spread symbols over the table with zstd's stride; any odd step is
  // coprime with the power-of-two table size, visiting each slot once.
  uint32_t step = (table_size >> 1) + (table_size >> 3) + 3;
  step |= 1;
  std::vector<uint8_t> spread(table_size);
  uint32_t pos = 0;
  for (int s = 0; s < 256; ++s) {
    for (uint16_t k = 0; k < norm[s]; ++k) {
      spread[pos] = static_cast<uint8_t>(s);
      pos = (pos + step) & (table_size - 1);
    }
  }

  // Cumulative start of each symbol's encode slots.
  uint32_t cum[257];
  cum[0] = 0;
  for (int s = 0; s < 256; ++s) cum[s + 1] = cum[s] + norm[s];

  table->assign(table_size, DecodeEntry{});
  if (encode_index != nullptr) encode_index->assign(table_size, 0);

  // Walking table slots in order assigns each symbol s the sub-states
  // x = f, f+1, ..., 2f-1 (Duda's construction): decoding from slot i
  // yields symbol s and reconstructs the prior encoder state as
  // (x << nb) + bits with nb = table_log - floor(log2(x)).
  std::vector<uint32_t> next(256);
  for (int s = 0; s < 256; ++s) next[s] = norm[s];
  for (uint32_t i = 0; i < table_size; ++i) {
    uint8_t s = spread[i];
    uint32_t x = next[s]++;
    int nb = table_log - FloorLog2(x);
    (*table)[i] = DecodeEntry{
        .symbol = s,
        .num_bits = static_cast<uint8_t>(nb),
        .new_state_base = (x << nb) - table_size,
    };
    if (encode_index != nullptr) {
      (*encode_index)[cum[s] + (x - norm[s])] = i;
    }
  }
  return Status::OK();
}

void FseCodec::Compress(ByteSpan input, Buffer* out) {
  const size_t n = input.size();
  SymbolStats stats = CountSymbols(input);

  auto emit_raw = [&] {
    out->PushBack(kRawMode);
    PutVarint64(out, n);
    out->Append(input);
  };

  if (n == 0) {
    emit_raw();
    return;
  }
  if (stats.distinct == 1) {
    out->PushBack(kRleMode);
    PutVarint64(out, n);
    out->PushBack(static_cast<uint8_t>(stats.last_symbol));
    return;
  }

  const int table_log = ChooseTableLog(n, stats.distinct);
  const uint32_t table_size = 1u << table_log;
  uint16_t norm[256];
  NormalizeHistogram(stats.hist, table_log, norm);

  std::vector<DecodeEntry> table;
  std::vector<uint32_t> encode_index;
  Status st = BuildDecodeTable(norm, table_log, &table, &encode_index);
  if (!st.ok()) {  // Defensive: cannot happen with our own normalization.
    emit_raw();
    return;
  }
  uint32_t cum[257];
  cum[0] = 0;
  for (int s = 0; s < 256; ++s) cum[s + 1] = cum[s] + norm[s];
  // Bit cost thresholds: symbol s costs max_bits[s] or max_bits[s]-1.
  uint8_t max_bits[256];
  for (int s = 0; s < 256; ++s) {
    max_bits[s] =
        norm[s] > 0 ? static_cast<uint8_t>(table_log - FloorLog2(norm[s])) : 0;
  }

  // Encode backwards so the decoder emits forwards. Transition bit chunks
  // must be *read* in reverse order of emission, so stage them and write
  // the staged list back-to-front below.
  struct Chunk {
    uint32_t bits;
    uint8_t nb;
  };
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  uint32_t state = table_size;  // Any state in [size, 2*size) works.
  for (size_t i = n; i-- > 0;) {
    uint8_t s = input[i];
    int nb = max_bits[s];
    if ((state >> nb) < norm[s]) --nb;
    chunks.push_back(
        Chunk{.bits = state & ((1u << nb) - 1), .nb = static_cast<uint8_t>(nb)});
    uint32_t x = state >> nb;  // x in [norm[s], 2*norm[s])
    state = table_size + encode_index[cum[s] + (x - norm[s])];
  }

  Buffer payload;
  payload.Reserve(n / 2 + 16);  // ~table_log bits per symbol, typically < 4
  BitWriter writer(&payload);
  writer.WriteBits(state - table_size, table_log);
  for (size_t i = chunks.size(); i-- > 0;) {
    writer.WriteBits(chunks[i].bits, chunks[i].nb);
  }
  writer.Flush();

  Buffer header;
  header.PushBack(kFseMode);
  PutVarint64(&header, n);
  header.PushBack(static_cast<uint8_t>(table_log));
  PutVarint64(&header, static_cast<uint64_t>(stats.distinct));
  for (int s = 0; s < 256; ++s) {
    if (norm[s] == 0) continue;
    header.PushBack(static_cast<uint8_t>(s));
    PutVarint64(&header, norm[s]);
  }
  PutVarint64(&header, payload.size());

  if (header.size() + payload.size() >= n + 1 + 5) {
    emit_raw();  // Entropy coding lost to the header; store verbatim.
    return;
  }
  out->Append(header.span());
  out->Append(payload.span());
}

Status FseCodec::Decompress(ByteSpan input, size_t* consumed, Buffer* out) {
  size_t off = 0;
  if (input.empty()) return Status::Corruption("fse: empty stream");
  uint8_t mode = input[off++];
  uint64_t n = 0;
  if (!GetVarint64(input, &off, &n)) {
    return Status::Corruption("fse: truncated length");
  }

  if (mode == kRawMode) {
    if (off + n > input.size()) {
      return Status::Corruption("fse: truncated raw payload");
    }
    out->Append(input.subspan(off, n));
    off += n;
    *consumed = off;
    return Status::OK();
  }
  if (mode == kRleMode) {
    if (off >= input.size()) {
      return Status::Corruption("fse: truncated rle payload");
    }
    uint8_t sym = input[off++];
    size_t base = out->size();
    out->Resize(base + n);
    std::memset(out->data() + base, sym, n);
    *consumed = off;
    return Status::OK();
  }
  if (mode != kFseMode) {
    return Status::Corruption("fse: unknown stream mode");
  }

  if (off >= input.size()) return Status::Corruption("fse: missing table_log");
  int table_log = input[off++];
  if (table_log < 1 || table_log > kMaxTableLog) {
    return Status::Corruption("fse: table_log out of range");
  }
  uint64_t distinct = 0;
  if (!GetVarint64(input, &off, &distinct) || distinct == 0 ||
      distinct > 256) {
    return Status::Corruption("fse: bad symbol count");
  }
  uint16_t norm[256] = {0};
  for (uint64_t i = 0; i < distinct; ++i) {
    if (off >= input.size()) {
      return Status::Corruption("fse: truncated frequency table");
    }
    uint8_t sym = input[off++];
    uint64_t freq = 0;
    if (!GetVarint64(input, &off, &freq) || freq == 0 ||
        freq > (uint64_t(1) << table_log)) {
      return Status::Corruption("fse: bad symbol frequency");
    }
    if (norm[sym] != 0) return Status::Corruption("fse: duplicate symbol");
    norm[sym] = static_cast<uint16_t>(freq);
  }

  uint64_t payload_bytes = 0;
  if (!GetVarint64(input, &off, &payload_bytes) ||
      off + payload_bytes > input.size()) {
    return Status::Corruption("fse: truncated payload");
  }

  std::vector<DecodeEntry> table;
  FCB_RETURN_IF_ERROR(BuildDecodeTable(norm, table_log, &table, nullptr));

  BitReader reader(input.subspan(off, payload_bytes));
  uint32_t state = static_cast<uint32_t>(reader.ReadBits(table_log));
  const uint32_t table_size = 1u << table_log;

  size_t base = out->size();
  out->Resize(base + n);
  uint8_t* dst = out->data() + base;
  for (uint64_t i = 0; i < n; ++i) {
    const DecodeEntry& e = table[state];
    dst[i] = e.symbol;
    state = e.new_state_base +
            static_cast<uint32_t>(reader.ReadBits(e.num_bits));
    if (state >= table_size) {
      return Status::Corruption("fse: decoder state escaped table");
    }
  }
  if (reader.overrun()) {
    return Status::Corruption("fse: payload bit stream exhausted");
  }
  *consumed = off + payload_bytes;
  return Status::OK();
}

}  // namespace fcbench::codecs
