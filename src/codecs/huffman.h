#ifndef FCBENCH_CODECS_HUFFMAN_H_
#define FCBENCH_CODECS_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// Canonical, length-limited Huffman coder over byte symbols (0..255).
/// Serves as the entropy stage of the zstd-like "lzh" codec and as a
/// standalone reducer in ablation benches.
///
/// Stream layout:
///   varint symbol_count
///   256 x 4-bit code lengths (packed, 128 bytes)  -- 0 means unused
///   varint payload_bit_count
///   payload bits (MSB-first)
class HuffmanCodec {
 public:
  static constexpr int kMaxCodeLen = 15;
  /// Stream mode bytes: entropy-coded vs. verbatim fallback (chosen by
  /// whichever is smaller, so tiny/incompressible streams pay ~2 bytes).
  static constexpr uint8_t kHuffmanMode = 0;
  static constexpr uint8_t kRawMode = 1;

  /// Compresses `input`, appending to `out`.
  static void Compress(ByteSpan input, Buffer* out);

  /// Decompresses a stream produced by Compress, appending to `out`.
  static Status Decompress(ByteSpan input, size_t* consumed, Buffer* out);

  /// Computes length-limited canonical code lengths from a histogram.
  /// Exposed for testing (Kraft inequality, optimality bounds).
  static void BuildCodeLengths(const uint64_t hist[256],
                               uint8_t lengths[256]);

  /// Assigns canonical codes from lengths. codes[i] valid iff lengths[i]>0.
  static void AssignCanonicalCodes(const uint8_t lengths[256],
                                   uint16_t codes[256]);
};

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_HUFFMAN_H_
