#ifndef FCBENCH_CODECS_LZ4_H_
#define FCBENCH_CODECS_LZ4_H_

#include <cstddef>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// From-scratch implementation of the LZ4 block format (Collet 2011), the
/// dictionary back-end of bitshuffle::LZ4 and of the simulated
/// nvCOMP::LZ4 method.
///
/// Block layout: a series of sequences, each
///   token (1B: literal-length nibble | match-length nibble)
///   [literal length extension bytes of 255 ...]
///   literals
///   offset (2B little endian, 1..65535)
///   [match length extension bytes ...]
/// The final sequence is literals-only. Minimum match length is 4
/// (encoded as nibble value 0).
class Lz4Codec {
 public:
  /// Tuning knobs; `max_attempts` > 1 switches the matcher from the fast
  /// single-probe hash to a chained search (higher ratio, lower speed) —
  /// the classic LZ trade-off discussed for SPDP in the paper (§3.2).
  struct Options {
    int max_attempts = 1;
  };

  Lz4Codec() = default;
  explicit Lz4Codec(Options opts) : opts_(opts) {}

  /// Compresses `input` into `out` (appending). Always succeeds; worst case
  /// expands by ~0.4% + 16 bytes.
  void Compress(ByteSpan input, Buffer* out) const;

  /// Decompresses a block produced by Compress. `decompressed_size` must be
  /// the exact original size (the framing layer stores it).
  Status Decompress(ByteSpan input, size_t decompressed_size,
                    Buffer* out) const;

 private:
  Options opts_;
};

/// Convenience framing: varint original size + LZ4 block.
void Lz4FrameCompress(ByteSpan input, Buffer* out);
Status Lz4FrameDecompress(ByteSpan input, Buffer* out);

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_LZ4_H_
