#ifndef FCBENCH_CODECS_FSE_H_
#define FCBENCH_CODECS_FSE_H_

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// Finite State Entropy coder (table-based asymmetric numeral system,
/// Duda's tANS in the construction popularized by zstd's FSE). This is the
/// entropy stage that distinguishes real zstd from LZ4, so the zstd-like
/// "lzh" codec can use it as a drop-in alternative to canonical Huffman
/// (LzhCodec::Options::entropy).
///
/// Unlike Huffman, tANS codes symbols in fractional bits: a symbol with
/// normalized frequency f out of 2^table_log costs ~log2(2^table_log / f)
/// bits, approaching the Shannon bound as the table grows. Compression
/// walks the input backwards emitting state-transition bits; decompression
/// walks forward from the stored final state, which makes the decode loop a
/// table lookup plus a bit read (the property zstd exploits for speed).
///
/// Stream layout:
///   mode byte: kFseMode | kRawMode | kRleMode
///   kRawMode: varint n, n verbatim bytes             (entropy ~8 bits/sym)
///   kRleMode: varint n, 1 symbol byte                (single-symbol input)
///   kFseMode: varint n, table_log byte,
///             varint distinct, distinct x (symbol byte, varint freq),
///             varint payload_bytes, payload bits
/// Payload bits are MSB-first: table_log bits of initial decoder state,
/// then per-symbol transition bits.
class FseCodec {
 public:
  /// Hard upper bound on table_log (table size 2^15 entries).
  static constexpr int kMaxTableLog = 15;
  /// Default table_log; 2^11 entries matches zstd's literal tables.
  static constexpr int kDefaultTableLog = 11;

  static constexpr uint8_t kFseMode = 0;
  static constexpr uint8_t kRawMode = 1;
  static constexpr uint8_t kRleMode = 2;

  /// Compresses `input`, appending a self-describing stream to `out`.
  /// Falls back to raw/RLE modes when entropy coding cannot win.
  static void Compress(ByteSpan input, Buffer* out);

  /// Decompresses a stream produced by Compress, appending to `out` and
  /// reporting the number of input bytes consumed.
  static Status Decompress(ByteSpan input, size_t* consumed, Buffer* out);

  /// Normalizes a byte histogram so it sums to exactly 2^table_log with
  /// every present symbol assigned frequency >= 1 (the precondition of the
  /// state machine). Exposed for property tests.
  static void NormalizeHistogram(const uint64_t hist[256], int table_log,
                                 uint16_t norm[256]);

  /// Picks a table_log for `n` input bytes with `distinct` present symbols:
  /// large enough to hold every symbol, small enough that the header
  /// amortizes. Exposed for tests.
  static int ChooseTableLog(size_t n, int distinct);

  /// Decode-table entry: emit `symbol`, then next_state =
  /// new_state_base + ReadBits(num_bits).
  struct DecodeEntry {
    uint8_t symbol;
    uint8_t num_bits;
    uint32_t new_state_base;
  };

  /// Builds the decode table (size 2^table_log) from normalized
  /// frequencies using the zstd spread step. Also fills, when non-null,
  /// `encode_index`: for symbol s with normalized frequency f, slot
  /// encode_index[cumulative(s) + (x - f)] is the table index whose entry
  /// decodes to (s, x), x in [f, 2f). Returns an error when the
  /// frequencies do not sum to 2^table_log.
  static Status BuildDecodeTable(const uint16_t norm[256], int table_log,
                                 std::vector<DecodeEntry>* table,
                                 std::vector<uint32_t>* encode_index);
};

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_FSE_H_
