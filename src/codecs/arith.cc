#include "codecs/arith.h"

namespace fcbench::codecs {

namespace {
constexpr uint32_t kHalf = 0x80000000u;
constexpr uint32_t kQuarter = 0x40000000u;
constexpr uint32_t kThreeQuarter = 0xc0000000u;

inline uint32_t ClampP(uint32_t p1) {
  if (p1 < 1) return 1;
  if (p1 > 65535) return 65535;
  return p1;
}

/// Split point of [low, high] given P(1); the 1-branch takes the lower part.
inline uint32_t SplitPoint(uint32_t low, uint32_t high, uint32_t p1) {
  uint64_t width = static_cast<uint64_t>(high) - low;
  return low + static_cast<uint32_t>((width * p1) >> 16);
}

}  // namespace

void BinaryArithEncoder::EmitBit(int b) {
  acc_ = static_cast<uint8_t>((acc_ << 1) | (b & 1));
  if (++nacc_ == 8) {
    out_->PushBack(acc_);
    acc_ = 0;
    nacc_ = 0;
  }
}

void BinaryArithEncoder::Encode(int bit, uint32_t p1) {
  uint32_t split = SplitPoint(low_, high_, ClampP(p1));
  if (bit) {
    high_ = split;
  } else {
    low_ = split + 1;
  }
  for (;;) {
    if (high_ < kHalf) {
      EmitBit(0);
      while (pending_ > 0) {
        EmitBit(1);
        --pending_;
      }
    } else if (low_ >= kHalf) {
      EmitBit(1);
      while (pending_ > 0) {
        EmitBit(0);
        --pending_;
      }
      low_ -= kHalf;
      high_ -= kHalf;
    } else if (low_ >= kQuarter && high_ < kThreeQuarter) {
      ++pending_;
      low_ -= kQuarter;
      high_ -= kQuarter;
    } else {
      break;
    }
    low_ <<= 1;
    high_ = (high_ << 1) | 1;
  }
}

void BinaryArithEncoder::Finish() {
  ++pending_;
  int b = (low_ >= kQuarter) ? 1 : 0;
  EmitBit(b);
  while (pending_ > 0) {
    EmitBit(1 - b);
    --pending_;
  }
  // Pad to a byte boundary (decoder reads zeros past the end harmlessly).
  while (nacc_ != 0) EmitBit(0);
}

BinaryArithDecoder::BinaryArithDecoder(ByteSpan in) : in_(in) {
  for (int i = 0; i < 32; ++i) {
    code_ = (code_ << 1) | static_cast<uint32_t>(NextBit());
  }
}

int BinaryArithDecoder::NextBit() {
  if (byte_ >= in_.size()) return 0;
  int bit = (in_[byte_] >> (7 - nbit_)) & 1;
  if (++nbit_ == 8) {
    nbit_ = 0;
    ++byte_;
  }
  return bit;
}

int BinaryArithDecoder::Decode(uint32_t p1) {
  uint32_t split = SplitPoint(low_, high_, ClampP(p1));
  int bit = (code_ <= split) ? 1 : 0;
  if (bit) {
    high_ = split;
  } else {
    low_ = split + 1;
  }
  for (;;) {
    if (high_ < kHalf) {
      // nothing
    } else if (low_ >= kHalf) {
      low_ -= kHalf;
      high_ -= kHalf;
      code_ -= kHalf;
    } else if (low_ >= kQuarter && high_ < kThreeQuarter) {
      low_ -= kQuarter;
      high_ -= kQuarter;
      code_ -= kQuarter;
    } else {
      break;
    }
    low_ <<= 1;
    high_ = (high_ << 1) | 1;
    code_ = (code_ << 1) | static_cast<uint32_t>(NextBit());
  }
  return bit;
}

}  // namespace fcbench::codecs
