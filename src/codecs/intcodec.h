#ifndef FCBENCH_CODECS_INTCODEC_H_
#define FCBENCH_CODECS_INTCODEC_H_

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::codecs {

/// Integer coding substrate. The paper's Gorilla/Chimp implementations are
/// taken from InfluxDB (§5.5), whose timestamp/integer columns use exactly
/// these primitives: zigzag signed mapping, delta and delta-of-delta
/// transforms, run-length coding, and Simple8b word packing. They also
/// serve as reducers in the ablation benches.

/// Maps a signed value to an unsigned one with small magnitudes staying
/// small: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// In-place forward delta: out[i] = in[i] - in[i-1] (out[0] = in[0]).
void DeltaEncode(const uint64_t* in, size_t n, uint64_t* out);

/// Inverse of DeltaEncode (prefix sum).
void DeltaDecode(const uint64_t* in, size_t n, uint64_t* out);

/// Byte run-length codec: (run_len varint, byte) pairs. Wins on the
/// zero-heavy residual streams produced by delta transforms on smooth
/// data; degrades to ~2x expansion on random bytes, so callers compare
/// sizes before committing.
class RleCodec {
 public:
  /// Compresses `input`, appending a self-describing stream to `out`.
  static void Compress(ByteSpan input, Buffer* out);

  /// Decompresses a stream produced by Compress, appending to `out` and
  /// reporting consumed input bytes.
  static Status Decompress(ByteSpan input, size_t* consumed, Buffer* out);
};

/// Simple8b: packs a run of small unsigned integers into 64-bit words.
/// Each word spends 4 selector bits choosing how many values share the
/// remaining 60 bits (240 or 120 ones, 60x1-bit, 30x2, 20x3, 15x4, 12x5,
/// 10x6, 8x7, 7x8, 6x10, 5x12, 4x15, 3x20, 2x30, 1x60). Values that do
/// not fit in 60 bits are carried in escape words.
class Simple8bCodec {
 public:
  /// Packs `values` into selector-tagged 64-bit words appended to `out`.
  static void Compress(const std::vector<uint64_t>& values, Buffer* out);

  /// Unpacks a stream produced by Compress.
  static Status Decompress(ByteSpan input, size_t* consumed,
                           std::vector<uint64_t>* values);
};

/// Timestamp codec combining delta-of-delta + zigzag + Simple8b, the
/// InfluxDB layout that motivates Gorilla's single-`0`-bit observation
/// (§3.4: with a fixed sampling interval most delta-of-deltas are zero).
class TimestampCodec {
 public:
  /// Compresses a monotone (or arbitrary) i64 timestamp column.
  static void Compress(const std::vector<int64_t>& timestamps, Buffer* out);

  /// Decompresses a stream produced by Compress.
  static Status Decompress(ByteSpan input, size_t* consumed,
                           std::vector<int64_t>* timestamps);
};

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_INTCODEC_H_
