#include "codecs/lzh.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "codecs/fse.h"
#include "codecs/huffman.h"
#include "util/bitio.h"

namespace fcbench::codecs {

namespace {

constexpr int kMinMatch = 4;
constexpr int kHashLog = 17;

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

void PutVarintBytes(std::vector<uint8_t>* stream, uint64_t v) {
  while (v >= 0x80) {
    stream->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  stream->push_back(static_cast<uint8_t>(v));
}

bool GetVarintBytes(ByteSpan s, size_t* off, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*off < s.size() && shift <= 63) {
    uint8_t b = s[(*off)++];
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

void LzhCodec::Compress(ByteSpan input, Buffer* out) const {
  const uint8_t* src = input.data();
  const size_t n = input.size();
  const size_t window = size_t(1) << opts_.window_log;

  std::vector<uint8_t> lit_lens, match_lens, dists, literals;
  literals.reserve(n / 2);

  size_t num_seq = 0;
  if (n >= kMinMatch + 1) {
    std::vector<int32_t> head(size_t(1) << kHashLog, -1);
    std::vector<int32_t> prev(n, -1);

    size_t anchor = 0;
    size_t pos = 0;
    const size_t limit = n - kMinMatch;
    while (pos <= limit) {
      uint32_t h = Hash4(Read32(src + pos));
      int32_t cand = head[h];
      prev[pos] = cand;
      head[h] = static_cast<int32_t>(pos);

      size_t best_len = 0;
      size_t best_dist = 0;
      int chain = opts_.max_chain;
      while (cand >= 0 && chain-- > 0) {
        size_t dist = pos - static_cast<size_t>(cand);
        if (dist > window) break;
        if (Read32(src + cand) == Read32(src + pos)) {
          size_t len = kMinMatch;
          const size_t max_len = n - pos;
          while (len < max_len && src[cand + len] == src[pos + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_dist = dist;
          }
        }
        cand = prev[cand];
      }

      if (best_len < kMinMatch) {
        ++pos;
        continue;
      }

      PutVarintBytes(&lit_lens, pos - anchor);
      PutVarintBytes(&match_lens, best_len - kMinMatch);
      PutVarintBytes(&dists, best_dist);
      literals.insert(literals.end(), src + anchor, src + pos);
      ++num_seq;

      size_t end = pos + best_len;
      // Insert every covered position so future matches can land inside.
      ++pos;
      while (pos < end && pos <= limit) {
        uint32_t hh = Hash4(Read32(src + pos));
        prev[pos] = head[hh];
        head[hh] = static_cast<int32_t>(pos);
        ++pos;
      }
      pos = end;
      anchor = end;
    }
    literals.insert(literals.end(), src + anchor, src + n);
  } else {
    literals.assign(src, src + n);
  }

  PutVarint64(out, n);
  PutVarint64(out, num_seq);
  out->PushBack(static_cast<uint8_t>(opts_.entropy));
  auto entropy_compress = [&](const std::vector<uint8_t>& stream) {
    ByteSpan span(stream.data(), stream.size());
    if (opts_.entropy == Entropy::kFse) {
      FseCodec::Compress(span, out);
    } else {
      HuffmanCodec::Compress(span, out);
    }
  };
  entropy_compress(lit_lens);
  entropy_compress(match_lens);
  entropy_compress(dists);
  entropy_compress(literals);
}

Status LzhCodec::Decompress(ByteSpan input, Buffer* out) {
  size_t off = 0;
  uint64_t orig = 0, num_seq = 0;
  if (!GetVarint64(input, &off, &orig) ||
      !GetVarint64(input, &off, &num_seq)) {
    return Status::Corruption("lzh: bad frame header");
  }

  if (off >= input.size()) {
    return Status::Corruption("lzh: missing entropy backend byte");
  }
  uint8_t entropy_byte = input[off++];
  if (entropy_byte > static_cast<uint8_t>(Entropy::kFse)) {
    return Status::Corruption("lzh: unknown entropy backend");
  }
  const Entropy entropy = static_cast<Entropy>(entropy_byte);

  Buffer lit_lens, match_lens, dists, literals;
  for (Buffer* stream : {&lit_lens, &match_lens, &dists, &literals}) {
    size_t consumed = 0;
    if (entropy == Entropy::kFse) {
      FCB_RETURN_IF_ERROR(
          FseCodec::Decompress(input.subspan(off), &consumed, stream));
    } else {
      FCB_RETURN_IF_ERROR(
          HuffmanCodec::Decompress(input.subspan(off), &consumed, stream));
    }
    off += consumed;
  }

  size_t base = out->size();
  out->Resize(base + orig);
  uint8_t* dst = out->data() + base;
  size_t dpos = 0;
  size_t lit_pos = 0;
  size_t ll_off = 0, ml_off = 0, d_off = 0;
  for (uint64_t s = 0; s < num_seq; ++s) {
    uint64_t lit_run = 0, match_code = 0, dist = 0;
    if (!GetVarintBytes(lit_lens.span(), &ll_off, &lit_run) ||
        !GetVarintBytes(match_lens.span(), &ml_off, &match_code) ||
        !GetVarintBytes(dists.span(), &d_off, &dist)) {
      return Status::Corruption("lzh: truncated sequence streams");
    }
    if (dpos + lit_run > orig || lit_pos + lit_run > literals.size()) {
      return Status::Corruption("lzh: literal overrun");
    }
    std::memcpy(dst + dpos, literals.data() + lit_pos, lit_run);
    dpos += lit_run;
    lit_pos += lit_run;

    uint64_t match_len = match_code + kMinMatch;
    if (dist == 0 || dist > dpos || dpos + match_len > orig) {
      return Status::Corruption("lzh: invalid match");
    }
    const uint8_t* from = dst + dpos - dist;
    for (uint64_t i = 0; i < match_len; ++i) dst[dpos + i] = from[i];
    dpos += match_len;
  }
  size_t tail = literals.size() - lit_pos;
  if (dpos + tail != orig) {
    return Status::Corruption("lzh: size mismatch");
  }
  if (tail > 0) {  // dst/literals may be null for a zero-size payload
    std::memcpy(dst + dpos, literals.data() + lit_pos, tail);
  }
  return Status::OK();
}

}  // namespace fcbench::codecs
