#include "codecs/range_coder.h"

namespace fcbench::codecs {

namespace {
constexpr uint32_t kTopValue = 1u << 24;
constexpr uint32_t kMaxTotal = 1u << 16;
}  // namespace

// Encoder follows the LZMA range-coder scheme: 64-bit low with an explicit
// carry cache, 32-bit range.

void RangeEncoder::Encode(uint32_t cum_low, uint32_t cum_high,
                          uint32_t total) {
  uint32_t r = range_ / total;
  low_ += static_cast<uint64_t>(r) * cum_low;
  range_ = r * (cum_high - cum_low);
  while (range_ < kTopValue) {
    ShiftLow();
    range_ <<= 8;
  }
}

void RangeEncoder::ShiftLow() {
  if (static_cast<uint32_t>(low_) < 0xff000000u || (low_ >> 32) != 0) {
    uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    uint8_t temp = cache_;
    do {
      out_->PushBack(static_cast<uint8_t>(temp + carry));
      temp = 0xff;
    } while (--cache_size_ != 0);
    cache_ = static_cast<uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ & 0x00ffffffull) << 8;
}

void RangeEncoder::Finish() {
  for (int i = 0; i < 5; ++i) ShiftLow();
}

RangeDecoder::RangeDecoder(ByteSpan in) : in_(in) {
  NextByte();  // discard the initial cache byte (always 0)
  for (int i = 0; i < 4; ++i) {
    code_ = (code_ << 8) | NextByte();
  }
}

uint8_t RangeDecoder::NextByte() {
  if (pos_ >= in_.size()) {
    overrun_ = true;
    return 0;
  }
  return in_[pos_++];
}

uint32_t RangeDecoder::DecodeTarget(uint32_t total) {
  uint32_t r = range_ / total;
  uint32_t target = static_cast<uint32_t>(code_ / r);
  if (target >= total) target = total - 1;
  return target;
}

void RangeDecoder::Consume(uint32_t cum_low, uint32_t cum_high,
                           uint32_t total) {
  uint32_t r = range_ / total;
  code_ -= r * cum_low;
  range_ = r * (cum_high - cum_low);
  while (range_ < kTopValue) {
    code_ = (code_ << 8) | NextByte();
    range_ <<= 8;
  }
}

AdaptiveModel::AdaptiveModel(int n) : freq_(n, 1), total_(n) {}

void AdaptiveModel::Bounds(int s, uint32_t* lo, uint32_t* hi) const {
  uint32_t cum = 0;
  for (int i = 0; i < s; ++i) cum += freq_[i];
  *lo = cum;
  *hi = cum + freq_[s];
}

int AdaptiveModel::Find(uint32_t target, uint32_t* lo, uint32_t* hi) const {
  uint32_t cum = 0;
  for (size_t i = 0; i < freq_.size(); ++i) {
    if (target < cum + freq_[i]) {
      *lo = cum;
      *hi = cum + freq_[i];
      return static_cast<int>(i);
    }
    cum += freq_[i];
  }
  *lo = total_ - freq_.back();
  *hi = total_;
  return static_cast<int>(freq_.size()) - 1;
}

void AdaptiveModel::Update(int s) {
  freq_[s] += 32;
  total_ += 32;
  if (total_ >= kMaxTotal) {
    total_ = 0;
    for (auto& f : freq_) {
      f = (f + 1) / 2;
      total_ += f;
    }
  }
}

void EncodeAdaptive(RangeEncoder* enc, AdaptiveModel* m, int s) {
  uint32_t lo, hi;
  m->Bounds(s, &lo, &hi);
  enc->Encode(lo, hi, m->total());
  m->Update(s);
}

int DecodeAdaptive(RangeDecoder* dec, AdaptiveModel* m) {
  uint32_t target = dec->DecodeTarget(m->total());
  uint32_t lo, hi;
  int s = m->Find(target, &lo, &hi);
  dec->Consume(lo, hi, m->total());
  m->Update(s);
  return s;
}

}  // namespace fcbench::codecs
