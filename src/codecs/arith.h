#ifndef FCBENCH_CODECS_ARITH_H_
#define FCBENCH_CODECS_ARITH_H_

#include <cstdint>

#include "util/buffer.h"

namespace fcbench::codecs {

/// Binary arithmetic coder with explicit 16-bit probabilities, used by the
/// Dzip-style neural coder (§4.5): the NN predicts P(bit=1) and the coder
/// turns that prediction into near-entropy output.
///
/// Carry-less implementation with 32-bit low/high bounds (CACM-87 style).
class BinaryArithEncoder {
 public:
  explicit BinaryArithEncoder(Buffer* out) : out_(out) {}

  /// Encodes `bit` with probability-of-one `p1` expressed in 1/65536 units
  /// (clamped internally to [1, 65535]).
  void Encode(int bit, uint32_t p1);

  /// Flushes trailing state; call once.
  void Finish();

 private:
  void EmitBit(int b);

  Buffer* out_;
  uint32_t low_ = 0;
  uint32_t high_ = 0xffffffffu;
  uint64_t pending_ = 0;
  uint8_t acc_ = 0;
  int nacc_ = 0;
};

/// Decoder mirroring BinaryArithEncoder; must be fed the same probability
/// sequence by the (deterministically replayed) model.
class BinaryArithDecoder {
 public:
  explicit BinaryArithDecoder(ByteSpan in);

  /// Decodes one bit given probability-of-one `p1` (1/65536 units).
  int Decode(uint32_t p1);

 private:
  int NextBit();

  ByteSpan in_;
  size_t byte_ = 0;
  int nbit_ = 0;
  uint32_t low_ = 0;
  uint32_t high_ = 0xffffffffu;
  uint32_t code_ = 0;
};

/// Adaptive bit model: exponential-decay probability estimator (as in
/// LZMA/CM coders).
class BitModel {
 public:
  uint32_t p1() const { return p_; }

  void Update(int bit) {
    if (bit) {
      p_ += (65536 - p_) >> kRate;
    } else {
      p_ -= p_ >> kRate;
    }
  }

 private:
  static constexpr int kRate = 5;
  uint32_t p_ = 32768;
};

}  // namespace fcbench::codecs

#endif  // FCBENCH_CODECS_ARITH_H_
