#include "codecs/intcodec.h"

#include <array>
#include <cstring>

#include "util/bitio.h"

namespace fcbench::codecs {

void DeltaEncode(const uint64_t* in, size_t n, uint64_t* out) {
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t cur = in[i];
    out[i] = cur - prev;
    prev = cur;
  }
}

void DeltaDecode(const uint64_t* in, size_t n, uint64_t* out) {
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

void RleCodec::Compress(ByteSpan input, Buffer* out) {
  PutVarint64(out, input.size());
  size_t i = 0;
  while (i < input.size()) {
    uint8_t b = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == b) ++run;
    PutVarint64(out, run);
    out->PushBack(b);
    i += run;
  }
}

Status RleCodec::Decompress(ByteSpan input, size_t* consumed, Buffer* out) {
  size_t off = 0;
  uint64_t n = 0;
  if (!GetVarint64(input, &off, &n)) {
    return Status::Corruption("rle: truncated length");
  }
  size_t base = out->size();
  out->Resize(base + n);
  uint8_t* dst = out->data() + base;
  uint64_t produced = 0;
  while (produced < n) {
    uint64_t run = 0;
    if (!GetVarint64(input, &off, &run) || off >= input.size()) {
      return Status::Corruption("rle: truncated run");
    }
    uint8_t b = input[off++];
    if (run == 0 || produced + run > n) {
      return Status::Corruption("rle: run overflows declared length");
    }
    std::memset(dst + produced, b, run);
    produced += run;
  }
  *consumed = off;
  return Status::OK();
}

namespace {

// Simple8b selector table: (values per word, bits per value).
// Selector 0 packs 240 zeros, 1 packs 120 zeros, 15 is the 1x60 escape.
struct Selector {
  uint32_t count;
  uint32_t bits;
};
constexpr std::array<Selector, 16> kSelectors = {{
    {240, 0},
    {120, 0},
    {60, 1},
    {30, 2},
    {20, 3},
    {15, 4},
    {12, 5},
    {10, 6},
    {8, 7},
    {7, 8},
    {6, 10},
    {5, 12},
    {4, 15},
    {3, 20},
    {2, 30},
    {1, 60},
}};
constexpr uint64_t kMax60Bit = (uint64_t(1) << 60) - 1;

}  // namespace

void Simple8bCodec::Compress(const std::vector<uint64_t>& values,
                             Buffer* out) {
  // Each 9-byte word packs at least one value, usually many more; a
  // byte-per-value reservation covers typical streams without growth.
  out->Reserve(out->size() + values.size() + 16);
  PutVarint64(out, values.size());
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    if (values[i] > kMax60Bit) {
      // Escape: selector 15 word carrying only the low 60 bits, followed
      // by a varint with the high bits. Rare (deltas beyond 2^60).
      uint64_t word = (uint64_t(15) << 60) | (values[i] & kMax60Bit);
      // Tag escape words by an extra varint channel: high bits first.
      PutVarint64(out, 1);  // 1 = escape marker
      PutVarint64(out, values[i] >> 60);
      PutFixed<uint64_t>(out, word);
      ++i;
      continue;
    }
    // Greedily choose the densest selector whose bit width covers the next
    // `count` values.
    uint32_t best_sel = 15;
    for (uint32_t sel = 0; sel < kSelectors.size(); ++sel) {
      const auto [count, bits] = kSelectors[sel];
      if (i + count > n) continue;
      uint64_t limit = bits == 0 ? 0 : ((uint64_t(1) << bits) - 1);
      bool fits = true;
      for (uint32_t k = 0; k < count; ++k) {
        if (values[i + k] > limit) {
          fits = false;
          break;
        }
      }
      if (fits) {
        best_sel = sel;
        break;
      }
    }
    const auto [count, bits] = kSelectors[best_sel];
    uint64_t word = uint64_t(best_sel) << 60;
    for (uint32_t k = 0; k < count && bits > 0; ++k) {
      word |= values[i + k] << (k * bits);
    }
    PutVarint64(out, 0);  // 0 = regular word
    PutFixed<uint64_t>(out, word);
    i += count;
  }
}

Status Simple8bCodec::Decompress(ByteSpan input, size_t* consumed,
                                 std::vector<uint64_t>* values) {
  size_t off = 0;
  uint64_t n = 0;
  if (!GetVarint64(input, &off, &n)) {
    return Status::Corruption("simple8b: truncated count");
  }
  values->clear();
  values->reserve(n);
  while (values->size() < n) {
    uint64_t marker = 0;
    if (!GetVarint64(input, &off, &marker) || marker > 1) {
      return Status::Corruption("simple8b: bad word marker");
    }
    uint64_t high = 0;
    if (marker == 1 && !GetVarint64(input, &off, &high)) {
      return Status::Corruption("simple8b: truncated escape");
    }
    uint64_t word = 0;
    if (!GetFixed<uint64_t>(input, &off, &word)) {
      return Status::Corruption("simple8b: truncated word");
    }
    uint32_t sel = static_cast<uint32_t>(word >> 60);
    if (marker == 1) {
      if (sel != 15) return Status::Corruption("simple8b: bad escape word");
      values->push_back((high << 60) | (word & kMax60Bit));
      continue;
    }
    const auto [count, bits] = kSelectors[sel];
    if (values->size() + count > n) {
      return Status::Corruption("simple8b: word overflows declared count");
    }
    if (bits == 0) {
      values->insert(values->end(), count, 0);
      continue;
    }
    uint64_t mask = (bits == 60) ? kMax60Bit : ((uint64_t(1) << bits) - 1);
    for (uint32_t k = 0; k < count; ++k) {
      values->push_back((word >> (k * bits)) & mask);
    }
  }
  *consumed = off;
  return Status::OK();
}

void TimestampCodec::Compress(const std::vector<int64_t>& timestamps,
                              Buffer* out) {
  const size_t n = timestamps.size();
  std::vector<uint64_t> dod(n);
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (size_t i = 0; i < n; ++i) {
    // Wrapping subtraction via uint64: arbitrary int64 timestamps may
    // overflow a signed delta, which is UB; the decoder wraps back.
    int64_t delta = static_cast<int64_t>(static_cast<uint64_t>(timestamps[i]) -
                                         static_cast<uint64_t>(prev));
    dod[i] = ZigZagEncode(static_cast<int64_t>(
        static_cast<uint64_t>(delta) - static_cast<uint64_t>(prev_delta)));
    prev_delta = delta;
    prev = timestamps[i];
  }
  Simple8bCodec::Compress(dod, out);
}

Status TimestampCodec::Decompress(ByteSpan input, size_t* consumed,
                                  std::vector<int64_t>* timestamps) {
  std::vector<uint64_t> dod;
  FCB_RETURN_IF_ERROR(Simple8bCodec::Decompress(input, consumed, &dod));
  timestamps->clear();
  timestamps->reserve(dod.size());
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (uint64_t z : dod) {
    // Wrapping addition mirrors the encoder's wrapping subtraction.
    int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(prev_delta) +
        static_cast<uint64_t>(ZigZagDecode(z)));
    prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                static_cast<uint64_t>(delta));
    timestamps->push_back(prev);
    prev_delta = delta;
  }
  return Status::OK();
}

}  // namespace fcbench::codecs
