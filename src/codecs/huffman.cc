#include "codecs/huffman.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "util/bitio.h"

namespace fcbench::codecs {

namespace {

struct Node {
  uint64_t freq;
  int16_t sym;    // -1 for internal
  int32_t left = -1;
  int32_t right = -1;
};

/// Computes tree depths; returns max depth.
int ComputeDepths(const std::vector<Node>& nodes, int root,
                  uint8_t lengths[256]) {
  // Iterative DFS with explicit (node, depth) stack.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack = {{root, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[idx];
    if (nd.sym >= 0) {
      lengths[nd.sym] = static_cast<uint8_t>(std::max(depth, 1));
      max_depth = std::max(max_depth, std::max(depth, 1));
    } else {
      stack.push_back({nd.left, depth + 1});
      stack.push_back({nd.right, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace

void HuffmanCodec::BuildCodeLengths(const uint64_t hist[256],
                                    uint8_t lengths[256]) {
  std::memset(lengths, 0, 256);
  std::vector<Node> nodes;
  using Item = std::pair<uint64_t, int>;  // (freq, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (int s = 0; s < 256; ++s) {
    if (hist[s] == 0) continue;
    nodes.push_back({hist[s], static_cast<int16_t>(s)});
    pq.push({hist[s], static_cast<int>(nodes.size()) - 1});
  }
  if (nodes.empty()) return;
  if (nodes.size() == 1) {
    lengths[nodes[0].sym] = 1;
    return;
  }
  while (pq.size() > 1) {
    auto [fa, a] = pq.top();
    pq.pop();
    auto [fb, b] = pq.top();
    pq.pop();
    Node parent{fa + fb, -1, a, b};
    nodes.push_back(parent);
    pq.push({fa + fb, static_cast<int>(nodes.size()) - 1});
  }
  int root = pq.top().second;
  int max_depth = ComputeDepths(nodes, root, lengths);

  // Length-limit by repeatedly flattening: while over the limit, find the
  // deepest leaf and pair it with a shallower one (heuristic; preserves the
  // Kraft inequality by the standard "overflow absorption" adjustment).
  if (max_depth > kMaxCodeLen) {
    // Clamp and then repair Kraft sum.
    for (int s = 0; s < 256; ++s) {
      if (lengths[s] > kMaxCodeLen) lengths[s] = kMaxCodeLen;
    }
    // Kraft sum scaled by 2^kMaxCodeLen must be <= 2^kMaxCodeLen.
    auto kraft = [&]() {
      uint64_t sum = 0;
      for (int s = 0; s < 256; ++s) {
        if (lengths[s]) sum += uint64_t(1) << (kMaxCodeLen - lengths[s]);
      }
      return sum;
    };
    uint64_t limit = uint64_t(1) << kMaxCodeLen;
    while (kraft() > limit) {
      // Lengthen the shortest non-max code by one (cheapest repair).
      int best = -1;
      for (int s = 0; s < 256; ++s) {
        if (lengths[s] > 0 && lengths[s] < kMaxCodeLen &&
            (best < 0 || lengths[s] < lengths[best])) {
          best = s;
        }
      }
      if (best < 0) break;  // cannot repair (would need >256 max-len codes)
      ++lengths[best];
    }
  }
}

void HuffmanCodec::AssignCanonicalCodes(const uint8_t lengths[256],
                                        uint16_t codes[256]) {
  // Count codes of each length, then assign sequentially (RFC1951 style).
  int bl_count[kMaxCodeLen + 1] = {0};
  for (int s = 0; s < 256; ++s) ++bl_count[lengths[s]];
  bl_count[0] = 0;
  uint16_t next_code[kMaxCodeLen + 2] = {0};
  uint16_t code = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    code = static_cast<uint16_t>((code + bl_count[len - 1]) << 1);
    next_code[len] = code;
  }
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  }
}

void HuffmanCodec::Compress(ByteSpan input, Buffer* out) {
  uint64_t hist[256] = {0};
  for (uint8_t b : input) ++hist[b];
  uint8_t lengths[256];
  uint16_t codes[256] = {0};
  BuildCodeLengths(hist, lengths);
  AssignCanonicalCodes(lengths, codes);

  uint64_t payload_bits = 0;
  for (int s = 0; s < 256; ++s) payload_bits += hist[s] * lengths[s];

  // Raw fallback: when the 128-byte length table plus coded payload cannot
  // beat a plain copy (small or high-entropy inputs), store verbatim. This
  // keeps per-block overhead small for blocked callers (bitshuffle's 4 KiB
  // default blocks; Table 10's 4K sweep).
  size_t huff_cost = 128 + (payload_bits + 7) / 8;
  if (huff_cost >= input.size()) {
    out->PushBack(kRawMode);
    PutVarint64(out, input.size());
    out->Append(input);
    return;
  }

  out->PushBack(kHuffmanMode);
  PutVarint64(out, input.size());
  // Pack 256 x 4-bit lengths.
  for (int s = 0; s < 256; s += 2) {
    out->PushBack(static_cast<uint8_t>((lengths[s] << 4) | lengths[s + 1]));
  }
  PutVarint64(out, payload_bits);

  // The histogram gives the exact payload size up front, so the hot encode
  // loop never grows the buffer.
  Buffer payload;
  payload.Reserve((payload_bits + 7) / 8);
  BitWriter bw(&payload);
  for (uint8_t b : input) bw.WriteBits(codes[b], lengths[b]);
  bw.Flush();
  out->Append(payload.span());
}

Status HuffmanCodec::Decompress(ByteSpan input, size_t* consumed,
                                Buffer* out) {
  size_t off = 0;
  if (input.empty()) return Status::Corruption("huffman: empty input");
  uint8_t mode = input[off++];
  uint64_t count = 0;
  if (!GetVarint64(input, &off, &count)) {
    return Status::Corruption("huffman: bad symbol count");
  }
  if (mode == kRawMode) {
    if (off + count > input.size()) {
      return Status::Corruption("huffman: truncated raw block");
    }
    out->Append(input.data() + off, count);
    *consumed = off + count;
    return Status::OK();
  }
  if (mode != kHuffmanMode) {
    return Status::Corruption("huffman: unknown mode byte");
  }
  if (off + 128 > input.size()) {
    return Status::Corruption("huffman: truncated length table");
  }
  uint8_t lengths[256];
  for (int s = 0; s < 256; s += 2) {
    uint8_t packed = input[off++];
    lengths[s] = packed >> 4;
    lengths[s + 1] = packed & 0x0f;
  }
  uint64_t payload_bits = 0;
  if (!GetVarint64(input, &off, &payload_bits)) {
    return Status::Corruption("huffman: bad payload size");
  }
  size_t payload_bytes = (payload_bits + 7) / 8;
  if (off + payload_bytes > input.size()) {
    return Status::Corruption("huffman: truncated payload");
  }

  // Build canonical decode tables: first code and symbol index per length.
  uint16_t codes[256] = {0};
  AssignCanonicalCodes(lengths, codes);
  // symbols sorted by (length, symbol) — canonical order.
  std::vector<int> order;
  order.reserve(256);
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    for (int s = 0; s < 256; ++s) {
      if (lengths[s] == len) order.push_back(s);
    }
  }
  int first_code[kMaxCodeLen + 1];
  int first_index[kMaxCodeLen + 1];
  int count_len[kMaxCodeLen + 1] = {0};
  for (int s = 0; s < 256; ++s) {
    if (lengths[s]) ++count_len[lengths[s]];
  }
  {
    int idx = 0;
    int code = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      code <<= 1;
      first_code[len] = code;
      first_index[len] = idx;
      code += count_len[len];
      idx += count_len[len];
    }
  }

  BitReader br(input.subspan(off, payload_bytes));
  size_t base = out->size();
  out->Resize(base + count);
  uint8_t* dst = out->data() + base;
  for (uint64_t i = 0; i < count; ++i) {
    int code = 0;
    int len = 0;
    int sym = -1;
    while (len < kMaxCodeLen) {
      code = (code << 1) | static_cast<int>(br.ReadBit());
      ++len;
      int offset_in_len = code - first_code[len];
      if (offset_in_len >= 0 && offset_in_len < count_len[len]) {
        sym = order[first_index[len] + offset_in_len];
        break;
      }
    }
    if (sym < 0 || br.overrun()) {
      return Status::Corruption("huffman: invalid code");
    }
    dst[i] = static_cast<uint8_t>(sym);
  }
  *consumed = off + payload_bytes;
  return Status::OK();
}

}  // namespace fcbench::codecs
