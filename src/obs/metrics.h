#ifndef FCBENCH_OBS_METRICS_H_
#define FCBENCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fcbench::obs {

/// Process-wide metrics for the storage and selection stack. The same
/// design discipline as util/failpoint: the hot path pays one relaxed
/// atomic load when collection is off and ~one relaxed atomic add when
/// it is on; everything heavier (registration, snapshots, exposition)
/// happens behind a mutex that hot paths never touch.
///
/// Collection is ON by default; FCBENCH_METRICS=0|off|false disables it
/// at startup, and SetEnabled() toggles it at runtime (the benches use
/// this to measure the enabled-vs-idle overhead).
bool Enabled();
void SetEnabled(bool on);

/// What a histogram's recorded values measure; drives exposition only.
enum class Unit : uint8_t { kNanos, kBytes, kCount };
const char* UnitName(Unit unit);

/// Monotonic counter, sharded across cache-line-padded cells so
/// concurrent writers from different threads do not bounce one line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1);
  void Increment() { Add(1); }
  /// Sum over cells; concurrent with writers (each cell read relaxed).
  uint64_t value() const;

 private:
  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

/// Last-value gauge (occupancy, queue depth). Set/Add are single relaxed
/// atomic ops; negative values are allowed (Add(-1) on dequeue).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v);
  void Add(int64_t d);
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

struct HistogramSnapshot;

/// Log2-bucketed histogram of non-negative integer samples (latencies in
/// nanoseconds, sizes in bytes). Bucket b holds values with
/// std::bit_width(v) == b: bucket 0 is exactly {0}, bucket b >= 1 covers
/// [2^(b-1), 2^b - 1]. Recording is a handful of relaxed atomic adds
/// (bucket, count, sum) plus a CAS max.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width of a u64 is 0..64

  explicit Histogram(Unit unit) : unit_(unit) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static size_t BucketOf(uint64_t v);
  /// Largest value bucket b can hold (0 for b == 0, else 2^b - 1,
  /// saturating at UINT64_MAX for the top bucket).
  static uint64_t BucketUpperBound(size_t b);

  void Record(uint64_t v);
  Unit unit() const { return unit_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Point-in-time copy (name left empty; the registry fills it).
  HistogramSnapshot SnapshotNow() const;

 private:
  const Unit unit_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

/// Plain-data copy of a histogram. Percentiles are bucket-resolution
/// estimates: the reported quantile is the upper bound of the bucket the
/// rank falls in (conservative for latencies). Snapshots merge and diff,
/// so benches can isolate one run's tail from process-lifetime totals.
struct HistogramSnapshot {
  std::string name;
  Unit unit = Unit::kCount;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};

  /// p in [0, 100]. Returns 0 on an empty snapshot.
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p90() const { return Percentile(90); }
  double p99() const { return Percentile(99); }
  double mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / count;
  }

  /// Adds `other` into this (count/sum/buckets add, max takes max).
  void Merge(const HistogramSnapshot& other);
  /// This minus an `earlier` snapshot of the SAME histogram: what was
  /// recorded in between. max cannot be subtracted and is kept from
  /// `this` (an upper bound for the interval).
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;
};

/// Stable point-in-time view of every registered metric, alphabetical by
/// name within each kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const GaugeSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, max, mean, p50, p90, p99}}}.
  std::string ToJson() const;
  /// Prometheus text exposition format (counters/gauges as-is,
  /// histograms as cumulative `le` buckets + _sum/_count).
  std::string ToPrometheus() const;
  /// Human-readable table for the CLI.
  std::string ToText() const;
};

/// Named-metric registry. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so call sites
/// cache it in a function-local static and the steady-state cost is the
/// metric op alone. Names follow `seg.seg[.seg]` with segments of
/// [a-z0-9_]; re-registering a name as a different kind is a recorded
/// conflict (the call still returns a usable, unregistered metric) that
/// SelfCheck() reports — CI runs SelfCheck on the global registry.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaked singleton, same as
  /// ThreadPool::Shared, so metrics outlive static destructors).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// A histogram re-fetched with a different unit keeps its original
  /// unit (the first registration wins); that is also a conflict.
  Histogram* GetHistogram(std::string_view name, Unit unit);

  MetricsSnapshot Snapshot() const;

  /// OK when every registered name is well-formed and no name was
  /// requested as two different kinds (or two units).
  Status SelfCheck() const;

  static bool ValidName(std::string_view name);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace fcbench::obs

#endif  // FCBENCH_OBS_METRICS_H_
