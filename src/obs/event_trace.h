#ifndef FCBENCH_OBS_EVENT_TRACE_H_
#define FCBENCH_OBS_EVENT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fcbench::obs {

/// Lifecycle moments the storage stack records into the flight recorder.
enum class EventKind : uint8_t {
  kWalRotate = 0,
  kFlushStart,
  kFlushPublish,
  kFlushFail,
  kCompact,
  kRetryBackoff,
  kDegraded,
  kQuarantine,
  kScrub,
  kStall,
};
const char* EventKindName(EventKind kind);

/// One recorded event. `nanos` is steady-clock time since process
/// start, `seq` the global 1-based record order, `a`/`b` kind-specific
/// payload (bytes, attempt number, segment id...), `detail` a truncated
/// NUL-terminated label (usually the engine dir). `trace_id` is the
/// sampled span trace active on the recording thread (0 when none):
/// it travels out-of-band of the 47-char detail so a ring-tail dump can
/// be correlated with the span timeline.
struct TraceEvent {
  uint64_t seq = 0;
  uint64_t nanos = 0;
  EventKind kind = EventKind::kWalRotate;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t trace_id = 0;
  char detail[48] = {};

  std::string ToString() const;
};

/// Fixed-capacity lock-free flight recorder for structured lifecycle
/// events (WAL rotate, flush start/publish, compaction, retry/backoff,
/// read-only degradation, quarantine). Writers claim a ticket with one
/// fetch_add and fill a slot with relaxed atomic stores — no locks, no
/// allocation — so it is safe from any engine thread including failure
/// paths. The ring wraps: only the last `capacity` events are kept,
/// which is exactly what a post-mortem wants ("the seconds before the
/// shard degraded"). Readers validate each slot with a begin/end stamp
/// pair and skip slots being overwritten mid-read.
///
/// The engine auto-dumps the tail to stderr when it degrades to
/// read-only (DumpToStderr); FCBENCH_TRACE_DUMP=0 suppresses that.
class EventTrace {
 public:
  static constexpr size_t kDetailBytes = sizeof(TraceEvent::detail);

  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit EventTrace(size_t capacity = 1024);
  ~EventTrace();
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  /// The process-wide recorder (leaked singleton).
  static EventTrace& Global();

  void Record(EventKind kind, std::string_view detail, uint64_t a = 0,
              uint64_t b = 0);

  /// The retained events, oldest first. Slots a writer is mid-filling
  /// are skipped, so under concurrency the result can briefly be shorter
  /// than min(recorded, capacity).
  std::vector<TraceEvent> Snapshot() const;

  /// The last `max_events` events as text, oldest first.
  std::string Dump(size_t max_events = 32) const;

  /// Dump() to stderr prefixed with `why`; no-op when
  /// FCBENCH_TRACE_DUMP=0. The degradation hook.
  void DumpToStderr(const std::string& why, size_t max_events = 32) const;

  /// Total events ever recorded (not capped by capacity).
  uint64_t recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot;

  const size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // tickets handed out
};

}  // namespace fcbench::obs

#endif  // FCBENCH_OBS_EVENT_TRACE_H_
