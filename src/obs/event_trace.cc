#include "obs/event_trace.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/span.h"

namespace fcbench::obs {

namespace {

/// Steady-clock nanos since process start: the span tracer's epoch, so
/// ring dumps and span timelines use the same time axis.
uint64_t NowNanos() { return MonotonicNanos(); }

bool StderrDumpEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FCBENCH_TRACE_DUMP");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

constexpr size_t kDetailWords = EventTrace::kDetailBytes / sizeof(uint64_t);

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kWalRotate:
      return "wal-rotate";
    case EventKind::kFlushStart:
      return "flush-start";
    case EventKind::kFlushPublish:
      return "flush-publish";
    case EventKind::kFlushFail:
      return "flush-fail";
    case EventKind::kCompact:
      return "compact";
    case EventKind::kRetryBackoff:
      return "retry-backoff";
    case EventKind::kDegraded:
      return "degraded";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kScrub:
      return "scrub";
    case EventKind::kStall:
      return "stall";
  }
  return "unknown";
}

std::string TraceEvent::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "[%9.3f ms] #%llu %-13s a=%llu b=%llu %s",
                static_cast<double>(nanos) / 1e6,
                static_cast<unsigned long long>(seq), EventKindName(kind),
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), detail);
  std::string out(buf);
  if (trace_id != 0) {
    std::snprintf(buf, sizeof(buf), " trace=%llx",
                  static_cast<unsigned long long>(trace_id));
    out += buf;
  }
  return out;
}

/// All fields atomic so concurrent write/read of a wrapping slot is a
/// defined (and TSan-clean) race, resolved by the begin/end stamps: a
/// reader only trusts a slot whose begin == end == the expected ticket
/// both before and after copying the payload.
struct EventTrace::Slot {
  std::atomic<uint64_t> begin{0};
  std::atomic<uint64_t> end{0};
  std::atomic<uint64_t> nanos{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> kind{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> detail[kDetailWords];
};

EventTrace::EventTrace(size_t capacity)
    : capacity_(std::bit_ceil(capacity < 8 ? size_t{8} : capacity)),
      slots_(new Slot[capacity_]) {}

EventTrace::~EventTrace() = default;

EventTrace& EventTrace::Global() {
  static EventTrace* t = new EventTrace(1024);
  return *t;
}

void EventTrace::Record(EventKind kind, std::string_view detail, uint64_t a,
                        uint64_t b) {
  const uint64_t nanos = NowNanos();
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[ticket & (capacity_ - 1)];
  // begin != end marks the slot as in-flux until the final store.
  s.begin.store(ticket, std::memory_order_release);
  s.nanos.store(nanos, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<uint64_t>(kind), std::memory_order_relaxed);
  // Correlate with any sampled span trace live on this thread.
  s.trace_id.store(CurrentTraceContext().trace_id, std::memory_order_relaxed);
  uint64_t words[kDetailWords] = {};
  const size_t n = detail.size() < kDetailBytes - 1 ? detail.size()
                                                    : kDetailBytes - 1;
  std::memcpy(words, detail.data(), n);
  for (size_t w = 0; w < kDetailWords; ++w) {
    s.detail[w].store(words[w], std::memory_order_relaxed);
  }
  s.end.store(ticket, std::memory_order_release);
}

std::vector<TraceEvent> EventTrace::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first =
      head > capacity_ ? head - capacity_ + 1 : uint64_t{1};
  std::vector<TraceEvent> out;
  out.reserve(head >= first ? static_cast<size_t>(head - first + 1) : 0);
  for (uint64_t t = first; t <= head; ++t) {
    const Slot& s = slots_[t & (capacity_ - 1)];
    if (s.end.load(std::memory_order_acquire) != t) continue;
    TraceEvent e;
    e.seq = t;
    e.nanos = s.nanos.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    uint64_t words[kDetailWords];
    for (size_t w = 0; w < kDetailWords; ++w) {
      words[w] = s.detail[w].load(std::memory_order_relaxed);
    }
    std::memcpy(e.detail, words, kDetailBytes);
    e.detail[kDetailBytes - 1] = '\0';
    // Re-validate: a writer lapping the ring while we copied would have
    // bumped begin first.
    if (s.begin.load(std::memory_order_acquire) != t) continue;
    out.push_back(e);
  }
  return out;
}

std::string EventTrace::Dump(size_t max_events) const {
  std::vector<TraceEvent> events = Snapshot();
  const size_t skip =
      events.size() > max_events ? events.size() - max_events : 0;
  std::string out;
  for (size_t i = skip; i < events.size(); ++i) {
    out += events[i].ToString();
    out.push_back('\n');
  }
  return out;
}

void EventTrace::DumpToStderr(const std::string& why,
                              size_t max_events) const {
  if (!StderrDumpEnabled()) return;
  std::fprintf(stderr, "fcbench: event trace (%s):\n%s", why.c_str(),
               Dump(max_events).c_str());
}

uint64_t EventTrace::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

}  // namespace fcbench::obs
