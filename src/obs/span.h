#ifndef FCBENCH_OBS_SPAN_H_
#define FCBENCH_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fcbench::obs {

/// Request-scoped hierarchical span tracing for the storage stack. The
/// same design discipline as metrics and failpoints: when tracing is off
/// (the default) a ScopedSpan costs one relaxed atomic load and a
/// branch; when on, spans are pushed onto a thread-local stack, stamped
/// with steady-clock nanos, and — for sampled traces — drained from a
/// bounded per-thread buffer into the process-wide TraceCollector with
/// one fetch_add per batch (lock-free publish, fixed memory cap, drop
/// counter).
///
/// Sampling is deterministic: FCBENCH_TRACE_SAMPLE=1/N (or just N)
/// samples every Nth root span per thread, phase-shifted by a seeded
/// hash of the thread index (FCBENCH_TRACE_SEED, default 1), so two
/// runs of the same workload sample the same operations. A root span is
/// a span opened with no enclosing span and no adopted context.
///
/// The slow-op log (FCBENCH_SLOW_OP_MS) piggybacks on the same stack:
/// any span — sampled or not — whose duration crosses the threshold
/// emits a one-line JSON record to stderr with its full span path.

/// Steady-clock nanos since process start. Shared epoch with the
/// EventTrace flight recorder so span timelines and ring dumps align.
uint64_t MonotonicNanos();

/// True when span tracking is on (sampling enabled OR a slow-op
/// threshold set). One relaxed load; the ScopedSpan fast path.
bool TracingActive();

/// Sample 1 in `n` root spans (0 disables sampling; 1 samples all).
/// Overrides FCBENCH_TRACE_SAMPLE. `seed` shifts the per-thread phase.
void SetTraceSampling(uint64_t n, uint64_t seed = 1);
uint64_t TraceSampleN();

/// Emit a slow-op JSON line for any span at or over `ms` (0 disables).
/// Overrides FCBENCH_SLOW_OP_MS.
void SetSlowOpThresholdMs(uint64_t ms);
uint64_t SlowOpThresholdMs();

/// One completed span. Ids are process-unique and nonzero for sampled
/// spans; `parent_id` is 0 for a trace root. `tid` is a small
/// per-thread index (also the Chrome-trace tid).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_nanos = 0;
  uint64_t dur_nanos = 0;
  uint32_t tid = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  char name[24] = {};
  char tag[16] = {};
};

/// The (trace id, innermost open span id) pair of the calling thread;
/// both zero when no sampled trace is active. Capture at task-submit
/// time and adopt on the worker (ScopedTraceContext) so background work
/// nests under its trigger.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};
TraceContext CurrentTraceContext();

/// Adopts a captured TraceContext on the current thread: spans opened
/// while alive record into that trace, parented under ctx.parent_span.
/// No-op when the context is empty or the thread is already inside a
/// span stack (the ParallelFor caller participating in its own batch).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  bool adopted_ = false;
};

/// RAII span. `name` must have static storage duration (string
/// literal): the open-span stack stores the pointer, not a copy, so the
/// watchdog can dump live stacks from another thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, uint64_t a = 0, uint64_t b = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Update the kind-specific payload before the span closes.
  void SetArgs(uint64_t a, uint64_t b);
  /// Short label (truncated to 15 chars), e.g. the errno of a failed
  /// IO attempt. Copied.
  void SetTag(const char* tag);
  /// True when this span is part of a sampled trace (will be published).
  bool recording() const { return frame_ >= 0 && recording_; }

 private:
  int8_t frame_ = -1;  // index into the thread's stack; -1 = not pushed
  bool recording_ = false;
};

/// Process-wide ring of completed sampled spans. Same slot discipline
/// as EventTrace: writers reserve tickets with one fetch_add (one per
/// drained batch, not per span) and fill all-atomic slots guarded by
/// begin/end stamps; the ring wraps, keeping the newest `capacity`
/// spans, and dropped() counts what wrapping discarded. Fixed memory:
/// capacity * sizeof(slot), allocated once.
class TraceCollector {
 public:
  /// `capacity` is rounded up to a power of two, minimum 64.
  explicit TraceCollector(size_t capacity = 8192);
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector (leaked singleton). Capacity from
  /// FCBENCH_TRACE_CAP (spans, default 8192).
  static TraceCollector& Global();

  /// Publish `n` completed spans with one ticket reservation.
  void PublishBatch(const SpanRecord* recs, size_t n);

  /// The retained spans, oldest first. Torn slots are skipped.
  std::vector<SpanRecord> Snapshot() const;

  /// Chrome-trace / Perfetto-loadable JSON: {"traceEvents": [...]} with
  /// "ph":"X" complete events (ts/dur in microseconds). Load at
  /// https://ui.perfetto.dev or chrome://tracing. Nesting on a track is
  /// by time containment; cross-thread causality travels in
  /// args.trace/args.parent.
  std::string ToChromeJson() const;

  uint64_t recorded() const;
  /// Spans lost to ring wraparound (recorded - capacity, floored at 0).
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot;

  const size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // tickets handed out
};

/// Every thread's currently-open span stack as text (one line per
/// thread with open spans). Best-effort: stacks are read with relaxed
/// atomics while their owners keep running.
std::string DumpOpenSpans();

/// Deadline watchdog for long-running storage operations. One lazily
/// started (and leaked) thread sleeps until the earliest armed
/// deadline; an operation still armed past its budget fires exactly
/// once: a `stall` EventTrace event, the obs.watchdog.stalls counter,
/// and a stderr dump of the open span stacks plus the EventTrace tail.
class Watchdog {
 public:
  static Watchdog& Global();

  /// FCBENCH_WATCHDOG_MS (default 30000; 0 disables all default-budget
  /// watches).
  static int64_t DefaultBudgetMs();

  /// Registers an operation. `what` must be a string literal;
  /// `budget_ms` 0 means DefaultBudgetMs(), negative disables. Returns
  /// a handle for Disarm (0 when disabled).
  uint64_t Arm(const char* what, const std::string& detail,
               int64_t budget_ms = 0);
  void Disarm(uint64_t handle);

  /// Total stall firings since process start (test hook; independent of
  /// the metrics-enabled flag).
  uint64_t stalls_fired() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  Watchdog();
  struct Impl;

  std::atomic<uint64_t> stalls_{0};
  Impl* const impl_;  // leaked with the singleton
};

/// RAII Arm/Disarm.
class ScopedWatch {
 public:
  ScopedWatch(const char* what, const std::string& detail,
              int64_t budget_ms = 0)
      : id_(Watchdog::Global().Arm(what, detail, budget_ms)) {}
  ~ScopedWatch() { Watchdog::Global().Disarm(id_); }
  ScopedWatch(const ScopedWatch&) = delete;
  ScopedWatch& operator=(const ScopedWatch&) = delete;

 private:
  uint64_t id_;
};

}  // namespace fcbench::obs

#endif  // FCBENCH_OBS_SPAN_H_
