#include "obs/span.h"

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace fcbench::obs {

namespace {

/// Span stack depth per thread. Deeper nesting is tracked (LIFO pairing
/// stays correct) but not recorded.
constexpr int kMaxDepth = 16;
/// Completed sampled spans buffered per thread before one batched
/// publish into the collector.
constexpr size_t kThreadBufCap = 64;

constexpr int8_t kNotPushed = -1;
constexpr int8_t kOverflow = -2;

// Mode globals. Constant-initialized atomics: safe to touch from any
// dynamic initializer; the env snapshot below runs at startup.
std::atomic<uint32_t> g_active{0};
std::atomic<uint64_t> g_sample_n{0};
std::atomic<uint64_t> g_seed{1};
std::atomic<uint64_t> g_slow_ns{0};
std::atomic<uint64_t> g_next_id{0};
std::atomic<uint32_t> g_next_tid{0};

uint64_t NewId() { return g_next_id.fetch_add(1, std::memory_order_relaxed) + 1; }

void UpdateActive() {
  const bool on = g_sample_n.load(std::memory_order_relaxed) > 0 ||
                  g_slow_ns.load(std::memory_order_relaxed) > 0;
  g_active.store(on ? 1 : 0, std::memory_order_relaxed);
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FCBENCH_TRACE_SAMPLE accepts "1/N" or plain "N"; 0/absent = off.
uint64_t ParseSampleEnv(const char* env) {
  if (env == nullptr || *env == '\0') return 0;
  const char* slash = std::strchr(env, '/');
  return std::strtoull(slash != nullptr ? slash + 1 : env, nullptr, 10);
}

struct EnvInit {
  EnvInit() {
    g_sample_n.store(ParseSampleEnv(std::getenv("FCBENCH_TRACE_SAMPLE")),
                     std::memory_order_relaxed);
    if (const char* seed = std::getenv("FCBENCH_TRACE_SEED")) {
      g_seed.store(std::strtoull(seed, nullptr, 10), std::memory_order_relaxed);
    }
    if (const char* ms = std::getenv("FCBENCH_SLOW_OP_MS")) {
      g_slow_ns.store(std::strtoull(ms, nullptr, 10) * 1'000'000ull,
                      std::memory_order_relaxed);
    }
    UpdateActive();
  }
};
EnvInit g_env_init;

struct Frame {
  const char* name = nullptr;
  uint64_t span_id = 0;
  uint64_t start = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  char tag[sizeof(SpanRecord{}.tag)] = {};
};

/// Per-thread tracer state. Registered in a global list so the watchdog
/// can dump every live thread's open stack; the open_* mirrors are the
/// only fields other threads read (relaxed atomics, best-effort).
struct ThreadState {
  uint32_t tid = 0;
  uint64_t root_count = 0;
  uint64_t sample_phase_seed = 0;
  int depth = 0;
  int skipped = 0;  // spans past kMaxDepth (tracked, not recorded)
  int adopt_depth = 0;
  bool recording = false;
  uint64_t trace_id = 0;
  uint64_t adopted_parent = 0;
  Frame frames[kMaxDepth];
  SpanRecord buf[kThreadBufCap];
  size_t buf_len = 0;

  std::atomic<int> open_depth{0};
  std::atomic<uintptr_t> open_name[kMaxDepth] = {};
  std::atomic<uint64_t> open_start[kMaxDepth] = {};
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<ThreadState*>& RegistryList() {
  static std::vector<ThreadState*>* v = new std::vector<ThreadState*>;
  return *v;
}

void FlushThreadBuf(ThreadState& ts) {
  if (ts.buf_len == 0) return;
  TraceCollector::Global().PublishBatch(ts.buf, ts.buf_len);
  ts.buf_len = 0;
}

/// Wraps the thread_local so registration/unregistration bracket the
/// thread's lifetime, and late calls during thread teardown (other
/// thread_local destructors) see nullptr instead of a dead object.
struct ThreadStateHolder {
  ThreadState st;
  bool* dead;
  explicit ThreadStateHolder(bool* dead_flag) : dead(dead_flag) {
    st.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
    st.sample_phase_seed = static_cast<uint64_t>(st.tid);
    std::lock_guard<std::mutex> lk(RegistryMutex());
    RegistryList().push_back(&st);
  }
  ~ThreadStateHolder() {
    FlushThreadBuf(st);
    {
      std::lock_guard<std::mutex> lk(RegistryMutex());
      auto& list = RegistryList();
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i] == &st) {
          list[i] = list.back();
          list.pop_back();
          break;
        }
      }
    }
    *dead = true;
  }
};

ThreadState* Tls() {
  thread_local bool dead = false;  // outlives holder (reverse dtor order)
  thread_local ThreadStateHolder holder(&dead);
  return dead ? nullptr : &holder.st;
}

bool SampleRoot(ThreadState& ts) {
  const uint64_t n = g_sample_n.load(std::memory_order_relaxed);
  if (n == 0) return false;
  if (n == 1) return true;
  const uint64_t phase =
      SplitMix64(g_seed.load(std::memory_order_relaxed) ^
                 ts.sample_phase_seed) %
      n;
  return (ts.root_count++ % n) == phase;
}

void CopyTag(char* dst, size_t dst_len, const char* src) {
  std::strncpy(dst, src, dst_len - 1);
  dst[dst_len - 1] = '\0';
}

void EmitSlowOp(const ThreadState& ts, const Frame& f, uint64_t dur_nanos) {
  // Full path root > ... > this span; ts.depth was already decremented,
  // so frames[0..ts.depth] inclusive is the open chain plus f itself.
  char path[256];
  size_t off = 0;
  for (int i = 0; i <= ts.depth && i < kMaxDepth; ++i) {
    const char* name = i == ts.depth ? f.name : ts.frames[i].name;
    const int wrote =
        std::snprintf(path + off, sizeof(path) - off, "%s%s",
                      i > 0 ? ">" : "", name != nullptr ? name : "?");
    if (wrote < 0 || off + static_cast<size_t>(wrote) >= sizeof(path)) break;
    off += static_cast<size_t>(wrote);
  }
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"slow_op\":{\"name\":\"%s\",\"path\":\"%s\",\"ms\":%.3f,"
                "\"tid\":%u,\"trace\":\"%016llx\",\"a\":%llu,\"b\":%llu,"
                "\"tag\":\"%s\"}}\n",
                f.name, path, static_cast<double>(dur_nanos) / 1e6, ts.tid,
                static_cast<unsigned long long>(ts.trace_id),
                static_cast<unsigned long long>(f.a),
                static_cast<unsigned long long>(f.b), f.tag);
  std::fputs(line, stderr);
}

}  // namespace

uint64_t MonotonicNanos() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

bool TracingActive() {
  return g_active.load(std::memory_order_relaxed) != 0;
}

void SetTraceSampling(uint64_t n, uint64_t seed) {
  g_sample_n.store(n, std::memory_order_relaxed);
  g_seed.store(seed, std::memory_order_relaxed);
  UpdateActive();
}

uint64_t TraceSampleN() {
  return g_sample_n.load(std::memory_order_relaxed);
}

void SetSlowOpThresholdMs(uint64_t ms) {
  g_slow_ns.store(ms * 1'000'000ull, std::memory_order_relaxed);
  UpdateActive();
}

uint64_t SlowOpThresholdMs() {
  return g_slow_ns.load(std::memory_order_relaxed) / 1'000'000ull;
}

TraceContext CurrentTraceContext() {
  if (!TracingActive()) return {};
  ThreadState* ts = Tls();
  if (ts == nullptr || !ts->recording) return {};
  return {ts->trace_id, ts->depth > 0 ? ts->frames[ts->depth - 1].span_id
                                      : ts->adopted_parent};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  if (ctx.trace_id == 0 || !TracingActive()) return;
  ThreadState* ts = Tls();
  // Only a quiescent thread adopts: the ParallelFor caller draining its
  // own batch is already inside the right trace.
  if (ts == nullptr || ts->depth != 0 || ts->adopt_depth != 0) return;
  ts->adopt_depth = 1;
  ts->recording = true;
  ts->trace_id = ctx.trace_id;
  ts->adopted_parent = ctx.parent_span;
  adopted_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!adopted_) return;
  ThreadState* ts = Tls();
  if (ts == nullptr) return;
  FlushThreadBuf(*ts);
  ts->adopt_depth = 0;
  ts->recording = false;
  ts->trace_id = 0;
  ts->adopted_parent = 0;
}

ScopedSpan::ScopedSpan(const char* name, uint64_t a, uint64_t b) {
  if (!TracingActive()) return;
  ThreadState* ts = Tls();
  if (ts == nullptr) return;
  if (ts->skipped > 0 || ts->depth >= kMaxDepth) {
    ++ts->skipped;
    frame_ = kOverflow;
    return;
  }
  if (ts->depth == 0 && ts->adopt_depth == 0) {
    ts->recording = SampleRoot(*ts);
    ts->trace_id = ts->recording ? NewId() : 0;
  }
  Frame& f = ts->frames[ts->depth];
  f.name = name;
  f.span_id = ts->recording ? NewId() : 0;
  f.a = a;
  f.b = b;
  f.tag[0] = '\0';
  f.start = MonotonicNanos();
  ts->open_name[ts->depth].store(reinterpret_cast<uintptr_t>(name),
                                 std::memory_order_relaxed);
  ts->open_start[ts->depth].store(f.start, std::memory_order_relaxed);
  frame_ = static_cast<int8_t>(ts->depth);
  recording_ = ts->recording;
  ++ts->depth;
  ts->open_depth.store(ts->depth, std::memory_order_release);
}

ScopedSpan::~ScopedSpan() {
  if (frame_ == kNotPushed) return;
  ThreadState* ts = Tls();
  if (ts == nullptr) return;
  if (frame_ == kOverflow) {
    --ts->skipped;
    return;
  }
  const uint64_t end = MonotonicNanos();
  --ts->depth;
  ts->open_depth.store(ts->depth, std::memory_order_release);
  const Frame& f = ts->frames[ts->depth];
  const uint64_t dur = end - f.start;
  if (recording_) {
    SpanRecord& r = ts->buf[ts->buf_len++];
    r.trace_id = ts->trace_id;
    r.span_id = f.span_id;
    r.parent_id = ts->depth > 0 ? ts->frames[ts->depth - 1].span_id
                                : ts->adopted_parent;
    r.start_nanos = f.start;
    r.dur_nanos = dur;
    r.tid = ts->tid;
    r.a = f.a;
    r.b = f.b;
    CopyTag(r.name, sizeof(r.name), f.name != nullptr ? f.name : "?");
    CopyTag(r.tag, sizeof(r.tag), f.tag);
    if (ts->buf_len == kThreadBufCap) FlushThreadBuf(*ts);
  }
  const uint64_t slow = g_slow_ns.load(std::memory_order_relaxed);
  if (slow != 0 && dur >= slow) EmitSlowOp(*ts, f, dur);
  if (ts->depth == 0 && ts->adopt_depth == 0) {
    if (recording_) FlushThreadBuf(*ts);
    ts->recording = false;
    ts->trace_id = 0;
  }
}

void ScopedSpan::SetArgs(uint64_t a, uint64_t b) {
  if (frame_ < 0) return;
  ThreadState* ts = Tls();
  if (ts == nullptr) return;
  ts->frames[frame_].a = a;
  ts->frames[frame_].b = b;
}

void ScopedSpan::SetTag(const char* tag) {
  if (frame_ < 0) return;
  ThreadState* ts = Tls();
  if (ts == nullptr) return;
  CopyTag(ts->frames[frame_].tag, sizeof(ts->frames[frame_].tag), tag);
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

/// All fields atomic so a writer lapping the ring while a reader copies
/// is a defined (TSan-clean) race, resolved by the begin/end stamps —
/// the same discipline as EventTrace::Slot.
struct TraceCollector::Slot {
  static constexpr size_t kNameWords = sizeof(SpanRecord{}.name) / 8;
  static constexpr size_t kTagWords = sizeof(SpanRecord{}.tag) / 8;
  std::atomic<uint64_t> begin{0};
  std::atomic<uint64_t> end{0};
  std::atomic<uint64_t> trace{0};
  std::atomic<uint64_t> span{0};
  std::atomic<uint64_t> parent{0};
  std::atomic<uint64_t> start{0};
  std::atomic<uint64_t> dur{0};
  std::atomic<uint64_t> meta{0};  // tid in the low 32 bits
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> name[kNameWords];
  std::atomic<uint64_t> tag[kTagWords];
};

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::bit_ceil(capacity < 64 ? size_t{64} : capacity)),
      slots_(new Slot[capacity_]) {}

TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::Global() {
  static TraceCollector* c = new TraceCollector([] {
    const char* env = std::getenv("FCBENCH_TRACE_CAP");
    const size_t cap =
        env != nullptr ? std::strtoull(env, nullptr, 10) : size_t{0};
    return cap > 0 ? cap : size_t{8192};
  }());
  return *c;
}

void TraceCollector::PublishBatch(const SpanRecord* recs, size_t n) {
  if (n == 0) return;
  // One ticket reservation for the whole batch.
  const uint64_t base = head_.fetch_add(n, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ticket = base + i + 1;
    const SpanRecord& r = recs[i];
    Slot& s = slots_[ticket & (capacity_ - 1)];
    s.begin.store(ticket, std::memory_order_release);
    s.trace.store(r.trace_id, std::memory_order_relaxed);
    s.span.store(r.span_id, std::memory_order_relaxed);
    s.parent.store(r.parent_id, std::memory_order_relaxed);
    s.start.store(r.start_nanos, std::memory_order_relaxed);
    s.dur.store(r.dur_nanos, std::memory_order_relaxed);
    s.meta.store(r.tid, std::memory_order_relaxed);
    s.a.store(r.a, std::memory_order_relaxed);
    s.b.store(r.b, std::memory_order_relaxed);
    uint64_t words[Slot::kNameWords] = {};
    std::memcpy(words, r.name, sizeof(r.name));
    for (size_t w = 0; w < Slot::kNameWords; ++w) {
      s.name[w].store(words[w], std::memory_order_relaxed);
    }
    uint64_t tag_words[Slot::kTagWords] = {};
    std::memcpy(tag_words, r.tag, sizeof(r.tag));
    for (size_t w = 0; w < Slot::kTagWords; ++w) {
      s.tag[w].store(tag_words[w], std::memory_order_relaxed);
    }
    s.end.store(ticket, std::memory_order_release);
  }
}

std::vector<SpanRecord> TraceCollector::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > capacity_ ? head - capacity_ + 1 : uint64_t{1};
  std::vector<SpanRecord> out;
  out.reserve(head >= first ? static_cast<size_t>(head - first + 1) : 0);
  for (uint64_t t = first; t <= head; ++t) {
    const Slot& s = slots_[t & (capacity_ - 1)];
    if (s.end.load(std::memory_order_acquire) != t) continue;
    SpanRecord r;
    r.trace_id = s.trace.load(std::memory_order_relaxed);
    r.span_id = s.span.load(std::memory_order_relaxed);
    r.parent_id = s.parent.load(std::memory_order_relaxed);
    r.start_nanos = s.start.load(std::memory_order_relaxed);
    r.dur_nanos = s.dur.load(std::memory_order_relaxed);
    r.tid = static_cast<uint32_t>(s.meta.load(std::memory_order_relaxed));
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    uint64_t words[Slot::kNameWords];
    for (size_t w = 0; w < Slot::kNameWords; ++w) {
      words[w] = s.name[w].load(std::memory_order_relaxed);
    }
    std::memcpy(r.name, words, sizeof(r.name));
    r.name[sizeof(r.name) - 1] = '\0';
    uint64_t tag_words[Slot::kTagWords];
    for (size_t w = 0; w < Slot::kTagWords; ++w) {
      tag_words[w] = s.tag[w].load(std::memory_order_relaxed);
    }
    std::memcpy(r.tag, tag_words, sizeof(r.tag));
    r.tag[sizeof(r.tag) - 1] = '\0';
    if (s.begin.load(std::memory_order_acquire) != t) continue;
    out.push_back(r);
  }
  return out;
}

namespace {

/// JSON-escapes into a fixed buffer: `"` and `\` get a backslash,
/// control bytes become spaces. Names are literals and tags short
/// labels, but neither is trusted to be JSON-clean.
const char* JsonEscape(const char* in, char* buf, size_t cap) {
  size_t o = 0;
  for (size_t i = 0; in[i] != '\0' && o + 2 < cap; ++i) {
    unsigned char c = static_cast<unsigned char>(in[i]);
    if (c == '"' || c == '\\') buf[o++] = '\\';
    buf[o++] = c < 0x20 ? ' ' : static_cast<char>(c);
  }
  buf[o] = '\0';
  return buf;
}

}  // namespace

std::string TraceCollector::ToChromeJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out;
  out.reserve(spans.size() * 220 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[384];
  char name_esc[52], tag_esc[36];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"name\":\"%s\",\"cat\":\"fcbench\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":\"%llx\","
        "\"span\":\"%llx\",\"parent\":\"%llx\",\"a\":%llu,\"b\":%llu,"
        "\"tag\":\"%s\"}}",
        i > 0 ? "," : "",
        JsonEscape(s.name, name_esc, sizeof(name_esc)), s.tid,
        static_cast<double>(s.start_nanos) / 1e3,
        static_cast<double>(s.dur_nanos) / 1e3,
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_id),
        static_cast<unsigned long long>(s.a),
        static_cast<unsigned long long>(s.b),
        JsonEscape(s.tag, tag_esc, sizeof(tag_esc)));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

uint64_t TraceCollector::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

uint64_t TraceCollector::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > capacity_ ? head - capacity_ : 0;
}

std::string DumpOpenSpans() {
  std::string out;
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lk(RegistryMutex());
  for (const ThreadState* ts : RegistryList()) {
    int depth = ts->open_depth.load(std::memory_order_acquire);
    if (depth <= 0) continue;
    if (depth > kMaxDepth) depth = kMaxDepth;
    char head[48];
    std::snprintf(head, sizeof(head), "  tid %u: ", ts->tid);
    out += head;
    for (int i = 0; i < depth; ++i) {
      const char* name = reinterpret_cast<const char*>(
          ts->open_name[i].load(std::memory_order_relaxed));
      if (i > 0) out += " > ";
      out += name != nullptr ? name : "?";
    }
    const uint64_t start =
        ts->open_start[depth - 1].load(std::memory_order_relaxed);
    char tail[48];
    std::snprintf(tail, sizeof(tail), " (%.1f ms)\n",
                  now > start ? static_cast<double>(now - start) / 1e6 : 0.0);
    out += tail;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

struct Watchdog::Impl {
  struct Op {
    uint64_t id;
    const char* what;
    std::string detail;
    uint64_t start_nanos;
    uint64_t deadline_nanos;
    int64_t budget_ms;
    bool fired;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Op> ops;
  uint64_t next_id = 0;
  bool thread_started = false;

  void Loop(Watchdog* dog);
  void Fire(Watchdog* dog, const Op& op, uint64_t now);
};

void Watchdog::Impl::Loop(Watchdog* dog) {
  std::unique_lock<std::mutex> lk(mu);
  for (;;) {
    uint64_t next = UINT64_MAX;
    for (const Op& op : ops) {
      if (!op.fired && op.deadline_nanos < next) next = op.deadline_nanos;
    }
    if (next == UINT64_MAX) {
      cv.wait(lk);
      continue;
    }
    const uint64_t now = MonotonicNanos();
    if (now < next) {
      cv.wait_for(lk, std::chrono::nanoseconds(next - now));
      continue;  // re-scan: ops may have been armed/disarmed meanwhile
    }
    // Mark everything due as fired while locked, then fire unlocked so
    // the dump (which takes the thread-registry mutex and writes
    // stderr) never blocks Arm/Disarm on hot paths.
    std::vector<Op> due;
    for (Op& op : ops) {
      if (op.fired || op.deadline_nanos > now) continue;
      op.fired = true;
      due.push_back(op);
    }
    lk.unlock();
    for (const Op& op : due) Fire(dog, op, now);
    lk.lock();
  }
}

void Watchdog::Impl::Fire(Watchdog* dog, const Op& op, uint64_t now) {
  dog->stalls_.fetch_add(1, std::memory_order_relaxed);
  static Counter* stalls =
      MetricsRegistry::Global().GetCounter("obs.watchdog.stalls");
  stalls->Increment();
  const uint64_t elapsed_ms = (now - op.start_nanos) / 1'000'000ull;
  EventTrace::Global().Record(EventKind::kStall, op.detail, elapsed_ms,
                              static_cast<uint64_t>(op.budget_ms));
  std::fprintf(stderr,
               "fcbench: watchdog: %s stalled (%s): %llu ms elapsed, budget "
               "%lld ms\n",
               op.what, op.detail.c_str(),
               static_cast<unsigned long long>(elapsed_ms),
               static_cast<long long>(op.budget_ms));
  const std::string open = DumpOpenSpans();
  std::fprintf(stderr, "fcbench: open spans:\n%s",
               open.empty() ? "  (none)\n" : open.c_str());
  EventTrace::Global().DumpToStderr(std::string("watchdog stall: ") + op.what);
}

Watchdog::Watchdog() : impl_(new Impl) {}

Watchdog& Watchdog::Global() {
  static Watchdog* dog = new Watchdog;
  return *dog;
}

int64_t Watchdog::DefaultBudgetMs() {
  static const int64_t ms = [] {
    const char* env = std::getenv("FCBENCH_WATCHDOG_MS");
    if (env == nullptr || *env == '\0') return int64_t{30000};
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
  }();
  return ms;
}

uint64_t Watchdog::Arm(const char* what, const std::string& detail,
                       int64_t budget_ms) {
  if (budget_ms == 0) budget_ms = DefaultBudgetMs();
  if (budget_ms <= 0) return 0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->thread_started) {
    impl_->thread_started = true;
    std::thread([this] { impl_->Loop(this); }).detach();
  }
  const uint64_t id = ++impl_->next_id;
  const uint64_t now = MonotonicNanos();
  impl_->ops.push_back({id, what, detail, now,
                        now + static_cast<uint64_t>(budget_ms) * 1'000'000ull,
                        budget_ms, false});
  impl_->cv.notify_one();
  return id;
}

void Watchdog::Disarm(uint64_t handle) {
  if (handle == 0) return;
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto& ops = impl_->ops;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].id == handle) {
      ops[i] = std::move(ops.back());
      ops.pop_back();
      break;
    }
  }
}

}  // namespace fcbench::obs
