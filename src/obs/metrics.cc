#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace fcbench::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Stable small integer per thread; picks a counter cell without
/// hashing a thread::id on every Add.
uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next{0};
  static thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// FCBENCH_METRICS applied once before main touches any metric, the
/// same static-init idiom as failpoint's FCBENCH_FAILPOINTS.
const bool g_env_applied = [] {
  if (const char* env = std::getenv("FCBENCH_METRICS")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "false") == 0) {
      g_enabled.store(false, std::memory_order_relaxed);
    }
  }
  return true;
}();

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// `name` rewritten for Prometheus: dots become underscores
/// (`wal.commit_nanos` -> `fcbench_wal_commit_nanos`).
std::string PromName(const std::string& name) {
  std::string out = "fcbench_";
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kNanos:
      return "nanos";
    case Unit::kBytes:
      return "bytes";
    case Unit::kCount:
      return "count";
  }
  return "count";
}

void Counter::Add(uint64_t n) {
  if (!Enabled()) return;
  cells_[ThreadSlot() % kCells].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

size_t Histogram::BucketOf(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

void Gauge::Set(int64_t v) {
  if (!Enabled()) return;
  v_.store(v, std::memory_order_relaxed);
}

void Gauge::Add(int64_t d) {
  if (!Enabled()) return;
  v_.fetch_add(d, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t v) {
  if (!Enabled()) return;
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::SnapshotNow() const {
  HistogramSnapshot s;
  s.unit = unit_;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

double HistogramSnapshot::Percentile(double p) const {
  // Rank over the bucket counts, not `count`: the two can disagree
  // transiently while writers are mid-Record.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (static_cast<double>(cum) >= rank && cum > 0) {
      const uint64_t hi = Histogram::BucketUpperBound(b);
      // The true max is a tighter bound than the top occupied bucket's
      // upper edge.
      return static_cast<double>(std::min(hi, std::max(max, uint64_t{1})));
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.name = name;
  d.unit = unit;
  d.count = count - std::min(earlier.count, count);
  d.sum = sum - std::min(earlier.sum, sum);
  d.max = max;
  for (size_t b = 0; b < buckets.size(); ++b) {
    d.buckets[b] = buckets[b] - std::min(earlier.buckets[b], buckets[b]);
  }
  return d;
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    AppendJsonEscaped(&out, counters[i].name);
    out += "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    AppendJsonEscaped(&out, gauges[i].name);
    out += "\": " + std::to_string(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"unit\": \"%s\", \"count\": %llu, \"sum\": %llu, "
                  "\"max\": %llu, \"mean\": %.1f, \"p50\": %.0f, "
                  "\"p90\": %.0f, \"p99\": %.0f}",
                  UnitName(h.unit),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max), h.mean(), h.p50(),
                  h.p90(), h.p99());
    out += i ? ",\n    \"" : "\n    \"";
    AppendJsonEscaped(&out, h.name);
    out += "\": ";
    out += buf;
  }
  out += histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  char buf[160];
  for (const auto& c : counters) {
    const std::string n = PromName(c.name);
    out += "# HELP " + n + " fcbench counter " + c.name + "\n";
    out += "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    const std::string n = PromName(g.name);
    out += "# HELP " + n + " fcbench gauge " + g.name + "\n";
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %lld\n", n.c_str(),
                  static_cast<long long>(g.value));
    out += buf;
  }
  for (const auto& h : histograms) {
    const std::string n = PromName(h.name);
    out += "# HELP " + n + " fcbench histogram " + h.name + " (" +
           std::string(UnitName(h.unit)) + ")\n";
    out += "# TYPE " + n + " histogram\n";
    // A contiguous cumulative chain from bucket 0 through the highest
    // occupied bucket: scrapers need each le series to be monotone over
    // time, and skipping empty buckets would make a bucket appear and
    // disappear across scrapes as samples land. The tail above the
    // observed max is summarized by +Inf.
    size_t highest = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    uint64_t cum = 0;
    for (size_t b = 0; b <= highest; ++b) {
      cum += h.buckets[b];
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    n.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::BucketUpperBound(b)),
                    static_cast<unsigned long long>(cum));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  n.c_str(), static_cast<unsigned long long>(cum), n.c_str(),
                  static_cast<unsigned long long>(h.sum), n.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  os << "counters:\n";
  for (const auto& c : counters) {
    os << "  " << c.name << " = " << c.value << "\n";
  }
  os << "gauges:\n";
  for (const auto& g : gauges) {
    os << "  " << g.name << " = " << g.value << "\n";
  }
  os << "histograms (count / mean / p50 / p90 / p99 / max):\n";
  for (const auto& h : histograms) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%llu / %.0f / %.0f / %.0f / %.0f / %llu",
                  static_cast<unsigned long long>(h.count), h.mean(), h.p50(),
                  h.p90(), h.p99(), static_cast<unsigned long long>(h.max));
    os << "  " << h.name << " [" << UnitName(h.unit) << "] " << buf << "\n";
  }
  return os.str();
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: stable iteration order gives deterministic exposition, and
  // unique_ptr keeps handed-out metric pointers stable across rehashing.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  /// Kind/unit conflicts and malformed names, for SelfCheck. The
  /// conflicting Get still returns a usable metric (parked here so the
  /// pointer stays valid) — hot paths never need a null check.
  std::vector<std::string> problems;
  std::vector<std::unique_ptr<Counter>> orphan_counters;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms;

  bool NameTaken(std::string_view name, const char* kind) {
    const bool taken = counters.find(name) != counters.end() ||
                       gauges.find(name) != gauges.end() ||
                       histograms.find(name) != histograms.end();
    if (taken) {
      problems.push_back("metric '" + std::string(name) +
                         "' re-registered as a different kind (" + kind +
                         ")");
    }
    return taken;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: metric handles are cached in function-local statics all over
  // the tree and may be touched during static destruction.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

bool MetricsRegistry::ValidName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  size_t dots = 0, seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;  // empty segment
      ++dots;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  return dots >= 1 && seg_len > 0;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> g(impl_->mu);
  if (auto it = impl_->counters.find(name); it != impl_->counters.end()) {
    return it->second.get();
  }
  if (!ValidName(name)) {
    impl_->problems.push_back("bad metric name '" + std::string(name) + "'");
  } else if (impl_->NameTaken(name, "counter")) {
    impl_->orphan_counters.push_back(std::make_unique<Counter>());
    return impl_->orphan_counters.back().get();
  }
  auto [it, ignored] =
      impl_->counters.emplace(std::string(name), std::make_unique<Counter>());
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> g(impl_->mu);
  if (auto it = impl_->gauges.find(name); it != impl_->gauges.end()) {
    return it->second.get();
  }
  if (!ValidName(name)) {
    impl_->problems.push_back("bad metric name '" + std::string(name) + "'");
  } else if (impl_->NameTaken(name, "gauge")) {
    impl_->orphan_gauges.push_back(std::make_unique<Gauge>());
    return impl_->orphan_gauges.back().get();
  }
  auto [it, ignored] =
      impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>());
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> g(impl_->mu);
  if (auto it = impl_->histograms.find(name);
      it != impl_->histograms.end()) {
    if (it->second->unit() != unit) {
      impl_->problems.push_back("histogram '" + std::string(name) +
                                "' re-registered with unit " +
                                UnitName(unit) + " (was " +
                                UnitName(it->second->unit()) + ")");
    }
    return it->second.get();
  }
  if (!ValidName(name)) {
    impl_->problems.push_back("bad metric name '" + std::string(name) + "'");
  } else if (impl_->NameTaken(name, "histogram")) {
    impl_->orphan_histograms.push_back(std::make_unique<Histogram>(unit));
    return impl_->orphan_histograms.back().get();
  }
  auto [it, ignored] = impl_->histograms.emplace(
      std::string(name), std::make_unique<Histogram>(unit));
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> g(impl_->mu);
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    s.gauges.push_back({name, gauge->value()});
  }
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot hs = h->SnapshotNow();
    hs.name = name;
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

Status MetricsRegistry::SelfCheck() const {
  std::lock_guard<std::mutex> g(impl_->mu);
  if (impl_->problems.empty()) return Status::OK();
  std::string msg = "metrics registry self-check failed:";
  for (const auto& p : impl_->problems) msg += "\n  " + p;
  return Status::InvalidArgument(msg);
}

}  // namespace fcbench::obs
