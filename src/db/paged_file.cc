#include "db/paged_file.h"

#include <vector>

#include "util/bitio.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/timer.h"

namespace fcbench::db {

namespace {

constexpr uint32_t kMagic = 0x46434246;  // "FCBF"
/// Parse-time plausibility bounds: a corrupt header must surface as a
/// Corruption status, never as a giant allocation or an overflowing
/// bounds check.
constexpr uint64_t kMaxCompressorNameLen = 256;
constexpr uint64_t kMaxPageBytes = 1ull << 31;
constexpr uint64_t kMaxTotalBytes = 1ull << 46;

/// Per-page descriptor: pages are independent 1-D arrays (column-store
/// view), so dimension-hungry methods fall back to their 1-D mode exactly
/// as §6.1.5 describes for column stores.
DataDesc PageDesc(const DataDesc& file_desc, size_t page_bytes) {
  DataDesc d;
  d.dtype = file_desc.dtype;
  d.extent = {page_bytes / DTypeSize(file_desc.dtype)};
  d.precision_digits = file_desc.precision_digits;
  return d;
}

void AppendHeaderVarint(Buffer* header, uint64_t v) {
  PutVarint64(header, v);
}

}  // namespace

Status PagedFile::Write(const std::string& path, ByteSpan data,
                        const DataDesc& desc, const Options& options,
                        WriteInfo* info) {
  const bool raw = options.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto r = CompressorRegistry::Global().Create(options.compressor,
                                                 options.config);
    if (!r.ok()) return r.status();
    comp = std::move(r).TakeValue();
  }

  if (data.size() != desc.num_bytes()) {
    return Status::InvalidArgument(
        "paged file: data size does not match descriptor");
  }
  const size_t esize = DTypeSize(desc.dtype);
  size_t page = options.page_size / esize * esize;
  if (page == 0) page = esize;
  if (page > kMaxPageBytes) {
    return Status::InvalidArgument("paged file: page size too large");
  }
  size_t npages = (data.size() + page - 1) / page;
  if (data.empty()) npages = 0;

  // Header: magic, compressor name, page size, desc, page directory.
  Buffer header;
  PutFixed(&header, kMagic);
  AppendHeaderVarint(&header, options.compressor.size());
  header.Append(options.compressor.data(), options.compressor.size());
  AppendHeaderVarint(&header, page);
  header.PushBack(desc.dtype == DType::kFloat64 ? 1 : 0);
  header.PushBack(static_cast<uint8_t>(desc.precision_digits));
  AppendHeaderVarint(&header, desc.extent.size());
  for (uint64_t e : desc.extent) AppendHeaderVarint(&header, e);
  AppendHeaderVarint(&header, npages);

  std::vector<Buffer> pages(npages);
  for (size_t p = 0; p < npages; ++p) {
    size_t begin = p * page;
    size_t len = std::min(page, data.size() - begin);
    ByteSpan chunk = data.subspan(begin, len);
    if (raw) {
      pages[p].Append(chunk);
    } else {
      FCB_RETURN_IF_ERROR(
          comp->Compress(chunk, PageDesc(desc, len), &pages[p]));
    }
  }
  for (const auto& pg : pages) AppendHeaderVarint(&header, pg.size());

  // Assemble the whole container and publish it atomically (temp file +
  // rename + dir fsync): a crash mid-write can leave a stale .tmp behind
  // but never a torn container under `path` — which is what lets a
  // manifest written *after* its column files reference them safely.
  Buffer out;
  out.Reserve(header.size());
  out.Append(header.span());
  for (const auto& pg : pages) out.Append(pg.span());
  if (info != nullptr) {
    info->file_hash = XxHash64(out.span());
    info->file_bytes = out.size();
  }
  return fs::WriteFileAtomic(path, out.span(), options.durable);
}

namespace {

struct ParsedHeader {
  std::string compressor;
  size_t page = 0;
  DataDesc desc;
  std::vector<uint64_t> page_sizes;
  size_t payload_offset = 0;
};

/// Parses and *fully validates* the header. Every length read from the
/// file is compared overflow-safely (`len > size - off` with off <= size,
/// never `off + len > size`, which wraps for hostile 64-bit lengths) and
/// bounded by a plausibility cap, and the page directory is checked for
/// internal consistency — page count vs. extent, directory sum vs. file
/// size — so the decode loops below cannot be steered out of bounds.
Result<ParsedHeader> ParseHeader(ByteSpan file) {
  ParsedHeader h;
  size_t off = 0;
  uint32_t magic = 0;
  if (!GetFixed(file, &off, &magic) || magic != kMagic) {
    return Status::Corruption("paged file: bad magic");
  }
  uint64_t name_len = 0;
  if (!GetVarint64(file, &off, &name_len) ||
      name_len > kMaxCompressorNameLen || name_len > file.size() - off) {
    return Status::Corruption("paged file: bad compressor name");
  }
  h.compressor.assign(reinterpret_cast<const char*>(file.data() + off),
                      name_len);
  off += name_len;
  uint64_t page = 0;
  if (!GetVarint64(file, &off, &page) || page == 0 || page > kMaxPageBytes) {
    return Status::Corruption("paged file: bad page size");
  }
  h.page = page;
  uint8_t dtype = 0, digits = 0;
  if (!GetFixed(file, &off, &dtype) || !GetFixed(file, &off, &digits)) {
    return Status::Corruption("paged file: bad dtype");
  }
  h.desc.dtype = dtype ? DType::kFloat64 : DType::kFloat32;
  h.desc.precision_digits = digits;
  uint64_t rank = 0;
  if (!GetVarint64(file, &off, &rank) || rank > 8) {
    return Status::Corruption("paged file: bad rank");
  }
  h.desc.extent.resize(rank);
  uint64_t total_elems = rank == 0 ? 0 : 1;
  for (auto& e : h.desc.extent) {
    if (!GetVarint64(file, &off, &e) ||
        __builtin_mul_overflow(total_elems, e, &total_elems)) {
      return Status::Corruption("paged file: bad extent");
    }
  }
  uint64_t total_bytes = 0;
  if (__builtin_mul_overflow(total_elems,
                             uint64_t{DTypeSize(h.desc.dtype)},
                             &total_bytes) ||
      total_bytes > kMaxTotalBytes) {
    return Status::Corruption("paged file: implausible array size");
  }
  uint64_t npages = 0;
  if (!GetVarint64(file, &off, &npages) ||
      npages != (total_bytes + page - 1) / page) {
    return Status::Corruption("paged file: page count mismatch");
  }
  h.page_sizes.resize(npages);
  uint64_t dir_sum = 0;
  for (auto& s : h.page_sizes) {
    if (!GetVarint64(file, &off, &s) ||
        __builtin_add_overflow(dir_sum, s, &dir_sum)) {
      return Status::Corruption("paged file: bad page directory");
    }
  }
  h.payload_offset = off;
  if (dir_sum > file.size() - off) {
    return Status::Corruption("paged file: truncated pages");
  }
  return h;
}

}  // namespace

Result<Buffer> PagedFile::Read(const std::string& path, ReadTiming* timing) {
  Timer io_timer;
  auto file_r = fs::ReadFile(path);
  if (!file_r.ok()) return file_r.status();
  Buffer file = std::move(file_r).TakeValue();
  if (timing != nullptr) timing->io_seconds = io_timer.ElapsedSeconds();

  auto hr = ParseHeader(file.span());
  if (!hr.ok()) return hr.status();
  const ParsedHeader& h = hr.value();

  const bool raw = h.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto cr = CompressorRegistry::Global().Create(h.compressor);
    if (!cr.ok()) return cr.status();
    comp = std::move(cr).TakeValue();
  }

  Timer decode_timer;
  Buffer out;
  uint64_t total_bytes = h.desc.num_bytes();
  out.Reserve(total_bytes);
  size_t off = h.payload_offset;
  uint64_t remaining = total_bytes;
  for (size_t p = 0; p < h.page_sizes.size(); ++p) {
    if (h.page_sizes[p] > file.size() - off) {
      return Status::Corruption("paged file: truncated pages");
    }
    ByteSpan page_bytes = file.span().subspan(off, h.page_sizes[p]);
    off += h.page_sizes[p];
    size_t logical = static_cast<size_t>(
        std::min<uint64_t>(h.page, remaining));
    if (raw) {
      out.Append(page_bytes);
    } else {
      FCB_RETURN_IF_ERROR(
          comp->Decompress(page_bytes, PageDesc(h.desc, logical), &out));
    }
    remaining -= logical;
  }
  if (timing != nullptr) {
    timing->decode_seconds = decode_timer.ElapsedSeconds();
    timing->decoded_bytes = out.size();
  }
  if (out.size() != total_bytes) {
    return Status::Corruption("paged file: size mismatch after decode");
  }
  return out;
}

Result<Buffer> PagedFile::ReadByteRange(const std::string& path,
                                        uint64_t offset, uint64_t length,
                                        ReadTiming* timing) {
  Timer io_timer;
  auto file_r = fs::ReadFile(path);
  if (!file_r.ok()) return file_r.status();
  Buffer file = std::move(file_r).TakeValue();
  if (timing != nullptr) timing->io_seconds = io_timer.ElapsedSeconds();

  auto hr = ParseHeader(file.span());
  if (!hr.ok()) return hr.status();
  const ParsedHeader& h = hr.value();
  const uint64_t total_bytes = h.desc.num_bytes();
  if (offset > total_bytes || length > total_bytes - offset) {
    return Status::OutOfRange("paged file: byte range past end of array");
  }

  Timer decode_timer;
  Buffer out;
  if (length == 0) return out;
  const size_t first_page = static_cast<size_t>(offset / h.page);
  const size_t last_page = static_cast<size_t>((offset + length - 1) / h.page);
  if (last_page >= h.page_sizes.size()) {
    return Status::Corruption("paged file: page directory short of range");
  }

  const bool raw = h.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto cr = CompressorRegistry::Global().Create(h.compressor);
    if (!cr.ok()) return cr.status();
    comp = std::move(cr).TakeValue();
  }

  size_t page_start = h.payload_offset;
  for (size_t p = 0; p < first_page; ++p) page_start += h.page_sizes[p];
  uint64_t page_raw_begin = static_cast<uint64_t>(first_page) * h.page;
  Buffer decoded;  // raw bytes of the touched pages only
  for (size_t p = first_page; p <= last_page; ++p) {
    if (h.page_sizes[p] > file.size() - page_start) {
      return Status::Corruption("paged file: truncated pages");
    }
    ByteSpan page_bytes = file.span().subspan(page_start, h.page_sizes[p]);
    page_start += h.page_sizes[p];
    size_t logical = static_cast<size_t>(
        std::min<uint64_t>(h.page, total_bytes - uint64_t(p) * h.page));
    if (raw) {
      decoded.Append(page_bytes);
    } else {
      size_t before = decoded.size();
      FCB_RETURN_IF_ERROR(
          comp->Decompress(page_bytes, PageDesc(h.desc, logical), &decoded));
      if (decoded.size() - before != logical) {
        return Status::Corruption("paged file: page size mismatch");
      }
    }
  }
  if (decoded.size() < offset - page_raw_begin + length) {
    return Status::Corruption("paged file: short page decode");
  }
  out.Append(decoded.data() + (offset - page_raw_begin), length);
  if (timing != nullptr) {
    timing->decode_seconds = decode_timer.ElapsedSeconds();
    timing->decoded_bytes = decoded.size();
  }
  return out;
}

Result<DataDesc> PagedFile::ReadDesc(const std::string& path) {
  auto file_r = fs::ReadFile(path);
  if (!file_r.ok()) return file_r.status();
  auto hr = ParseHeader(file_r.value().span());
  if (!hr.ok()) return hr.status();
  return hr.value().desc;
}

Result<uint64_t> PagedFile::FileSize(const std::string& path) {
  return fs::FileSize(path);
}

}  // namespace fcbench::db
