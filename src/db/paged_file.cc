#include "db/paged_file.h"

#include <cstdio>
#include <vector>

#include "util/bitio.h"
#include "util/timer.h"

namespace fcbench::db {

namespace {

constexpr uint32_t kMagic = 0x46434246;  // "FCBF"

/// Per-page descriptor: pages are independent 1-D arrays (column-store
/// view), so dimension-hungry methods fall back to their 1-D mode exactly
/// as §6.1.5 describes for column stores.
DataDesc PageDesc(const DataDesc& file_desc, size_t page_bytes) {
  DataDesc d;
  d.dtype = file_desc.dtype;
  d.extent = {page_bytes / DTypeSize(file_desc.dtype)};
  d.precision_digits = file_desc.precision_digits;
  return d;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void AppendHeaderVarint(Buffer* header, uint64_t v) {
  PutVarint64(header, v);
}

}  // namespace

Status PagedFile::Write(const std::string& path, ByteSpan data,
                        const DataDesc& desc, const Options& options) {
  const bool raw = options.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto r = CompressorRegistry::Global().Create(options.compressor,
                                                 options.config);
    if (!r.ok()) return r.status();
    comp = std::move(r).TakeValue();
  }

  const size_t esize = DTypeSize(desc.dtype);
  size_t page = options.page_size / esize * esize;
  if (page == 0) page = esize;
  size_t npages = (data.size() + page - 1) / page;
  if (data.empty()) npages = 0;

  // Header: magic, compressor name, page size, desc, page directory.
  Buffer header;
  PutFixed(&header, kMagic);
  AppendHeaderVarint(&header, options.compressor.size());
  header.Append(options.compressor.data(), options.compressor.size());
  AppendHeaderVarint(&header, page);
  header.PushBack(desc.dtype == DType::kFloat64 ? 1 : 0);
  header.PushBack(static_cast<uint8_t>(desc.precision_digits));
  AppendHeaderVarint(&header, desc.extent.size());
  for (uint64_t e : desc.extent) AppendHeaderVarint(&header, e);
  AppendHeaderVarint(&header, npages);

  std::vector<Buffer> pages(npages);
  for (size_t p = 0; p < npages; ++p) {
    size_t begin = p * page;
    size_t len = std::min(page, data.size() - begin);
    ByteSpan chunk = data.subspan(begin, len);
    if (raw) {
      pages[p].Append(chunk);
    } else {
      FCB_RETURN_IF_ERROR(
          comp->Compress(chunk, PageDesc(desc, len), &pages[p]));
    }
  }
  for (const auto& pg : pages) AppendHeaderVarint(&header, pg.size());

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(header.data(), 1, header.size(), f.get()) !=
      header.size()) {
    return Status::IoError("short header write: " + path);
  }
  for (const auto& pg : pages) {
    if (std::fwrite(pg.data(), 1, pg.size(), f.get()) != pg.size()) {
      return Status::IoError("short page write: " + path);
    }
  }
  return Status::OK();
}

namespace {

struct ParsedHeader {
  std::string compressor;
  size_t page = 0;
  DataDesc desc;
  std::vector<uint64_t> page_sizes;
  size_t payload_offset = 0;
};

Result<ParsedHeader> ParseHeader(ByteSpan file) {
  ParsedHeader h;
  size_t off = 0;
  uint32_t magic = 0;
  if (!GetFixed(file, &off, &magic) || magic != kMagic) {
    return Status::Corruption("paged file: bad magic");
  }
  uint64_t name_len = 0;
  if (!GetVarint64(file, &off, &name_len) || off + name_len > file.size()) {
    return Status::Corruption("paged file: bad compressor name");
  }
  h.compressor.assign(reinterpret_cast<const char*>(file.data() + off),
                      name_len);
  off += name_len;
  uint64_t page = 0;
  if (!GetVarint64(file, &off, &page) || page == 0) {
    return Status::Corruption("paged file: bad page size");
  }
  h.page = page;
  uint8_t dtype = 0, digits = 0;
  if (!GetFixed(file, &off, &dtype) || !GetFixed(file, &off, &digits)) {
    return Status::Corruption("paged file: bad dtype");
  }
  h.desc.dtype = dtype ? DType::kFloat64 : DType::kFloat32;
  h.desc.precision_digits = digits;
  uint64_t rank = 0;
  if (!GetVarint64(file, &off, &rank) || rank > 8) {
    return Status::Corruption("paged file: bad rank");
  }
  h.desc.extent.resize(rank);
  for (auto& e : h.desc.extent) {
    if (!GetVarint64(file, &off, &e)) {
      return Status::Corruption("paged file: bad extent");
    }
  }
  uint64_t npages = 0;
  if (!GetVarint64(file, &off, &npages)) {
    return Status::Corruption("paged file: bad page count");
  }
  h.page_sizes.resize(npages);
  for (auto& s : h.page_sizes) {
    if (!GetVarint64(file, &off, &s)) {
      return Status::Corruption("paged file: bad page directory");
    }
  }
  h.payload_offset = off;
  return h;
}

Result<Buffer> ReadWholeFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Status::IoError("cannot stat: " + path);
  Buffer buf(static_cast<size_t>(size));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IoError("short read: " + path);
  }
  return buf;
}

}  // namespace

Result<Buffer> PagedFile::Read(const std::string& path, ReadTiming* timing) {
  Timer io_timer;
  auto file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  Buffer file = std::move(file_r).TakeValue();
  if (timing != nullptr) timing->io_seconds = io_timer.ElapsedSeconds();

  auto hr = ParseHeader(file.span());
  if (!hr.ok()) return hr.status();
  const ParsedHeader& h = hr.value();

  const bool raw = h.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto cr = CompressorRegistry::Global().Create(h.compressor);
    if (!cr.ok()) return cr.status();
    comp = std::move(cr).TakeValue();
  }

  Timer decode_timer;
  Buffer out;
  uint64_t total_bytes = h.desc.num_bytes();
  out.Reserve(total_bytes);
  size_t off = h.payload_offset;
  uint64_t remaining = total_bytes;
  for (size_t p = 0; p < h.page_sizes.size(); ++p) {
    if (off + h.page_sizes[p] > file.size()) {
      return Status::Corruption("paged file: truncated pages");
    }
    ByteSpan page_bytes = file.span().subspan(off, h.page_sizes[p]);
    off += h.page_sizes[p];
    size_t logical = static_cast<size_t>(
        std::min<uint64_t>(h.page, remaining));
    if (raw) {
      out.Append(page_bytes);
    } else {
      FCB_RETURN_IF_ERROR(
          comp->Decompress(page_bytes, PageDesc(h.desc, logical), &out));
    }
    remaining -= logical;
  }
  if (timing != nullptr) {
    timing->decode_seconds = decode_timer.ElapsedSeconds();
    timing->decoded_bytes = out.size();
  }
  if (out.size() != total_bytes) {
    return Status::Corruption("paged file: size mismatch after decode");
  }
  return out;
}

Result<Buffer> PagedFile::ReadByteRange(const std::string& path,
                                        uint64_t offset, uint64_t length,
                                        ReadTiming* timing) {
  Timer io_timer;
  auto file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  Buffer file = std::move(file_r).TakeValue();
  if (timing != nullptr) timing->io_seconds = io_timer.ElapsedSeconds();

  auto hr = ParseHeader(file.span());
  if (!hr.ok()) return hr.status();
  const ParsedHeader& h = hr.value();
  const uint64_t total_bytes = h.desc.num_bytes();
  if (offset > total_bytes || length > total_bytes - offset) {
    return Status::OutOfRange("paged file: byte range past end of array");
  }

  Timer decode_timer;
  Buffer out;
  if (length == 0) return out;
  const size_t first_page = static_cast<size_t>(offset / h.page);
  const size_t last_page = static_cast<size_t>((offset + length - 1) / h.page);
  if (last_page >= h.page_sizes.size()) {
    return Status::Corruption("paged file: page directory short of range");
  }

  const bool raw = h.compressor == "none";
  std::unique_ptr<Compressor> comp;
  if (!raw) {
    auto cr = CompressorRegistry::Global().Create(h.compressor);
    if (!cr.ok()) return cr.status();
    comp = std::move(cr).TakeValue();
  }

  size_t page_start = h.payload_offset;
  for (size_t p = 0; p < first_page; ++p) page_start += h.page_sizes[p];
  uint64_t page_raw_begin = static_cast<uint64_t>(first_page) * h.page;
  Buffer decoded;  // raw bytes of the touched pages only
  for (size_t p = first_page; p <= last_page; ++p) {
    if (page_start + h.page_sizes[p] > file.size()) {
      return Status::Corruption("paged file: truncated pages");
    }
    ByteSpan page_bytes = file.span().subspan(page_start, h.page_sizes[p]);
    page_start += h.page_sizes[p];
    size_t logical = static_cast<size_t>(
        std::min<uint64_t>(h.page, total_bytes - uint64_t(p) * h.page));
    if (raw) {
      decoded.Append(page_bytes);
    } else {
      size_t before = decoded.size();
      FCB_RETURN_IF_ERROR(
          comp->Decompress(page_bytes, PageDesc(h.desc, logical), &decoded));
      if (decoded.size() - before != logical) {
        return Status::Corruption("paged file: page size mismatch");
      }
    }
  }
  if (decoded.size() < offset - page_raw_begin + length) {
    return Status::Corruption("paged file: short page decode");
  }
  out.Append(decoded.data() + (offset - page_raw_begin), length);
  if (timing != nullptr) {
    timing->decode_seconds = decode_timer.ElapsedSeconds();
    timing->decoded_bytes = decoded.size();
  }
  return out;
}

Result<DataDesc> PagedFile::ReadDesc(const std::string& path) {
  auto file_r = ReadWholeFile(path);
  if (!file_r.ok()) return file_r.status();
  auto hr = ParseHeader(file_r.value().span());
  if (!hr.ok()) return hr.status();
  return hr.value().desc;
}

Result<uint64_t> PagedFile::FileSize(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  if (size < 0) return Status::IoError("cannot stat: " + path);
  return static_cast<uint64_t>(size);
}

}  // namespace fcbench::db
