#ifndef FCBENCH_DB_DATAFRAME_H_
#define FCBENCH_DB_DATAFRAME_H_

#include <string>
#include <vector>

#include "core/format.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::db {

/// Minimal in-memory columnar dataframe — the Pandas stand-in of the
/// paper's simulated database (§5.1.2). Values are held as doubles
/// regardless of on-disk precision, mirroring how Pandas materializes
/// float columns.
class DataFrame {
 public:
  DataFrame() = default;

  /// Builds a dataframe from raw element bytes. A rank-2 extent
  /// {rows, cols} produces `cols` named columns (c0, c1, ...); rank 1
  /// produces a single column "c0".
  static Result<DataFrame> FromBytes(ByteSpan data, const DataDesc& desc);

  /// Builds a dataframe from named, equally-sized column vectors (the
  /// ColumnStore read path).
  static Result<DataFrame> FromColumns(std::vector<std::string> names,
                                       std::vector<std::vector<double>> cols);

  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<double>& column(size_t i) const { return columns_[i]; }
  const std::string& column_name(size_t i) const { return names_[i]; }

  /// Full-table-scan filter: counts rows where column `col` <= threshold
  /// (the paper's df.loc[df.A <= v] micro-query, footnote 14).
  uint64_t CountLessEqual(size_t col, double threshold) const;

  /// Sum of column `col` over rows where it is <= threshold (aggregation
  /// variant of the scan).
  double SumLessEqual(size_t col, double threshold) const;

  /// Equal-width histogram bin edges of column `col` (the paper derives
  /// its query constants from a 10-bin histogram of df.A).
  std::vector<double> HistogramEdges(size_t col, int bins) const;

 private:
  size_t rows_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace fcbench::db

#endif  // FCBENCH_DB_DATAFRAME_H_
