#ifndef FCBENCH_DB_COLUMN_STORE_H_
#define FCBENCH_DB_COLUMN_STORE_H_

#include <string>
#include <vector>

#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/status.h"

namespace fcbench::db {

/// Multi-column table persisted as one PagedFile per column plus a
/// manifest — the column-store layout of the paper's takeaway for
/// database designers (§7.2: "many algorithms ... can compress 1-D
/// arrays for column-based databases without degrading compression
/// ratio"). Each column picks its own compression method, so a table can
/// mix, say, Gorilla for a slowly-drifting sensor column with
/// bitshuffle::zstd for a noisy one.
///
/// On disk:
///   <prefix>.manifest          column directory (names + resolved methods)
///   <prefix>.<index>.col       one PagedFile per column
class ColumnStore {
 public:
  /// Write-side description of one column.
  struct ColumnSpec {
    std::string name;
    /// Registry name of the compression filter ("none" = raw pages).
    /// The auto selectors ("auto", "auto-speed", "auto-ratio") are
    /// accepted: Write probes the column's own bytes through
    /// select::Selector and persists the winning *concrete* method in
    /// the manifest footer, so readers never re-run selection.
    std::string compressor = "none";
    DType dtype = DType::kFloat64;
    /// Decimal digits for BUFF's lossless bound; 0 = full precision.
    int precision_digits = 0;
    /// Values, converted to the column dtype on write.
    std::vector<double> values = {};
  };

  /// Read-side timing, aggregated over the touched columns.
  struct ReadStats {
    double io_seconds = 0;
    double decode_seconds = 0;
    uint64_t bytes_on_disk = 0;
    uint64_t bytes_decoded = 0;
  };

  /// Writes `columns` (all the same length) under `prefix`. Columns are
  /// converted and compressed in parallel on the shared pool — one task
  /// per column, so a wide table saturates the host even when every
  /// column uses a serial method.
  static Status Write(const std::string& prefix,
                      const std::vector<ColumnSpec>& columns,
                      size_t page_size = 64 << 10);

  /// Lists the column names recorded in the manifest.
  static Result<std::vector<std::string>> ListColumns(
      const std::string& prefix);

  /// Lists the per-column compression methods recorded in the manifest
  /// footer, in column order. Auto-selected columns report the concrete
  /// method the selector chose at write time (never "auto*").
  static Result<std::vector<std::string>> ListMethods(
      const std::string& prefix);

  /// Reads the named columns (projection pushdown: unrequested columns
  /// are never opened) into a DataFrame whose column order matches
  /// `names`. Empty `names` reads every column.
  static Result<DataFrame> Read(const std::string& prefix,
                                const std::vector<std::string>& names = {},
                                ReadStats* stats = nullptr);

  /// Reads rows [row_begin, row_begin + row_count) of one column,
  /// decoding only the pages that overlap the range (chunk-granular
  /// pushdown for point/range queries; the rest of the column is never
  /// decompressed).
  static Result<std::vector<double>> ReadRows(const std::string& prefix,
                                              const std::string& column,
                                              uint64_t row_begin,
                                              uint64_t row_count,
                                              ReadStats* stats = nullptr);

  /// Re-verifies the table's integrity from disk: the manifest checksum,
  /// and — for manifests that record them (v3+) — every column file's
  /// size and whole-file xxh64 against the values captured at write
  /// time. A mismatch returns Corruption naming the first bad file; a
  /// missing file returns the underlying IO error. This is the scrub
  /// primitive: it detects any bit flip anywhere in the table, including
  /// in pages an ordinary decode would accept (e.g. "none"-compressed
  /// columns have no other checksum).
  static Status Verify(const std::string& prefix);

  /// Removes all files written under `prefix`.
  static Status Drop(const std::string& prefix);
};

}  // namespace fcbench::db

#endif  // FCBENCH_DB_COLUMN_STORE_H_
