#ifndef FCBENCH_DB_QUERY_H_
#define FCBENCH_DB_QUERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "db/dataframe.h"
#include "util/status.h"

namespace fcbench::db {

/// Comparison operators for scan predicates. The paper's micro-benchmark
/// (§6.2.2, footnote 14) uses `df.A <= v`; the engine generalizes to the
/// operator set BUFF's sub-column scan supports plus range predicates, so
/// the pushdown comparison bench can run identical queries against both
/// execution paths.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,  // value in [low, high]
};

/// A single-column scan predicate.
struct ScanPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kLe;
  /// Comparison constant (lower bound for kBetween).
  double value = 0;
  /// Upper bound, used by kBetween only.
  double upper = 0;

  /// Evaluates the predicate against one value.
  bool Matches(double v) const;
};

/// Row-id selection vector produced by filters (sorted, unique).
using Selection = std::vector<uint32_t>;

/// Full-table-scan filter: returns the row ids matching `pred`.
Result<Selection> Filter(const DataFrame& df, const ScanPredicate& pred);

/// Conjunctive filter: rows matching *all* predicates. Evaluates the
/// first predicate as a scan and refines the selection with the rest,
/// which mirrors how a real engine would order a predicate pipeline.
Result<Selection> FilterAll(const DataFrame& df,
                            std::span<const ScanPredicate> preds);

/// Aggregate functions over a (possibly filtered) column scan.
enum class AggregateOp { kCount, kSum, kMin, kMax, kMean };

/// Computes `op` over column `column` of `df`, restricted to `selection`
/// when non-null. kMin/kMax of an empty selection return +/-infinity;
/// kMean returns 0.
Result<double> Aggregate(const DataFrame& df, size_t column, AggregateOp op,
                         const Selection* selection = nullptr);

/// Materializes the selected rows of one column (projection).
Result<std::vector<double>> Gather(const DataFrame& df, size_t column,
                                   const Selection& selection);

/// The paper's query workload (footnote 14): thresholds drawn from a
/// 10-bin histogram of the scanned column, one CountLessEqual scan per
/// bin edge. Returns total matching rows across the workload, so callers
/// can both time the workload and sanity-check the result.
uint64_t RunHistogramScanWorkload(const DataFrame& df, size_t column,
                                  int bins = 10);

}  // namespace fcbench::db

#endif  // FCBENCH_DB_QUERY_H_
