#ifndef FCBENCH_DB_LSM_LSM_ENGINE_H_
#define FCBENCH_DB_LSM_LSM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/format.h"
#include "db/lsm/memtable.h"
#include "db/lsm/wal.h"
#include "util/status.h"

namespace fcbench::db::lsm {

/// One column of the engine's fixed schema.
struct ColumnDef {
  std::string name;
  DType dtype = DType::kFloat64;
  /// BUFF's lossless decimal bound; 0 = full precision.
  int precision_digits = 0;
  /// Per-column override of EngineOptions::flush_compressor ("" = use
  /// the engine default). Auto selectors are accepted — each flushed
  /// segment then re-probes the column's current bytes.
  std::string compressor;
};

struct EngineOptions {
  /// Memtable watermark: a flush is scheduled once the buffered rows
  /// exceed this many bytes.
  size_t memtable_bytes = 1 << 20;
  /// WAL segment rotation watermark.
  size_t wal_segment_bytes = 1 << 20;
  /// fsync the WAL on every commit (group commit per AppendBatch). Off
  /// trades crash durability of the tail for raw append speed.
  bool sync_on_commit = true;
  /// Flush on the shared ThreadPool instead of the appending thread.
  bool background_flush = true;
  /// Method for freshly flushed segments; the online selector by default
  /// (each column probes its own bytes, PR 4).
  std::string flush_compressor = "auto";
  /// Method for compacted (cold) segments; ratio-biased re-compression.
  std::string compact_compressor = "auto-ratio";
  /// PagedFile page size inside segments.
  size_t page_size = 64 << 10;
  /// Auto-compaction trigger: after a flush, a trailing run of at least
  /// this many small segments is merged into one. 0 disables.
  size_t compact_fanout = 4;
  /// A segment is "small" (compaction candidate) while it has at most
  /// this many rows; 0 = derived from memtable_bytes (4 memtables).
  uint64_t compact_small_rows = 0;
  /// Attempts for each background IO step (segment write, manifest
  /// publish, compaction write). Only transient IO errors are retried;
  /// ENOSPC and corruption fail immediately. Minimum 1.
  int io_retry_attempts = 3;
  /// Base of the exponential backoff between retries (1, 2, 4, ... ms);
  /// 0 retries immediately (tests). Backoff waits are interruptible:
  /// Close()/destruction cancels them instead of sleeping out the ladder.
  int io_retry_backoff_ms = 1;
  /// Invoked off-lock, from the flushing thread, after a flush publishes
  /// its segment, with the byte size of the memtable that was released.
  /// The sharded engine wires this to its admission budget so flushed
  /// bytes return to the pool; a failed flush (memtable retained,
  /// engine degraded) deliberately does NOT fire it.
  std::function<void(size_t bytes)> on_memtable_released;
  /// Stall-watchdog budget for flush/compaction/scrub, in milliseconds:
  /// an operation still running past this fires a `stall` event, the
  /// obs.watchdog.stalls counter, and a stderr dump of open spans plus
  /// the EventTrace tail. 0 = the FCBENCH_WATCHDOG_MS default (30 s);
  /// negative disables the watchdog for this engine.
  int64_t watchdog_budget_ms = 0;
};

/// Cancellation channel for RetryIo's exponential-backoff waits: Close()
/// and the destructor set `cancelled` and notify, so shutdown interrupts
/// a retry ladder mid-wait instead of sleeping it out. Separate from the
/// engine mutex because RetryIo runs both with and without mu_ held.
struct RetryCancel {
  std::mutex mu;
  std::condition_variable cv;
  bool cancelled = false;
};

struct SegmentInfo {
  uint64_t id = 0;
  uint64_t rows = 0;
  /// 0 for fresh flushes; each compaction of a run records
  /// max(levels) + 1 — the tier of the merged segment.
  uint32_t level = 0;
};

/// A segment the scrubber found corrupt and moved aside. Its files live
/// under `<dir>/quarantine/` for post-mortem; the data is no longer
/// served (it cannot be trusted) but the rest of the store stays online.
struct QuarantinedSegment {
  uint64_t id = 0;
  /// Rows the segment held when it was live (now unavailable).
  uint64_t rows = 0;
  /// First verification failure, as recorded in the engine manifest.
  std::string reason;
};

/// Point-in-time per-engine activity totals (IngestEngine::stats()).
/// Unlike the process-wide obs::MetricsRegistry — which aggregates over
/// every engine in the process — these are scoped to one engine, so the
/// sharded engine's Health() can attribute work to individual shards.
struct EngineStats {
  uint64_t append_batches = 0;
  uint64_t append_rows = 0;
  /// Wall nanos spent inside AppendBatch (WAL commit + memtable insert).
  uint64_t append_nanos = 0;
  uint64_t flushes = 0;          // published segments
  uint64_t flush_failures = 0;   // flushes that exhausted retries
  uint64_t flush_raw_bytes = 0;  // memtable bytes entering flushes
  uint64_t flush_segment_bytes = 0;  // compressed bytes leaving flushes
  uint64_t compactions = 0;
  uint64_t compact_in_bytes = 0;
  uint64_t compact_out_bytes = 0;
  /// RetryIo attempts beyond the first try (i.e. actual retries).
  uint64_t retry_attempts = 0;
  uint64_t quarantined_segments = 0;
};

/// Result of one IngestEngine::Scrub pass.
struct ScrubReport {
  /// Segments whose files were re-read and checksum-verified.
  uint64_t segments_checked = 0;
  /// WAL records that replayed with valid checksums.
  uint64_t wal_records_verified = 0;
  /// False when WAL replay stopped early (torn tail or corrupt record).
  bool wal_clean = true;
  /// Segments quarantined by THIS pass (already-quarantined ones are
  /// not re-checked).
  std::vector<uint64_t> quarantined_ids;
  /// Human-readable findings (one line per anomaly).
  std::vector<std::string> notes;
};

/// Crash-safe log-structured ingest engine (the ROADMAP item-1 tentpole):
///
///   append -> WAL (checksummed, fsync-batched, rotated)
///          -> MemTable (per-column buffer, size watermark)
///          -> flush on ThreadPool::Shared() into a ColumnStore segment
///             compressed by the online selector
///          -> tiered compaction merging small segments under auto-ratio
///
/// Layout under `dir`:
///   MANIFEST          engine state (schema, segment list, WAL floor),
///                     checksummed, published atomically
///   wal-<seq>.log     WAL segments (db/lsm/wal.h)
///   seg-<id>.*        one ColumnStore (manifest + .col files) per
///                     flushed segment
///
/// Durability protocol. Every batch is durable once AppendBatch returns
/// (WAL committed, one fsync per batch). A flush publishes in a strict
/// order: segment column files (atomic temp+rename+dir-fsync, via
/// PagedFile) -> segment ColumnStore manifest -> engine MANIFEST
/// (advancing the WAL floor) -> obsolete WAL segments deleted. A crash
/// between any two steps recovers to a consistent state: unreferenced
/// segment files are swept, and the WAL floor decides exactly which
/// records replay. Recovery is idempotent — recovering twice yields an
/// identical store.
class IngestEngine {
 public:
  /// Opens (creating or recovering) an engine at `dir`. On recovery the
  /// given schema must match the stored one; pass an empty schema to
  /// adopt the stored schema as-is.
  static Result<std::unique_ptr<IngestEngine>> Open(
      const std::string& dir, const std::vector<ColumnDef>& schema,
      const EngineOptions& options = {});

  /// Closes via Close(): interrupts retry backoffs and joins any
  /// in-flight flush. Does NOT flush the memtable: the WAL already made
  /// it durable, and the next Open replays it.
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Appends one row (one value per schema column). Equivalent to a
  /// one-row AppendBatch — i.e. one WAL commit (and fsync) per call;
  /// batch appends to amortize the sync.
  Status Append(const std::vector<double>& row);

  /// Appends `rows_row_major.size() / num_columns` rows as one atomic,
  /// durable unit: a single WAL record and a single commit. Either every
  /// row of the batch survives a crash or none does.
  ///
  /// Ack contract: OK means exactly "this batch is durably committed".
  /// A failed WAL commit (e.g. ENOSPC — typed ResourceExhausted) rejects
  /// only this batch; the engine stays writable once the condition
  /// clears. A background flush/compaction failure that exhausts its
  /// retries degrades the engine to READ-ONLY: the first Append after it
  /// fails fast with the sticky root cause (see background_error()),
  /// while reads keep serving everything acknowledged so far.
  Status AppendBatch(const std::vector<double>& rows_row_major);

  /// Synchronously flushes the memtable into a new segment (waits for
  /// any in-flight background flush first). No-op when empty.
  Status Flush();

  /// Starts a flush without waiting for it to finish: waits out any
  /// flush already in flight, swaps the memtable, and (with
  /// background_flush) hands the compress+publish work to
  /// ThreadPool::Shared(). The coordinated multi-shard Flush uses this
  /// to overlap every shard's flush before waiting on any of them.
  /// Without background_flush the flush still runs inline here.
  Status ScheduleFlush();

  /// Waits until no background flush is in flight; returns the sticky
  /// background error, if any.
  Status WaitForFlush();

  /// One compaction round: merges the first adjacent run of >= 2 small
  /// segments into one, re-compressed with `compact_compressor`. OK
  /// no-op when nothing qualifies.
  Status Compact();

  /// All values of `column`, oldest first: flushed segments in order,
  /// then the flushing (immutable) memtable, then the live memtable.
  /// Keeps serving after a background error (read-only degradation):
  /// every acknowledged row is either in a published segment, in a
  /// memtable (WAL-backed), or both.
  Result<std::vector<double>> ReadColumn(const std::string& column) const;

  /// Integrity scrub: re-reads every published segment and verifies its
  /// files against the checksums captured at write time (ColumnStore
  /// manifest v3), then re-verifies WAL record checksums. A segment that
  /// fails verification is removed from the serving set, recorded in the
  /// engine manifest, and its files are moved to `<dir>/quarantine/`;
  /// the remaining data keeps serving. Safe to run concurrently with
  /// appends and reads (it briefly blocks both for the manifest swap and
  /// the WAL check).
  Result<ScrubReport> Scrub();

  /// Interrupts any in-flight RetryIo backoff wait immediately: the
  /// retry in progress gives up with an "interrupted" status instead of
  /// finishing its ladder. Idempotent; Close() calls it first. A
  /// coordinated multi-shard Close interrupts every shard before
  /// closing any, so total shutdown latency is one backoff wait, not N.
  void InterruptRetries();

  /// Interrupts retries, waits for background work and readers to
  /// drain, and closes the WAL (reporting a failed final fsync).
  /// Idempotent; the destructor calls it. After Close the engine
  /// rejects appends, flushes, compactions and scrubs.
  Status Close();

  /// True once a background failure degraded the engine to read-only.
  bool read_only() const;
  /// The sticky background error (OK when healthy).
  Status background_error() const;
  /// Segments quarantined by scrubs, as recorded in the manifest.
  std::vector<QuarantinedSegment> quarantined() const;

  /// Total rows across segments and memtables.
  uint64_t rows() const;

  /// This engine's activity totals since Open (lock-free reads of
  /// relaxed atomics; safe concurrent with any operation).
  EngineStats stats() const;

  /// Bytes buffered in the live + immutable memtables (not yet published
  /// to a segment). The unit the sharded engine's admission budget
  /// charges.
  uint64_t buffered_bytes() const;

  std::vector<SegmentInfo> segments() const;
  const std::vector<ColumnDef>& schema() const { return schema_; }
  const std::string& dir() const { return dir_; }

 private:
  IngestEngine() = default;

  std::string SegPrefix(uint64_t id) const;
  Status PersistManifestLocked();
  /// Waits out any in-flight flush, then (if the memtable is non-empty)
  /// rotates the WAL, swaps the memtable to immutable and marks a flush
  /// in flight. Returns via *scheduled whether there is work to run.
  Status PrepareFlushLocked(std::unique_lock<std::mutex>& lk,
                            bool* scheduled);
  /// The heavy half: compress + publish the immutable memtable. Called
  /// off-lock (from the pool or the appending thread).
  void DoFlushAndPublish();
  void DeleteWalBelowFloor();
  /// Merges the first adjacent run of >= min_run small segments.
  /// *merged reports whether anything happened.
  Status CompactOnce(size_t min_run, bool* merged);
  uint64_t SmallRowsThresholdLocked() const;
  Status ApplyWalRecord(const WalRecord& rec, bool* stop);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::string dir_;
  std::vector<ColumnDef> schema_;
  EngineOptions opt_;

  std::unique_ptr<Wal> wal_;
  std::unique_ptr<MemTable> mem_;
  /// Memtable being flushed; readers still see it. Never mutated while
  /// set — the flusher and readers both only read it.
  std::shared_ptr<const MemTable> imm_;
  uint64_t imm_floor_ = 0;    // WAL floor once imm_ is published
  uint64_t imm_seg_id_ = 0;   // segment id reserved for imm_
  bool flush_inflight_ = false;
  bool compact_inflight_ = false;
  bool closed_ = false;
  /// Outstanding background flush tasks on the shared pool; the
  /// destructor waits for zero so a task never outlives the engine.
  int bg_tasks_ = 0;
  /// Readers currently copying state off-lock; compaction defers file
  /// deletion until they drain.
  mutable int active_readers_ = 0;

  uint64_t next_segment_id_ = 0;
  uint64_t wal_floor_ = 0;
  std::vector<SegmentInfo> segments_;
  std::vector<QuarantinedSegment> quarantined_;
  /// Sticky: set by a background flush/compaction failure that exhausted
  /// its retries. Appends fail fast with it; reads keep serving.
  Status bg_error_;
  /// Wakes RetryIo backoff waits on Close/InterruptRetries.
  mutable RetryCancel retry_cancel_;

  /// Relaxed-atomic cells behind stats(); written from append, flush,
  /// compaction, retry and scrub paths without taking mu_.
  struct StatsCells {
    std::atomic<uint64_t> append_batches{0};
    std::atomic<uint64_t> append_rows{0};
    std::atomic<uint64_t> append_nanos{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> flush_failures{0};
    std::atomic<uint64_t> flush_raw_bytes{0};
    std::atomic<uint64_t> flush_segment_bytes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> compact_in_bytes{0};
    std::atomic<uint64_t> compact_out_bytes{0};
    std::atomic<uint64_t> retry_attempts{0};
    std::atomic<uint64_t> quarantined_segments{0};
  };
  StatsCells stats_;
};

}  // namespace fcbench::db::lsm

#endif  // FCBENCH_DB_LSM_LSM_ENGINE_H_
