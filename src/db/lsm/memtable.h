#ifndef FCBENCH_DB_LSM_MEMTABLE_H_
#define FCBENCH_DB_LSM_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcbench::db::lsm {

/// In-memory per-column write buffer of the LSM ingest engine: rows
/// arrive row-major (one value per schema column) and are scattered into
/// per-column vectors, so a flush hands each column to the compressor as
/// one contiguous 1-D array — the layout every studied method wants
/// (paper §7.2). Values are held as f64; narrowing to an f32 column
/// happens once, at flush/read time, so WAL replay and live appends
/// agree bit-for-bit.
///
/// Not thread-safe; the engine serializes access under its mutex.
class MemTable {
 public:
  explicit MemTable(size_t num_columns);

  /// Appends `nrows` rows stored row-major at `rows` (nrows * columns
  /// doubles).
  void AppendRows(const double* rows, size_t nrows);

  size_t num_columns() const { return cols_.size(); }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Approximate heap footprint, compared against the engine's
  /// memtable watermark.
  size_t bytes() const { return rows_ * cols_.size() * sizeof(double); }

  const std::vector<double>& column(size_t i) const { return cols_[i]; }
  /// Moves column `i` out (flush path; the memtable is discarded after).
  std::vector<double> TakeColumn(size_t i) { return std::move(cols_[i]); }

 private:
  std::vector<std::vector<double>> cols_;
  size_t rows_ = 0;
};

}  // namespace fcbench::db::lsm

#endif  // FCBENCH_DB_LSM_MEMTABLE_H_
