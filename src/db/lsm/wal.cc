#include "db/lsm/wal.h"

#include <algorithm>
#include <cstdio>

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/bitio.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/timer.h"

namespace fcbench::db::lsm {

namespace {

/// Bytes of a record before the payload: u64 hash, u32 len, u8 type.
constexpr size_t kRecordHeaderBytes = 8 + 4 + 1;

}  // namespace

std::string Wal::SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool Wal::ParseSegmentFileName(const std::string& name, uint64_t* seq) {
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  size_t digits = 0;
  for (size_t i = 4; i + 4 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *seq = v;
  return true;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir, uint64_t seq,
                                       const Options& options) {
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->dir_ = dir;
  wal->options_ = options;
  wal->seq_ = seq;
  // The segment file itself is created lazily at the first Commit, so an
  // engine that never ingests leaves no empty WAL segments behind.
  return wal;
}

Status Wal::EnsureSegment() {
  if (segment_open_) return Status::OK();
  FCB_ASSIGN_OR_RETURN(
      file_, fs::AppendFile::Create(
                 fs::JoinPath(dir_, SegmentFileName(seq_)),
                 options_.sync_on_commit));
  Buffer header;
  PutFixed(&header, kMagic);
  PutVarint64(&header, kVersion);
  PutVarint64(&header, seq_);
  FCB_RETURN_IF_ERROR(file_.Append(header.span()));
  segment_open_ = true;
  return Status::OK();
}

Status Wal::Append(uint8_t type, ByteSpan payload) {
  if (!poison_.ok()) return poison_;
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("wal: record payload too large");
  }
  // Serialize into the pending batch: hash | len | type | payload, where
  // the hash covers everything after itself so a torn or bit-flipped
  // record can never verify.
  Buffer body;
  PutFixed(&body, static_cast<uint32_t>(payload.size()));
  body.PushBack(type);
  body.Append(payload);
  PutFixed(&pending_, XxHash64(body.span()));
  pending_.Append(body.span());
  return Status::OK();
}

Status Wal::Commit() {
  if (!poison_.ok()) return poison_;
  if (pending_.empty()) return Status::OK();
  static obs::Counter* commits =
      obs::MetricsRegistry::Global().GetCounter("wal.commits");
  static obs::Histogram* batch_bytes =
      obs::MetricsRegistry::Global().GetHistogram("wal.batch_bytes",
                                                  obs::Unit::kBytes);
  static obs::Histogram* commit_nanos =
      obs::MetricsRegistry::Global().GetHistogram("wal.commit_nanos",
                                                  obs::Unit::kNanos);
  static obs::Histogram* sync_nanos =
      obs::MetricsRegistry::Global().GetHistogram("wal.sync_nanos",
                                                  obs::Unit::kNanos);
  static obs::Counter* commit_bytes =
      obs::MetricsRegistry::Global().GetCounter("wal.commit_bytes");
  commits->Increment();
  batch_bytes->Record(pending_.size());
  commit_bytes->Add(pending_.size());
  obs::ScopedSpan span("wal.commit", pending_.size());
  Timer commit_timer;
  Status st = EnsureSegment();
  uint64_t good = 0;
  if (st.ok()) {
    good = file_.offset();
    const fail::Decision inj = FCB_FAILPOINT("wal.append");
    if (inj.fire) {
      st = fail::InjectedStatus("wal.append", inj,
                                fs::JoinPath(dir_, SegmentFileName(seq_)));
    }
    if (st.ok()) {
      obs::ScopedSpan append_span("wal.append", pending_.size());
      st = file_.Append(pending_.span());
    }
    if (st.ok() && options_.sync_on_commit) {
      obs::ScopedSpan sync_span("wal.sync");
      Timer sync_timer;
      st = file_.Sync();
      sync_nanos->Record(sync_timer.ElapsedNanos());
    }
  }
  // The batch is consumed on success and REJECTED on failure: a caller
  // whose commit errored was never acknowledged, so its records must not
  // resurrect inside a later batch.
  pending_.Clear();
  if (!st.ok()) {
    if (segment_open_) {
      // Heal: an unknown prefix of the batch may have landed (ENOSPC,
      // short write). Truncating back to the last committed offset makes
      // the segment a clean prefix of acknowledged records again, so the
      // WAL stays consistent and later commits stay replayable.
      Status heal = file_.TruncateTo(good);
      if (heal.ok() && options_.sync_on_commit) heal = file_.Sync();
      if (!heal.ok()) {
        poison_ = Status::IoError(
            "wal: segment " + SegmentFileName(seq_) +
            " poisoned by unhealed write failure (" + heal.message() +
            "); root cause: " + st.message());
      }
    }
    return st;
  }
  commit_nanos->Record(commit_timer.ElapsedNanos());
  if (file_.offset() >= options_.segment_bytes) {
    // A failed rotation must not fail the commit — the batch is already
    // durable. segment_open_ is false after any failure here, so the
    // next Commit simply retries creating the new segment.
    Status rotate_st = Rotate();
    (void)rotate_st;
  }
  return Status::OK();
}

Status Wal::Rotate() {
  obs::ScopedSpan span("wal.rotate", seq_ + 1);
  FCB_FAIL_RETURN("wal.rotate", fs::JoinPath(dir_, SegmentFileName(seq_)));
  obs::MetricsRegistry::Global().GetCounter("wal.rotations")->Increment();
  obs::EventTrace::Global().Record(obs::EventKind::kWalRotate, dir_,
                                   seq_ + 1, file_.offset());
  Status st;
  if (segment_open_) {
    if (options_.sync_on_commit) st = file_.Sync();
    Status close_st = file_.Close();
    if (st.ok()) st = close_st;
    // The handle is gone either way; leaving segment_open_ set on a
    // failed close would wedge every later append on a dead fd.
    segment_open_ = false;
  }
  ++seq_;
  // Create the new segment eagerly: every allocated sequence number gets
  // a file, so a hole inside the replayed range can only mean a lost
  // segment and WalReader's truncate-at-gap rule is always correct.
  Status ensure_st = EnsureSegment();
  if (st.ok()) st = ensure_st;
  return st;
}

Status Wal::Close() {
  Status st = Commit();
  if (segment_open_) {
    // AppendFile::Close fsyncs a durable file's unsynced tail and
    // reports the failure; the handle is released even on error.
    Status close_st = file_.Close();
    if (st.ok()) st = close_st;
    segment_open_ = false;
  }
  return st;
}

namespace {

/// Replays one segment file. Returns false (via *stop) when replay of
/// the whole log must end here: torn tail, corrupt record, or a header
/// that does not match the file name.
Status ReplaySegment(const std::string& path, uint64_t expect_seq,
                     std::vector<WalRecord>* out, bool* stop) {
  auto raw = fs::ReadFile(path);
  if (!raw.ok()) {
    // An IO *error* reading an existing segment is a hard replay failure,
    // never silent truncation: treating it as a torn tail would let the
    // caller resume, advance the WAL floor past the unread records, and
    // garbage-collect acknowledged data. (A crash-truncated file still
    // reads fine and is handled by the torn-tail rules below.)
    return raw.status();
  }
  ByteSpan in = raw.value().span();
  size_t off = 0;
  uint32_t magic = 0;
  uint64_t version = 0, seq = 0;
  if (!GetFixed(in, &off, &magic) || magic != Wal::kMagic ||
      !GetVarint64(in, &off, &version) || version != Wal::kVersion ||
      !GetVarint64(in, &off, &seq) || seq != expect_seq) {
    *stop = true;  // torn or foreign header: nothing of this segment counts
    return Status::OK();
  }
  while (off < in.size()) {
    if (in.size() - off < kRecordHeaderBytes) {
      *stop = true;  // torn mid-header
      return Status::OK();
    }
    uint64_t hash = 0;
    uint32_t len = 0;
    uint8_t type = 0;
    GetFixed(in, &off, &hash);
    const size_t body_off = off;
    GetFixed(in, &off, &len);
    GetFixed(in, &off, &type);
    if (len > Wal::kMaxRecordBytes || len > in.size() - off) {
      *stop = true;  // torn mid-payload or implausible length
      return Status::OK();
    }
    if (XxHash64(in.subspan(body_off, 4 + 1 + len)) != hash) {
      *stop = true;  // bit corruption; truncate here, keep the prefix
      return Status::OK();
    }
    WalRecord rec;
    rec.segment_seq = seq;
    rec.type = type;
    rec.payload = Buffer::FromSpan(in.subspan(off, len));
    off += len;
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace

Result<WalReader::Replay> WalReader::ReplayDir(const std::string& dir,
                                               uint64_t min_seq) {
  FCB_ASSIGN_OR_RETURN(std::vector<std::string> names, fs::ListDir(dir));
  std::vector<uint64_t> seqs;
  Replay replay;
  for (const auto& name : names) {
    uint64_t seq = 0;
    if (!Wal::ParseSegmentFileName(name, &seq)) continue;
    replay.any_segments = true;
    replay.max_seq_seen = std::max(replay.max_seq_seen, seq);
    if (seq >= min_seq) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  bool stop = false;
  for (size_t i = 0; i < seqs.size() && !stop; ++i) {
    if (i > 0 && seqs[i] != seqs[i - 1] + 1) {
      // A hole in the sequence: the prefix ends at the gap.
      replay.truncated = true;
      break;
    }
    FCB_RETURN_IF_ERROR(
        ReplaySegment(fs::JoinPath(dir, Wal::SegmentFileName(seqs[i])),
                      seqs[i], &replay.records, &stop));
  }
  replay.truncated = replay.truncated || stop;
  return replay;
}

}  // namespace fcbench::db::lsm
