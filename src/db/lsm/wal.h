#ifndef FCBENCH_DB_LSM_WAL_H_
#define FCBENCH_DB_LSM_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/fs.h"
#include "util/status.h"

namespace fcbench::db::lsm {

/// Append-only, checksummed, length-prefixed write-ahead log with
/// segment rotation — the durability backbone of the LSM ingest engine
/// (ROADMAP item 1; the log-structured design of the LogBase paper in
/// PAPERS.md, rotation/recovery shape after YTsaurus' changelogs).
///
/// Segment file `wal-<seq, 6 digits>.log`:
///   u32 magic "FCWL" | varint version=1 | varint seq
/// followed by records, each:
///   u64 xxh64 over (len,type,payload) | u32 len | u8 type | payload
///
/// Durability contract: Append() only buffers; Commit() appends the
/// buffered batch to the current segment with one write and — when
/// `sync_on_commit` — one fsync, so a commit covering many appended
/// records costs a single fsync (group commit). After Commit() returns
/// OK with `sync_on_commit`, the batch survives power loss.
///
/// Recovery contract (WalReader): a crash can tear the log only at the
/// tail. Replay verifies every record checksum and *truncates at the
/// first bad or incomplete record* — everything before it is returned,
/// everything after it is discarded, and the log as a whole is never
/// rejected. A missing segment in the sequence likewise ends replay at
/// the gap (prefix semantics). Recovered state is therefore always a
/// prefix of the committed record sequence.
class Wal {
 public:
  static constexpr uint32_t kMagic = 0x4C574346u;  // "FCWL"
  static constexpr uint64_t kVersion = 1;
  /// Record type tags. The WAL itself is payload-agnostic; the engine
  /// uses kTypeRows for serialized row batches.
  static constexpr uint8_t kTypeRows = 1;
  /// Upper bound a reader will accept for one record payload; a length
  /// field beyond it is treated as corruption, not an allocation request.
  static constexpr uint32_t kMaxRecordBytes = 64u << 20;

  struct Options {
    /// Rotate to a new segment once the current one exceeds this size.
    size_t segment_bytes = 4 << 20;
    /// fsync the segment on every Commit (group commit). Off = leave
    /// durability to the OS page cache (bench mode; crash loses tail).
    bool sync_on_commit = true;
  };

  /// "wal-000042.log" for seq 42 (zero padding keeps ListDir in order).
  static std::string SegmentFileName(uint64_t seq);
  /// Parses a segment file name; false for non-WAL names.
  static bool ParseSegmentFileName(const std::string& name, uint64_t* seq);

  /// Opens a WAL writing segment `seq` (created empty; recovery never
  /// appends to a pre-existing, possibly torn segment).
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           uint64_t seq,
                                           const Options& options);

  /// Buffers one record for the next Commit.
  Status Append(uint8_t type, ByteSpan payload);

  /// Writes all buffered records to the current segment, fsyncs once
  /// when configured, and rotates past the segment watermark.
  ///
  /// IO-error contract (group commit): a failed write or fsync REJECTS
  /// the whole buffered batch — the pending records are dropped, the
  /// error (typed; ENOSPC = ResourceExhausted) is returned, and the
  /// segment is healed by truncating back to the last committed offset,
  /// so earlier acknowledged records still replay and later commits
  /// append to a clean prefix. If healing itself fails the segment tail
  /// is in an unknown state and the WAL turns sticky-poisoned: every
  /// further Append/Commit fails fast with the root cause (recovery's
  /// prefix truncation still preserves all acknowledged records).
  Status Commit();

  /// Sticky error after a failed heal; OK in normal operation.
  const Status& poisoned() const { return poison_; }

  /// Forces subsequent records into a fresh segment (seq + 1). Used at
  /// flush time so every record of the flushed memtable lives in a
  /// segment strictly below the new sequence number.
  Status Rotate();

  /// Sequence number of the segment the next Commit writes to.
  uint64_t seq() const { return seq_; }

  Status Close();

 private:
  Status EnsureSegment();

  std::string dir_;
  Options options_;
  uint64_t seq_ = 0;
  bool segment_open_ = false;
  fs::AppendFile file_;
  Buffer pending_;
  Status poison_;  // sticky after a failed segment heal
};

/// One recovered WAL record.
struct WalRecord {
  uint64_t segment_seq = 0;
  uint8_t type = 0;
  Buffer payload;
};

class WalReader {
 public:
  struct Replay {
    std::vector<WalRecord> records;
    /// Highest segment seq seen on disk (valid or not); the writer
    /// reopens at max_seq_seen + 1. Meaningful only when any_segments.
    uint64_t max_seq_seen = 0;
    bool any_segments = false;
    /// True when replay stopped early at a torn/corrupt record or a
    /// sequence gap (the returned records are still a valid prefix).
    bool truncated = false;
  };

  /// Replays every record of the `wal-*.log` segments in `dir` with
  /// seq >= min_seq, in sequence order, with the prefix-truncation
  /// semantics described on Wal.
  static Result<Replay> ReplayDir(const std::string& dir, uint64_t min_seq);
};

}  // namespace fcbench::db::lsm

#endif  // FCBENCH_DB_LSM_WAL_H_
