#include "db/lsm/memtable.h"

namespace fcbench::db::lsm {

MemTable::MemTable(size_t num_columns) : cols_(num_columns) {}

void MemTable::AppendRows(const double* rows, size_t nrows) {
  const size_t ncols = cols_.size();
  for (size_t c = 0; c < ncols; ++c) {
    cols_[c].reserve(rows_ + nrows);
  }
  for (size_t r = 0; r < nrows; ++r) {
    const double* row = rows + r * ncols;
    for (size_t c = 0; c < ncols; ++c) cols_[c].push_back(row[c]);
  }
  rows_ += nrows;
}

}  // namespace fcbench::db::lsm
