#include "db/lsm/lsm_engine.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "db/column_store.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/bitio.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fcbench::db::lsm {

namespace {

constexpr uint32_t kEngineMagic = 0x4D4C4346u;  // "FCLM"
/// Engine manifest version: v2 added the quarantined-segment list (the
/// scrubber's findings must survive reopen, or a corrupt segment's files
/// would be swept as unreferenced and the evidence lost). v1 manifests
/// are still readable.
constexpr uint64_t kEngineVersion = 2;
constexpr const char* kManifestName = "MANIFEST";
/// Subdirectory corrupt segments are moved into (never deleted: the
/// files are evidence, and deletion cannot be undone by a false alarm).
constexpr const char* kQuarantineDir = "quarantine";
/// Longest run one compaction round will merge (bounds peak memory).
constexpr size_t kMaxCompactRun = 32;
/// Quarantine reasons are capped going into the manifest.
constexpr size_t kMaxReasonBytes = 256;

/// The errno a Status code corresponds to on the failure-injection and
/// real IO paths (failpoints inject EIO and ENOSPC); tags RetryIo
/// attempt spans so a trace shows WHY each attempt failed.
int StatusErrno(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
      return EIO;
    case StatusCode::kResourceExhausted:
      return ENOSPC;
    case StatusCode::kCorruption:
      return EBADMSG;
    default:
      return 0;
  }
}

const char* StatusErrnoName(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
      return "EIO";
    case StatusCode::kResourceExhausted:
      return "ENOSPC";
    case StatusCode::kCorruption:
      return "EBADMSG";
    default:
      return "err";
  }
}

struct ManifestState {
  std::vector<ColumnDef> schema;
  uint64_t next_segment_id = 0;
  uint64_t wal_floor = 0;
  std::vector<SegmentInfo> segments;
  std::vector<QuarantinedSegment> quarantined;
};

/// Runs `op` up to opt.io_retry_attempts times with exponential backoff,
/// retrying only transient IO errors (kIoError). ENOSPC (typed
/// ResourceExhausted) and Corruption are not transient and fail at once.
/// The backoff is a condition-variable wait on `cancel`, NOT a sleep:
/// Close()/destruction sets cancel.cancelled and wakes it, so shutting
/// an engine down never waits out the full backoff ladder. The final
/// failure is wrapped with `what` and the attempt count so a sticky
/// background error names both the step and the root cause.
///
/// Each retry (attempt beyond the first) bumps `retry_cell` (the owning
/// engine's per-instance tally), the process-wide lsm.retry.attempts
/// counter, and records a kRetryBackoff trace event whose detail is
/// `trace_detail` (the engine dir, so a post-mortem dump attributes the
/// ladder to a shard).
template <typename Op>
Status RetryIo(const EngineOptions& opt, RetryCancel& cancel,
               const std::string& what, const std::string& trace_detail,
               std::atomic<uint64_t>& retry_cell, Op&& op) {
  const int attempts = std::max(1, opt.io_retry_attempts);
  Status st;
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      retry_cell.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::Global()
          .GetCounter("lsm.retry.attempts")
          ->Increment();
      const uint64_t backoff_ms =
          opt.io_retry_backoff_ms > 0
              ? static_cast<uint64_t>(opt.io_retry_backoff_ms) << (i - 1)
              : 0;
      obs::EventTrace::Global().Record(obs::EventKind::kRetryBackoff,
                                       trace_detail,
                                       static_cast<uint64_t>(i), backoff_ms);
    }
    if (i > 0 && opt.io_retry_backoff_ms > 0) {
      std::unique_lock<std::mutex> lk(cancel.mu);
      const bool interrupted = cancel.cv.wait_for(
          lk, std::chrono::milliseconds(opt.io_retry_backoff_ms << (i - 1)),
          [&] { return cancel.cancelled; });
      if (interrupted) {
        return Status(st.ok() ? StatusCode::kIoError : st.code(),
                      what + " interrupted by Close during retry backoff" +
                          (st.ok() ? "" : ": " + st.message()));
      }
    }
    {
      // Every attempt is a child span; a failed one carries the errno
      // the failpoint (or real IO) produced, so a sampled trace shows
      // the whole retry ladder with per-attempt causes and the backoff
      // gaps between them.
      obs::ScopedSpan attempt("io.attempt", static_cast<uint64_t>(i + 1));
      st = op();
      if (!st.ok()) {
        attempt.SetArgs(static_cast<uint64_t>(i + 1),
                        static_cast<uint64_t>(StatusErrno(st.code())));
        attempt.SetTag(StatusErrnoName(st.code()));
      }
    }
    if (st.ok() || st.code() != StatusCode::kIoError) return st;
  }
  return Status(st.code(), what + " failed after " +
                               std::to_string(attempts) +
                               " attempts: " + st.message());
}

void SerializeManifest(const ManifestState& m, Buffer* out) {
  PutFixed(out, kEngineMagic);
  PutVarint64(out, kEngineVersion);
  PutVarint64(out, m.schema.size());
  for (const auto& c : m.schema) {
    PutVarint64(out, c.name.size());
    out->Append(c.name.data(), c.name.size());
    out->PushBack(c.dtype == DType::kFloat64 ? 1 : 0);
    out->PushBack(static_cast<uint8_t>(c.precision_digits));
  }
  PutVarint64(out, m.next_segment_id);
  PutVarint64(out, m.wal_floor);
  PutVarint64(out, m.segments.size());
  for (const auto& s : m.segments) {
    PutVarint64(out, s.id);
    PutVarint64(out, s.rows);
    PutVarint64(out, s.level);
  }
  PutVarint64(out, m.quarantined.size());
  for (const auto& q : m.quarantined) {
    PutVarint64(out, q.id);
    PutVarint64(out, q.rows);
    const size_t len = std::min(q.reason.size(), kMaxReasonBytes);
    PutVarint64(out, len);
    out->Append(q.reason.data(), len);
  }
  PutFixed(out, XxHash64(out->span()));
}

Result<ManifestState> ParseManifest(ByteSpan in) {
  ManifestState m;
  size_t off = 0;
  uint32_t magic = 0;
  uint64_t version = 0, ncols = 0;
  if (!GetFixed(in, &off, &magic) || magic != kEngineMagic ||
      !GetVarint64(in, &off, &version) || version == 0 ||
      version > kEngineVersion || !GetVarint64(in, &off, &ncols) ||
      ncols == 0 || ncols > 4096) {
    return Status::Corruption("lsm: bad engine manifest header");
  }
  for (uint64_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    uint64_t name_len = 0;
    if (!GetVarint64(in, &off, &name_len) || name_len > 256 ||
        name_len > in.size() - off) {
      return Status::Corruption("lsm: bad manifest column name");
    }
    def.name.assign(reinterpret_cast<const char*>(in.data() + off),
                    name_len);
    off += name_len;
    uint8_t dtype = 0, digits = 0;
    if (!GetFixed(in, &off, &dtype) || dtype > 1 ||
        !GetFixed(in, &off, &digits)) {
      return Status::Corruption("lsm: bad manifest column entry");
    }
    def.dtype = dtype ? DType::kFloat64 : DType::kFloat32;
    def.precision_digits = digits;
    m.schema.push_back(std::move(def));
  }
  uint64_t nsegs = 0;
  if (!GetVarint64(in, &off, &m.next_segment_id) ||
      !GetVarint64(in, &off, &m.wal_floor) ||
      !GetVarint64(in, &off, &nsegs) || nsegs > (1u << 20)) {
    return Status::Corruption("lsm: bad manifest segment directory");
  }
  for (uint64_t s = 0; s < nsegs; ++s) {
    SegmentInfo info;
    uint64_t level = 0;
    if (!GetVarint64(in, &off, &info.id) ||
        !GetVarint64(in, &off, &info.rows) ||
        !GetVarint64(in, &off, &level) || level > (1u << 20)) {
      return Status::Corruption("lsm: bad manifest segment entry");
    }
    info.level = static_cast<uint32_t>(level);
    m.segments.push_back(info);
  }
  if (version >= 2) {
    uint64_t nquar = 0;
    if (!GetVarint64(in, &off, &nquar) || nquar > (1u << 20)) {
      return Status::Corruption("lsm: bad manifest quarantine directory");
    }
    for (uint64_t q = 0; q < nquar; ++q) {
      QuarantinedSegment entry;
      uint64_t reason_len = 0;
      if (!GetVarint64(in, &off, &entry.id) ||
          !GetVarint64(in, &off, &entry.rows) ||
          !GetVarint64(in, &off, &reason_len) ||
          reason_len > kMaxReasonBytes || reason_len > in.size() - off) {
        return Status::Corruption("lsm: bad manifest quarantine entry");
      }
      entry.reason.assign(reinterpret_cast<const char*>(in.data() + off),
                          reason_len);
      off += reason_len;
      m.quarantined.push_back(std::move(entry));
    }
  }
  uint64_t hash = 0;
  if (!GetFixed(in, &off, &hash) || off != in.size() ||
      hash != XxHash64(in.subspan(0, off - sizeof(uint64_t)))) {
    return Status::Corruption("lsm: manifest checksum mismatch");
  }
  return m;
}

bool SchemaMatches(const std::vector<ColumnDef>& a,
                   const std::vector<ColumnDef>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].dtype != b[i].dtype ||
        a[i].precision_digits != b[i].precision_digits) {
      return false;
    }
  }
  return true;
}

/// Parses the id out of a segment file name ("seg-000007.manifest",
/// "seg-000007.0.col", ...); false for non-segment names.
bool ParseSegmentId(const std::string& name, uint64_t* id) {
  if (name.compare(0, 4, "seg-") != 0) return false;
  uint64_t v = 0;
  size_t i = 4;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
    ++i;
  }
  if (i == 4 || i == name.size() || name[i] != '.') return false;
  *id = v;
  return true;
}

/// On-disk footprint of a published segment: every `seg-<id>.*` file.
/// Best-effort (0 on listing errors) — feeds metrics only.
uint64_t SegmentDiskBytes(const std::string& dir, uint64_t id) {
  auto names = fs::ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const auto& name : names.value()) {
    uint64_t got = 0;
    if (!ParseSegmentId(name, &got) || got != id) continue;
    auto sz = fs::FileSize(fs::JoinPath(dir, name));
    if (sz.ok()) total += sz.value();
  }
  return total;
}

/// f64 -> column dtype -> f64, so memtable reads agree bit-for-bit with
/// what a flushed segment will hand back.
double RoundTripValue(double v, DType dtype) {
  if (dtype == DType::kFloat32) return static_cast<double>(
      static_cast<float>(v));
  return v;
}

/// The fail-fast error writers see once bg_error_ is sticky. Keeps the
/// root cause's code (a ResourceExhausted flush stays typed ENOSPC).
Status ReadOnlyStatus(const Status& bg) {
  return Status(bg.code(),
                "lsm: engine is read-only after background error: " +
                    bg.message());
}

}  // namespace

Result<std::unique_ptr<IngestEngine>> IngestEngine::Open(
    const std::string& dir, const std::vector<ColumnDef>& schema,
    const EngineOptions& options) {
  auto eng = std::unique_ptr<IngestEngine>(new IngestEngine());
  eng->dir_ = dir;
  eng->opt_ = options;
  FCB_RETURN_IF_ERROR(fs::CreateDir(dir));

  const std::string mpath = fs::JoinPath(dir, kManifestName);
  if (fs::FileExists(mpath)) {
    FCB_ASSIGN_OR_RETURN(Buffer raw, fs::ReadFile(mpath));
    FCB_ASSIGN_OR_RETURN(ManifestState m, ParseManifest(raw.span()));
    if (!schema.empty() && !SchemaMatches(schema, m.schema)) {
      return Status::InvalidArgument("lsm: schema mismatch with manifest");
    }
    // Keep caller-side compressor overrides when the shapes match;
    // adopt the stored schema wholesale when none was given.
    eng->schema_ = schema.empty() ? m.schema : schema;
    eng->next_segment_id_ = m.next_segment_id;
    eng->wal_floor_ = m.wal_floor;
    eng->segments_ = m.segments;
    eng->quarantined_ = m.quarantined;
  } else {
    if (schema.empty()) {
      return Status::InvalidArgument("lsm: new engine needs a schema");
    }
    for (const auto& c : schema) {
      if (c.name.empty() || c.name.size() > 256) {
        return Status::InvalidArgument("lsm: bad column name");
      }
    }
    eng->schema_ = schema;
    // The schema must be durable before the first WAL record refers to
    // it, so an empty engine is recoverable from its very first byte.
    FCB_RETURN_IF_ERROR(eng->PersistManifestLocked());
  }

  // Sweep unpublished state: stale atomic-write temps, segment files a
  // crashed flush/compaction wrote but never referenced from the
  // manifest, and WAL segments below the floor (their rows live in
  // published segments). Files of a *quarantined* segment are not swept
  // — the manifest recorded the quarantine before the files moved, so a
  // crash mid-move is completed here by finishing the move, keeping the
  // corrupt files as evidence.
  std::vector<bool> live;         // indexed by segment id
  std::vector<bool> quarantined;  // indexed by segment id
  for (const auto& s : eng->segments_) {
    if (s.id >= live.size()) live.resize(s.id + 1, false);
    live[s.id] = true;
  }
  for (const auto& q : eng->quarantined_) {
    if (q.id >= quarantined.size()) quarantined.resize(q.id + 1, false);
    quarantined[q.id] = true;
  }
  FCB_ASSIGN_OR_RETURN(std::vector<std::string> names, fs::ListDir(dir));
  bool moved_to_quarantine = false;
  for (const auto& name : names) {
    const std::string path = fs::JoinPath(dir, name);
    uint64_t id = 0, seq = 0;
    if (fs::IsTempPath(name)) {
      FCB_RETURN_IF_ERROR(fs::RemoveFile(path));
    } else if (ParseSegmentId(name, &id)) {
      if (id < quarantined.size() && quarantined[id]) {
        const std::string qdir = fs::JoinPath(dir, kQuarantineDir);
        FCB_RETURN_IF_ERROR(fs::CreateDir(qdir));
        FCB_RETURN_IF_ERROR(
            fs::RenameFile(path, fs::JoinPath(qdir, name)));
        moved_to_quarantine = true;
      } else if (id >= live.size() || !live[id]) {
        FCB_RETURN_IF_ERROR(fs::RemoveFile(path));
      }
    } else if (Wal::ParseSegmentFileName(name, &seq)) {
      if (seq < eng->wal_floor_) FCB_RETURN_IF_ERROR(fs::RemoveFile(path));
    }
  }
  if (moved_to_quarantine) {
    FCB_RETURN_IF_ERROR(fs::SyncDir(fs::JoinPath(dir, kQuarantineDir)));
    FCB_RETURN_IF_ERROR(fs::SyncDir(dir));
  }

  // Replay the WAL into a fresh memtable — prefix-truncating recovery;
  // a torn tail is expected after a crash, never an error.
  eng->mem_ = std::make_unique<MemTable>(eng->schema_.size());
  FCB_ASSIGN_OR_RETURN(WalReader::Replay replay,
                       WalReader::ReplayDir(dir, eng->wal_floor_));
  bool stop = false;
  for (const auto& rec : replay.records) {
    FCB_RETURN_IF_ERROR(eng->ApplyWalRecord(rec, &stop));
    if (stop) break;
  }

  // New appends go to a segment past everything on disk — recovery never
  // appends to a possibly-torn file.
  uint64_t next_seq = eng->wal_floor_;
  if (replay.any_segments) {
    next_seq = std::max(next_seq, replay.max_seq_seen + 1);
  }
  Wal::Options wopt;
  wopt.segment_bytes = options.wal_segment_bytes;
  wopt.sync_on_commit = options.sync_on_commit;
  FCB_ASSIGN_OR_RETURN(eng->wal_, Wal::Open(dir, next_seq, wopt));
  return eng;
}

IngestEngine::~IngestEngine() { Close(); }

void IngestEngine::InterruptRetries() {
  {
    std::lock_guard<std::mutex> g(retry_cancel_.mu);
    retry_cancel_.cancelled = true;
  }
  retry_cancel_.cv.notify_all();
}

Status IngestEngine::Close() {
  // Cancel first, then wait: an in-flight retry ladder gives up at its
  // next backoff wait instead of sleeping it out.
  InterruptRetries();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return !flush_inflight_ && !compact_inflight_ && bg_tasks_ == 0 &&
           active_readers_ == 0;
  });
  if (closed_) return Status::OK();
  closed_ = true;
  lk.unlock();
  if (wal_ != nullptr) return wal_->Close();
  return Status::OK();
}

std::string IngestEngine::SegPrefix(uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu",
                static_cast<unsigned long long>(id));
  return fs::JoinPath(dir_, buf);
}

Status IngestEngine::PersistManifestLocked() {
  FCB_FAIL_RETURN("lsm.manifest", fs::JoinPath(dir_, kManifestName));
  ManifestState m;
  m.schema = schema_;
  m.next_segment_id = next_segment_id_;
  m.wal_floor = wal_floor_;
  m.segments = segments_;
  m.quarantined = quarantined_;
  Buffer buf;
  SerializeManifest(m, &buf);
  return fs::WriteFileAtomic(fs::JoinPath(dir_, kManifestName), buf.span(),
                             /*durable=*/true);
}

Status IngestEngine::ApplyWalRecord(const WalRecord& rec, bool* stop) {
  if (rec.type != Wal::kTypeRows) return Status::OK();  // forward compat
  ByteSpan in = rec.payload.span();
  size_t off = 0;
  uint64_t nrows = 0;
  const size_t ncols = schema_.size();
  const size_t row_bytes = ncols * sizeof(double);
  if (!GetVarint64(in, &off, &nrows) ||
      nrows > (in.size() - off) / row_bytes ||
      nrows * row_bytes != in.size() - off) {
    // A checksum-valid record with a malformed payload: stop applying —
    // the rows before it are still a consistent prefix.
    *stop = true;
    return Status::OK();
  }
  if (nrows == 0) return Status::OK();
  std::vector<double> rows(nrows * ncols);
  std::memcpy(rows.data(), in.data() + off, nrows * row_bytes);
  mem_->AppendRows(rows.data(), nrows);
  return Status::OK();
}

Status IngestEngine::Append(const std::vector<double>& row) {
  return AppendBatch(row);
}

Status IngestEngine::AppendBatch(const std::vector<double>& rows_row_major) {
  const size_t ncols = schema_.size();
  if (ncols == 0 || rows_row_major.size() % ncols != 0) {
    return Status::InvalidArgument("lsm: batch is not whole rows");
  }
  const size_t nrows = rows_row_major.size() / ncols;
  if (nrows == 0) return Status::OK();
  obs::ScopedSpan span("lsm.append", nrows,
                       rows_row_major.size() * sizeof(double));
  Timer append_timer;

  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Status::InvalidArgument("lsm: engine is closed");
  // Fail fast once a background failure made the engine read-only: the
  // caller gets the root cause, not a mystery timeout.
  if (!bg_error_.ok()) return ReadOnlyStatus(bg_error_);

  Buffer payload;
  PutVarint64(&payload, nrows);
  payload.Append(rows_row_major.data(),
                 rows_row_major.size() * sizeof(double));
  FCB_RETURN_IF_ERROR(wal_->Append(Wal::kTypeRows, payload.span()));
  // Group commit: the whole batch costs one write and (when configured)
  // one fsync. A failure here (ENOSPC included) rejected exactly this
  // batch — the WAL healed itself back to the previous commit, so the
  // engine stays writable for later batches. After this point the batch
  // survives a crash.
  FCB_RETURN_IF_ERROR(wal_->Commit());
  {
    obs::ScopedSpan mem_span("lsm.memtable", nrows);
    mem_->AppendRows(rows_row_major.data(), nrows);
  }

  if (mem_->bytes() >= opt_.memtable_bytes) {
    bool scheduled = false;
    Status st = PrepareFlushLocked(lk, &scheduled);
    if (st.ok() && scheduled) {
      if (opt_.background_flush) {
        ++bg_tasks_;
        ThreadPool::Shared().Submit([this] {
          DoFlushAndPublish();
          std::lock_guard<std::mutex> g(mu_);
          --bg_tasks_;
          cv_.notify_all();
        });
      } else {
        lk.unlock();
        DoFlushAndPublish();
        lk.lock();
      }
    }
    // A failed flush *schedule* (st) or a flush that failed inline is
    // deliberately not returned: this batch IS durably committed, and
    // OK must mean exactly that. The failure is sticky (bg_error_, or
    // retried scheduling at the next append) and surfaces on the next
    // call — never as a false negative on an acknowledged batch.
  }
  const uint64_t nanos = append_timer.ElapsedNanos();
  stats_.append_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.append_rows.fetch_add(nrows, std::memory_order_relaxed);
  stats_.append_nanos.fetch_add(nanos, std::memory_order_relaxed);
  static obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("lsm.append.batches");
  static obs::Counter* rows_counter =
      obs::MetricsRegistry::Global().GetCounter("lsm.append.rows");
  static obs::Histogram* append_nanos =
      obs::MetricsRegistry::Global().GetHistogram("lsm.append_nanos",
                                                  obs::Unit::kNanos);
  batches->Increment();
  rows_counter->Add(nrows);
  append_nanos->Record(nanos);
  return Status::OK();
}

Status IngestEngine::PrepareFlushLocked(std::unique_lock<std::mutex>& lk,
                                        bool* scheduled) {
  *scheduled = false;
  // Backpressure: at most one immutable memtable — an appender that
  // fills the live memtable while a flush is running waits here.
  cv_.wait(lk, [&] { return !flush_inflight_; });
  if (closed_) return Status::InvalidArgument("lsm: engine is closed");
  if (!bg_error_.ok()) return ReadOnlyStatus(bg_error_);
  if (mem_->empty()) return Status::OK();
  FCB_RETURN_IF_ERROR(wal_->Commit());
  // Rotate so every record of the flushing memtable lives in a segment
  // strictly below the new sequence number; publishing the flush then
  // simply advances the floor to it.
  FCB_RETURN_IF_ERROR(wal_->Rotate());
  imm_ = std::shared_ptr<const MemTable>(mem_.release());
  mem_ = std::make_unique<MemTable>(schema_.size());
  imm_floor_ = wal_->seq();
  imm_seg_id_ = next_segment_id_++;
  flush_inflight_ = true;
  *scheduled = true;
  return Status::OK();
}

void IngestEngine::DoFlushAndPublish() {
  std::shared_ptr<const MemTable> imm;
  uint64_t seg_id = 0, floor = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    imm = imm_;
    seg_id = imm_seg_id_;
    floor = imm_floor_;
  }
  const uint64_t raw_bytes = imm->bytes();
  // Nests under the triggering append when that append's trace context
  // rode along with the pool task (ThreadPool::Submit), or directly
  // under the caller for inline flushes.
  obs::ScopedSpan span("lsm.flush", seg_id, raw_bytes);
  obs::ScopedWatch watch("lsm.flush", dir_, opt_.watchdog_budget_ms);
  obs::EventTrace::Global().Record(obs::EventKind::kFlushStart, dir_,
                                   seg_id, raw_bytes);
  Timer flush_timer;

  // Compress and write the segment off-lock. Columns are *copied* out of
  // the immutable memtable: concurrent ReadColumn calls still see it.
  std::vector<ColumnStore::ColumnSpec> specs(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    specs[c].name = schema_[c].name;
    specs[c].compressor = schema_[c].compressor.empty()
                              ? opt_.flush_compressor
                              : schema_[c].compressor;
    specs[c].dtype = schema_[c].dtype;
    specs[c].precision_digits = schema_[c].precision_digits;
    specs[c].values = imm->column(c);
  }
  Status st = RetryIo(opt_, retry_cancel_,
                      "lsm: flush of segment " + SegPrefix(seg_id), dir_,
                      stats_.retry_attempts, [&]() -> Status {
                        FCB_FAIL_RETURN("lsm.flush", SegPrefix(seg_id));
                        return ColumnStore::Write(SegPrefix(seg_id), specs,
                                                  opt_.page_size);
                      });
  const uint64_t seg_bytes =
      st.ok() && obs::Enabled() ? SegmentDiskBytes(dir_, seg_id) : 0;

  {
    std::lock_guard<std::mutex> g(mu_);
    if (st.ok()) {
      const uint64_t prev_floor = wal_floor_;
      segments_.push_back(SegmentInfo{seg_id, imm->rows(), 0});
      wal_floor_ = floor;
      obs::ScopedSpan manifest_span("lsm.manifest", seg_id);
      st = RetryIo(opt_, retry_cancel_, "lsm: manifest publish", dir_,
                   stats_.retry_attempts,
                   [&] { return PersistManifestLocked(); });
      if (!st.ok()) {
        // Publish failed: disk still holds the previous manifest; put
        // the in-memory view back in step with it. The rows stay safe
        // in the WAL (floor unchanged).
        segments_.pop_back();
        wal_floor_ = prev_floor;
      }
    }
    if (st.ok()) {
      imm_.reset();
    } else {
      // Retries exhausted: degrade to read-only. imm_ is deliberately
      // KEPT — its rows are acknowledged (WAL-durable) and must stay
      // visible to ReadColumn; the next Open replays them from the WAL
      // (floor unchanged). bg_error_ being sticky guarantees no further
      // flush is scheduled while imm_ lingers.
      bg_error_ = st;
    }
    flush_inflight_ = false;
    cv_.notify_all();
  }

  if (st.ok()) {
    stats_.flushes.fetch_add(1, std::memory_order_relaxed);
    stats_.flush_raw_bytes.fetch_add(raw_bytes, std::memory_order_relaxed);
    stats_.flush_segment_bytes.fetch_add(seg_bytes,
                                         std::memory_order_relaxed);
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("lsm.flush.count")->Increment();
    reg.GetCounter("lsm.flush.raw_bytes")->Add(raw_bytes);
    reg.GetCounter("lsm.flush.segment_bytes")->Add(seg_bytes);
    reg.GetHistogram("lsm.flush_nanos", obs::Unit::kNanos)
        ->Record(flush_timer.ElapsedNanos());
    if (seg_bytes > 0) {
      // Compression ratio x100 (log-bucketed): 250 = 2.5x.
      reg.GetHistogram("lsm.flush.cr_pct", obs::Unit::kCount)
          ->Record(raw_bytes * 100 / seg_bytes);
    }
    obs::EventTrace::Global().Record(obs::EventKind::kFlushPublish, dir_,
                                     seg_id, seg_bytes);
  } else {
    stats_.flush_failures.fetch_add(1, std::memory_order_relaxed);
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("lsm.flush.failures")->Increment();
    reg.GetCounter("lsm.degraded.count")->Increment();
    obs::EventTrace::Global().Record(obs::EventKind::kFlushFail, dir_,
                                     seg_id, raw_bytes);
    obs::EventTrace::Global().Record(obs::EventKind::kDegraded, dir_,
                                     seg_id, 0);
    // The flight recorder's reason to exist: the moments leading up to
    // a shard going read-only, dumped at the moment it happens.
    obs::EventTrace::Global().DumpToStderr(
        "engine degraded to read-only: " + dir_);
  }

  if (st.ok()) {
    // Off-lock: the flushed rows now live in a published segment, so
    // their memtable bytes are no longer buffered. A failed flush
    // deliberately does NOT fire this — the bytes are still pinned in
    // imm_ and admission control must keep counting them.
    if (opt_.on_memtable_released) opt_.on_memtable_released(imm->bytes());
    DeleteWalBelowFloor();
    if (opt_.compact_fanout >= 2) {
      bool merged = false;
      CompactOnce(opt_.compact_fanout, &merged);  // best-effort tiering
    }
  }
}

void IngestEngine::DeleteWalBelowFloor() {
  uint64_t floor = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    floor = wal_floor_;
  }
  auto names = fs::ListDir(dir_);
  if (!names.ok()) return;  // cleaned up at next Open
  for (const auto& name : names.value()) {
    uint64_t seq = 0;
    if (Wal::ParseSegmentFileName(name, &seq) && seq < floor) {
      fs::RemoveFile(fs::JoinPath(dir_, name));
    }
  }
}

Status IngestEngine::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  bool scheduled = false;
  FCB_RETURN_IF_ERROR(PrepareFlushLocked(lk, &scheduled));
  if (!scheduled) return bg_error_;
  lk.unlock();
  DoFlushAndPublish();
  lk.lock();
  return bg_error_;
}

Status IngestEngine::ScheduleFlush() {
  std::unique_lock<std::mutex> lk(mu_);
  bool scheduled = false;
  FCB_RETURN_IF_ERROR(PrepareFlushLocked(lk, &scheduled));
  if (!scheduled) return bg_error_;
  if (opt_.background_flush) {
    ++bg_tasks_;
    ThreadPool::Shared().Submit([this] {
      DoFlushAndPublish();
      std::lock_guard<std::mutex> g(mu_);
      --bg_tasks_;
      cv_.notify_all();
    });
  } else {
    lk.unlock();
    DoFlushAndPublish();
    lk.lock();
    return bg_error_;
  }
  return Status::OK();
}

uint64_t IngestEngine::buffered_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return mem_->bytes() + (imm_ ? imm_->bytes() : 0);
}

Status IngestEngine::WaitForFlush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_inflight_ && bg_tasks_ == 0; });
  return bg_error_;
}

uint64_t IngestEngine::SmallRowsThresholdLocked() const {
  if (opt_.compact_small_rows > 0) return opt_.compact_small_rows;
  const size_t ncols = std::max<size_t>(1, schema_.size());
  const uint64_t memtable_rows =
      std::max<uint64_t>(1, opt_.memtable_bytes / (sizeof(double) * ncols));
  return 4 * memtable_rows;
}

Status IngestEngine::Compact() {
  bool merged = false;
  return CompactOnce(2, &merged);
}

Status IngestEngine::CompactOnce(size_t min_run, bool* merged) {
  *merged = false;
  obs::ScopedSpan span("lsm.compact");
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !compact_inflight_; });
  if (closed_) return Status::InvalidArgument("lsm: engine is closed");
  if (!bg_error_.ok()) return ReadOnlyStatus(bg_error_);

  // First adjacent run of >= min_run small segments, oldest first.
  const uint64_t small = SmallRowsThresholdLocked();
  size_t run_begin = 0, run_len = 0;
  for (size_t i = 0; i < segments_.size();) {
    if (segments_[i].rows <= small) {
      size_t j = i;
      while (j < segments_.size() && segments_[j].rows <= small &&
             j - i < kMaxCompactRun) {
        ++j;
      }
      if (j - i >= min_run) {
        run_begin = i;
        run_len = j - i;
        break;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (run_len == 0) return Status::OK();

  std::vector<SegmentInfo> run(segments_.begin() + run_begin,
                               segments_.begin() + run_begin + run_len);
  const uint64_t new_id = next_segment_id_++;
  compact_inflight_ = true;
  lk.unlock();

  obs::ScopedWatch watch("lsm.compact", dir_, opt_.watchdog_budget_ms);

  // Merge off-lock: concatenate each column across the run and
  // re-compress cold data with the ratio-biased selector.
  uint64_t total_rows = 0;
  uint32_t max_level = 0;
  for (const auto& s : run) {
    total_rows += s.rows;
    max_level = std::max(max_level, s.level);
  }
  span.SetArgs(run_len, total_rows);
  std::vector<ColumnStore::ColumnSpec> specs(schema_.size());
  Status st;
  for (size_t c = 0; c < schema_.size() && st.ok(); ++c) {
    specs[c].name = schema_[c].name;
    specs[c].compressor = opt_.compact_compressor;
    specs[c].dtype = schema_[c].dtype;
    specs[c].precision_digits = schema_[c].precision_digits;
    specs[c].values.reserve(total_rows);
    for (const auto& s : run) {
      obs::ScopedSpan read_span("segment.read", s.id, s.rows);
      auto r = ColumnStore::ReadRows(SegPrefix(s.id), schema_[c].name, 0,
                                     s.rows);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      const auto& vals = r.value();
      specs[c].values.insert(specs[c].values.end(), vals.begin(),
                             vals.end());
    }
  }
  if (st.ok()) {
    st = RetryIo(opt_, retry_cancel_,
                 "lsm: compaction write of " + SegPrefix(new_id), dir_,
                 stats_.retry_attempts, [&]() -> Status {
                   FCB_FAIL_RETURN("lsm.compact", SegPrefix(new_id));
                   return ColumnStore::Write(SegPrefix(new_id), specs,
                                             opt_.page_size);
                 });
  }

  lk.lock();
  if (st.ok()) {
    // The run is still contiguous: only compaction (single-flight)
    // removes segments, flushes only append.
    size_t idx = segments_.size();
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i].id == run.front().id) {
        idx = i;
        break;
      }
    }
    if (idx + run_len <= segments_.size()) {
      std::vector<SegmentInfo> backup(segments_.begin() + idx,
                                      segments_.begin() + idx + run_len);
      segments_.erase(segments_.begin() + idx,
                      segments_.begin() + idx + run_len);
      segments_.insert(segments_.begin() + idx,
                       SegmentInfo{new_id, total_rows, max_level + 1});
      obs::ScopedSpan manifest_span("lsm.manifest", new_id);
      st = RetryIo(opt_, retry_cancel_, "lsm: compaction manifest publish",
                   dir_, stats_.retry_attempts,
                   [&] { return PersistManifestLocked(); });
      if (!st.ok()) {
        segments_.erase(segments_.begin() + idx);
        segments_.insert(segments_.begin() + idx, backup.begin(),
                         backup.end());
      }
    } else {
      st = Status::Internal("lsm: compaction run disappeared");
    }
  }
  if (!st.ok()) {
    // A half-written merged segment is unreferenced state; the next
    // Open sweeps it. In-memory and on-disk views are both unchanged,
    // so a failed compaction does not wedge the engine.
    compact_inflight_ = false;
    cv_.notify_all();
    return st;
  }
  // Old files can only be deleted once nobody is reading a snapshot
  // that references them; readers that started after the manifest swap
  // only see the merged segment.
  cv_.wait(lk, [&] { return active_readers_ == 0; });
  compact_inflight_ = false;
  cv_.notify_all();
  lk.unlock();

  uint64_t in_bytes = 0, out_bytes = 0;
  if (obs::Enabled()) {
    for (const auto& s : run) in_bytes += SegmentDiskBytes(dir_, s.id);
    out_bytes = SegmentDiskBytes(dir_, new_id);
  }
  for (const auto& s : run) ColumnStore::Drop(SegPrefix(s.id));
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  stats_.compact_in_bytes.fetch_add(in_bytes, std::memory_order_relaxed);
  stats_.compact_out_bytes.fetch_add(out_bytes, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("lsm.compact.count")->Increment();
  reg.GetCounter("lsm.compact.in_bytes")->Add(in_bytes);
  reg.GetCounter("lsm.compact.out_bytes")->Add(out_bytes);
  obs::EventTrace::Global().Record(obs::EventKind::kCompact, dir_, run_len,
                                   total_rows);
  *merged = true;
  return Status::OK();
}

Result<std::vector<double>> IngestEngine::ReadColumn(
    const std::string& column) const {
  // Reads deliberately do NOT check bg_error_: a read-only engine keeps
  // serving everything acknowledged — published segments plus both
  // memtables (a kept imm_ after a failed flush is WAL-durable).
  obs::ScopedSpan span("lsm.read");
  std::unique_lock<std::mutex> lk(mu_);
  size_t col = schema_.size();
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c].name == column) {
      col = c;
      break;
    }
  }
  if (col == schema_.size()) {
    return Status::InvalidArgument("lsm: no column '" + column + "'");
  }
  const DType dtype = schema_[col].dtype;

  std::vector<SegmentInfo> segs = segments_;
  std::shared_ptr<const MemTable> imm = imm_;
  std::vector<double> tail = mem_->column(col);
  ++active_readers_;
  lk.unlock();

  std::vector<double> out;
  Status st;
  for (const auto& s : segs) {
    obs::ScopedSpan read_span("segment.read", s.id, s.rows);
    auto r = ColumnStore::ReadRows(SegPrefix(s.id), column, 0, s.rows);
    if (!r.ok()) {
      st = r.status();
      break;
    }
    const auto& vals = r.value();
    out.insert(out.end(), vals.begin(), vals.end());
  }

  lk.lock();
  --active_readers_;
  cv_.notify_all();
  lk.unlock();
  if (!st.ok()) return st;

  if (imm != nullptr) {
    for (double v : imm->column(col)) {
      out.push_back(RoundTripValue(v, dtype));
    }
  }
  for (double v : tail) out.push_back(RoundTripValue(v, dtype));
  return out;
}

Result<ScrubReport> IngestEngine::Scrub() {
  ScrubReport report;
  obs::ScopedSpan span("lsm.scrub");
  obs::ScopedWatch watch("lsm.scrub", dir_, opt_.watchdog_budget_ms);
  std::unique_lock<std::mutex> lk(mu_);
  // Single-flight against flush and compaction so the segment set is
  // stable while its files are re-read.
  cv_.wait(lk, [&] {
    return !flush_inflight_ && !compact_inflight_ && bg_tasks_ == 0;
  });
  if (closed_) return Status::InvalidArgument("lsm: engine is closed");
  const std::vector<SegmentInfo> segs = segments_;
  ++active_readers_;  // pins the snapshot's files against deletion
  lk.unlock();

  // Re-verify every published segment in parallel on the shared pool:
  // whole-file checksums against the identities captured at write time.
  std::vector<Status> verdicts(segs.size());
  ThreadPool::Shared().ParallelFor(
      segs.size(),
      [&](size_t i) {
        obs::ScopedSpan verify_span("segment.verify", segs[i].id,
                                    segs[i].rows);
        verdicts[i] = ColumnStore::Verify(SegPrefix(segs[i].id));
      },
      {/*grain=*/1});

  lk.lock();
  --active_readers_;
  cv_.notify_all();
  report.segments_checked = segs.size();

  std::vector<uint64_t> to_move;
  for (size_t i = 0; i < segs.size(); ++i) {
    const Status& v = verdicts[i];
    if (v.ok()) continue;
    if (v.code() != StatusCode::kCorruption) {
      // A read error is a finding, not proof of corruption; report it
      // and quarantine nothing.
      report.notes.push_back("segment " + std::to_string(segs[i].id) +
                             ": verify error: " + v.ToString());
      continue;
    }
    size_t idx = segments_.size();
    for (size_t j = 0; j < segments_.size(); ++j) {
      if (segments_[j].id == segs[i].id) {
        idx = j;
        break;
      }
    }
    if (idx == segments_.size()) continue;  // no longer in the serving set
    // Quarantine protocol: record the verdict in the manifest FIRST,
    // then move the files. A crash between the two is completed by the
    // next Open (quarantined ids found in the main dir are moved, not
    // swept), so the evidence can never be lost to the sweep.
    const SegmentInfo backup = segments_[idx];
    segments_.erase(segments_.begin() + idx);
    QuarantinedSegment q;
    q.id = backup.id;
    q.rows = backup.rows;
    q.reason = v.message().substr(0, kMaxReasonBytes);
    quarantined_.push_back(q);
    Status ps = RetryIo(opt_, retry_cancel_,
                        "lsm: quarantine manifest publish", dir_,
                        stats_.retry_attempts,
                        [&] { return PersistManifestLocked(); });
    if (!ps.ok()) {
      // Roll back to the on-disk manifest's view; the corruption is
      // still present and a later scrub will retry.
      quarantined_.pop_back();
      segments_.insert(segments_.begin() + idx, backup);
      return ps;
    }
    report.quarantined_ids.push_back(q.id);
    report.notes.push_back("segment " + std::to_string(q.id) +
                           " quarantined: " + q.reason);
    stats_.quarantined_segments.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("lsm.scrub.quarantined")
        ->Increment();
    obs::EventTrace::Global().Record(obs::EventKind::kQuarantine, dir_,
                                     q.id, q.rows);
    to_move.push_back(q.id);
  }

  if (!to_move.empty()) {
    // Readers that snapshotted the segment list before the swap may
    // still be reading these files; move them only once drained (the
    // same rule compaction uses before deleting).
    cv_.wait(lk, [&] { return active_readers_ == 0; });
  }

  // WAL verification runs under the lock: no appender can be mid-commit,
  // so the on-disk tail is exactly the committed prefix.
  auto rr = WalReader::ReplayDir(dir_, wal_floor_);
  if (rr.ok()) {
    report.wal_records_verified = rr.value().records.size();
    report.wal_clean = !rr.value().truncated;
    if (!report.wal_clean) {
      report.notes.push_back(
          "wal: replay truncated early (torn or corrupt record)");
    }
  } else {
    report.wal_clean = false;
    report.notes.push_back("wal: verify failed: " + rr.status().ToString());
  }
  lk.unlock();

  // The moves are best-effort: the manifest already records the
  // quarantine, so any failure here is finished by the next Open.
  if (!to_move.empty()) {
    const std::string qdir = fs::JoinPath(dir_, kQuarantineDir);
    Status mk = fs::CreateDir(qdir);
    auto names = fs::ListDir(dir_);
    if (mk.ok() && names.ok()) {
      for (const auto& name : names.value()) {
        uint64_t id = 0;
        if (!ParseSegmentId(name, &id)) continue;
        if (std::find(to_move.begin(), to_move.end(), id) ==
            to_move.end()) {
          continue;
        }
        Status mv = fs::RenameFile(fs::JoinPath(dir_, name),
                                   fs::JoinPath(qdir, name));
        if (!mv.ok()) {
          report.notes.push_back("quarantine move pending: " +
                                 mv.message());
        }
      }
      fs::SyncDir(qdir);
      fs::SyncDir(dir_);
    } else {
      report.notes.push_back("quarantine move pending: " +
                             (mk.ok() ? names.status() : mk).message());
    }
  }
  obs::MetricsRegistry::Global()
      .GetCounter("lsm.scrub.segments_checked")
      ->Add(report.segments_checked);
  obs::EventTrace::Global().Record(obs::EventKind::kScrub, dir_,
                                   report.segments_checked,
                                   report.quarantined_ids.size());
  return report;
}

bool IngestEngine::read_only() const {
  std::lock_guard<std::mutex> g(mu_);
  return !bg_error_.ok();
}

Status IngestEngine::background_error() const {
  std::lock_guard<std::mutex> g(mu_);
  return bg_error_;
}

std::vector<QuarantinedSegment> IngestEngine::quarantined() const {
  std::lock_guard<std::mutex> g(mu_);
  return quarantined_;
}

uint64_t IngestEngine::rows() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t n = 0;
  for (const auto& s : segments_) n += s.rows;
  if (imm_ != nullptr) n += imm_->rows();
  n += mem_->rows();
  return n;
}

std::vector<SegmentInfo> IngestEngine::segments() const {
  std::lock_guard<std::mutex> g(mu_);
  return segments_;
}

EngineStats IngestEngine::stats() const {
  EngineStats s;
  s.append_batches = stats_.append_batches.load(std::memory_order_relaxed);
  s.append_rows = stats_.append_rows.load(std::memory_order_relaxed);
  s.append_nanos = stats_.append_nanos.load(std::memory_order_relaxed);
  s.flushes = stats_.flushes.load(std::memory_order_relaxed);
  s.flush_failures =
      stats_.flush_failures.load(std::memory_order_relaxed);
  s.flush_raw_bytes =
      stats_.flush_raw_bytes.load(std::memory_order_relaxed);
  s.flush_segment_bytes =
      stats_.flush_segment_bytes.load(std::memory_order_relaxed);
  s.compactions = stats_.compactions.load(std::memory_order_relaxed);
  s.compact_in_bytes =
      stats_.compact_in_bytes.load(std::memory_order_relaxed);
  s.compact_out_bytes =
      stats_.compact_out_bytes.load(std::memory_order_relaxed);
  s.retry_attempts =
      stats_.retry_attempts.load(std::memory_order_relaxed);
  s.quarantined_segments =
      stats_.quarantined_segments.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fcbench::db::lsm
