#include "db/query.h"

#include <algorithm>
#include <limits>

namespace fcbench::db {

bool ScanPredicate::Matches(double v) const {
  switch (op) {
    case CompareOp::kEq:
      return v == value;
    case CompareOp::kNe:
      return v != value;
    case CompareOp::kLt:
      return v < value;
    case CompareOp::kLe:
      return v <= value;
    case CompareOp::kGt:
      return v > value;
    case CompareOp::kGe:
      return v >= value;
    case CompareOp::kBetween:
      return v >= value && v <= upper;
  }
  return false;
}

Result<Selection> Filter(const DataFrame& df, const ScanPredicate& pred) {
  if (pred.column >= df.num_columns()) {
    return Status::InvalidArgument("query: column index out of range");
  }
  const std::vector<double>& col = df.column(pred.column);
  Selection sel;
  for (size_t i = 0; i < col.size(); ++i) {
    if (pred.Matches(col[i])) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

Result<Selection> FilterAll(const DataFrame& df,
                            std::span<const ScanPredicate> preds) {
  if (preds.empty()) {
    Selection all(df.num_rows());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<uint32_t>(i);
    }
    return all;
  }
  FCB_ASSIGN_OR_RETURN(Selection sel, Filter(df, preds[0]));
  for (size_t p = 1; p < preds.size() && !sel.empty(); ++p) {
    const ScanPredicate& pred = preds[p];
    if (pred.column >= df.num_columns()) {
      return Status::InvalidArgument("query: column index out of range");
    }
    const std::vector<double>& col = df.column(pred.column);
    Selection refined;
    refined.reserve(sel.size());
    for (uint32_t row : sel) {
      if (pred.Matches(col[row])) refined.push_back(row);
    }
    sel = std::move(refined);
  }
  return sel;
}

Result<double> Aggregate(const DataFrame& df, size_t column, AggregateOp op,
                         const Selection* selection) {
  if (column >= df.num_columns()) {
    return Status::InvalidArgument("query: column index out of range");
  }
  const std::vector<double>& col = df.column(column);
  if (selection != nullptr && !selection->empty() &&
      selection->back() >= col.size()) {
    return Status::OutOfRange("query: selection row beyond table");
  }

  auto fold = [&](auto&& per_value) {
    if (selection == nullptr) {
      for (double v : col) per_value(v);
    } else {
      for (uint32_t row : *selection) per_value(col[row]);
    }
  };

  const size_t n = selection == nullptr ? col.size() : selection->size();
  switch (op) {
    case AggregateOp::kCount:
      return static_cast<double>(n);
    case AggregateOp::kSum: {
      double sum = 0;
      fold([&](double v) { sum += v; });
      return sum;
    }
    case AggregateOp::kMin: {
      double mn = std::numeric_limits<double>::infinity();
      fold([&](double v) { mn = std::min(mn, v); });
      return mn;
    }
    case AggregateOp::kMax: {
      double mx = -std::numeric_limits<double>::infinity();
      fold([&](double v) { mx = std::max(mx, v); });
      return mx;
    }
    case AggregateOp::kMean: {
      if (n == 0) return 0.0;
      double sum = 0;
      fold([&](double v) { sum += v; });
      return sum / static_cast<double>(n);
    }
  }
  return Status::InvalidArgument("query: unknown aggregate");
}

Result<std::vector<double>> Gather(const DataFrame& df, size_t column,
                                   const Selection& selection) {
  if (column >= df.num_columns()) {
    return Status::InvalidArgument("query: column index out of range");
  }
  const std::vector<double>& col = df.column(column);
  if (!selection.empty() && selection.back() >= col.size()) {
    return Status::OutOfRange("query: selection row beyond table");
  }
  std::vector<double> out;
  out.reserve(selection.size());
  for (uint32_t row : selection) out.push_back(col[row]);
  return out;
}

uint64_t RunHistogramScanWorkload(const DataFrame& df, size_t column,
                                  int bins) {
  std::vector<double> edges = df.HistogramEdges(column, bins);
  uint64_t total = 0;
  for (double v : edges) {
    total += df.CountLessEqual(column, v);
  }
  return total;
}

}  // namespace fcbench::db
