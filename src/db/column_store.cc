#include "db/column_store.h"

#include <cstring>

#include "obs/span.h"
#include "select/auto_compressor.h"
#include "select/selector.h"
#include "util/bitio.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace fcbench::db {

namespace {

constexpr uint32_t kManifestMagic = 0x534D4346u;  // "FCMS"
/// Manifest layout version: v2 added the per-column resolved-method
/// footer entries (the online selector's choices must be persisted, or
/// a reader could not name what compressed each column); v3 added each
/// column file's size and whole-file xxh64, captured at write time, so
/// Verify can re-check the table bit for bit without trusting the files.
/// v2 manifests are still readable (they just cannot be hash-verified).
constexpr uint64_t kManifestVersion = 3;
constexpr uint64_t kMinManifestVersion = 2;

std::string ColumnPath(const std::string& prefix, size_t index) {
  return prefix + "." + std::to_string(index) + ".col";
}

std::string ManifestPath(const std::string& prefix) {
  return prefix + ".manifest";
}

struct Manifest {
  std::vector<std::string> names;
  std::vector<std::string> methods;     // resolved; parallel to names
  std::vector<uint64_t> file_hashes;    // v3+: whole-file xxh64 per column
  std::vector<uint64_t> file_bytes;     // v3+: container size per column
  bool has_integrity = false;           // false for v2 manifests
};

Result<Manifest> ReadManifest(const std::string& prefix) {
  FCB_ASSIGN_OR_RETURN(Buffer raw, fs::ReadFile(ManifestPath(prefix)));
  ByteSpan in = raw.span();
  size_t off = 0;
  uint32_t magic = 0;
  uint64_t version = 0, ncols = 0, hash = 0;
  if (!GetFixed(in, &off, &magic) || magic != kManifestMagic ||
      !GetVarint64(in, &off, &version) || version < kMinManifestVersion ||
      version > kManifestVersion || !GetVarint64(in, &off, &ncols) ||
      ncols > 4096) {
    return Status::Corruption("column_store: bad manifest header");
  }
  Manifest m;
  m.has_integrity = version >= 3;
  auto read_string = [&](size_t max_len, std::string* out) {
    uint64_t len = 0;
    if (!GetVarint64(in, &off, &len) || len > max_len ||
        len > in.size() - off) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(in.data() + off), len);
    off += len;
    return true;
  };
  for (uint64_t c = 0; c < ncols; ++c) {
    std::string name, method;
    if (!read_string(256, &name) || !read_string(64, &method)) {
      return Status::Corruption("column_store: bad column entry");
    }
    uint64_t fhash = 0, fbytes = 0;
    if (m.has_integrity &&
        (!GetFixed(in, &off, &fhash) || !GetVarint64(in, &off, &fbytes))) {
      return Status::Corruption("column_store: bad column entry");
    }
    m.names.push_back(std::move(name));
    m.methods.push_back(std::move(method));
    m.file_hashes.push_back(fhash);
    m.file_bytes.push_back(fbytes);
  }
  if (!GetFixed(in, &off, &hash) ||
      hash != XxHash64(in.subspan(0, off - sizeof(uint64_t)))) {
    return Status::Corruption("column_store: manifest checksum mismatch");
  }
  return m;
}

}  // namespace

Status ColumnStore::Write(const std::string& prefix,
                          const std::vector<ColumnSpec>& columns,
                          size_t page_size) {
  if (columns.empty()) {
    return Status::InvalidArgument("column_store: no columns");
  }
  const size_t rows = columns[0].values.size();
  for (const auto& c : columns) {
    if (c.values.size() != rows) {
      return Status::InvalidArgument("column_store: ragged columns");
    }
    if (c.name.empty() || c.name.size() > 256) {
      return Status::InvalidArgument("column_store: bad column name");
    }
  }

  // One task per column: dtype conversion, method selection, page
  // compression, and file write all run in parallel on the shared pool.
  // Columns touch disjoint files and disjoint result slots, and each
  // auto column gets its own Selector, so task order cannot influence
  // any outcome.
  std::vector<Status> stats(columns.size());
  std::vector<std::string> resolved(columns.size());
  std::vector<PagedFile::WriteInfo> infos(columns.size());
  ThreadPool::Shared().ParallelFor(
      columns.size(),
      [&](size_t i) {
        obs::ScopedSpan col_span("segment.column", i, rows);
        const fail::Decision inj = FCB_FAILPOINT("segment.column");
        if (inj.fire) {
          stats[i] = fail::InjectedStatus("segment.column", inj,
                                          ColumnPath(prefix, i));
          return;
        }
        const ColumnSpec& c = columns[i];
        DataDesc desc;
        desc.dtype = c.dtype;
        desc.extent = {rows};
        desc.precision_digits = c.precision_digits;

        Buffer bytes(rows * DTypeSize(c.dtype));
        if (c.dtype == DType::kFloat32) {
          float* dst = reinterpret_cast<float*>(bytes.data());
          for (size_t r = 0; r < rows; ++r) {
            dst[r] = static_cast<float>(c.values[r]);
          }
        } else {
          std::memcpy(bytes.data(), c.values.data(), rows * 8);
        }

        // Online per-column selection: probe the column's own bytes and
        // persist the concrete winner, so the choice is made once at
        // write time and the manifest names a plain decodable method.
        resolved[i] = c.compressor;
        Objective objective;
        if (select::ParseAutoMethod(c.compressor, &objective)) {
          select::Selector::Config sel_cfg;
          sel_cfg.objective = objective;
          select::Selector selector(sel_cfg);
          resolved[i] = selector.Choose(bytes.span(), desc).method;
        }

        PagedFile::Options opt;
        opt.page_size = page_size;
        opt.compressor = resolved[i];
        stats[i] = PagedFile::Write(ColumnPath(prefix, i), bytes.span(),
                                    desc, opt, &infos[i]);
      },
      {/*grain=*/1});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);

  obs::ScopedSpan publish_span("segment.publish", columns.size(), rows);
  FCB_FAIL_RETURN("segment.publish", ManifestPath(prefix));
  Buffer manifest;
  PutFixed(&manifest, kManifestMagic);
  PutVarint64(&manifest, kManifestVersion);
  PutVarint64(&manifest, columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    PutVarint64(&manifest, columns[i].name.size());
    manifest.Append(columns[i].name.data(), columns[i].name.size());
    PutVarint64(&manifest, resolved[i].size());
    manifest.Append(resolved[i].data(), resolved[i].size());
    PutFixed(&manifest, infos[i].file_hash);
    PutVarint64(&manifest, infos[i].file_bytes);
  }
  PutFixed(&manifest, XxHash64(manifest.span()));
  // The manifest is published last, atomically, and only after every
  // column file it names is durably on disk (PagedFile::Write is
  // temp-file + rename + fsync): a crash anywhere in Write leaves either
  // the previous table or the complete new one — never a manifest
  // pointing at missing or torn column files.
  return fs::WriteFileAtomic(ManifestPath(prefix), manifest.span());
}

Result<std::vector<std::string>> ColumnStore::ListColumns(
    const std::string& prefix) {
  FCB_ASSIGN_OR_RETURN(Manifest m, ReadManifest(prefix));
  return m.names;
}

Result<std::vector<std::string>> ColumnStore::ListMethods(
    const std::string& prefix) {
  FCB_ASSIGN_OR_RETURN(Manifest m, ReadManifest(prefix));
  return m.methods;
}

Result<DataFrame> ColumnStore::Read(const std::string& prefix,
                                    const std::vector<std::string>& names,
                                    ReadStats* stats) {
  FCB_ASSIGN_OR_RETURN(Manifest m, ReadManifest(prefix));

  std::vector<size_t> wanted;
  if (names.empty()) {
    for (size_t i = 0; i < m.names.size(); ++i) wanted.push_back(i);
  } else {
    for (const auto& n : names) {
      size_t idx = m.names.size();
      for (size_t i = 0; i < m.names.size(); ++i) {
        if (m.names[i] == n) {
          idx = i;
          break;
        }
      }
      if (idx == m.names.size()) {
        return Status::InvalidArgument("column_store: no column '" + n +
                                       "'");
      }
      wanted.push_back(idx);
    }
  }

  std::vector<std::string> out_names;
  std::vector<std::vector<double>> out_cols;
  for (size_t idx : wanted) {
    const std::string path = ColumnPath(prefix, idx);
    PagedFile::ReadTiming timing;
    FCB_ASSIGN_OR_RETURN(Buffer bytes, PagedFile::Read(path, &timing));
    FCB_ASSIGN_OR_RETURN(DataDesc desc, PagedFile::ReadDesc(path));
    if (stats != nullptr) {
      stats->io_seconds += timing.io_seconds;
      stats->decode_seconds += timing.decode_seconds;
      stats->bytes_decoded += bytes.size();
      auto fs = PagedFile::FileSize(path);
      if (fs.ok()) stats->bytes_on_disk += fs.value();
    }

    const size_t rows = bytes.size() / DTypeSize(desc.dtype);
    std::vector<double> col(rows);
    if (desc.dtype == DType::kFloat32) {
      const float* src = reinterpret_cast<const float*>(bytes.data());
      for (size_t r = 0; r < rows; ++r) col[r] = src[r];
    } else {
      std::memcpy(col.data(), bytes.data(), rows * 8);
    }
    out_names.push_back(m.names[idx]);
    out_cols.push_back(std::move(col));
  }
  return DataFrame::FromColumns(std::move(out_names), std::move(out_cols));
}

Result<std::vector<double>> ColumnStore::ReadRows(const std::string& prefix,
                                                  const std::string& column,
                                                  uint64_t row_begin,
                                                  uint64_t row_count,
                                                  ReadStats* stats) {
  FCB_ASSIGN_OR_RETURN(Manifest m, ReadManifest(prefix));
  size_t idx = m.names.size();
  for (size_t i = 0; i < m.names.size(); ++i) {
    if (m.names[i] == column) {
      idx = i;
      break;
    }
  }
  if (idx == m.names.size()) {
    return Status::InvalidArgument("column_store: no column '" + column +
                                   "'");
  }

  const std::string path = ColumnPath(prefix, idx);
  FCB_ASSIGN_OR_RETURN(DataDesc desc, PagedFile::ReadDesc(path));
  const size_t esize = DTypeSize(desc.dtype);
  PagedFile::ReadTiming timing;
  FCB_ASSIGN_OR_RETURN(
      Buffer bytes,
      PagedFile::ReadByteRange(path, row_begin * esize, row_count * esize,
                               &timing));
  if (stats != nullptr) {
    stats->io_seconds += timing.io_seconds;
    stats->decode_seconds += timing.decode_seconds;
    stats->bytes_decoded += timing.decoded_bytes;  // whole touched pages
    auto fs = PagedFile::FileSize(path);
    if (fs.ok()) stats->bytes_on_disk += fs.value();
  }

  std::vector<double> out(row_count);
  if (desc.dtype == DType::kFloat32) {
    const float* src = reinterpret_cast<const float*>(bytes.data());
    for (uint64_t r = 0; r < row_count; ++r) out[r] = src[r];
  } else if (row_count > 0) {
    std::memcpy(out.data(), bytes.data(), row_count * 8);
  }
  return out;
}

Status ColumnStore::Verify(const std::string& prefix) {
  // ReadManifest already validates the manifest's own checksum.
  FCB_ASSIGN_OR_RETURN(Manifest m, ReadManifest(prefix));
  for (size_t i = 0; i < m.names.size(); ++i) {
    const std::string path = ColumnPath(prefix, i);
    if (m.has_integrity) {
      // Whole-file comparison against the identity captured at write
      // time: catches every bit flip, including ones a decode would
      // silently accept.
      FCB_ASSIGN_OR_RETURN(Buffer raw, fs::ReadFile(path));
      if (raw.size() != m.file_bytes[i]) {
        return Status::Corruption(
            "column_store: " + path + " is " + std::to_string(raw.size()) +
            " bytes, manifest records " + std::to_string(m.file_bytes[i]));
      }
      if (XxHash64(raw.span()) != m.file_hashes[i]) {
        return Status::Corruption("column_store: " + path +
                                  " fails whole-file checksum (column '" +
                                  m.names[i] + "')");
      }
    } else {
      // v2 manifest: no recorded hash; fall back to a structural decode,
      // which still catches truncation and most header/page damage.
      FCB_RETURN_IF_ERROR(PagedFile::Read(path, nullptr).status());
    }
  }
  return Status::OK();
}

Status ColumnStore::Drop(const std::string& prefix) {
  auto m = ReadManifest(prefix);
  if (m.ok()) {
    for (size_t i = 0; i < m.value().names.size(); ++i) {
      fs::RemoveFile(ColumnPath(prefix, i));
      fs::RemoveFile(ColumnPath(prefix, i) + fs::kTempSuffix);
    }
  }
  fs::RemoveFile(ManifestPath(prefix) + fs::kTempSuffix);
  return fs::RemoveFile(ManifestPath(prefix));
}

}  // namespace fcbench::db
