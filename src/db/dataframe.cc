#include "db/dataframe.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace fcbench::db {

Result<DataFrame> DataFrame::FromBytes(ByteSpan data, const DataDesc& desc) {
  if (data.size() != desc.num_bytes()) {
    return Status::InvalidArgument("dataframe: size mismatch");
  }
  size_t cols = 1;
  size_t rows = desc.num_elements();
  if (desc.rank() == 2) {
    rows = desc.extent[0];
    cols = desc.extent[1];
  }
  DataFrame df;
  df.rows_ = rows;
  df.columns_.assign(cols, {});
  for (size_t c = 0; c < cols; ++c) {
    // Built via += rather than operator+ to dodge GCC 12's -Wrestrict
    // false positive on inlined string concatenation (GCC PR105651).
    std::string col_name = "c";
    col_name += std::to_string(c);
    df.names_.push_back(std::move(col_name));
    df.columns_[c].resize(rows);
  }
  // Row-major on disk -> column vectors in memory.
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      size_t idx = r * cols + c;
      double v;
      if (desc.dtype == DType::kFloat32) {
        float f;
        std::memcpy(&f, data.data() + idx * 4, 4);
        v = f;
      } else {
        std::memcpy(&v, data.data() + idx * 8, 8);
      }
      df.columns_[c][r] = v;
    }
  }
  return df;
}

Result<DataFrame> DataFrame::FromColumns(
    std::vector<std::string> names, std::vector<std::vector<double>> cols) {
  if (names.size() != cols.size()) {
    return Status::InvalidArgument("dataframe: names/columns count mismatch");
  }
  DataFrame df;
  df.rows_ = cols.empty() ? 0 : cols[0].size();
  for (const auto& c : cols) {
    if (c.size() != df.rows_) {
      return Status::InvalidArgument("dataframe: ragged columns");
    }
  }
  df.names_ = std::move(names);
  df.columns_ = std::move(cols);
  return df;
}

uint64_t DataFrame::CountLessEqual(size_t col, double threshold) const {
  const auto& v = columns_[col];
  uint64_t count = 0;
  for (double x : v) {
    if (x <= threshold) ++count;
  }
  return count;
}

double DataFrame::SumLessEqual(size_t col, double threshold) const {
  const auto& v = columns_[col];
  double sum = 0;
  for (double x : v) {
    if (x <= threshold) sum += x;
  }
  return sum;
}

std::vector<double> DataFrame::HistogramEdges(size_t col, int bins) const {
  const auto& v = columns_[col];
  std::vector<double> edges;
  if (v.empty() || bins <= 0) return edges;
  double mn = v[0], mx = v[0];
  for (double x : v) {
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  for (int b = 1; b <= bins; ++b) {
    edges.push_back(mn + (mx - mn) * b / bins);
  }
  return edges;
}

}  // namespace fcbench::db
