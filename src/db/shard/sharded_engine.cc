#include "db/shard/sharded_engine.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/timer.h"

namespace fcbench::db::shard {
namespace {

constexpr const char* kShardsFileName = "SHARDS";
constexpr const char* kShardsMagic = "fcbench-shards v1";

/// splitmix64 finalizer: full-avalanche mix so adjacent series keys
/// (the common "series 0..N" layout) spread uniformly across shards
/// instead of striping.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string ShardDirName(size_t k) { return "shard-" + std::to_string(k); }

/// `"<magic>\nnum_shards <N>\n"`. Tiny and human-readable on purpose:
/// the file exists to make a shard-count mismatch a loud, attributable
/// refusal instead of silent re-routing.
std::string EncodeShardsFile(size_t num_shards) {
  return std::string(kShardsMagic) + "\nnum_shards " +
         std::to_string(num_shards) + "\n";
}

Result<size_t> ParseShardsFile(const std::string& path, ByteSpan data) {
  const std::string text(reinterpret_cast<const char*>(data.data()),
                         data.size());
  const std::string magic_line = std::string(kShardsMagic) + "\n";
  if (text.rfind(magic_line, 0) != 0) {
    return Status::Corruption("shard: bad SHARDS header in " + path);
  }
  const std::string key = "num_shards ";
  const size_t pos = text.find(key, magic_line.size());
  if (pos == std::string::npos) {
    return Status::Corruption("shard: no num_shards in " + path);
  }
  size_t num = 0;
  const char* p = text.c_str() + pos + key.size();
  while (*p >= '0' && *p <= '9') num = num * 10 + static_cast<size_t>(*p++ - '0');
  if (num == 0) {
    return Status::Corruption("shard: num_shards 0 in " + path);
  }
  return num;
}

Status Annotate(size_t shard, const Status& st) {
  if (st.ok()) return st;
  return Status(st.code(),
                "shard " + std::to_string(shard) + ": " + st.message());
}

}  // namespace

Result<std::unique_ptr<ShardedIngestEngine>> ShardedIngestEngine::Open(
    const std::string& dir, const std::vector<lsm::ColumnDef>& schema,
    const ShardOptions& options) {
  FCB_RETURN_IF_ERROR(fs::CreateDir(dir));

  // Resolve the shard count against the pinned SHARDS file. The count
  // decides routing, so it must never drift across reopens.
  const std::string shards_path = fs::JoinPath(dir, kShardsFileName);
  size_t num_shards = options.num_shards;
  if (fs::FileExists(shards_path)) {
    FCB_ASSIGN_OR_RETURN(Buffer raw, fs::ReadFile(shards_path));
    FCB_ASSIGN_OR_RETURN(size_t stored,
                         ParseShardsFile(shards_path, raw.span()));
    if (num_shards != 0 && num_shards != stored) {
      return Status::InvalidArgument(
          "shard: store at " + dir + " has " + std::to_string(stored) +
          " shards, reopen asked for " + std::to_string(num_shards) +
          " — re-routing existing keys is refused");
    }
    num_shards = stored;
  } else {
    if (num_shards == 0) {
      return Status::InvalidArgument(
          "shard: num_shards must be >= 1 for a new store");
    }
    const std::string body = EncodeShardsFile(num_shards);
    FCB_RETURN_IF_ERROR(fs::WriteFileAtomic(
        shards_path,
        ByteSpan(reinterpret_cast<const uint8_t*>(body.data()), body.size()),
        /*durable=*/true));
  }

  auto eng = std::unique_ptr<ShardedIngestEngine>(new ShardedIngestEngine());
  eng->dir_ = dir;
  eng->schema_ = schema;
  eng->opt_ = options;

  const size_t quota = options.shard_quota_bytes != 0
                           ? options.shard_quota_bytes
                           : 2 * options.engine.memtable_bytes;
  const size_t total = options.total_budget_bytes != 0
                           ? options.total_budget_bytes
                           : num_shards * quota;
  eng->budget_ = std::make_unique<MemoryBudget>(num_shards, total, quota);

  eng->shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    lsm::EngineOptions shard_opt = options.engine;
    // Flushed bytes return to the admission pool. The callback holds a
    // raw budget pointer: shards_ is declared after budget_, so every
    // shard engine (and with it any in-flight flush) is destroyed
    // before the budget is.
    MemoryBudget* budget = eng->budget_.get();
    shard_opt.on_memtable_released = [budget, k](size_t bytes) {
      budget->Release(k, bytes);
    };
    auto opened = lsm::IngestEngine::Open(
        fs::JoinPath(dir, ShardDirName(k)), schema, shard_opt);
    if (!opened.ok()) return Annotate(k, opened.status());
    eng->shards_.push_back(std::move(opened).value());
    // Recovery accounting: WAL replay may have refilled the memtable
    // before any append was admitted. Charged unchecked — it can push
    // the shard over quota, and appenders then wait for flushes to
    // drain it back under.
    const uint64_t buffered = eng->shards_.back()->buffered_bytes();
    if (buffered > 0) {
      eng->budget_->ChargeUnchecked(k, static_cast<size_t>(buffered));
    }
  }
  return eng;
}

ShardedIngestEngine::~ShardedIngestEngine() { Close(); }

size_t ShardedIngestEngine::ShardOf(uint64_t series_key) const {
  return static_cast<size_t>(Mix64(series_key) % shards_.size());
}

Status ShardedIngestEngine::Append(uint64_t series_key,
                                   const std::vector<double>& row) {
  return AppendBatch(series_key, row);
}

Status ShardedIngestEngine::AppendBatch(
    uint64_t series_key, const std::vector<double>& rows_row_major) {
  return AppendImpl(series_key, rows_row_major, nullptr);
}

Status ShardedIngestEngine::AppendBatchUntil(
    uint64_t series_key, const std::vector<double>& rows_row_major,
    std::chrono::steady_clock::time_point deadline) {
  return AppendImpl(series_key, rows_row_major, &deadline);
}

Status ShardedIngestEngine::AppendImpl(
    uint64_t series_key, const std::vector<double>& rows_row_major,
    const std::chrono::steady_clock::time_point* deadline) {
  const size_t ncols = schema_.size();
  if (ncols == 0 || rows_row_major.empty() ||
      rows_row_major.size() % ncols != 0) {
    return Status::InvalidArgument(
        "shard: batch size " + std::to_string(rows_row_major.size()) +
        " is not a non-zero multiple of " + std::to_string(ncols) +
        " columns");
  }
  obs::ScopedSpan span("shard.append", series_key,
                       rows_row_major.size() / ncols);
  size_t k;
  {
    obs::ScopedSpan route_span("shard.route", series_key);
    k = ShardOf(series_key);
    FCB_FAIL_RETURN("shard.route", dir_);
  }
  span.SetTag(ShardDirName(k).c_str());

  // Admission BEFORE the snapshot gate: a blocked appender must never
  // hold the gate shared, or it would stall snapshot reads for up to
  // its deadline.
  const size_t bytes = rows_row_major.size() * sizeof(double);
  {
    const fail::Decision d = FCB_FAILPOINT("shard.admit");
    if (d.fire) {
      return Status::Overloaded("injected fault at shard.admit (" +
                                ShardDirName(k) + ")");
    }
  }
  static obs::Counter* admitted =
      obs::MetricsRegistry::Global().GetCounter("shard.append.admitted");
  static obs::Counter* rejected =
      obs::MetricsRegistry::Global().GetCounter("shard.append.rejected");
  static obs::Histogram* wait_nanos =
      obs::MetricsRegistry::Global().GetHistogram(
          "shard.admission.wait_nanos", obs::Unit::kNanos);
  Status admit;
  {
    obs::ScopedSpan admit_span("shard.admission", k, bytes);
    if (deadline != nullptr) {
      Timer wait_timer;
      admit = budget_->AcquireUntil(k, bytes, *deadline);
      wait_nanos->Record(wait_timer.ElapsedNanos());
    } else {
      admit = budget_->TryAcquire(k, bytes);
    }
    if (!admit.ok()) admit_span.SetTag("rejected");
  }
  if (!admit.ok()) {
    rejected->Increment();
    return admit;
  }
  admitted->Increment();

  Status st;
  {
    std::shared_lock<std::shared_mutex> gate(snap_mu_);
    st = shards_[k]->AppendBatch(rows_row_major);
  }
  if (!st.ok()) {
    // Rejected batches buffer nothing; give the charge back at once.
    // Acknowledged batches stay charged until their flush publishes.
    budget_->Release(k, bytes);
    return Annotate(k, st);
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>>
ShardedIngestEngine::SnapshotReadShards(const std::string& column) const {
  // Exclusive on the gate: no append is between WAL commit and memtable
  // insert while we look, so each shard's row count is a batch-aligned
  // cut, and all cuts are taken at the same instant.
  obs::ScopedSpan span("shard.read", shards_.size());
  std::vector<uint64_t> cut(shards_.size(), 0);
  {
    std::unique_lock<std::shared_mutex> gate(snap_mu_);
    for (size_t k = 0; k < shards_.size(); ++k) cut[k] = shards_[k]->rows();
  }

  // Shards are append-only, so rows [0, cut[k]) are immutable: reading
  // off-gate and truncating yields the state as of the capture instant
  // even while ingest continues. (A concurrent scrub that quarantines a
  // segment can shrink a shard below its cut — the one documented
  // exception.)
  std::vector<std::vector<double>> out(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto r = shards_[k]->ReadColumn(column);
    if (!r.ok()) return Annotate(k, r.status());
    out[k] = std::move(r).value();
    if (out[k].size() > cut[k]) out[k].resize(cut[k]);
  }
  return out;
}

Result<std::vector<double>> ShardedIngestEngine::ReadColumn(
    const std::string& column) const {
  FCB_ASSIGN_OR_RETURN(std::vector<std::vector<double>> shards,
                       SnapshotReadShards(column));
  std::vector<double> out;
  size_t total = 0;
  for (const auto& v : shards) total += v.size();
  out.reserve(total);
  for (const auto& v : shards) out.insert(out.end(), v.begin(), v.end());
  return out;
}

Status ShardedIngestEngine::Flush() {
  // Phase 1: start every shard's flush. With background_flush they
  // overlap on the shared pool; scheduling is cheap (memtable swap).
  // A degraded shard reports its sticky error but must not stop the
  // siblings from flushing.
  Status first;
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Status st = shards_[k]->ScheduleFlush();
    if (!st.ok() && first.ok()) first = Annotate(k, st);
  }
  // Phase 2: wait for all of them, from the caller's thread (never from
  // a pool task — the pool may have a single worker).
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Status st = shards_[k]->WaitForFlush();
    if (!st.ok() && first.ok()) first = Annotate(k, st);
  }
  return first;
}

ScrubSummary ShardedIngestEngine::Scrub() {
  ScrubSummary sum;
  sum.shards.reserve(shards_.size());
  // Serial across shards; each shard's Scrub parallelises its segment
  // verification internally on the shared pool.
  for (size_t k = 0; k < shards_.size(); ++k) {
    ShardScrubReport entry;
    entry.shard = k;
    auto r = shards_[k]->Scrub();
    if (r.ok()) {
      entry.report = std::move(r).value();
      sum.segments_checked += entry.report.segments_checked;
      sum.segments_quarantined += entry.report.quarantined_ids.size();
      if (!entry.report.quarantined_ids.empty() || !entry.report.wal_clean) {
        sum.all_clean = false;
      }
    } else {
      entry.status = Annotate(k, r.status());
      sum.all_clean = false;
    }
    sum.shards.push_back(std::move(entry));
  }
  return sum;
}

HealthReport ShardedIngestEngine::Health() const {
  HealthReport report;
  report.shards.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    ShardHealth h;
    h.shard = k;
    h.error = shards_[k]->background_error();
    h.read_only = !h.error.ok();
    h.rows = shards_[k]->rows();
    h.buffered_bytes = shards_[k]->buffered_bytes();
    h.quarantined_segments = shards_[k]->quarantined().size();
    h.stats = shards_[k]->stats();
    if (h.read_only) ++report.degraded_shards;
    report.shards.push_back(std::move(h));
  }
  report.budget_used = budget_->used();
  report.budget_total = budget_->total_bytes();
  return report;
}

Status ShardedIngestEngine::Close() {
  {
    std::lock_guard<std::mutex> g(close_mu_);
    if (closed_) return Status::OK();
    closed_ = true;
  }
  // Unblock deadline-waiting appenders first (they would otherwise ride
  // out their deadlines against a budget that will never drain) ...
  budget_->Shutdown();
  // ... then interrupt every shard's retry backoff BEFORE closing any:
  // shutdown latency is one backoff wait, not one per shard.
  for (auto& s : shards_) s->InterruptRetries();
  Status first;
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Status st = shards_[k]->Close();
    if (!st.ok() && first.ok()) first = Annotate(k, st);
  }
  return first;
}

uint64_t ShardedIngestEngine::rows() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->rows();
  return total;
}

}  // namespace fcbench::db::shard
