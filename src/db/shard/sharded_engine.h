#ifndef FCBENCH_DB_SHARD_SHARDED_ENGINE_H_
#define FCBENCH_DB_SHARD_SHARDED_ENGINE_H_

#include <chrono>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/lsm/lsm_engine.h"
#include "util/budget.h"
#include "util/status.h"

namespace fcbench::db::shard {

/// Options for the sharded multi-tenant ingest engine. The per-shard
/// engine options apply to every shard identically (each shard is a
/// full IngestEngine in its own subdirectory).
struct ShardOptions {
  /// Number of shards. On reopen 0 adopts the stored count; a non-zero
  /// value that disagrees with the stored count is rejected — silently
  /// re-routing keys to different shards would orphan their history.
  size_t num_shards = 4;
  /// Admission quota per shard: max bytes a single shard may hold
  /// buffered (unflushed) at once. 0 derives 2x the shard's memtable
  /// watermark, i.e. one full memtable plus one being flushed.
  size_t shard_quota_bytes = 0;
  /// Process-wide admission budget across all shards. 0 derives
  /// num_shards * shard_quota_bytes, which makes the quotas independent:
  /// a degraded shard pinning its full quota can never starve a sibling.
  /// A smaller total creates deliberate global contention.
  size_t total_budget_bytes = 0;
  /// Per-shard engine configuration (WAL sync, memtable watermark,
  /// retries, compaction...). on_memtable_released is overwritten: the
  /// sharded engine wires it to the admission budget.
  lsm::EngineOptions engine;
};

/// Health of one shard, as aggregated by ShardedIngestEngine::Health.
struct ShardHealth {
  size_t shard = 0;
  /// True once the shard degraded to sticky read-only (its appends fail
  /// fast with `error` while siblings keep accepting writes).
  bool read_only = false;
  /// The shard's sticky background error (OK when healthy).
  Status error;
  uint64_t rows = 0;
  /// Bytes buffered in the shard's memtables — what the shard currently
  /// holds of its admission quota.
  uint64_t buffered_bytes = 0;
  uint64_t quarantined_segments = 0;
  /// The shard's per-engine activity totals (appends, flushes,
  /// compactions, retries) — IngestEngine::stats() at report time.
  lsm::EngineStats stats;
};

struct HealthReport {
  std::vector<ShardHealth> shards;
  size_t degraded_shards = 0;
  /// Admission budget occupancy at report time.
  size_t budget_used = 0;
  size_t budget_total = 0;
  bool all_healthy() const { return degraded_shards == 0; }
};

/// One shard's scrub outcome inside a coordinated Scrub pass.
struct ShardScrubReport {
  size_t shard = 0;
  /// Non-OK when the shard's scrub itself failed to run (the report is
  /// then default-initialised).
  Status status;
  lsm::ScrubReport report;
};

struct ScrubSummary {
  std::vector<ShardScrubReport> shards;
  uint64_t segments_checked = 0;
  uint64_t segments_quarantined = 0;
  /// False when any shard quarantined a segment, stopped WAL replay
  /// early, or failed to scrub at all.
  bool all_clean = true;
};

/// Sharded multi-tenant ingest engine: hash-partitions series keys
/// across N independent IngestEngine shards (subdirectories
/// `<dir>/shard-<k>/`) and makes overload and partial failure
/// first-class:
///
///  - Admission control. Every append charges its batch bytes against a
///    per-shard quota and a process-wide budget (util/budget.h) before
///    touching the shard. Over budget, AppendBatch fails fast with a
///    typed kOverloaded status; AppendBatchUntil instead blocks on a
///    condition variable until bytes drain, the caller's deadline
///    passes, or Close() — never a sleep-poll. Bytes return to the pool
///    when the owning shard publishes its flushed memtable.
///
///  - Fault isolation. A shard that exhausts its IO retries degrades
///    itself to sticky read-only; siblings keep accepting writes.
///    Health() aggregates per-shard state (root-cause error included),
///    and Scrub() fans the PR-6 quarantine protocol across shards.
///
///  - Snapshot-consistent cross-shard reads. SnapshotReadShards briefly
///    gates appenders out (shared_mutex), captures every shard's row
///    count at one instant, then reads off-gate and truncates each
///    shard to its captured count — no torn batches, no shard ahead of
///    another relative to the capture instant.
///
///  - Coordinated Flush/Close. Flush schedules every shard's background
///    flush first (they overlap on ThreadPool::Shared()) and only then
///    waits; Close interrupts every shard's retry backoff before
///    closing any, so shutdown latency is one backoff, not N.
///
/// The shard count is pinned in a `SHARDS` file at the top level:
/// reopening with a different count is refused rather than silently
/// re-routing keys.
class ShardedIngestEngine {
 public:
  static Result<std::unique_ptr<ShardedIngestEngine>> Open(
      const std::string& dir, const std::vector<lsm::ColumnDef>& schema,
      const ShardOptions& options = {});

  /// Closes via Close() (best effort — errors are dropped; call Close()
  /// first to observe them).
  ~ShardedIngestEngine();

  ShardedIngestEngine(const ShardedIngestEngine&) = delete;
  ShardedIngestEngine& operator=(const ShardedIngestEngine&) = delete;

  /// One row for `series_key` (one value per schema column). Fail-fast
  /// admission: kOverloaded when the owning shard is over quota.
  Status Append(uint64_t series_key, const std::vector<double>& row);

  /// Batch append routed to `series_key`'s shard, fail-fast admission.
  /// The whole batch lands on ONE shard (a series never spans shards).
  /// Errors: kOverloaded (admission), the shard's sticky read-only
  /// error (degraded shard — siblings are unaffected), or the shard's
  /// WAL commit failure (batch rejected, shard stays writable).
  Status AppendBatch(uint64_t series_key,
                     const std::vector<double>& rows_row_major);

  /// Like AppendBatch, but over-budget waits (condition variable, no
  /// polling) until the charge fits or `deadline` passes (kOverloaded,
  /// "deadline exceeded"). A batch larger than the shard quota can
  /// never be admitted and is rejected immediately.
  Status AppendBatchUntil(uint64_t series_key,
                          const std::vector<double>& rows_row_major,
                          std::chrono::steady_clock::time_point deadline);

  /// Snapshot-consistent read: one vector per shard, each truncated to
  /// the shard's row count captured at a single instant with no append
  /// in flight. Concurrent ingest never tears a batch into the result.
  /// Caveat: a scrub that quarantines a segment between capture and
  /// read can make a shard return fewer rows than captured.
  Result<std::vector<std::vector<double>>> SnapshotReadShards(
      const std::string& column) const;

  /// Convenience: SnapshotReadShards concatenated in shard order.
  Result<std::vector<double>> ReadColumn(const std::string& column) const;

  /// Coordinated flush: schedules every shard's flush (overlapping on
  /// the shared pool), then waits for all. Returns the first failing
  /// shard's error annotated with its index; the remaining shards are
  /// still flushed.
  Status Flush();

  /// Integrity scrub across all shards (each shard's Scrub runs the
  /// PR-6 verify + quarantine protocol). Always returns a summary; a
  /// shard whose scrub could not run is reported in its entry's status.
  ScrubSummary Scrub();

  /// Aggregated health: per-shard read-only state with root cause,
  /// rows, buffered bytes, quarantine counts, and budget occupancy.
  HealthReport Health() const;

  /// Interrupts retry backoffs on every shard, shuts the admission
  /// budget down (waking blocked appenders with kOverloaded), then
  /// closes shards. Idempotent; returns the first shard close error.
  Status Close();

  /// The shard `series_key` routes to (stable across reopen — the
  /// SHARDS file pins the count).
  size_t ShardOf(uint64_t series_key) const;

  size_t num_shards() const { return shards_.size(); }
  /// Total rows across all shards.
  uint64_t rows() const;
  /// Direct access to one shard's engine (tests, per-shard scrubbing).
  lsm::IngestEngine* shard(size_t k) { return shards_[k].get(); }
  const MemoryBudget& budget() const { return *budget_; }
  const std::string& dir() const { return dir_; }

 private:
  ShardedIngestEngine() = default;

  /// Admission + routed append shared by the fail-fast and deadline
  /// paths. `deadline` null = TryAcquire.
  Status AppendImpl(
      uint64_t series_key, const std::vector<double>& rows_row_major,
      const std::chrono::steady_clock::time_point* deadline);

  std::string dir_;
  std::vector<lsm::ColumnDef> schema_;
  ShardOptions opt_;
  /// Declared before shards_: shard engines hold on_memtable_released
  /// callbacks into the budget, so they must be destroyed first
  /// (members destruct in reverse declaration order).
  std::unique_ptr<MemoryBudget> budget_;
  std::vector<std::unique_ptr<lsm::IngestEngine>> shards_;
  /// Snapshot gate: appenders hold it shared across the shard append;
  /// SnapshotReadShards holds it exclusive only while capturing row
  /// counts. See SnapshotReadShards.
  mutable std::shared_mutex snap_mu_;
  std::mutex close_mu_;
  bool closed_ = false;
};

}  // namespace fcbench::db::shard

#endif  // FCBENCH_DB_SHARD_SHARDED_ENGINE_H_
