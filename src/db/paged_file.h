#ifndef FCBENCH_DB_PAGED_FILE_H_
#define FCBENCH_DB_PAGED_FILE_H_

#include <string>

#include "core/compressor.h"
#include "core/format.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::db {

/// HDF5-style chunked dataset container (paper §5.1.2 / Figure 4).
///
/// One floating-point array is stored as a sequence of fixed-size pages
/// ("chunks" in HDF5 terms), each independently compressed by a pluggable
/// compression filter. This is the on-disk half of the simulated
/// in-memory database: the Table 10 block-size sweep and the Table 11
/// read/decode/query breakdown both run through it.
class PagedFile {
 public:
  struct Options {
    /// Page (chunk) size in bytes of raw data per page; the paper sweeps
    /// 4 KiB / 64 KiB / 8 MiB.
    size_t page_size = 64 << 10;
    /// Registry name of the compression filter ("none" = raw pages).
    std::string compressor = "none";
    CompressorConfig config;
    /// fsync the container and its directory as part of the atomic
    /// temp-file + rename publish. Writes are atomic either way; turning
    /// this off only trades power-loss durability for speed.
    bool durable = true;
  };

  /// Timing breakdown of a read, matching the paper's file I/O vs. data
  /// decoding split (§6.2.2).
  struct ReadTiming {
    double io_seconds = 0;
    double decode_seconds = 0;
    /// Raw bytes actually decompressed. For ReadByteRange this counts the
    /// whole touched pages, not just the returned slice — the honest
    /// decode cost of a pushdown read.
    uint64_t decoded_bytes = 0;
  };

  /// Identity of the container as written — filled by Write so callers
  /// (the column-store manifest) can later re-verify the file bit for bit
  /// without trusting anything inside it.
  struct WriteInfo {
    /// xxh64 over the complete container bytes (header + pages).
    uint64_t file_hash = 0;
    /// Size of the complete container in bytes.
    uint64_t file_bytes = 0;
  };

  /// Compresses `data` page by page and writes the container to `path`.
  /// When `info` is non-null it receives the whole-file hash and size of
  /// the published container.
  static Status Write(const std::string& path, ByteSpan data,
                      const DataDesc& desc, const Options& options,
                      WriteInfo* info = nullptr);

  /// Reads the container back: file I/O and per-page decompression are
  /// timed separately. Returns the raw little-endian element bytes.
  static Result<Buffer> Read(const std::string& path, ReadTiming* timing);

  /// Reads raw bytes [offset, offset + length) of the stored array,
  /// decoding only the pages that overlap the range (chunk-granular
  /// pushdown: a point or range query touches one page, not the column).
  /// The file is still read whole — the saving is decode work, which
  /// dominates for compressed columns (§6.2.2).
  static Result<Buffer> ReadByteRange(const std::string& path,
                                      uint64_t offset, uint64_t length,
                                      ReadTiming* timing = nullptr);

  /// Reads only the stored metadata (no page decode).
  static Result<DataDesc> ReadDesc(const std::string& path);

  /// Total on-disk size of the container, or error.
  static Result<uint64_t> FileSize(const std::string& path);
};

}  // namespace fcbench::db

#endif  // FCBENCH_DB_PAGED_FILE_H_
