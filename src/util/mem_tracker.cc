#include "util/mem_tracker.h"

namespace fcbench {

MemTracker& MemTracker::Global() {
  static MemTracker* tracker = new MemTracker();
  return *tracker;
}

}  // namespace fcbench
