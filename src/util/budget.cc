#include "util/budget.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace fcbench {

namespace {

/// Admission occupancy gauges. Gauges are last-writer-wins, so with
/// several MemoryBudget instances alive (tests) they track the most
/// recently active one — in production there is one budget per process.
obs::Gauge* UsedGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("budget.used_bytes");
  return g;
}

obs::Gauge* TotalGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("budget.total_bytes");
  return g;
}

}  // namespace

MemoryBudget::MemoryBudget(size_t num_shards, size_t total_bytes,
                           size_t quota_bytes)
    : total_(std::max<size_t>(1, total_bytes)),
      quota_(std::max<size_t>(1, quota_bytes)),
      shard_used_(std::max<size_t>(1, num_shards), 0) {
  TotalGauge()->Set(static_cast<int64_t>(total_));
}

bool MemoryBudget::FitsLocked(size_t shard, size_t bytes) const {
  return shard_used_[shard] + bytes <= quota_ && used_ + bytes <= total_;
}

Status MemoryBudget::OverloadedLocked(size_t shard, size_t bytes,
                                      const char* why) const {
  return Status::Overloaded(
      "admission " + std::string(why) + ": shard " + std::to_string(shard) +
      " request " + std::to_string(bytes) + "B, shard " +
      std::to_string(shard_used_[shard]) + "/" + std::to_string(quota_) +
      "B, total " + std::to_string(used_) + "/" + std::to_string(total_) +
      "B");
}

Status MemoryBudget::TryAcquire(size_t shard, size_t bytes) {
  std::lock_guard<std::mutex> g(mu_);
  if (shard >= shard_used_.size()) {
    return Status::InvalidArgument("budget: no shard " +
                                   std::to_string(shard));
  }
  if (shutdown_) return OverloadedLocked(shard, bytes, "shutting down");
  if (!FitsLocked(shard, bytes)) {
    return OverloadedLocked(shard, bytes, "rejected");
  }
  shard_used_[shard] += bytes;
  used_ += bytes;
  UsedGauge()->Set(static_cast<int64_t>(used_));
  return Status::OK();
}

Status MemoryBudget::AcquireUntil(
    size_t shard, size_t bytes,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  if (shard >= shard_used_.size()) {
    return Status::InvalidArgument("budget: no shard " +
                                   std::to_string(shard));
  }
  // A request that exceeds the smaller of quota and total can never be
  // admitted; waiting out the deadline would just delay the inevitable.
  if (bytes > quota_ || bytes > total_) {
    return OverloadedLocked(shard, bytes, "rejected (over hard cap)");
  }
  const bool ok = cv_.wait_until(lk, deadline, [&] {
    return shutdown_ || FitsLocked(shard, bytes);
  });
  if (shutdown_) return OverloadedLocked(shard, bytes, "shutting down");
  if (!ok) return OverloadedLocked(shard, bytes, "deadline exceeded");
  shard_used_[shard] += bytes;
  used_ += bytes;
  UsedGauge()->Set(static_cast<int64_t>(used_));
  return Status::OK();
}

void MemoryBudget::Release(size_t shard, size_t bytes) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shard >= shard_used_.size()) return;
    const size_t take = std::min(bytes, shard_used_[shard]);
    shard_used_[shard] -= take;
    used_ -= std::min(take, used_);
    UsedGauge()->Set(static_cast<int64_t>(used_));
  }
  cv_.notify_all();
}

void MemoryBudget::ChargeUnchecked(size_t shard, size_t bytes) {
  std::lock_guard<std::mutex> g(mu_);
  if (shard >= shard_used_.size()) return;
  shard_used_[shard] += bytes;
  used_ += bytes;
  UsedGauge()->Set(static_cast<int64_t>(used_));
}

void MemoryBudget::Shutdown() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

size_t MemoryBudget::used() const {
  std::lock_guard<std::mutex> g(mu_);
  return used_;
}

size_t MemoryBudget::shard_used(size_t shard) const {
  std::lock_guard<std::mutex> g(mu_);
  return shard < shard_used_.size() ? shard_used_[shard] : 0;
}

size_t MemoryBudget::num_shards() const {
  std::lock_guard<std::mutex> g(mu_);
  return shard_used_.size();
}

}  // namespace fcbench
