#ifndef FCBENCH_UTIL_BUDGET_H_
#define FCBENCH_UTIL_BUDGET_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace fcbench {

/// Admission-control accounting for the sharded ingest engine: one
/// process-wide byte budget plus a per-shard quota, guarded by a single
/// mutex + condition variable. An over-budget acquire either fails fast
/// with a typed kOverloaded status or blocks on the condition variable
/// until bytes are released, the deadline passes, or the budget shuts
/// down — there is never a sleep-poll loop.
///
/// The charged unit is "bytes buffered in a shard's memtables that have
/// not yet been flushed to a segment": the sharded engine charges every
/// admitted batch and releases when the owning shard publishes the
/// flushed memtable (EngineOptions::on_memtable_released). A shard that
/// degrades to read-only with an unflushed memtable keeps its bytes
/// charged — that is the isolation property: a stuck shard can pin at
/// most its own quota, never a sibling's.
class MemoryBudget {
 public:
  /// `total_bytes`: process-wide cap across all shards. `quota_bytes`:
  /// per-shard cap. Both must be > 0; quota may exceed total (the total
  /// then dominates).
  MemoryBudget(size_t num_shards, size_t total_bytes, size_t quota_bytes);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charges `bytes` to `shard` if it fits both the shard quota and the
  /// process budget right now; otherwise fails fast with kOverloaded
  /// (message names the shard, the request and the headroom).
  Status TryAcquire(size_t shard, size_t bytes);

  /// Like TryAcquire, but waits (condition variable, no polling) until
  /// the charge fits, `deadline` passes (kOverloaded), or Shutdown()
  /// (kOverloaded, "shutting down"). A request larger than
  /// min(quota, total) can never fit and is rejected immediately.
  Status AcquireUntil(size_t shard, size_t bytes,
                      std::chrono::steady_clock::time_point deadline);

  /// Returns `bytes` of `shard`'s charge; wakes blocked acquirers.
  /// Clamped to the outstanding charge, so a spurious double-release can
  /// never corrupt the accounting.
  void Release(size_t shard, size_t bytes);

  /// Charges without admission checks and without failing — recovery
  /// accounting for bytes that are already buffered (WAL replay filled a
  /// memtable before any append was admitted). May push a shard over
  /// quota; acquirers then wait until flushes drain it back under.
  void ChargeUnchecked(size_t shard, size_t bytes);

  /// Fails all current and future acquires with kOverloaded ("shutting
  /// down") and wakes every waiter. Used by coordinated Close so no
  /// appender stays blocked on a budget that will never drain.
  void Shutdown();

  size_t used() const;
  size_t shard_used(size_t shard) const;
  size_t total_bytes() const { return total_; }
  size_t quota_bytes() const { return quota_; }
  size_t num_shards() const;

 private:
  /// Call under mu_.
  bool FitsLocked(size_t shard, size_t bytes) const;
  Status OverloadedLocked(size_t shard, size_t bytes,
                          const char* why) const;

  const size_t total_;
  const size_t quota_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<size_t> shard_used_;
  size_t used_ = 0;
  bool shutdown_ = false;
};

}  // namespace fcbench

#endif  // FCBENCH_UTIL_BUDGET_H_
