#include "util/thread_pool.h"

#include <algorithm>

namespace fcbench {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++inflight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return inflight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelRanges(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t parts = std::min(n, workers_.size());
  size_t chunk = (n + parts - 1) / parts;
  for (size_t p = 0; p < parts; ++p) {
    size_t begin = p * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --inflight_;
      if (inflight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace fcbench
