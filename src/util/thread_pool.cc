#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/timer.h"

namespace fcbench {

namespace {

/// Submitted-but-not-yet-started tasks across ALL pools (there is
/// normally exactly one, ThreadPool::Shared()).
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pool.queue_depth");
  return g;
}

/// Set for the lifetime of a worker thread; lets ParallelFor detect that
/// it is being called from inside one of its own pool's tasks (nested
/// parallelism) and degrade to inline execution instead of deadlocking.
thread_local const ThreadPool* tls_worker_pool = nullptr;

/// Per-ParallelFor shared state: a dynamic work cursor plus a private
/// join, so concurrent ParallelFor calls on the same (shared) pool never
/// wait on each other's tasks.
struct ForState {
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  size_t helpers_pending = 0;
  std::exception_ptr first_exception;
  std::mutex mu;
  std::condition_variable cv;
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: workers park in their condition wait at process
  // exit, which sidesteps static-destruction-order joins from other
  // translation units' destructors.
  static ThreadPool* pool = new ThreadPool(
      static_cast<size_t>(DefaultThreads()));
  return *pool;
}

int ThreadPool::DefaultThreads() {
  static const int resolved = [] {
    if (const char* env = std::getenv("FCBENCH_THREADS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        return static_cast<int>(std::min<long>(v, 512));
      }
      std::fprintf(stderr,
                   "fcbench: ignoring invalid FCBENCH_THREADS='%s'\n", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return resolved;
}

int ThreadPool::ResolveThreads(int configured) {
  return configured > 0 ? configured : DefaultThreads();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Carry the submitter's trace context into the task so background
  // work (a scheduled flush, ParallelFor helpers) records spans nested
  // under the operation that triggered it. Free when tracing is off:
  // CurrentTraceContext is one relaxed load, and the wrapper only
  // exists while a sampled trace is live.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id != 0) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++inflight_;
  }
  static obs::Counter* submitted =
      obs::MetricsRegistry::Global().GetCounter("pool.tasks");
  submitted->Increment();
  QueueDepthGauge()->Add(1);
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return inflight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             ForOptions options) {
  if (n == 0) return;

  size_t participants = workers_.size() + 1;  // workers + calling thread
  if (options.max_parallelism > 0) {
    participants = std::min(participants, options.max_parallelism);
  }

  // Reentrant call from one of our own workers: the queue position this
  // call would need may be behind the very task we are running, so run
  // inline. Single-participant budgets take the same path.
  if (participants <= 1 || tls_worker_pool == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  size_t grain = options.grain;
  if (grain == 0) grain = std::max<size_t>(1, n / (participants * 4));

  const size_t chunks = (n + grain - 1) / grain;
  // One drain loop per participant; never more helpers than there are
  // chunks beyond the one the caller will take.
  const size_t helpers = std::min(participants - 1, chunks - 1);

  auto state = std::make_shared<ForState>();
  state->helpers_pending = helpers;

  // The caller blocks until every helper finishes, so `fn` (a reference)
  // and `state` outlive all users.
  auto drain = [state, n, grain, &fn] {
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) return;
      size_t begin = state->next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(n, begin + grain);
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_exception) {
          state->first_exception = std::current_exception();
        }
        state->failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] {
      drain();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->helpers_pending;
      }
      state->cv.notify_all();
    });
  }

  drain();

  // The cursor is exhausted, but queued helper stubs must still be
  // dequeued before `state` and `fn` can die. Rather than sleeping while
  // they sit behind unrelated work on a shared pool, the caller helps
  // drain the queue: its own stubs are in there somewhere, and executing
  // the tasks ahead of them is at worst the same work the pool would do
  // serially anyway. Once the queue is empty our stubs are either done or
  // running on a worker, and a plain wait is bounded by one drain pass.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->helpers_pending == 0) break;
    }
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      QueueDepthGauge()->Add(-1);
      RunTask(task);
    } else {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&state] { return state->helpers_pending == 0; });
      break;
    }
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    if (state->first_exception) std::rethrow_exception(state->first_exception);
  }
}

void ThreadPool::ParallelRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn,
    size_t max_ranges) {
  if (n == 0) return;
  size_t parts = workers_.size() + 1;
  if (max_ranges > 0) parts = std::min(parts, max_ranges);
  parts = std::min(parts, n);
  if (parts <= 1 || tls_worker_pool == this) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + parts - 1) / parts;
  // Reuse the dynamic machinery with range-sized grains: each claimed
  // chunk is exactly one contiguous range.
  ParallelFor((n + chunk - 1) / chunk,
              [&fn, n, chunk](size_t part) {
                size_t begin = part * chunk;
                size_t end = std::min(n, begin + chunk);
                fn(begin, end);
              },
              {/*grain=*/1, /*max_parallelism=*/parts});
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  static obs::Histogram* task_nanos =
      obs::MetricsRegistry::Global().GetHistogram("pool.task_nanos",
                                                  obs::Unit::kNanos);
  const bool timed = obs::Enabled();
  Timer timer;
  try {
    task();
  } catch (...) {
    // Raw Submit() tasks have no caller left to rethrow into; dying with
    // a diagnostic beats the bare std::terminate an escaping exception
    // used to cause. ParallelFor wraps its work in its own try/catch, so
    // only contract violations reach this handler.
    std::fprintf(stderr,
                 "fcbench: ThreadPool task threw an exception; tasks must "
                 "be no-throw (see util/thread_pool.h)\n");
    std::terminate();
  }
  if (timed) task_nanos->Record(timer.ElapsedNanos());
  {
    std::unique_lock<std::mutex> lock(mu_);
    --inflight_;
    if (inflight_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    QueueDepthGauge()->Add(-1);
    RunTask(task);
  }
}

}  // namespace fcbench
