#ifndef FCBENCH_UTIL_FS_H_
#define FCBENCH_UTIL_FS_H_

#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::fs {

/// Durable-filesystem helpers shared by every on-disk writer (PagedFile,
/// ColumnStore, the LSM ingest engine). The publish protocol for any
/// file that a manifest may reference is always the same three steps:
///   1. write the complete contents to `<path>.tmp` and fsync the file,
///   2. rename(2) `<path>.tmp` over `<path>` (atomic on POSIX),
///   3. fsync the containing directory so the rename itself is durable.
/// A crash at any byte of that sequence leaves either the old file, no
/// file, or a stale `<path>.tmp` — never a torn `<path>` — and stale
/// temp files are swept by recovery (see IsTempPath).

/// Suffix of in-flight atomic writes. Recovery deletes any file with
/// this suffix: a temp file is by definition unpublished state.
inline constexpr const char* kTempSuffix = ".tmp";

/// True when `name` (a path or a bare file name) ends in kTempSuffix.
bool IsTempPath(const std::string& name);

/// Directory part of `path`; "." when `path` has no separator.
std::string DirOf(const std::string& path);

/// `dir` + "/" + `name` (no separator doubling).
std::string JoinPath(const std::string& dir, const std::string& name);

bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);

/// Reads the whole file into a Buffer.
Result<Buffer> ReadFile(const std::string& path);

/// Removes `path`; OK when the file does not exist (idempotent cleanup).
Status RemoveFile(const std::string& path);

/// rename(2) `from` over `to` (atomic replacement on POSIX). The caller
/// is responsible for making the rename durable (SyncDir on the parent).
Status RenameFile(const std::string& from, const std::string& to);

/// Creates `path` (one level); OK when it already exists.
Status CreateDir(const std::string& path);

/// Names (not paths) of the entries in `dir`, sorted, "."/".." excluded.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// fsyncs a directory so previously-renamed/created entries are durable.
Status SyncDir(const std::string& dir);

/// Writes `data` to `path` with the temp-file + rename(+ fsync when
/// `durable`) publish protocol described above. Readers either see the
/// previous contents or the complete new contents, never a prefix.
Status WriteFileAtomic(const std::string& path, ByteSpan data,
                       bool durable = true);

/// Append-only file handle for the write-ahead log: unbuffered positional
/// appends with explicit Sync(). Creation truncates (WAL recovery never
/// appends to an existing — possibly torn — segment; it starts a new one).
///
/// Every error Status names the failing path and carries the errno text;
/// ENOSPC surfaces as ResourceExhausted so callers can distinguish a
/// full disk (reject the batch) from a failing one (degrade/retry).
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept;
  ~AppendFile();

  /// Creates (or truncates) `path` for appending. When `durable`, the
  /// creation is made durable immediately by fsyncing the directory, and
  /// Close() performs (and reports) a final fsync of unsynced appends.
  static Result<AppendFile> Create(const std::string& path, bool durable);

  /// Appends all of `data`. On failure an unknown prefix of `data` may
  /// have reached the file; offset() is NOT advanced — TruncateTo(offset())
  /// restores the file to its last known-good length.
  Status Append(ByteSpan data);
  /// fsyncs everything appended so far.
  Status Sync();
  /// Truncates the file back to `size` bytes (write-failure healing:
  /// discard a partially-landed append so the file is a clean prefix of
  /// successful appends again).
  Status TruncateTo(uint64_t size);
  /// Closes the file. For a durable file with unsynced appends this
  /// fsyncs first and reports a failed final fsync instead of swallowing
  /// it (the last write's durability is part of Close's contract).
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// Bytes successfully appended since Create (or set by TruncateTo).
  uint64_t offset() const { return offset_; }

 private:
  int fd_ = -1;
  uint64_t offset_ = 0;
  bool durable_ = false;
  bool dirty_ = false;  // appended since the last successful fsync
  std::string path_;    // for error messages
};

}  // namespace fcbench::fs

#endif  // FCBENCH_UTIL_FS_H_
