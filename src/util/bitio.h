#ifndef FCBENCH_UTIL_BITIO_H_
#define FCBENCH_UTIL_BITIO_H_

#include <cstdint>
#include <cstring>

#include "util/buffer.h"

namespace fcbench {

/// MSB-first bit writer, as used by Gorilla/Chimp-style XOR coders where
/// variable-length control codes are concatenated most-significant-bit
/// first.
class BitWriter {
 public:
  explicit BitWriter(Buffer* out) : out_(out) {}

  /// Writes the low `nbits` bits of `value`, most significant first.
  /// nbits must be in [0, 64].
  void WriteBits(uint64_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      WriteBit((value >> i) & 1u);
    }
  }

  /// Writes a single bit (0 or 1).
  void WriteBit(uint32_t bit) {
    acc_ = static_cast<uint8_t>((acc_ << 1) | (bit & 1u));
    ++nacc_;
    if (nacc_ == 8) {
      out_->PushBack(acc_);
      acc_ = 0;
      nacc_ = 0;
    }
  }

  /// Pads the final partial byte with zero bits and flushes it.
  void Flush() {
    if (nacc_ > 0) {
      out_->PushBack(static_cast<uint8_t>(acc_ << (8 - nacc_)));
      acc_ = 0;
      nacc_ = 0;
    }
  }

  /// Total number of bits written so far (excluding flush padding).
  size_t bit_count() const { return out_->size() * 8 + nacc_; }

 private:
  Buffer* out_;
  uint8_t acc_ = 0;
  int nacc_ = 0;
};

/// MSB-first bit reader matching BitWriter.
class BitReader {
 public:
  explicit BitReader(ByteSpan in) : in_(in) {}

  /// Reads one bit; returns 0 past the end (callers detect overruns via
  /// exhausted()).
  uint32_t ReadBit() {
    if (byte_ >= in_.size()) {
      overrun_ = true;
      return 0;
    }
    uint32_t bit = (in_[byte_] >> (7 - nbit_)) & 1u;
    ++nbit_;
    if (nbit_ == 8) {
      nbit_ = 0;
      ++byte_;
    }
    return bit;
  }

  /// Reads `nbits` bits MSB-first into the low bits of the result.
  uint64_t ReadBits(int nbits) {
    uint64_t v = 0;
    for (int i = 0; i < nbits; ++i) {
      v = (v << 1) | ReadBit();
    }
    return v;
  }

  /// True once a read went past the end of input.
  bool overrun() const { return overrun_; }

  /// Number of whole bits consumed.
  size_t bits_consumed() const { return byte_ * 8 + nbit_; }

 private:
  ByteSpan in_;
  size_t byte_ = 0;
  int nbit_ = 0;
  bool overrun_ = false;
};

/// Appends a little-endian fixed-width integer to a buffer.
template <typename T>
inline void PutFixed(Buffer* out, T v) {
  out->Append(&v, sizeof(T));
}

/// Reads a little-endian fixed-width integer; advances *offset.
/// Returns false if the input is too short.
template <typename T>
inline bool GetFixed(ByteSpan in, size_t* offset, T* v) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// Appends a varint-encoded unsigned 64-bit value (LEB128).
void PutVarint64(Buffer* out, uint64_t v);

/// Decodes a varint; returns false on truncation.
bool GetVarint64(ByteSpan in, size_t* offset, uint64_t* v);

}  // namespace fcbench

#endif  // FCBENCH_UTIL_BITIO_H_
