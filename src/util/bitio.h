#ifndef FCBENCH_UTIL_BITIO_H_
#define FCBENCH_UTIL_BITIO_H_

#include <cstdint>
#include <cstring>

#include "util/buffer.h"

namespace fcbench {

/// MSB-first bit writer, as used by Gorilla/Chimp-style XOR coders where
/// variable-length control codes are concatenated most-significant-bit
/// first.
///
/// Implementation: bits accumulate in a 64-bit register and spill to the
/// output buffer a whole word at a time (byte-swapped so the on-wire byte
/// order stays MSB-first). The stream format is identical to the historical
/// one-bit-at-a-time writer — only the number of branches and buffer
/// operations per value changes.
class BitWriter {
 public:
  explicit BitWriter(Buffer* out) : out_(out) {}

  /// Writes the low `nbits` bits of `value`, most significant first.
  /// nbits must be in [0, 64]; bits of `value` above `nbits` are ignored.
  void WriteBits(uint64_t value, int nbits) {
    bits_ += static_cast<size_t>(nbits);
    if (nbits < 64) value &= (uint64_t(1) << nbits) - 1;
    int spill = nacc_ + nbits - 64;
    if (spill < 0) {
      // Fits in the accumulator (nacc_ stays <= 63).
      acc_ = (acc_ << nbits) | value;
      nacc_ += nbits;
      return;
    }
    // Fill the accumulator to exactly 64 bits, emit, keep the remainder.
    int take = 64 - nacc_;  // in [1, 64], and take <= nbits here
    uint64_t top = (spill == 0) ? value : (value >> spill);
    uint64_t word = (nacc_ == 0) ? top : ((acc_ << take) | top);
    EmitWord(word);
    acc_ = (spill == 0) ? 0 : (value & ((uint64_t(1) << spill) - 1));
    nacc_ = spill;
  }

  /// Writes a single bit (0 or 1).
  void WriteBit(uint32_t bit) { WriteBits(bit & 1u, 1); }

  /// Writes `n` one bits followed by a terminating zero bit (unary code).
  void WriteUnary(uint32_t n) {
    while (n >= 32) {
      WriteBits(0xffffffffu, 32);
      n -= 32;
    }
    WriteBits(((uint64_t(1) << n) - 1) << 1, static_cast<int>(n) + 1);
  }

  /// Pads the final partial byte with zero bits and flushes it.
  void Flush() {
    while (nacc_ >= 8) {
      nacc_ -= 8;
      out_->PushBack(static_cast<uint8_t>(acc_ >> nacc_));
    }
    if (nacc_ > 0) {
      out_->PushBack(static_cast<uint8_t>(acc_ << (8 - nacc_)));
      nacc_ = 0;
    }
    acc_ = 0;
  }

  /// Number of bits written through *this* writer so far (excluding flush
  /// padding). Unlike the historical `out->size() * 8 + pending` formula,
  /// this does not overcount when the writer is constructed over a buffer
  /// that already holds data (e.g. multi-part block encoders).
  size_t bit_count() const { return bits_; }

 private:
  void EmitWord(uint64_t w) {
    // Big-endian store keeps the MSB-first on-wire byte order; the byte
    // decomposition compiles to bswap + one 8-byte store.
    uint8_t* p = out_->ExtendUninit(8);
    p[0] = static_cast<uint8_t>(w >> 56);
    p[1] = static_cast<uint8_t>(w >> 48);
    p[2] = static_cast<uint8_t>(w >> 40);
    p[3] = static_cast<uint8_t>(w >> 32);
    p[4] = static_cast<uint8_t>(w >> 24);
    p[5] = static_cast<uint8_t>(w >> 16);
    p[6] = static_cast<uint8_t>(w >> 8);
    p[7] = static_cast<uint8_t>(w);
  }

  Buffer* out_;
  uint64_t acc_ = 0;   // low nacc_ bits are pending output
  int nacc_ = 0;       // in [0, 63] between calls
  size_t bits_ = 0;
};

/// MSB-first bit reader matching BitWriter.
///
/// Reads refill a cached 64-bit window with (at most) one unaligned load
/// instead of a branch per bit. Past-the-end contract: reads beyond the
/// input return zero bits for the missing positions and set overrun();
/// the flag is sticky — once set it stays set, and no read that crosses
/// the end of input returns fabricated bits without setting it first
/// (refills only ever load real bytes; zero-fill happens in the overrun
/// path itself). `bits_consumed()` never counts fabricated bits.
class BitReader {
 public:
  explicit BitReader(ByteSpan in) : in_(in) {}

  /// Reads one bit; returns 0 past the end (callers detect overruns via
  /// overrun()).
  uint32_t ReadBit() {
    if (navail_ == 0) {
      Refill();
      if (navail_ == 0) {
        overrun_ = true;
        return 0;
      }
    }
    --navail_;
    return static_cast<uint32_t>(acc_ >> navail_) & 1u;
  }

  /// Reads `nbits` bits MSB-first into the low bits of the result.
  /// nbits must be in [0, 64].
  uint64_t ReadBits(int nbits) {
    if (nbits <= 0) return 0;
    if (nbits > 56) {
      // The window tops up in whole bytes, so a single refill may leave
      // fewer than 64 valid bits; split wide reads into two chunks.
      uint64_t hi = ReadBits(nbits - 32);
      return (hi << 32) | ReadBits(32);
    }
    if (navail_ < nbits) {
      Refill();
      if (navail_ < nbits) return ReadPastEnd(nbits);
    }
    navail_ -= nbits;
    return (acc_ >> navail_) & ((uint64_t(1) << nbits) - 1);
  }

  /// Fast path for callers that have pre-validated the stream length:
  /// skips the overrun check. nbits must be in [1, 56] and the stream must
  /// hold at least `nbits` more bits, otherwise behavior is undefined.
  uint64_t ReadBitsUnchecked(int nbits) {
    if (navail_ < nbits) Refill();
    navail_ -= nbits;
    return (acc_ >> navail_) & ((uint64_t(1) << nbits) - 1);
  }

  /// Reads a unary code: counts one bits up to `max_ones`, consuming the
  /// terminating zero bit iff the count stopped before the cap. Returns
  /// the count (overrun() reports truncation, as with ReadBit).
  int ReadUnary(int max_ones) {
    int n = 0;
    while (n < max_ones) {
      if (navail_ == 0) {
        Refill();
        if (navail_ == 0) {
          overrun_ = true;
          return n;
        }
      }
      --navail_;
      if (((acc_ >> navail_) & 1u) == 0) return n;
      ++n;
    }
    return n;
  }

  /// True once a read went past the end of input. Sticky.
  bool overrun() const { return overrun_; }

  /// Number of whole (real) bits consumed; fabricated past-the-end bits
  /// are not counted.
  size_t bits_consumed() const { return byte_ * 8 - navail_; }

 private:
  /// Tops the window up to >= 57 valid bits (or to end of input). Must only
  /// be called with navail_ <= 55, which every public entry point
  /// guarantees (wide reads are split above).
  void Refill() {
    size_t remaining = in_.size() - byte_;
    if (remaining >= 8) {
      uint64_t w;
      std::memcpy(&w, in_.data() + byte_, 8);
      w = ToBigEndian(w);
      int k = (64 - navail_) >> 3;  // whole bytes of room, in [1, 8]
      if (k == 8) {
        acc_ = w;
        navail_ = 64;
      } else {
        acc_ = (acc_ << (8 * k)) | (w >> (64 - 8 * k));
        navail_ += 8 * k;
      }
      byte_ += static_cast<size_t>(k);
    } else {
      while (navail_ <= 56 && byte_ < in_.size()) {
        acc_ = (acc_ << 8) | in_[byte_++];
        navail_ += 8;
      }
    }
  }

  /// Overrun path: delivers the remaining real bits in the top positions
  /// with zero-fill below, flagging the overrun before returning.
  uint64_t ReadPastEnd(int nbits) {
    overrun_ = true;
    uint64_t v = 0;
    if (navail_ > 0) {
      v = (acc_ & ((uint64_t(1) << navail_) - 1)) << (nbits - navail_);
    }
    navail_ = 0;
    acc_ = 0;
    return v;
  }

  static uint64_t ToBigEndian(uint64_t w) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return w;
#else
    return __builtin_bswap64(w);
#endif
  }

  ByteSpan in_;
  uint64_t acc_ = 0;  // low navail_ bits are pending input (above: garbage)
  int navail_ = 0;
  size_t byte_ = 0;   // next input byte to load into the window
  bool overrun_ = false;
};

/// Appends a little-endian fixed-width integer to a buffer.
template <typename T>
inline void PutFixed(Buffer* out, T v) {
  out->Append(&v, sizeof(T));
}

/// Reads a little-endian fixed-width integer; advances *offset.
/// Returns false if the input is too short. The bounds check is written
/// overflow-safely (`*offset + sizeof(T)` could wrap for a hostile
/// offset near SIZE_MAX and silently pass).
template <typename T>
inline bool GetFixed(ByteSpan in, size_t* offset, T* v) {
  if (*offset > in.size() || sizeof(T) > in.size() - *offset) return false;
  std::memcpy(v, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// Appends a varint-encoded unsigned 64-bit value (LEB128).
void PutVarint64(Buffer* out, uint64_t v);

/// Decodes a varint; returns false on truncation.
bool GetVarint64(ByteSpan in, size_t* offset, uint64_t* v);

}  // namespace fcbench

#endif  // FCBENCH_UTIL_BITIO_H_
