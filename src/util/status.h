#ifndef FCBENCH_UTIL_STATUS_H_
#define FCBENCH_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace fcbench {

/// Error categories used across the library. We do not use C++ exceptions;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kIoError,
  kInternal,
  kResourceExhausted,
  /// Admission control rejected or timed out a request because a memory
  /// budget / per-shard quota is exhausted. Distinct from
  /// kResourceExhausted (a *disk* out of space): overload is transient
  /// by design — retry after backpressure drains.
  kOverloaded,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success/error value, modeled after Arrow/RocksDB Status.
///
/// Cheap to copy in the success case (no allocation); error states carry a
/// message describing what failed.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result<T>.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : v_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  /// The held value. Requires ok().
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Moves the value out. Requires ok().
  T TakeValue() { return std::get<T>(std::move(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace fcbench

/// Evaluates `expr` (a Status) and returns it from the enclosing function if
/// it is an error.
#define FCB_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::fcbench::Status _fcb_st = (expr);           \
    if (!_fcb_st.ok()) return _fcb_st;            \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), returning its error status on failure,
/// otherwise assigning the value to `lhs`.
#define FCB_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                              \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).TakeValue()

#define FCB_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define FCB_ASSIGN_OR_RETURN_CONCAT(x, y) FCB_ASSIGN_OR_RETURN_CONCAT_(x, y)
#define FCB_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  FCB_ASSIGN_OR_RETURN_IMPL(FCB_ASSIGN_OR_RETURN_CONCAT(_fcb_res, __LINE__), \
                            lhs, rexpr)

#endif  // FCBENCH_UTIL_STATUS_H_
