#ifndef FCBENCH_UTIL_RNG_H_
#define FCBENCH_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace fcbench {

/// xoshiro256++ pseudo-random generator. Deterministic across platforms,
/// which keeps the synthetic datasets (and therefore every benchmark table)
/// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) { return n ? Next() % n : 0; }

  /// Standard normal via Box-Muller (cached second value).
  double Normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    double u2 = Uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = 0.0;
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace fcbench

#endif  // FCBENCH_UTIL_RNG_H_
