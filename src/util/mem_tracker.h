#ifndef FCBENCH_UTIL_MEM_TRACKER_H_
#define FCBENCH_UTIL_MEM_TRACKER_H_

#include <atomic>
#include <cstddef>

namespace fcbench {

/// Global accounting of bytes allocated through fcbench::Buffer.
///
/// The paper's Figure 10 compares memory footprints during compression
/// (e.g. BUFF using ~7x the input size, pFPC/SPDP constant buffers). All
/// compressor working memory in this repo flows through Buffer, so peak
/// tracked bytes reproduce that comparison deterministically.
class MemTracker {
 public:
  static MemTracker& Global();

  void OnAlloc(size_t n) {
    size_t cur = current_.fetch_add(n) + n;
    size_t peak = peak_.load();
    while (cur > peak && !peak_.compare_exchange_weak(peak, cur)) {
    }
  }

  void OnFree(size_t n) { current_.fetch_sub(n); }

  /// Bytes currently live.
  size_t current() const { return current_.load(); }
  /// High-water mark since the last ResetPeak().
  size_t peak() const { return peak_.load(); }

  /// Resets the peak to the current live size (start of a measurement).
  void ResetPeak() { peak_.store(current_.load()); }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace fcbench

#endif  // FCBENCH_UTIL_MEM_TRACKER_H_
