#ifndef FCBENCH_UTIL_HASH_H_
#define FCBENCH_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/buffer.h"

namespace fcbench {

/// xxHash64 (Collet's XXH64 algorithm, implemented from the published
/// specification). Containers checksum both the raw payload and the
/// compressed frame with it, turning the per-codec best-effort corruption
/// detection into a guaranteed end-to-end check at database-grade speed
/// (~one multiply per 8 bytes).
uint64_t XxHash64(ByteSpan data, uint64_t seed = 0);

inline uint64_t XxHash64(const void* data, size_t n, uint64_t seed = 0) {
  return XxHash64(ByteSpan(static_cast<const uint8_t*>(data), n), seed);
}

}  // namespace fcbench

#endif  // FCBENCH_UTIL_HASH_H_
