#ifndef FCBENCH_UTIL_THREAD_POOL_H_
#define FCBENCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fcbench {

/// Fixed-size worker pool used by the parallel compressors (pFPC,
/// bitshuffle, ndzip-CPU) and by the scalability experiments of Tables 7/8.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous index ranges, one per worker, which is
  /// the chunking strategy the studied block-parallel compressors use.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into at most num_threads contiguous ranges and runs
  /// fn(begin, end) for each; waits for completion.
  void ParallelRanges(size_t n,
                      const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t inflight_ = 0;
  bool stop_ = false;
};

}  // namespace fcbench

#endif  // FCBENCH_UTIL_THREAD_POOL_H_
