#ifndef FCBENCH_UTIL_THREAD_POOL_H_
#define FCBENCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fcbench {

/// Fixed-size worker pool used by the parallel compressors (pFPC,
/// bitshuffle, ndzip-CPU), the chunk-parallel `par-*` adapters, the SIMT
/// device simulator, and the scalability experiments of Tables 7/8.
///
/// Compression call paths must not construct pools (N thread spawns plus
/// teardown per Compress/Decompress call swamps the work being measured);
/// they use the process-wide `Shared()` pool instead. Dedicated pools
/// remain available for tests and for callers that own their lifecycle.
///
/// Task contract: tasks must not throw. An exception escaping a raw
/// `Submit()` task is caught in the worker, reported to stderr, and
/// terminates the process (deliberately — there is no caller left to
/// receive it). `ParallelFor`/`ParallelRanges` are stricter and safer:
/// the first exception thrown by `fn` is captured, remaining chunks are
/// abandoned, and the exception is rethrown on the calling thread once
/// every helper has drained.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, created on first use and sized by
  /// `DefaultThreads()`. Never destroyed (workers park in their condition
  /// wait until process exit), so it is safe to use from static-lifetime
  /// objects. Concurrent `ParallelFor` calls from different threads are
  /// supported: each call joins only its own work.
  static ThreadPool& Shared();

  /// Worker count the shared pool is (or would be) built with:
  /// FCBENCH_THREADS when set to a positive integer, else
  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  static int DefaultThreads();

  /// Resolves a CompressorConfig::threads value: a positive request is
  /// honoured as given (thread count can be wire-visible, e.g. pFPC's
  /// chunk directory, so it is never silently rewritten); zero/negative
  /// falls back to `DefaultThreads()` instead of a hardcoded constant that
  /// would oversubscribe small hosts.
  static int ResolveThreads(int configured);

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. See the class comment
  /// for the no-throw contract.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed — including tasks
  /// submitted by other threads. Prefer ParallelFor/ParallelRanges on a
  /// shared pool; their completion tracking is per call.
  void Wait();

  /// Tuning knobs for ParallelFor.
  struct ForOptions {
    /// Indices handed to a worker per grab; 0 = automatic (about four
    /// chunks per participant, so uneven work still balances).
    size_t grain = 0;
    /// Upper bound on concurrent participants (including the calling
    /// thread); 0 = pool size + 1. Lets a caller honour a configured
    /// thread budget smaller than the pool.
    size_t max_parallelism = 0;
  };

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Chunks of `grain` indices are claimed dynamically (atomic cursor), so
  /// unevenly-sized blocks do not leave workers idle. The calling thread
  /// participates in the work. When invoked from inside a task of this
  /// same pool, execution degrades to inline (serial) instead of
  /// deadlocking on the occupied workers.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   ForOptions options);
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(n, fn, ForOptions());
  }

  /// Splits [0, n) into at most `max_ranges` (0 = participant count)
  /// contiguous ranges and runs fn(begin, end) for each; waits for
  /// completion. Same reentrancy and exception behaviour as ParallelFor.
  void ParallelRanges(size_t n,
                      const std::function<void(size_t, size_t)>& fn,
                      size_t max_ranges = 0);

 private:
  void WorkerLoop();
  /// Runs one dequeued task with the no-throw enforcement and inflight
  /// bookkeeping; shared by workers and by ParallelFor callers helping
  /// drain the queue.
  void RunTask(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t inflight_ = 0;
  bool stop_ = false;
};

}  // namespace fcbench

#endif  // FCBENCH_UTIL_THREAD_POOL_H_
