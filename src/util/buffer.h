#ifndef FCBENCH_UTIL_BUFFER_H_
#define FCBENCH_UTIL_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/mem_tracker.h"

namespace fcbench {

/// Read-only view over raw bytes.
using ByteSpan = std::span<const uint8_t>;
/// Mutable view over raw bytes.
using MutableByteSpan = std::span<uint8_t>;

/// Growable byte buffer whose allocations are reported to the global
/// MemTracker, so benchmark code can report peak memory footprints
/// (paper Figure 10) without OS-level instrumentation.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t n) { Resize(n); }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }
  ~Buffer() { Release(); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ByteSpan span() const { return ByteSpan(data_, size_); }
  MutableByteSpan mutable_span() { return MutableByteSpan(data_, size_); }

  /// Resizes to `n` bytes; contents up to min(old, new) size preserved.
  void Resize(size_t n) {
    if (n > capacity_) Reserve(GrowCapacity(n));
    size_ = n;
  }

  /// Ensures capacity of at least `n` bytes without changing size.
  void Reserve(size_t n) {
    if (n <= capacity_) return;
    uint8_t* p = static_cast<uint8_t*>(::operator new(n));
    size_t old_size = size_;
    if (old_size > 0) std::memcpy(p, data_, old_size);
    MemTracker::Global().OnAlloc(n);
    Release();
    data_ = p;
    size_ = old_size;
    capacity_ = n;
  }

  /// Appends raw bytes.
  void Append(const void* src, size_t n) {
    if (n == 0) return;  // memcpy with a null src/dst is UB even for n==0
    std::memcpy(ExtendUninit(n), src, n);
  }

  /// Grows by `n` bytes and returns a pointer to the (uninitialized) new
  /// region, which the caller must fill completely. This is the fast path
  /// for hot append loops (bit I/O word spills): one capacity check, no
  /// intermediate zeroing or per-byte calls.
  uint8_t* ExtendUninit(size_t n) {
    size_t old = size_;
    if (old + n > capacity_) Reserve(GrowCapacity(old + n));
    size_ = old + n;
    return data_ + old;
  }

  void Append(ByteSpan bytes) { Append(bytes.data(), bytes.size()); }

  /// Appends a single byte.
  void PushBack(uint8_t b) {
    if (size_ == capacity_) Reserve(GrowCapacity(size_ + 1));
    data_[size_++] = b;
  }

  void Clear() { size_ = 0; }

  /// Copies contents into a std::vector (convenience for tests).
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  /// Builds a Buffer from arbitrary bytes.
  static Buffer FromBytes(const void* src, size_t n) {
    Buffer b(n);
    std::memcpy(b.data(), src, n);
    return b;
  }

  static Buffer FromSpan(ByteSpan s) { return FromBytes(s.data(), s.size()); }

 private:
  static size_t GrowCapacity(size_t need) {
    size_t cap = 64;
    while (cap < need) cap += cap / 2 + 64;
    return cap;
  }

  void Release() {
    if (data_ != nullptr) {
      MemTracker::Global().OnFree(capacity_);
      ::operator delete(data_);
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Reinterprets a typed array as a byte span.
template <typename T>
ByteSpan AsBytes(const T* data, size_t count) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(data), count * sizeof(T));
}

template <typename T>
ByteSpan AsBytes(const std::vector<T>& v) {
  return AsBytes(v.data(), v.size());
}

}  // namespace fcbench

#endif  // FCBENCH_UTIL_BUFFER_H_
