#include "util/bitio.h"

namespace fcbench {

void PutVarint64(Buffer* out, uint64_t v) {
  while (v >= 0x80) {
    out->PushBack(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->PushBack(static_cast<uint8_t>(v));
}

bool GetVarint64(ByteSpan in, size_t* offset, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*offset < in.size() && shift <= 63) {
    uint8_t b = in[*offset];
    ++*offset;
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace fcbench
