#include "util/status.h"

namespace fcbench {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fcbench
