#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace fcbench::fs {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(int fd, ByteSpan data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

bool IsTempPath(const std::string& name) {
  const size_t slen = std::strlen(kTempSuffix);
  return name.size() >= slen &&
         name.compare(name.size() - slen, slen, kTempSuffix) == 0;
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError(Errno("cannot stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<Buffer> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(Errno("cannot stat", path));
  }
  Buffer buf(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < buf.size()) {
    ssize_t n = ::read(fd, buf.data() + got, buf.size() - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got != buf.size()) return Status::IoError("short read " + path);
  return buf;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(Errno("cannot remove", path));
  }
  return Status::OK();
}

Status CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(Errno("cannot mkdir", path));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IoError(Errno("cannot opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("cannot open dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(Errno("cannot fsync dir", dir));
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, ByteSpan data,
                       bool durable) {
  const std::string tmp = path + kTempSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Status::IoError(Errno("cannot open", tmp));
  Status st = WriteAll(fd, data);
  if (st.ok() && durable && ::fsync(fd) != 0) {
    st = Status::IoError(Errno("cannot fsync", tmp));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::IoError(Errno("cannot close", tmp));
  }
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError(Errno("cannot rename", tmp));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (durable) return SyncDir(DirOf(path));
  return Status::OK();
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Result<AppendFile> AppendFile::Create(const std::string& path,
                                      bool durable) {
  int fd = ::open(path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("cannot create", path));
  if (durable) {
    Status st = SyncDir(DirOf(path));
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  AppendFile f;
  f.fd_ = fd;
  return f;
}

Status AppendFile::Append(ByteSpan data) {
  if (fd_ < 0) return Status::Internal("append to closed file");
  FCB_RETURN_IF_ERROR(WriteAll(fd_, data));
  offset_ += data.size();
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::Internal("sync of closed file");
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IoError(std::string("close: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace fcbench::fs
