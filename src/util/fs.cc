#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace fcbench::fs {

namespace {

/// "cannot <what> <path>: <strerror>" — every fs error names the failing
/// operation, the path, and the errno text, and a full disk surfaces as
/// ResourceExhausted so callers can type their handling.
Status ErrnoStatus(const std::string& what, const std::string& path,
                   int err) {
  std::string msg = what + " " + path + ": " + std::strerror(err);
  if (err == ENOSPC) return Status::ResourceExhausted(std::move(msg));
  return Status::IoError(std::move(msg));
}

/// Writes all of `data` to `fd`. Instrumented with failpoint `site`:
/// an injected error simulates write(2) failing (optionally after a
/// short prefix landed — torn-write simulation), so the production
/// error path runs against a deterministic fault.
Status WriteAll(int fd, ByteSpan data, const char* site,
                const std::string& path) {
  const fail::Decision inj = FCB_FAILPOINT(site);
  const size_t allow =
      inj.fire ? (inj.short_write ? data.size() / 2 : 0) : data.size();
  size_t done = 0;
  while (done < data.size()) {
    if (inj.fire && done >= allow) {
      return ErrnoStatus("cannot write", path, inj.err);
    }
    size_t want = data.size() - done;
    if (inj.fire) want = std::min(want, allow - done);
    ssize_t n = ::write(fd, data.data() + done, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("cannot write", path, errno);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

bool IsTempPath(const std::string& name) {
  const size_t slen = std::strlen(kTempSuffix);
  return name.size() >= slen &&
         name.compare(name.size() - slen, slen, kTempSuffix) == 0;
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("cannot stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<Buffer> ReadFile(const std::string& path) {
  FCB_FAIL_RETURN("fs.read", path);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("cannot open", path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("cannot stat", path, errno);
    ::close(fd);
    return s;
  }
  Buffer buf(static_cast<size_t>(st.st_size));
  size_t got = 0;
  int read_errno = 0;
  while (got < buf.size()) {
    ssize_t n = ::read(fd, buf.data() + got, buf.size() - got);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) read_errno = errno;
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got != buf.size()) {
    if (read_errno != 0) return ErrnoStatus("cannot read", path, read_errno);
    return Status::IoError("short read " + path + ": got " +
                           std::to_string(got) + " of " +
                           std::to_string(buf.size()) + " bytes");
  }
  return buf;
}

Status RemoveFile(const std::string& path) {
  FCB_FAIL_RETURN("fs.remove", path);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("cannot remove", path, errno);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  FCB_FAIL_RETURN("fs.rename", from);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("cannot rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status CreateDir(const std::string& path) {
  FCB_FAIL_RETURN("fs.mkdir", path);
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("cannot mkdir", path, errno);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  FCB_FAIL_RETURN("fs.list", dir);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("cannot opendir", dir, errno);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDir(const std::string& dir) {
  FCB_FAIL_RETURN("fs.sync_dir", dir);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("cannot open dir", dir, errno);
  int rc = ::fsync(fd);
  int err = errno;
  ::close(fd);
  if (rc != 0) return ErrnoStatus("cannot fsync dir", dir, err);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, ByteSpan data,
                       bool durable) {
  const std::string tmp = path + kTempSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("cannot open", tmp, errno);
  Status st = WriteAll(fd, data, "fs.write_atomic", tmp);
  if (st.ok() && durable) {
    const fail::Decision inj = FCB_FAILPOINT("fs.sync");
    if (inj.fire) {
      st = fail::InjectedStatus("fs.sync", inj, tmp);
    } else if (::fsync(fd) != 0) {
      st = ErrnoStatus("cannot fsync", tmp, errno);
    }
  }
  if (::close(fd) != 0 && st.ok()) {
    st = ErrnoStatus("cannot close", tmp, errno);
  }
  if (st.ok()) st = RenameFile(tmp, path);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (durable) return SyncDir(DirOf(path));
  return Status::OK();
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    durable_ = other.durable_;
    dirty_ = other.dirty_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.offset_ = 0;
    other.dirty_ = false;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Result<AppendFile> AppendFile::Create(const std::string& path,
                                      bool durable) {
  FCB_FAIL_RETURN("fs.create", path);
  int fd = ::open(path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create", path, errno);
  if (durable) {
    Status st = SyncDir(DirOf(path));
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  AppendFile f;
  f.fd_ = fd;
  f.durable_ = durable;
  f.path_ = path;
  return f;
}

Status AppendFile::Append(ByteSpan data) {
  if (fd_ < 0) return Status::Internal("append to closed file " + path_);
  FCB_RETURN_IF_ERROR(WriteAll(fd_, data, "fs.append", path_));
  offset_ += data.size();
  dirty_ = true;
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::Internal("sync of closed file " + path_);
  FCB_FAIL_RETURN("fs.sync", path_);
  if (::fsync(fd_) != 0) {
    return ErrnoStatus("cannot fsync", path_, errno);
  }
  dirty_ = false;
  return Status::OK();
}

Status AppendFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::Internal("truncate of closed file " + path_);
  FCB_FAIL_RETURN("fs.truncate", path_);
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("cannot truncate", path_, errno);
  }
  // O_APPEND writes continue at the new end of file.
  offset_ = size;
  dirty_ = true;
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status st;
  // A durable file's final unsynced appends are fsynced here, and a
  // failure is reported — never swallowed: the caller acked those bytes.
  if (durable_ && dirty_) st = Sync();
  const fail::Decision inj = FCB_FAILPOINT("fs.close");
  int rc = inj.fire ? -1 : ::close(fd_);
  int err = inj.fire ? inj.err : errno;
  if (inj.fire) ::close(fd_);  // the fd itself must not leak
  fd_ = -1;
  dirty_ = false;
  if (rc != 0 && st.ok()) st = ErrnoStatus("cannot close", path_, err);
  return st;
}

}  // namespace fcbench::fs
