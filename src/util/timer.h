#ifndef FCBENCH_UTIL_TIMER_H_
#define FCBENCH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fcbench {

/// Monotonic wall-clock stopwatch. The paper's methodology (§5.2) wraps
/// compression calls with timing instructions that exclude file I/O; this
/// is that instrument.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Throughput in GB/s given bytes processed and elapsed seconds, matching
/// the paper's CT = orig_size / comp_time definition.
inline double ThroughputGBps(uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / seconds / 1e9;
}

}  // namespace fcbench

#endif  // FCBENCH_UTIL_TIMER_H_
