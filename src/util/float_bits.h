#ifndef FCBENCH_UTIL_FLOAT_BITS_H_
#define FCBENCH_UTIL_FLOAT_BITS_H_

#include <bit>
#include <cstdint>

namespace fcbench {

/// IEEE-754 helpers used by the prediction-based compressors: bit casting,
/// sign-magnitude <-> two's-complement style mappings, and leading/trailing
/// zero counting on residuals.

/// Unsigned integer type of the same width as the float type.
template <typename F>
struct FloatTraits;

template <>
struct FloatTraits<float> {
  using Bits = uint32_t;
  static constexpr int kBits = 32;
  static constexpr int kMantissaBits = 23;
  static constexpr int kExponentBits = 8;
};

template <>
struct FloatTraits<double> {
  using Bits = uint64_t;
  static constexpr int kBits = 64;
  static constexpr int kMantissaBits = 52;
  static constexpr int kExponentBits = 11;
};

template <typename F>
using FloatBitsT = typename FloatTraits<F>::Bits;

/// Raw IEEE bits of a float value.
template <typename F>
inline FloatBitsT<F> ToBits(F v) {
  return std::bit_cast<FloatBitsT<F>>(v);
}

/// Float value from raw IEEE bits.
template <typename F>
inline F FromBits(FloatBitsT<F> b) {
  return std::bit_cast<F>(b);
}

/// Maps IEEE bits to an order-preserving unsigned key: negative floats are
/// bit-complemented, positives get the sign bit set. After this mapping,
/// unsigned integer comparison matches floating-point ordering (total order
/// on non-NaN values). Used by fpzip-style integer residual computation.
template <typename B>
inline B SignedToOrdered(B bits) {
  constexpr B kSign = B(1) << (sizeof(B) * 8 - 1);
  return (bits & kSign) ? ~bits : (bits | kSign);
}

/// Inverse of SignedToOrdered.
template <typename B>
inline B OrderedToSigned(B key) {
  constexpr B kSign = B(1) << (sizeof(B) * 8 - 1);
  return (key & kSign) ? (key & ~kSign) : ~key;
}

/// ZigZag encoding: maps signed to unsigned so small magnitudes stay small.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}

inline int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}

/// Count of leading zero bits; defined for 0 as the full width.
inline int LeadingZeros64(uint64_t v) { return v ? std::countl_zero(v) : 64; }
inline int LeadingZeros32(uint32_t v) { return v ? std::countl_zero(v) : 32; }

/// Count of trailing zero bits; defined for 0 as the full width.
inline int TrailingZeros64(uint64_t v) { return v ? std::countr_zero(v) : 64; }
inline int TrailingZeros32(uint32_t v) { return v ? std::countr_zero(v) : 32; }

}  // namespace fcbench

#endif  // FCBENCH_UTIL_FLOAT_BITS_H_
