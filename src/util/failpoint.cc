#include "util/failpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace fcbench::fail {

namespace {

struct Rule {
  enum class Action { kErr, kEnospc, kShort };
  enum class Mode { kAlways, kAtHit, kEveryN, kProb };
  Action action = Action::kErr;
  Mode mode = Mode::kAlways;
  uint64_t n = 0;      // kAtHit: 1-based index; kEveryN: period
  double p = 0;        // kProb: per-hit probability
  uint64_t rng = 0;    // kProb: xorshift64* state
  uint64_t hits = 0;   // evaluations since armed
  bool spent = false;  // kAtHit fired already
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Rule> rules;
  std::map<std::string, uint64_t> hits;  // every site ever evaluated
  bool counting = false;
};

Registry& Reg() {
  static Registry* r = new Registry();
  return *r;
}

uint64_t XorShift(uint64_t* s) {
  uint64_t x = *s;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *s = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double NextUniform(uint64_t* s) {
  return static_cast<double>(XorShift(s) >> 11) *
         (1.0 / 9007199254740992.0);  // 2^-53
}

/// active_ = armed-rule count + (counting ? 1 : 0); call under Reg().mu.
void RefreshActiveLocked(Registry& reg, std::atomic<int>* active) {
  active->store(static_cast<int>(reg.rules.size()) + (reg.counting ? 1 : 0),
                std::memory_order_relaxed);
}

Status ParseRule(const std::string& site, const std::string& spec,
                 Rule* rule, bool* disarm) {
  *disarm = false;
  std::string action = spec;
  std::string trigger;
  const size_t at = spec.find('@');
  if (at != std::string::npos) {
    action = spec.substr(0, at);
    trigger = spec.substr(at + 1);
  }
  if (action == "off") {
    if (!trigger.empty()) {
      return Status::InvalidArgument("failpoint " + site +
                                     ": 'off' takes no trigger");
    }
    *disarm = true;
    return Status::OK();
  }
  if (action == "err") {
    rule->action = Rule::Action::kErr;
  } else if (action == "enospc") {
    rule->action = Rule::Action::kEnospc;
  } else if (action == "short") {
    rule->action = Rule::Action::kShort;
  } else {
    return Status::InvalidArgument("failpoint " + site +
                                   ": unknown action '" + action + "'");
  }
  if (trigger.empty()) {
    rule->mode = Rule::Mode::kAlways;
    return Status::OK();
  }
  if (trigger == "once") {
    rule->mode = Rule::Mode::kAtHit;
    rule->n = 1;
    return Status::OK();
  }
  if (trigger.compare(0, 6, "every-") == 0) {
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(trigger.c_str() + 6, &end, 10);
    if (end == trigger.c_str() + 6 || *end != '\0' || v == 0) {
      return Status::InvalidArgument("failpoint " + site +
                                     ": bad every-N trigger '" + trigger +
                                     "'");
    }
    rule->mode = Rule::Mode::kEveryN;
    rule->n = v;
    return Status::OK();
  }
  if (trigger[0] == 'p') {
    std::string prob = trigger.substr(1);
    uint64_t seed = 1;
    const size_t colon = prob.find(':');
    if (colon != std::string::npos) {
      const std::string s = prob.substr(colon + 1);
      prob = prob.substr(0, colon);
      if (s.size() < 2 || s[0] != 's') {
        return Status::InvalidArgument("failpoint " + site +
                                       ": bad seed in '" + trigger + "'");
      }
      char* end = nullptr;
      seed = std::strtoull(s.c_str() + 1, &end, 10);
      if (end == s.c_str() + 1 || *end != '\0') {
        return Status::InvalidArgument("failpoint " + site +
                                       ": bad seed in '" + trigger + "'");
      }
    }
    char* end = nullptr;
    const double p = std::strtod(prob.c_str(), &end);
    if (end == prob.c_str() || *end != '\0' || !(p > 0) || p > 1) {
      return Status::InvalidArgument("failpoint " + site +
                                     ": probability must be in (0,1]: '" +
                                     trigger + "'");
    }
    rule->mode = Rule::Mode::kProb;
    rule->p = p;
    // Mix so seed 0 (illegal xorshift state) and small seeds diverge.
    rule->rng = (seed + 1) * 0x9E3779B97F4A7C15ull;
    return Status::OK();
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(trigger.c_str(), &end, 10);
  if (end == trigger.c_str() || *end != '\0' || v == 0) {
    return Status::InvalidArgument("failpoint " + site +
                                   ": bad trigger '" + trigger + "'");
  }
  rule->mode = Rule::Mode::kAtHit;
  rule->n = v;
  return Status::OK();
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::atomic<int> FailPoints::active_{0};

Status FailPoints::Configure(const std::string& config) {
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t sep = config.find(';', pos);
    if (sep == std::string::npos) sep = config.size();
    const std::string entry = Trim(config.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint config entry '" + entry +
                                     "' is not site=spec");
    }
    FCB_RETURN_IF_ERROR(
        Set(Trim(entry.substr(0, eq)), Trim(entry.substr(eq + 1))));
  }
  return Status::OK();
}

Status FailPoints::Set(const std::string& site, const std::string& spec) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint: empty site name");
  }
  Rule rule;
  bool disarm = false;
  FCB_RETURN_IF_ERROR(ParseRule(site, spec, &rule, &disarm));
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  if (disarm) {
    reg.rules.erase(site);
  } else {
    reg.rules[site] = rule;
  }
  RefreshActiveLocked(reg, &active_);
  return Status::OK();
}

void FailPoints::Clear(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.rules.erase(site);
  RefreshActiveLocked(reg, &active_);
}

void FailPoints::ClearAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.rules.clear();
  RefreshActiveLocked(reg, &active_);
}

void FailPoints::EnableCounting(bool on) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.counting = on;
  RefreshActiveLocked(reg, &active_);
}

void FailPoints::ResetCounters() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  for (auto& [site, n] : reg.hits) n = 0;
}

uint64_t FailPoints::HitCount(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  auto it = reg.hits.find(site);
  return it == reg.hits.end() ? 0 : it->second;
}

std::vector<std::string> FailPoints::Sites() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  std::vector<std::string> out;
  out.reserve(reg.hits.size());
  for (const auto& [site, n] : reg.hits) out.push_back(site);
  return out;  // std::map iteration is already sorted
}

Decision FailPoints::EvaluateSlow(const char* site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> g(reg.mu);
  ++reg.hits[site];  // registers the site on first evaluation
  auto it = reg.rules.find(site);
  if (it == reg.rules.end()) return {};
  Rule& r = it->second;
  ++r.hits;
  bool fire = false;
  switch (r.mode) {
    case Rule::Mode::kAlways:
      fire = true;
      break;
    case Rule::Mode::kAtHit:
      if (!r.spent && r.hits == r.n) {
        fire = true;
        r.spent = true;
      }
      break;
    case Rule::Mode::kEveryN:
      fire = (r.hits % r.n) == 0;
      break;
    case Rule::Mode::kProb:
      fire = NextUniform(&r.rng) < r.p;
      break;
  }
  if (!fire) return {};
  Decision d;
  d.fire = true;
  d.err = r.action == Rule::Action::kEnospc ? ENOSPC : EIO;
  d.short_write = r.action == Rule::Action::kShort;
  return d;
}

Status InjectedStatus(const char* site, const Decision& d,
                      const std::string& path) {
  std::string msg = std::string("injected fault at ") + site;
  if (!path.empty()) msg += " (" + path + ")";
  msg += ": ";
  msg += std::strerror(d.err != 0 ? d.err : EIO);
  if (d.err == ENOSPC) return Status::ResourceExhausted(std::move(msg));
  return Status::IoError(std::move(msg));
}

namespace {

/// FCBENCH_FAILPOINTS is applied once at static-init time, before main,
/// so an armed process never runs a single unfaulted IO.
const bool g_env_applied = [] {
  if (const char* v = std::getenv("FCBENCH_FAILPOINTS")) {
    Status st = FailPoints::Configure(v);
    if (!st.ok()) {
      std::fprintf(stderr, "fcbench: ignoring FCBENCH_FAILPOINTS: %s\n",
                   st.ToString().c_str());
    }
  }
  return true;
}();

}  // namespace

}  // namespace fcbench::fail
