#include "util/entropy.h"

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace fcbench {

namespace {

double EntropyFromCounts(const std::unordered_map<uint64_t, uint64_t>& counts,
                         uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  double inv = 1.0 / static_cast<double>(total);
  for (const auto& [sym, c] : counts) {
    double p = static_cast<double>(c) * inv;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double ShannonEntropyBits(ByteSpan data, int word_size) {
  if (word_size <= 0) return 0.0;
  size_t n = data.size() / static_cast<size_t>(word_size);
  if (n == 0) return 0.0;
  std::unordered_map<uint64_t, uint64_t> counts;
  counts.reserve(1024);
  // Wide words on large inputs use the sampled hash-histogram estimate:
  // kSampleWords indices drawn uniformly (with replacement) from a
  // fixed-seed deterministic generator, so the estimate is identical on
  // every call and platform. 1/2-byte words and small inputs stay exact.
  constexpr size_t kExactLimit = size_t{1} << 17;
  constexpr size_t kSampleWords = size_t{1} << 16;
  constexpr uint64_t kSampleSeed = 0x5eedc0de5eedc0deULL;
  if (word_size <= 2 || n <= kExactLimit) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t w = 0;
      std::memcpy(&w, data.data() + i * word_size, word_size);
      ++counts[w];
    }
    return EntropyFromCounts(counts, n);
  }
  Rng rng(kSampleSeed);
  for (size_t i = 0; i < kSampleWords; ++i) {
    size_t pick = static_cast<size_t>(rng.UniformInt(n));
    uint64_t w = 0;
    std::memcpy(&w, data.data() + pick * word_size, word_size);
    ++counts[w];
  }
  return EntropyFromCounts(counts, kSampleWords);
}

double ByteEntropyBits(ByteSpan data) {
  if (data.empty()) return 0.0;
  uint64_t hist[256] = {0};
  for (uint8_t b : data) ++hist[b];
  double h = 0.0;
  double inv = 1.0 / static_cast<double>(data.size());
  for (uint64_t c : hist) {
    if (c == 0) continue;
    double p = static_cast<double>(c) * inv;
    h -= p * std::log2(p);
  }
  return h;
}

double HarmonicMean(const double* values, size_t n) {
  if (n == 0) return 0.0;
  double denom = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    if (values[i] <= 0.0) continue;
    denom += 1.0 / values[i];
    ++used;
  }
  if (used == 0 || denom == 0.0) return 0.0;
  return static_cast<double>(used) / denom;
}

double ArithmeticMean(const double* values, size_t n) {
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i];
  return sum / static_cast<double>(n);
}

}  // namespace fcbench
