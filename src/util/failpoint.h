#ifndef FCBENCH_UTIL_FAILPOINT_H_
#define FCBENCH_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fcbench::fail {

/// Deterministic fault-injection registry for the storage stack.
///
/// Every fallible IO site in `util/fs`, the WAL, and the LSM engine is
/// instrumented with a named failpoint (`fs.append`, `fs.sync`,
/// `fs.rename`, `fs.write_atomic`, `wal.append`, `segment.publish`,
/// `lsm.flush`, ...). A failpoint is a no-op until armed — the
/// production fast path is one relaxed atomic load — and when armed it
/// simulates the underlying syscall failing, so the *real* error-handling
/// code runs against a deterministic fault.
///
/// Arming, programmatically or via the FCBENCH_FAILPOINTS environment
/// variable (read once at process start), uses `site=spec` entries
/// separated by ';':
///
///   spec     := action [ '@' trigger ]
///   action   := 'err'      simulate EIO
///             | 'enospc'   simulate ENOSPC (typed ResourceExhausted)
///             | 'short'    short write: half the bytes land, then EIO
///             | 'off'      disarm
///   trigger  := N          fire exactly the Nth hit after arming
///                          (1-based, one-shot; 'once' == 1)
///             | 'every-N'  fire every Nth hit
///             | 'pP[:sS]'  fire each hit with probability P (0 < P <= 1)
///                          from a per-site RNG seeded with S (default 1)
///   (no trigger)           fire every hit (sticky failure)
///
/// Examples: "fs.sync=err@3", "fs.append=short", "wal.append=enospc@1",
/// "fs.rename=err@p0.05:s42", "fs.sync=off".
///
/// Sites register themselves on first evaluation while the registry is
/// active, so after one instrumented run `Sites()` enumerates every site
/// the workload exercised — the fault-sweep tests use exactly that to
/// inject an error at every hit index of every site.
struct Decision {
  /// True when the site must simulate a failure.
  bool fire = false;
  /// With `fire`: write sites should land a partial prefix of the data
  /// before failing (torn-write simulation). Non-write sites ignore it.
  bool short_write = false;
  /// With `fire`: the errno to simulate (EIO, ENOSPC).
  int err = 0;
};

class FailPoints {
 public:
  /// Parses a multi-entry config ("a=err@3;b=short"). Entries apply in
  /// order; the first malformed entry aborts with InvalidArgument.
  static Status Configure(const std::string& config);

  /// Arms (or, with "off", disarms) one site. The site's private hit
  /// counter starts at zero when armed.
  static Status Set(const std::string& site, const std::string& spec);

  static void Clear(const std::string& site);
  static void ClearAll();

  /// With counting on, every site evaluation is recorded even when no
  /// failpoint is armed (the fault sweeps' enumeration pass).
  static void EnableCounting(bool on);
  static void ResetCounters();
  /// Evaluations of `site` since the last ResetCounters.
  static uint64_t HitCount(const std::string& site);
  /// All sites evaluated so far (sorted). Empty until the registry has
  /// been active (armed or counting) during a run.
  static std::vector<std::string> Sites();

  /// Fast-path guard: false means no failpoint is armed and counting is
  /// off, so Evaluate() returns immediately.
  static bool active() {
    return active_.load(std::memory_order_relaxed) != 0;
  }

  /// Slow path: registers the site, counts the hit, and applies the
  /// armed rule (if any). Thread-safe.
  static Decision EvaluateSlow(const char* site);

 private:
  static std::atomic<int> active_;
};

inline Decision Evaluate(const char* site) {
  if (!FailPoints::active()) return {};
  return FailPoints::EvaluateSlow(site);
}

/// Status for an injected failure: IoError, or ResourceExhausted when the
/// simulated errno is ENOSPC. The message names the site and path so a
/// failure is attributable ("injected fault at fs.sync (/db/wal-...)").
Status InjectedStatus(const char* site, const Decision& d,
                      const std::string& path);

}  // namespace fcbench::fail

/// Evaluates failpoint `site`, yielding a fail::Decision.
#define FCB_FAILPOINT(site) (::fcbench::fail::Evaluate(site))

/// Returns an injected error Status from the enclosing function when
/// `site` fires. For sites without byte-granular semantics (publish
/// steps, manifest writes); write loops honor Decision::short_write
/// themselves.
#define FCB_FAIL_RETURN(site, path)                                  \
  do {                                                               \
    ::fcbench::fail::Decision _fcb_fp = FCB_FAILPOINT(site);         \
    if (_fcb_fp.fire)                                                \
      return ::fcbench::fail::InjectedStatus(site, _fcb_fp, (path)); \
  } while (0)

#endif  // FCBENCH_UTIL_FAILPOINT_H_
