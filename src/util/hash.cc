#include "util/hash.h"

#include <bit>
#include <cstring>

namespace fcbench {

namespace {

constexpr uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kP3 = 0x165667B19E3779F9ull;
constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kP5 = 0x27D4EB2F165667C5ull;

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t lane) {
  return std::rotl(acc + lane * kP2, 31) * kP1;
}

inline uint64_t MergeRound(uint64_t h, uint64_t acc) {
  return (h ^ Round(0, acc)) * kP1 + kP4;
}

}  // namespace

uint64_t XxHash64(ByteSpan data, uint64_t seed) {
  const uint8_t* p = data.data();
  const uint8_t* end = p + data.size();
  uint64_t h;

  if (data.size() >= 32) {
    uint64_t a1 = seed + kP1 + kP2;
    uint64_t a2 = seed + kP2;
    uint64_t a3 = seed;
    uint64_t a4 = seed - kP1;
    do {
      a1 = Round(a1, Load64(p));
      a2 = Round(a2, Load64(p + 8));
      a3 = Round(a3, Load64(p + 16));
      a4 = Round(a4, Load64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(a1, 1) + std::rotl(a2, 7) + std::rotl(a3, 12) +
        std::rotl(a4, 18);
    h = MergeRound(h, a1);
    h = MergeRound(h, a2);
    h = MergeRound(h, a3);
    h = MergeRound(h, a4);
  } else {
    h = seed + kP5;
  }

  h += static_cast<uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = std::rotl(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kP1;
    h = std::rotl(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kP5;
    h = std::rotl(h, 11) * kP1;
    ++p;
  }

  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

}  // namespace fcbench
