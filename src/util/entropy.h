#ifndef FCBENCH_UTIL_ENTROPY_H_
#define FCBENCH_UTIL_ENTROPY_H_

#include <cstdint>

#include "util/buffer.h"

namespace fcbench {

/// Shannon entropy, in bits per element, of the stream of fixed-width words
/// in `data` (word_size in {1, 2, 4, 8}). Table 3 of the paper reports this
/// per-dataset statistic; the synthetic dataset generators are calibrated
/// against it.
///
/// For word sizes above 2 bytes on inputs past 2^17 words, an exact
/// histogram over 2^32/2^64 symbols is infeasible; like common practice
/// we estimate via a hash-based distinct-value histogram over 2^16
/// sampled words. Sampling is driven by a fixed-seed deterministic
/// generator, so the estimate is reproducible bit-for-bit across calls
/// and platforms (the selector's feature signatures depend on that).
double ShannonEntropyBits(ByteSpan data, int word_size);

/// Byte-level entropy (bits per byte, in [0, 8]).
double ByteEntropyBits(ByteSpan data);

/// Harmonic mean of positive values; the paper aggregates compression
/// ratios with the harmonic mean (§5.2). Returns 0 for an empty range.
double HarmonicMean(const double* values, size_t n);

/// Arithmetic mean; used for throughput aggregation. Returns 0 when empty.
double ArithmeticMean(const double* values, size_t n);

}  // namespace fcbench

#endif  // FCBENCH_UTIL_ENTROPY_H_
