#ifndef FCBENCH_ROOFLINE_ROOFLINE_H_
#define FCBENCH_ROOFLINE_ROOFLINE_H_

#include <string>
#include <vector>

#include "gpusim/device.h"

namespace fcbench::roofline {

/// One memory roof (bandwidth ceiling) of the machine.
struct MemoryRoof {
  std::string name;  // "DRAM", "L1", ...
  double gbps;
};

/// Machine description for the roofline model (Williams et al. 2009;
/// paper §6.3 / Figure 11).
struct MachineRoofline {
  std::string name;
  /// Peak compute, giga-operations per second (integer ops for the CPU
  /// plot, FLOPs for the GPU plot — matching Figure 11's axes).
  double peak_gops;
  std::vector<MemoryRoof> roofs;  // ordered fastest to slowest
};

/// The Xeon Gold 6126 rooflines used in Figure 11a.
MachineRoofline CpuRoofline();

/// The Quadro RTX 6000 rooflines used in Figure 11b (double precision).
MachineRoofline GpuRoofline();

/// A profiled kernel: its hottest loop's arithmetic intensity and achieved
/// performance (the dot under the roof).
struct KernelPoint {
  std::string name;
  double intensity;      // ops per byte of memory traffic
  double achieved_gops;  // measured/modeled operation throughput
};

/// Attainable performance at a given arithmetic intensity under the
/// slowest (DRAM) roof: min(peak, intensity * bw).
double AttainableGops(const MachineRoofline& m, double intensity);

/// Classification of a kernel point, driving the §6.3 observations.
enum class Bound { kMemoryBound, kComputeBound, kLatencyBound };

/// A point is memory/compute bound when it sits within `margin` (e.g. 0.5
/// = within 50%) of the corresponding roof; otherwise it is latency/
/// serialization bound ("far below the roof", §6.3 analysis (1)).
Bound Classify(const MachineRoofline& m, const KernelPoint& p,
               double margin = 0.5);

std::string_view BoundName(Bound b);

/// Builds a kernel point from a method's measured byte throughput and its
/// analytic ops-per-byte estimate.
KernelPoint PointFromThroughput(const std::string& name, double ops_per_byte,
                                double bytes_per_second);

/// Builds a kernel point from SIMT simulator stats (GPU methods): lane
/// operations / device bytes, achieved = ops / modeled kernel time.
KernelPoint PointFromKernelStats(const std::string& name,
                                 const gpusim::KernelStats& stats,
                                 double kernel_seconds);

/// Analytic ops-per-byte of each CPU method's hottest loop (documented
/// instruction counts of the transform/coding kernels; see roofline.cc).
double CpuMethodOpsPerByte(std::string_view method);

/// ASCII rendering of the roofline with the kernel dots (log-log grid).
std::string RenderAscii(const MachineRoofline& m,
                        const std::vector<KernelPoint>& points, int width = 70,
                        int height = 22);

}  // namespace fcbench::roofline

#endif  // FCBENCH_ROOFLINE_ROOFLINE_H_
