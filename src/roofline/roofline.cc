#include "roofline/roofline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fcbench::roofline {

MachineRoofline CpuRoofline() {
  // Figure 11a's measured ceilings for the dual Xeon Gold 6126 node.
  return {"Xeon Gold 6126",
          191.0,  // Int-Scalar GINTOP/s
          {{"L1", 11000.0}, {"L2", 5508.8}, {"L3", 640.1}, {"DRAM", 214.5}}};
}

MachineRoofline GpuRoofline() {
  // Figure 11b: double-precision peak and device DRAM bandwidth.
  return {"RTX 6000", 416.4, {{"DRAM", 621.5}}};
}

double AttainableGops(const MachineRoofline& m, double intensity) {
  double bw = m.roofs.empty() ? 0.0 : m.roofs.back().gbps;
  return std::min(m.peak_gops, intensity * bw);
}

Bound Classify(const MachineRoofline& m, const KernelPoint& p,
               double margin) {
  double attainable = AttainableGops(m, p.intensity);
  double bw = m.roofs.empty() ? 0.0 : m.roofs.back().gbps;
  bool under_mem_roof = p.intensity * bw <= m.peak_gops;
  if (p.achieved_gops >= attainable * margin) {
    return under_mem_roof ? Bound::kMemoryBound : Bound::kComputeBound;
  }
  return Bound::kLatencyBound;
}

std::string_view BoundName(Bound b) {
  switch (b) {
    case Bound::kMemoryBound:
      return "memory-bound";
    case Bound::kComputeBound:
      return "compute-bound";
    case Bound::kLatencyBound:
      return "latency/serialization-bound";
  }
  return "?";
}

KernelPoint PointFromThroughput(const std::string& name, double ops_per_byte,
                                double bytes_per_second) {
  return {name, ops_per_byte, ops_per_byte * bytes_per_second / 1e9};
}

KernelPoint PointFromKernelStats(const std::string& name,
                                 const gpusim::KernelStats& stats,
                                 double kernel_seconds) {
  double bytes = static_cast<double>(stats.bytes_read + stats.bytes_written);
  double ops = static_cast<double>(stats.warp_instructions +
                                   stats.divergent_instructions) *
               gpusim::WarpCtx::kWarpSize;
  double intensity = bytes > 0 ? ops / bytes : 0.0;
  double achieved = kernel_seconds > 0 ? ops / kernel_seconds / 1e9 : 0.0;
  return {name, intensity, achieved};
}

double CpuMethodOpsPerByte(std::string_view method) {
  // Analytic counts of the hottest loop, integer ops per byte processed:
  //   gorilla/chimp: xor + clz/ctz + window compare + bit emit per 8 bytes
  //   pfpc: 2 hash lookups + xor + table update per 8 bytes
  //   fpzip: Lorenzo corners (7 add) + map + residual + range-coder update
  //   spdp: 3 byte-transform passes + LZ match loop
  //   bitshuffle: 8x8 transpose amortized (~3 ops / 8 bytes) + LZ scan
  //   ndzip: separable delta (3 ops/word) + transpose + bitmap pack
  //   buff: quantize (mul, round, shift) per 8 bytes
  if (method == "gorilla") return 1.5;
  if (method == "chimp128") return 2.5;
  if (method == "pfpc") return 1.25;
  if (method == "fpzip") return 4.0;
  if (method == "spdp") return 2.2;
  if (method == "bitshuffle_lz4") return 0.8;
  if (method == "bitshuffle_zstd") return 1.1;
  if (method == "ndzip_cpu") return 1.6;
  if (method == "buff") return 0.9;
  if (method == "dzip_nn") return 60.0;
  return 1.0;
}

std::string RenderAscii(const MachineRoofline& m,
                        const std::vector<KernelPoint>& points, int width,
                        int height) {
  // Log-log canvas: x = intensity in [2^-7, 2^7], y = GOPS in [2^-4, peak*4].
  const double x_lo = std::log2(1.0 / 128), x_hi = std::log2(128.0);
  double y_hi = std::log2(m.peak_gops * 4);
  const double y_lo = y_hi - height * 0.75;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  auto plot = [&](double lx, double ly, char ch) {
    int cx = static_cast<int>((lx - x_lo) / (x_hi - x_lo) * (width - 1));
    int cy = static_cast<int>((y_hi - ly) / (y_hi - y_lo) * (height - 1));
    if (cx >= 0 && cx < width && cy >= 0 && cy < height) canvas[cy][cx] = ch;
  };

  // Roofs: each memory roof is a diagonal until it hits the compute peak.
  for (int cx = 0; cx < width; ++cx) {
    double lx = x_lo + (x_hi - x_lo) * cx / (width - 1);
    double intensity = std::pow(2.0, lx);
    for (const auto& roof : m.roofs) {
      double g = std::min(m.peak_gops, intensity * roof.gbps);
      plot(lx, std::log2(g), '-');
    }
  }
  for (const auto& p : points) {
    if (p.intensity <= 0 || p.achieved_gops <= 0) continue;
    plot(std::log2(p.intensity), std::log2(p.achieved_gops), '*');
  }

  std::ostringstream os;
  os << "roofline: " << m.name << " (peak " << m.peak_gops << " GOP/s";
  for (const auto& r : m.roofs) os << ", " << r.name << " " << r.gbps << " GB/s";
  os << ")\n";
  for (const auto& row : canvas) os << "|" << row << "\n";
  os << "+" << std::string(width, '-') << "  (x: ops/byte 2^-7..2^7, log2)\n";
  for (const auto& p : points) {
    os << "  * " << p.name << ": AI=" << p.intensity
       << " ops/B, achieved=" << p.achieved_gops << " GOP/s, "
       << BoundName(Classify(m, p)) << "\n";
  }
  return os.str();
}

}  // namespace fcbench::roofline
