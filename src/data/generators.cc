#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fcbench::data {

namespace {

/// Writes one double value into the dataset buffer with the dataset's
/// element type.
class ElementWriter {
 public:
  ElementWriter(DType dtype, Buffer* out) : dtype_(dtype), out_(out) {}

  void Write(double v) {
    if (dtype_ == DType::kFloat32) {
      float f = static_cast<float>(v);
      out_->Append(&f, 4);
    } else {
      out_->Append(&v, 8);
    }
  }

 private:
  DType dtype_;
  Buffer* out_;
};

/// Decimal-style quantization: computed as round(v * scale) / scale with
/// an integral scale, the exact arithmetic BUFF's decoder replays when it
/// rounds to `precision_digits` decimals — so decimal-quantized datasets
/// round-trip bit-exactly through BUFF (paper §3.3).
double QuantizeStep(double v, double step) {
  double scale = std::round(1.0 / step);
  double q = std::round(v * scale) / scale;
  return q == 0.0 ? 0.0 : q;  // canonical zero (no -0.0 in decimal data)
}

/// Scales the full Table 3 extent down to approximately target_bytes.
/// Trailing "column count" dimensions of 2-D table datasets (<= 256) are
/// structural and preserved; spatial dimensions shrink proportionally.
std::vector<uint64_t> ScaleExtent(const DatasetInfo& info,
                                  uint64_t target_bytes) {
  const uint64_t esize = DTypeSize(info.dtype);
  std::vector<uint64_t> ext = info.extent;
  uint64_t full = esize;
  for (uint64_t e : ext) full *= e;
  if (full <= target_bytes) return ext;

  bool table_like = ext.size() == 2 && ext[1] <= 256;
  double ratio = static_cast<double>(target_bytes) / full;
  if (table_like) {
    ext[0] = std::max<uint64_t>(64, static_cast<uint64_t>(ext[0] * ratio));
    return ext;
  }
  double per_dim = std::pow(ratio, 1.0 / ext.size());
  for (auto& e : ext) {
    e = std::max<uint64_t>(8, static_cast<uint64_t>(e * per_dim));
  }
  return ext;
}

uint64_t NumElements(const std::vector<uint64_t>& ext) {
  uint64_t n = 1;
  for (uint64_t e : ext) n *= e;
  return n;
}

// --- generator kernels ------------------------------------------------------

void GenSmoothOrNoisy(const DatasetInfo& /*info*/,
                      const std::vector<uint64_t>& ext, double noise,
                      Rng& rng, ElementWriter& w) {
  // Up to 3 spatial dims padded to 3.
  uint64_t e[3] = {1, 1, 1};
  size_t rank = std::min<size_t>(ext.size(), 3);
  for (size_t d = 0; d < rank; ++d) e[3 - rank + d] = ext[d];
  uint64_t tail = NumElements(ext) / (e[0] * e[1] * e[2]);
  e[2] *= std::max<uint64_t>(tail, 1);

  double ph[6];
  for (auto& p : ph) p = rng.Uniform(0, 6.2831853);
  double f0 = rng.Uniform(0.02, 0.08), f1 = rng.Uniform(0.02, 0.08),
         f2 = rng.Uniform(0.01, 0.05);
  for (uint64_t i = 0; i < e[0]; ++i) {
    for (uint64_t j = 0; j < e[1]; ++j) {
      for (uint64_t k = 0; k < e[2]; ++k) {
        double base = std::sin(f0 * i + ph[0]) * std::cos(f1 * j + ph[1]) +
                      0.6 * std::sin(f2 * k + ph[2]) +
                      0.3 * std::sin(0.11 * k + ph[3]) * std::sin(f0 * j + ph[4]);
        double v = 250.0 * base + 1000.0;
        v *= 1.0 + noise * rng.Normal();
        w.Write(v);
      }
    }
  }
}

void GenSparseField(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                    double active_fraction, Rng& rng, ElementWriter& w) {
  (void)info;
  uint64_t n = NumElements(ext);
  // A few contiguous active runs inside a constant background; astro-mhd's
  // colliding-wind grid is overwhelmingly quiescent (entropy 0.97).
  uint64_t active = static_cast<uint64_t>(n * active_fraction);
  uint64_t run = std::max<uint64_t>(1, active / 8);
  std::vector<std::pair<uint64_t, uint64_t>> runs;
  for (int r = 0; r < 8 && active > 0; ++r) {
    uint64_t start = rng.UniformInt(n > run ? n - run : 1);
    runs.push_back({start, start + run});
  }
  double x = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    bool in_run = false;
    for (auto [b, e2] : runs) {
      if (i >= b && i < e2) {
        in_run = true;
        break;
      }
    }
    if (in_run) {
      x += rng.Normal() * 0.01;
      w.Write(1e-3 * std::sin(0.01 * i) + x * 1e-4);
    } else if ((i / 1024) % 16 == 0) {
      // A "warm" halo around the active regions: quantized slow variation
      // plus low-bit noise, so the background is not a single giant zero
      // run. Keeps the best CRs in the paper's 8-23x band instead of
      // collapsing to pure zeros.
      w.Write(QuantizeStep(1e-5 * std::sin(2e-4 * i) + 1e-6 * rng.Normal(),
                           1e-7));
    } else {
      w.Write(0.0);
    }
  }
}

void GenSensorWalk(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                   double step, Rng& rng, ElementWriter& w) {
  uint64_t rows = ext[0];
  uint64_t cols = ext.size() > 1 ? ext[1] : 1;
  double quant = std::pow(10.0, -std::max(info.precision_digits, 1));
  std::vector<double> x(cols);
  std::vector<double> drift(cols);
  for (auto& xi : x) xi = rng.Uniform(-5, 5);
  for (auto& d : drift) d = rng.Uniform(-step, step);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      x[c] += drift[c] + step * 50.0 * rng.Normal();
      double v = QuantizeStep(x[c], quant);
      w.Write(v);
    }
  }
}

void GenQuantizedTs(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                    double step, Rng& rng, ElementWriter& w) {
  (void)info;
  uint64_t rows = ext[0];
  uint64_t cols = ext.size() > 1 ? ext[1] : 1;
  std::vector<double> x(cols, 20.0);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      double season = 8.0 * std::sin(6.2831853 * r / 1440.0 + c);
      x[c] += 0.02 * rng.Normal();
      // Values repeat across long stretches thanks to quantization.
      w.Write(QuantizeStep(20.0 + season + x[c], step));
    }
  }
}

void GenMarketData(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                   Rng& rng, ElementWriter& w) {
  (void)info;
  uint64_t n = NumElements(ext);
  for (uint64_t i = 0; i < n; ++i) {
    // Heavy-tailed anonymized features in (-20, 20); ~17% exact zeros
    // (missing values), the rest full-precision noise.
    if (rng.UniformInt(6) == 0) {
      w.Write(0.0);
    } else {
      w.Write(rng.Normal() * std::exp(0.8 * rng.Normal()));
    }
  }
}

void GenSkyImage(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                 double noise, Rng& rng, ElementWriter& w) {
  (void)info;
  uint64_t planes = ext.size() == 3 ? ext[0] : 1;
  uint64_t h = ext.size() == 3 ? ext[1] : ext[0];
  uint64_t wd = ext.size() == 3 ? ext[2] : (ext.size() > 1 ? ext[1] : 1);
  for (uint64_t p = 0; p < planes; ++p) {
    // Point sources at random positions.
    struct Src {
      double y, x, amp, sigma;
    };
    std::vector<Src> sources(24);
    for (auto& s : sources) {
      s = {rng.Uniform(0, h), rng.Uniform(0, wd), rng.Uniform(50, 5000),
           rng.Uniform(1.5, 6.0)};
    }
    // Real instruments digitize: pixel values carry limited mantissa
    // precision, which is what gives observation data its high ratios for
    // transform-based compressors (paper §6.1.1 analysis (2)). Noisier
    // instruments (higher `noise`) keep more significant bits.
    double quantum = noise <= 0.1 ? 1.0 / 16 : 1.0 / 2048;
    for (uint64_t y = 0; y < h; ++y) {
      for (uint64_t x = 0; x < wd; ++x) {
        double v = 100.0 + noise * 20.0 * rng.Normal();  // sky background
        for (const auto& s : sources) {
          double dy = y - s.y, dx = x - s.x;
          double d2 = dy * dy + dx * dx;
          if (d2 < 25 * s.sigma * s.sigma) {
            v += s.amp * std::exp(-d2 / (2 * s.sigma * s.sigma));
          }
        }
        w.Write(QuantizeStep(v, quantum));
      }
    }
  }
}

void GenHdrImage(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                 double bright_fraction, Rng& rng, ElementWriter& w) {
  (void)info;
  uint64_t h = ext[0];
  uint64_t wd = ext.size() > 1 ? ext[1] : 1;
  double ph = rng.Uniform(0, 6.28);
  for (uint64_t y = 0; y < h; ++y) {
    for (uint64_t x = 0; x < wd; ++x) {
      double s = std::sin(0.004 * x + ph) * std::sin(0.006 * y + 0.5 * ph);
      bool bright = s > (1.0 - 2.0 * bright_fraction);
      double v;
      if (bright) {
        v = 1000.0 * std::exp(2.0 * s) * (1.0 + 0.01 * rng.Normal());
      } else {
        // Dark sky: strongly quantized radiance -> few distinct words
        // (Table 3 entropy ~9 bits).
        v = QuantizeStep(0.05 + 0.04 * s + 0.002 * rng.Normal(), 1e-3);
      }
      w.Write(v);
    }
  }
}

void GenTpcColumns(const DatasetInfo& info, const std::vector<uint64_t>& ext,
                   double step, Rng& rng, ElementWriter& w) {
  uint64_t rows = ext[0];
  uint64_t cols = ext.size() > 1 ? ext[1] : 1;
  (void)info;
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      double v;
      switch (c % 4) {
        case 0:  // extended price: wide range, 2 decimals
          v = QuantizeStep(rng.Uniform(1.0, 99999.0), step);
          break;
        case 1:  // quantity: small integers
          v = 1.0 + static_cast<double>(rng.UniformInt(50));
          break;
        case 2:  // discount/tax: few distinct decimals
          v = QuantizeStep(rng.Uniform(0.0, 0.10), 0.01);
          break;
        default:  // aggregate amount: price-like with decimals
          v = QuantizeStep(rng.Uniform(1.0, 9999.0), step);
          break;
      }
      w.Write(v);
    }
  }
}

}  // namespace

Result<Dataset> GenerateDataset(const DatasetInfo& info,
                                uint64_t target_bytes, uint64_t seed) {
  if (target_bytes < 1024) {
    return Status::InvalidArgument("dataset target too small");
  }
  Dataset ds;
  ds.info = &info;
  std::vector<uint64_t> ext = ScaleExtent(info, target_bytes);
  ds.desc = DataDesc::Make(info.dtype, ext, info.precision_digits);
  ds.bytes.Reserve(ds.desc.num_bytes());

  Rng rng(seed ^ std::hash<std::string>{}(info.name));
  ElementWriter w(info.dtype, &ds.bytes);
  switch (info.gen) {
    case GenKind::kSmoothField:
      GenSmoothOrNoisy(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kNoisyField:
      GenSmoothOrNoisy(info, ext, std::max(info.gen_param, 1e-4) * 30, rng,
                       w);
      break;
    case GenKind::kSparseField:
      GenSparseField(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kSensorWalk:
      GenSensorWalk(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kQuantizedTs:
      GenQuantizedTs(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kMarketData:
      GenMarketData(info, ext, rng, w);
      break;
    case GenKind::kSkyImage:
      GenSkyImage(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kHdrImage:
      GenHdrImage(info, ext, info.gen_param, rng, w);
      break;
    case GenKind::kTpcColumns:
      GenTpcColumns(info, ext, info.gen_param, rng, w);
      break;
  }
  if (ds.bytes.size() != ds.desc.num_bytes()) {
    return Status::Internal("generator size mismatch for " + info.name);
  }
  return ds;
}

}  // namespace fcbench::data
