#ifndef FCBENCH_DATA_DATASET_H_
#define FCBENCH_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/format.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::data {

/// Data domain (paper Table 3 groups).
enum class Domain { kHpc, kTimeSeries, kObservation, kDatabase };

std::string_view DomainName(Domain d);

/// Synthetic generator kinds; each reproduces the statistical character of
/// one family of Table 3 datasets (see generators.cc for the knobs).
enum class GenKind {
  kSmoothField,   // low-frequency multidimensional field + mantissa noise
  kNoisyField,    // structured field dominated by noise (hard to compress)
  kSparseField,   // near-constant background with a small active region
  kSensorWalk,    // multi-column random-walk sensor streams
  kQuantizedTs,   // decimal-quantized time series (weather/prices)
  kMarketData,    // heavy-tailed anonymized features (very hard)
  kSkyImage,      // telescope image: noise floor + point sources
  kHdrImage,      // HDR photo: dark background + bright structure
  kTpcColumns,    // TPC-style transaction columns (prices/quantities)
};

/// Registry row describing one of the 33 evaluated datasets.
struct DatasetInfo {
  std::string name;
  Domain domain;
  DType dtype;
  /// Full-scale extent from Table 3 (slowest-varying first).
  std::vector<uint64_t> extent;
  /// Byte-level word entropy reported in Table 3 (bits / element).
  double table_entropy_bits;
  /// Decimal digits the values carry (BUFF's precision input; 0 = full
  /// binary precision).
  int precision_digits;
  GenKind gen;
  /// Generator shape parameter (meaning depends on gen; see generators.cc).
  double gen_param;
};

/// A generated (scaled) instance of a dataset.
struct Dataset {
  const DatasetInfo* info;
  DataDesc desc;
  Buffer bytes;

  uint64_t num_elements() const { return desc.num_elements(); }
};

/// All 33 datasets of Table 3, in paper order.
const std::vector<DatasetInfo>& AllDatasets();

/// Lookup by name; nullptr if unknown.
const DatasetInfo* FindDataset(std::string_view name);

/// Generates a scaled instance of `info` with approximately `target_bytes`
/// of payload (extent scaled proportionally, dimensionality preserved).
/// Deterministic in (info, target_bytes, seed).
Result<Dataset> GenerateDataset(const DatasetInfo& info,
                                uint64_t target_bytes, uint64_t seed = 42);

}  // namespace fcbench::data

#endif  // FCBENCH_DATA_DATASET_H_
