#include "data/dataset.h"

namespace fcbench::data {

std::string_view DomainName(Domain d) {
  switch (d) {
    case Domain::kHpc:
      return "HPC";
    case Domain::kTimeSeries:
      return "TS";
    case Domain::kObservation:
      return "OBS";
    case Domain::kDatabase:
      return "DB";
  }
  return "?";
}

namespace {

using enum Domain;
using enum GenKind;
constexpr DType S = DType::kFloat32;
constexpr DType D = DType::kFloat64;

/// The 33 rows of Table 3. Entropy values are the paper's; generator kinds
/// and parameters are chosen so a generated instance reproduces the
/// dataset's compressibility character (validated in data_test.cc):
///   gen_param for kSmoothField / kNoisyField / kSkyImage: relative
///     mantissa-noise level (higher = harder to compress);
///   for kSparseField: fraction of active (non-background) values;
///   for kSensorWalk / kQuantizedTs / kTpcColumns: decimal step scale;
///   for kHdrImage: bright-pixel fraction; for kMarketData: unused.
std::vector<DatasetInfo> BuildRegistry() {
  return {
      // --- HPC ------------------------------------------------------------
      {"msg-bt", kHpc, D, {33298679}, 23.67, 0, kNoisyField, 1e-7},
      {"num-brain", kHpc, D, {17730000}, 23.97, 0, kNoisyField, 1e-7},
      {"num-control", kHpc, D, {19938093}, 24.14, 0, kNoisyField, 1e-5},
      {"rsim", kHpc, S, {2048, 11509}, 18.50, 0, kSmoothField, 1e-4},
      {"astro-mhd", kHpc, D, {130, 514, 1026}, 0.97, 0, kSparseField, 0.01},
      {"astro-pt", kHpc, D, {512, 256, 640}, 26.32, 0, kNoisyField, 1e-4},
      {"miranda3d", kHpc, S, {1024, 1024, 1024}, 23.08, 0, kSmoothField,
       1e-5},
      {"turbulence", kHpc, S, {256, 256, 256}, 23.73, 0, kNoisyField, 1e-3},
      {"wave", kHpc, S, {512, 512, 512}, 25.27, 0, kSmoothField, 1e-6},
      {"hurricane", kHpc, S, {100, 500, 500}, 23.54, 0, kNoisyField, 3e-3},
      // --- Time series ----------------------------------------------------
      {"citytemp", kTimeSeries, S, {2906326}, 9.43, 1, kQuantizedTs, 0.1},
      {"ts-gas", kTimeSeries, S, {76863200}, 13.94, 2, kQuantizedTs, 0.01},
      {"phone-gyro", kTimeSeries, D, {13932632, 3}, 14.77, 4, kSensorWalk,
       1e-4},
      {"wesad-chest", kTimeSeries, D, {4255300, 8}, 13.85, 4, kSensorWalk,
       1e-4},
      {"jane-street", kTimeSeries, D, {1664520, 136}, 26.07, 0, kMarketData,
       0},
      {"nyc-taxi", kTimeSeries, D, {12744846, 7}, 13.17, 2, kTpcColumns,
       0.01},
      {"gas-price", kTimeSeries, D, {36942486, 3}, 8.66, 3, kQuantizedTs,
       0.001},
      {"solar-wind", kTimeSeries, S, {7571081, 14}, 14.06, 3, kSensorWalk,
       1e-3},
      // --- Observation ----------------------------------------------------
      {"acs-wht", kObservation, S, {7500, 7500}, 20.13, 0, kSkyImage, 0.3},
      {"hdr-night", kObservation, S, {8192, 16384}, 9.03, 0, kHdrImage,
       0.05},
      {"hdr-palermo", kObservation, S, {10268, 20536}, 9.34, 0, kHdrImage,
       0.08},
      {"hst-wfc3-uvis", kObservation, S, {5329, 5110}, 15.61, 0, kSkyImage,
       0.08},
      {"hst-wfc3-ir", kObservation, S, {2484, 2417}, 15.04, 0, kSkyImage,
       0.08},
      {"spitzer-irac", kObservation, S, {6456, 6389}, 20.54, 0, kSkyImage,
       0.4},
      {"g24-78-usb", kObservation, S, {2426, 371, 371}, 26.02, 0,
       kNoisyField, 1e-3},
      {"jws-mirimage", kObservation, S, {40, 1024, 1032}, 23.16, 0,
       kSkyImage, 0.6},
      // --- Database (TPC) -------------------------------------------------
      {"tpcH-order", kDatabase, D, {15000000}, 23.40, 2, kTpcColumns, 0.01},
      {"tpcxBB-store", kDatabase, D, {8228343, 12}, 16.73, 2, kTpcColumns,
       0.01},
      {"tpcxBB-web", kDatabase, D, {8223189, 15}, 17.64, 2, kTpcColumns,
       0.01},
      {"tpcH-lineitem", kDatabase, S, {59986051, 4}, 8.87, 2, kTpcColumns,
       0.01},
      {"tpcDS-catalog", kDatabase, S, {2880058, 15}, 17.34, 2, kTpcColumns,
       0.01},
      {"tpcDS-store", kDatabase, S, {5760749, 12}, 15.17, 2, kTpcColumns,
       0.01},
      {"tpcDS-web", kDatabase, S, {1439247, 15}, 17.33, 2, kTpcColumns,
       0.01},
  };
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>* registry =
      new std::vector<DatasetInfo>(BuildRegistry());
  return *registry;
}

const DatasetInfo* FindDataset(std::string_view name) {
  for (const auto& d : AllDatasets()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace fcbench::data
