#include "select/selector.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "core/compressor.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/timer.h"

namespace fcbench::select {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<size_t>(parsed);
}

size_t ResolveProbeBytes(size_t configured) {
  size_t bytes = configured != 0
                     ? configured
                     : EnvSize("FCBENCH_SELECT_PROBE_BYTES", 16 << 10);
  return std::clamp<size_t>(bytes, 1 << 10, 1 << 20);
}

/// Number of scattered segments a sample is assembled from.
constexpr size_t kSampleSegments = 8;
/// Byte budget of the feature sample (runs on every chunk, warm or not).
constexpr size_t kFeatureBytes = 4 << 10;

/// Per-method selection counter, with the method name folded into the
/// registry's [a-z0-9_] segment grammar ("par-spdp" -> "par_spdp").
obs::Counter* ChosenCounter(const std::string& method) {
  std::string name = "select.chosen.";
  for (char c : method) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    name.push_back(ok ? c : '_');
  }
  return obs::MetricsRegistry::Global().GetCounter(name);
}

size_t ResolveCacheCapacity(int configured) {
  if (configured >= 0) return static_cast<size_t>(configured);
  // Clamp before the int narrowing below: a hostile/typo'd env value
  // (e.g. -1 parsed as ULLONG_MAX) must not wrap negative and disable
  // eviction. 2^20 signatures is far beyond the ~2^27 signature space a
  // real stream exercises a fraction of.
  return std::min<size_t>(EnvSize("FCBENCH_SELECT_CACHE", 1024), 1 << 20);
}

}  // namespace

size_t SelectionTrace::cache_hits() const {
  size_t hits = 0;
  for (const auto& e : entries) hits += e.decision.cache_hit ? 1 : 0;
  return hits;
}

double SelectionTrace::total_select_seconds() const {
  double s = 0;
  for (const auto& e : entries) s += e.select_seconds;
  return s;
}

std::string SelectionTrace::ToString() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    os << "chunk " << e.chunk_index << " (" << e.raw_bytes
       << " raw bytes): " << e.decision.method << "  [" << e.decision.rationale
       << "]\n    " << e.decision.features.ToString() << "\n";
    for (const auto& c : e.decision.candidates) {
      os << "    probe " << c.method << ": ";
      if (c.ok) {
        os << kVocabSampleCr << "=" << c.sample_cr << " score=" << c.score;
      } else {
        os << "failed";
      }
      os << "\n";
    }
  }
  os << "selected " << entries.size() << " chunks, " << cache_hits()
     << " decision-cache hits\n";
  return os.str();
}

Selector::Selector(Config config) : config_(std::move(config)) {
  config_.probe_bytes = ResolveProbeBytes(config_.probe_bytes);
  config_.cache_capacity =
      static_cast<int>(ResolveCacheCapacity(config_.cache_capacity));
  if (config_.candidates.empty()) config_.candidates = DefaultCandidates();
}

const std::vector<std::string>& Selector::DefaultCandidates() {
  static const std::vector<std::string>* candidates =
      new std::vector<std::string>{"pfpc",           "spdp",
                                   "fpzip",          "bitshuffle_lz4",
                                   "bitshuffle_zstd", "ndzip_cpu",
                                   "gorilla",        "chimp128"};
  return *candidates;
}

double Selector::ModeledSpeed(std::string_view method) {
  struct Row {
    std::string_view method;
    double weight;
  };
  // Relative single-thread compression throughput, Table 5 ordering.
  static constexpr Row kModel[] = {
      {"bitshuffle_lz4", 2.2}, {"gorilla", 1.6},  {"ndzip_cpu", 1.4},
      {"pfpc", 1.2},           {"chimp128", 1.0}, {"bitshuffle_zstd", 0.9},
      {"spdp", 0.5},           {"fpzip", 0.35},
  };
  for (const Row& r : kModel) {
    if (r.method == method) return r.weight;
  }
  return 0.5;
}

std::vector<std::string> Selector::Shortlist(const ChunkFeatures& f) const {
  if (config_.objective != Objective::kSpeed) {
    // Ratio/balanced probing keeps the full candidate set: the probe is
    // cheap relative to the chunk, and pruning is what opens a gap to
    // the per-chunk oracle.
    return config_.candidates;
  }
  // Speed: probe only the modeled-fast half, plus any slower method the
  // features single out as likely to win by a margin (strong XOR
  // structure -> chimp128; heavy repeats or quantized mantissas ->
  // bitshuffle_zstd's dictionary).
  std::vector<std::string> ranked = config_.candidates;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const std::string& a, const std::string& b) {
                     return ModeledSpeed(a) > ModeledSpeed(b);
                   });
  std::vector<std::string> list(
      ranked.begin(), ranked.begin() + (ranked.size() + 1) / 2);
  auto add = [&](std::string_view m) {
    for (const auto& have : list) {
      if (have == m) return;
    }
    for (const auto& cand : config_.candidates) {
      if (cand == m) {
        list.push_back(cand);
        return;
      }
    }
  };
  if (f.xor_lz + f.xor_tz > 24 || f.repeat_ratio > 0.25) add("chimp128");
  if (f.repeat_ratio > 0.25 || f.mantissa_tz > 16) add("bitshuffle_zstd");
  return list;
}

void Selector::CacheInsert(uint64_t signature, const std::string& method) {
  const size_t capacity = static_cast<size_t>(config_.cache_capacity);
  if (capacity == 0) return;
  if (cache_.emplace(signature, method).second) {
    cache_order_.push_back(signature);
    while (cache_.size() > capacity) {
      cache_.erase(cache_order_.front());
      cache_order_.pop_front();
    }
  }
}

Decision Selector::Choose(ByteSpan chunk, const DataDesc& desc) {
  obs::ScopedSpan span("select.choose", chunk.size());
  const size_t esize = DTypeSize(desc.dtype);
  // Samples are assembled from evenly spaced segments across the whole
  // chunk rather than a prefix: non-stationary chunks (a sparse field's
  // active region, an image's bright patch) would otherwise show the
  // probe data unlike what most of the chunk looks like. Deterministic:
  // segment positions depend only on sizes.
  auto scatter = [&](size_t want_bytes, Buffer* storage) -> ByteSpan {
    const size_t total_elems = chunk.size() / esize;
    const size_t want_elems = std::min(chunk.size(), want_bytes) / esize;
    const size_t seg_elems = want_elems / kSampleSegments;
    if (total_elems <= want_elems || seg_elems == 0) {
      return chunk.subspan(0, want_elems * esize);
    }
    storage->Reserve(kSampleSegments * seg_elems * esize);
    for (size_t s = 0; s < kSampleSegments; ++s) {
      const size_t begin_elem =
          s * (total_elems - seg_elems) / (kSampleSegments - 1);
      storage->Append(chunk.data() + begin_elem * esize,
                      seg_elems * esize);
    }
    return storage->span();
  };

  // Features come from a smaller sample than the probes: feature
  // extraction runs on *every* chunk — including decision-cache hits —
  // so it must stay well under the cost of compressing the chunk, while
  // probes only run on cache misses and earn their keep.
  Buffer feature_storage;
  ByteSpan feature_sample =
      scatter(std::min<size_t>(config_.probe_bytes, kFeatureBytes),
              &feature_storage);

  Decision d;
  d.features = ExtractChunkFeatures(feature_sample, desc.dtype);
  d.signature = d.features.Signature(desc.dtype);

  static obs::Counter* hit_counter =
      obs::MetricsRegistry::Global().GetCounter("select.cache.hits");
  static obs::Counter* miss_counter =
      obs::MetricsRegistry::Global().GetCounter("select.cache.misses");
  if (auto it = cache_.find(d.signature); it != cache_.end()) {
    span.SetTag("cache-hit");
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter->Increment();
    ChosenCounter(it->second)->Increment();
    d.method = it->second;
    d.cache_hit = true;
    std::ostringstream os;
    os << "decision cache hit, signature=0x" << std::hex << d.signature;
    d.rationale = os.str();
    return d;
  }
  span.SetTag("probe");
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter->Increment();
  Timer probe_timer;

  Buffer probe_storage;
  ByteSpan sample = scatter(config_.probe_bytes, &probe_storage);
  const size_t sample_elems = sample.size() / esize;

  DataDesc sample_desc;
  sample_desc.dtype = desc.dtype;
  sample_desc.extent = {sample_elems};
  sample_desc.precision_digits = desc.precision_digits;

  CompressorConfig probe_config;
  probe_config.threads = 1;

  double best_score = 0;
  size_t best = SIZE_MAX;
  for (const std::string& method : Shortlist(d.features)) {
    CandidateScore cs;
    cs.method = method;
    Buffer probe_out;
    auto comp = CompressorRegistry::Global().Create(method, probe_config);
    if (comp.ok() && !sample.empty() &&
        comp.value()->Compress(sample, sample_desc, &probe_out).ok() &&
        !probe_out.empty()) {
      cs.ok = true;
      cs.sample_cr =
          static_cast<double>(sample.size()) / probe_out.size();
      switch (config_.objective) {
        case Objective::kStorageReduction:
          cs.score = cs.sample_cr;
          break;
        case Objective::kSpeed:
          // Wall time is ~bytes/throughput; the ratio only matters as a
          // deterministic tie-breaker among similar-speed methods.
          cs.score = ModeledSpeed(method) *
                     (1.0 + 0.01 * std::min(cs.sample_cr, 100.0));
          break;
        case Objective::kBalanced:
          // Mirrors the offline (harmonic_cr - 1) / wall_ms criterion.
          cs.score = std::max(cs.sample_cr - 1.0, 0.0) *
                         ModeledSpeed(method) +
                     1e-6 * ModeledSpeed(method);
          break;
      }
      if (best == SIZE_MAX || cs.score > best_score) {
        best = d.candidates.size();
        best_score = cs.score;
      }
    }
    d.candidates.push_back(std::move(cs));
  }

  if (best == SIZE_MAX) {
    // Every probe failed: fall back to the method whose worst case is a
    // stored block when it is a candidate, else to the first configured
    // candidate.
    const auto& cands = config_.candidates;
    d.method = std::find(cands.begin(), cands.end(), "bitshuffle_lz4") !=
                       cands.end()
                   ? "bitshuffle_lz4"
                   : cands.front();
    d.rationale = "all probes failed; fallback";
  } else {
    d.method = d.candidates[best].method;
    std::ostringstream os;
    os.precision(3);
    os << "objective=" << ObjectiveName(config_.objective) << ": best "
       << kVocabSampleCr << "=" << d.candidates[best].sample_cr
       << " score=" << d.candidates[best].score << " over "
       << d.candidates.size() << " probes";
    d.rationale = os.str();
  }
  static obs::Histogram* probe_hist =
      obs::MetricsRegistry::Global().GetHistogram("select.choose_nanos",
                                                  obs::Unit::kNanos);
  probe_hist->Record(probe_timer.ElapsedNanos());
  ChosenCounter(d.method)->Increment();
  CacheInsert(d.signature, d.method);
  return d;
}

}  // namespace fcbench::select
