#include "select/features.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>
#include <type_traits>
#include <vector>

#include "util/entropy.h"

namespace fcbench::select {

namespace {

/// Word entropy of the sample via a small open-addressing histogram.
/// Exact over the sample's words (every word counted); the flat table
/// replaces util/entropy.h's unordered_map because feature extraction
/// runs on every chunk even when the decision cache is warm, and the
/// node-based map dominated that cost.
template <typename W>
double SampleWordEntropy(const uint8_t* data, size_t n_words) {
  if (n_words == 0) return 0.0;
  // 2x the sample word count keeps linear probing at <= 50% load; sized
  // per call so small samples touch little memory.
  const size_t kSlots = std::bit_ceil(std::max<size_t>(n_words * 2, 256));
  std::vector<uint64_t> keys(kSlots, 0);
  std::vector<uint32_t> counts(kSlots, 0);
  bool zero_seen = false;
  uint32_t zero_count = 0;
  for (size_t i = 0; i < n_words; ++i) {
    W w;
    std::memcpy(&w, data + i * sizeof(W), sizeof(W));
    if (w == 0) {  // 0 doubles as the empty-slot marker
      zero_seen = true;
      ++zero_count;
      continue;
    }
    uint64_t h = static_cast<uint64_t>(w) * 0x9e3779b97f4a7c15ULL;
    size_t slot = (h >> 32) & (kSlots - 1);
    while (counts[slot] != 0 && keys[slot] != w) {
      slot = (slot + 1) & (kSlots - 1);
    }
    keys[slot] = w;
    ++counts[slot];
  }
  double h = 0.0;
  const double inv = 1.0 / static_cast<double>(n_words);
  auto add = [&](uint32_t c) {
    double p = static_cast<double>(c) * inv;
    h -= p * std::log2(p);
  };
  if (zero_seen) add(zero_count);
  for (size_t s = 0; s < kSlots; ++s) {
    if (counts[s] != 0) add(counts[s]);
  }
  return h;
}

/// Buckets x in [lo, hi] into [0, levels).
uint64_t Bucket(double x, double lo, double hi, uint64_t levels) {
  if (!(x > lo)) return 0;
  if (x >= hi) return levels - 1;
  return static_cast<uint64_t>((x - lo) / (hi - lo) *
                               static_cast<double>(levels));
}

template <typename W>
void Accumulate(ByteSpan sample, ChunkFeatures* f) {
  constexpr int kWidth = sizeof(W) * 8;
  constexpr int kMantissa = (kWidth == 64) ? 52 : 23;
  using F = std::conditional_t<kWidth == 64, double, float>;

  const size_t n = sample.size() / sizeof(W);
  if (n == 0) return;

  double lz_sum = 0, tz_sum = 0, mant_tz_sum = 0;
  size_t repeats = 0, mono = 0, mono_pairs = 0;
  W prev = 0;
  double prev_delta = 0;
  bool have_prev_delta = false;
  F prev_val = 0;
  for (size_t i = 0; i < n; ++i) {
    W w;
    std::memcpy(&w, sample.data() + i * sizeof(W), sizeof(W));
    const W mant = w & ((W(1) << kMantissa) - 1);
    mant_tz_sum += mant == 0 ? kMantissa
                             : std::min(std::countr_zero(mant), kMantissa);
    F val;
    std::memcpy(&val, &w, sizeof(F));
    if (i > 0) {
      const W x = w ^ prev;
      lz_sum += x == 0 ? kWidth : std::countl_zero(x);
      tz_sum += x == 0 ? kWidth : std::countr_zero(x);
      if (x == 0) ++repeats;
      if (std::isfinite(static_cast<double>(val)) &&
          std::isfinite(static_cast<double>(prev_val))) {
        double delta = static_cast<double>(val) -
                       static_cast<double>(prev_val);
        if (have_prev_delta) {
          ++mono_pairs;
          if ((delta >= 0) == (prev_delta >= 0)) ++mono;
        }
        prev_delta = delta;
        have_prev_delta = true;
      } else {
        have_prev_delta = false;
      }
    }
    prev = w;
    prev_val = val;
  }
  if (n > 1) {
    f->xor_lz = lz_sum / static_cast<double>(n - 1);
    f->xor_tz = tz_sum / static_cast<double>(n - 1);
    f->repeat_ratio = static_cast<double>(repeats) /
                      static_cast<double>(n - 1);
  }
  f->mantissa_tz = mant_tz_sum / static_cast<double>(n);
  if (mono_pairs > 0) {
    f->delta_mono = static_cast<double>(mono) /
                    static_cast<double>(mono_pairs);
  }
}

}  // namespace

uint64_t ChunkFeatures::Signature(DType dtype) const {
  const double width = dtype == DType::kFloat32 ? 32.0 : 64.0;
  const double mant = dtype == DType::kFloat32 ? 23.0 : 52.0;
  uint64_t sig = dtype == DType::kFloat32 ? 0 : 1;
  sig = sig << 4 | Bucket(byte_entropy, 0, 8, 16);
  sig = sig << 4 | Bucket(word_entropy, 0, width, 16);
  sig = sig << 4 | Bucket(xor_lz, 0, width, 16);
  sig = sig << 4 | Bucket(xor_tz, 0, width, 16);
  sig = sig << 4 | Bucket(mantissa_tz, 0, mant, 16);
  sig = sig << 3 | Bucket(delta_mono, 0, 1, 8);
  sig = sig << 3 | Bucket(repeat_ratio, 0, 1, 8);
  return sig;
}

std::string ChunkFeatures::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << kVocabByteEntropy << "=" << byte_entropy << " "  //
     << kVocabWordEntropy << "=" << word_entropy << " "  //
     << kVocabXorLz << "=" << xor_lz << " "              //
     << kVocabXorTz << "=" << xor_tz << " "              //
     << kVocabDeltaMono << "=" << delta_mono << " "      //
     << kVocabMantissaTz << "=" << mantissa_tz << " "    //
     << kVocabRepeatRatio << "=" << repeat_ratio;
  return os.str();
}

ChunkFeatures ExtractChunkFeatures(ByteSpan sample, DType dtype) {
  ChunkFeatures f;
  const size_t esize = DTypeSize(dtype);
  ByteSpan whole = sample.subspan(0, sample.size() / esize * esize);
  f.byte_entropy = ByteEntropyBits(whole);
  if (dtype == DType::kFloat32) {
    f.word_entropy =
        SampleWordEntropy<uint32_t>(whole.data(), whole.size() / esize);
    Accumulate<uint32_t>(whole, &f);
  } else {
    f.word_entropy =
        SampleWordEntropy<uint64_t>(whole.data(), whole.size() / esize);
    Accumulate<uint64_t>(whole, &f);
  }
  return f;
}

}  // namespace fcbench::select
