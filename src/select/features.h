#ifndef FCBENCH_SELECT_FEATURES_H_
#define FCBENCH_SELECT_FEATURES_H_

#include <cstdint>
#include <string>

#include "core/format.h"
#include "util/buffer.h"

namespace fcbench::select {

/// Shared feature vocabulary. Every surface that explains a decision —
/// the online selector's rationale/trace, the offline §7.3
/// recommendation map, the CLI --explain output — names signals with
/// these exact strings, so a user can correlate "why gorilla here?"
/// across tools.
inline constexpr std::string_view kVocabByteEntropy = "byte_entropy";
inline constexpr std::string_view kVocabWordEntropy = "word_entropy";
inline constexpr std::string_view kVocabXorLz = "xor_lz";
inline constexpr std::string_view kVocabXorTz = "xor_tz";
inline constexpr std::string_view kVocabDeltaMono = "delta_mono";
inline constexpr std::string_view kVocabMantissaTz = "mantissa_tz";
inline constexpr std::string_view kVocabRepeatRatio = "repeat_ratio";
inline constexpr std::string_view kVocabSampleCr = "sample_cr";
inline constexpr std::string_view kVocabHarmonicCr = "harmonic_cr";
inline constexpr std::string_view kVocabWallMs = "wall_ms";
inline constexpr std::string_view kVocabRankSum = "rank_sum";

/// Cheap per-chunk signals computed from a small sample (selector.h
/// probes ~4-16 KiB). Each feature is a predictor-family proxy:
/// XOR zero runs -> Gorilla/Chimp, mantissa trailing zeros -> quantized
/// decimal data, monotone deltas -> prediction coders, entropies ->
/// whether anything can win at all.
struct ChunkFeatures {
  double byte_entropy = 0;  // bits/byte in [0, 8]
  double word_entropy = 0;  // bits/word in [0, 8*esize]
  double xor_lz = 0;        // mean leading-zero bits of consecutive XORs
  double xor_tz = 0;        // mean trailing-zero bits of consecutive XORs
  double delta_mono = 0;    // fraction of consecutive deltas keeping sign
  double mantissa_tz = 0;   // mean trailing-zero bits inside the mantissa
  double repeat_ratio = 0;  // fraction of values equal to their predecessor

  /// Quantized signature: buckets every feature coarsely and packs the
  /// buckets (plus the dtype) into one integer. Two chunks with the same
  /// signature are similar enough that the selector's decision cache
  /// reuses one probe result for both.
  uint64_t Signature(DType dtype) const;

  /// Renders "byte_entropy=2.13 word_entropy=... " using the shared
  /// vocabulary above.
  std::string ToString() const;
};

/// Extracts features from `sample` (interpreted as dtype elements; a
/// trailing partial element is ignored). Deterministic: same bytes, same
/// features, on every platform.
ChunkFeatures ExtractChunkFeatures(ByteSpan sample, DType dtype);

}  // namespace fcbench::select

#endif  // FCBENCH_SELECT_FEATURES_H_
