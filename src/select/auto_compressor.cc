#include "select/auto_compressor.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace fcbench::select {

std::string_view AutoMethodName(Objective objective) {
  switch (objective) {
    case Objective::kStorageReduction:
      return "auto-ratio";
    case Objective::kSpeed:
      return "auto-speed";
    case Objective::kBalanced:
      return "auto";
  }
  return "auto";
}

bool ParseAutoMethod(std::string_view method, Objective* objective) {
  Objective parsed;
  if (method == "auto") {
    parsed = Objective::kBalanced;
  } else if (method == "auto-speed") {
    parsed = Objective::kSpeed;
  } else if (method == "auto-ratio") {
    parsed = Objective::kStorageReduction;
  } else {
    return false;
  }
  if (objective != nullptr) *objective = parsed;
  return true;
}

std::unique_ptr<Compressor> AutoCompressor::Make(
    Objective objective, const CompressorConfig& config) {
  return std::make_unique<AutoCompressor>(objective, config);
}

AutoCompressor::AutoCompressor(Objective objective,
                               const CompressorConfig& config)
    : objective_(objective),
      selector_([&] {
        Selector::Config sc;
        sc.objective = objective;
        sc.probe_bytes = config.select_probe_bytes;
        sc.cache_capacity = config.select_cache;
        return sc;
      }()),
      inner_config_(config),
      trace_(config.selection_trace),
      chunk_bytes_(config.chunk_bytes
                       ? config.chunk_bytes
                       : ChunkedCompressor::kDefaultChunkBytes),
      threads_(ThreadPool::ResolveThreads(config.threads)) {
  // Inner methods run single-threaded for the same reason as in the
  // par-* adapter: chunks carry the parallelism and the bytes must not
  // depend on the thread budget.
  inner_config_.threads = 1;
  inner_config_.selection_trace = nullptr;
  traits_.name = std::string(AutoMethodName(objective));
  traits_.year = 2024;
  traits_.domain = "adaptive";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kPrediction;  // predicts the winner
  traits_.parallel = true;
  traits_.supports_f32 = true;
  traits_.supports_f64 = true;
}

Status AutoCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                Buffer* out) {
  if (input.size() != desc.num_bytes()) {
    return Status::InvalidArgument("auto: desc/input size mismatch");
  }
  const size_t esize = DTypeSize(desc.dtype);
  const size_t chunk_elems = std::max<size_t>(1, chunk_bytes_ / esize);
  const uint64_t chunk_raw = chunk_elems * esize;
  const uint64_t nchunks =
      input.empty() ? 0 : (input.size() + chunk_raw - 1) / chunk_raw;

  auto chunk_desc_of = [&](uint64_t len) {
    DataDesc d;
    d.dtype = desc.dtype;
    d.extent = {len / esize};
    d.precision_digits = desc.precision_digits;
    return d;
  };

  // Phase 1 — selection, strictly serial in chunk order: the decision
  // cache is shared state, and filling it in a deterministic order is
  // what keeps the container bytes thread-count-invariant.
  std::vector<std::string> methods;
  std::vector<uint32_t> method_ids(nchunks);
  for (uint64_t c = 0; c < nchunks; ++c) {
    const uint64_t begin = c * chunk_raw;
    const uint64_t len = std::min<uint64_t>(chunk_raw, input.size() - begin);
    Timer timer;
    Decision d =
        selector_.Choose(input.subspan(begin, len), chunk_desc_of(len));
    const double select_seconds = timer.ElapsedSeconds();
    uint32_t id = 0;
    while (id < methods.size() && methods[id] != d.method) ++id;
    if (id == methods.size()) methods.push_back(d.method);
    method_ids[c] = id;
    if (trace_ != nullptr) {
      SelectionTrace::Entry e;
      e.chunk_index = c;
      e.raw_bytes = len;
      e.decision = std::move(d);
      e.select_seconds = select_seconds;
      trace_->entries.push_back(std::move(e));
    }
  }

  // Phase 2 — compression, chunk-parallel on the shared pool.
  std::vector<Buffer> parts(nchunks);
  std::vector<Status> stats(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        const uint64_t begin = c * chunk_raw;
        const uint64_t len =
            std::min<uint64_t>(chunk_raw, input.size() - begin);
        auto inner = CompressorRegistry::Global().Create(
            methods[method_ids[c]], inner_config_);
        if (!inner.ok()) {
          stats[c] = inner.status();
          return;
        }
        stats[c] = inner.value()->Compress(input.subspan(begin, len),
                                           chunk_desc_of(len), &parts[c]);
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);

  std::vector<uint64_t> payload_sizes(nchunks);
  for (size_t c = 0; c < nchunks; ++c) payload_sizes[c] = parts[c].size();
  if (nchunks == 0) {
    // An empty container still needs a non-empty method table (the v2
    // format requires one); record the fallback candidate.
    methods = {"bitshuffle_lz4"};
  }
  FCB_RETURN_IF_ERROR(ChunkedCompressor::WriteDirectory(
      input.size(), chunk_raw, methods, method_ids, payload_sizes, out));
  for (const auto& p : parts) out->Append(p.span());
  return Status::OK();
}

Status AutoCompressor::ValidateContainer(const ChunkedCompressor::Index& idx,
                                         const DataDesc& desc) const {
  if (idx.version != ChunkedCompressor::kVersionMixed) {
    return Status::Corruption("auto: container lacks a method table");
  }
  if (idx.raw_bytes != desc.num_bytes()) {
    return Status::Corruption("auto: declared size disagrees with desc");
  }
  const size_t esize = DTypeSize(desc.dtype);
  if (idx.raw_bytes % esize != 0 || idx.chunk_raw_bytes % esize != 0) {
    return Status::Corruption("auto: sizes not element-aligned");
  }
  return Status::OK();
}

Status AutoCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                  Buffer* out) {
  FCB_ASSIGN_OR_RETURN(ChunkedCompressor::Index idx,
                       ChunkedCompressor::ReadIndex(input));
  FCB_RETURN_IF_ERROR(ValidateContainer(idx, desc));

  const size_t nchunks = idx.num_chunks();
  const size_t base = out->size();
  out->Resize(base + idx.raw_bytes);
  std::vector<Status> stats(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        Buffer part;
        Status st = ChunkedCompressor::DecodeChunkWithIndex(
            idx, input, desc, c, {}, inner_config_, &part);
        if (!st.ok()) {
          stats[c] = st;
          return;
        }
        std::memcpy(out->data() + base + c * idx.chunk_raw_bytes,
                    part.data(), part.size());
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);
  return Status::OK();
}

Status AutoCompressor::DecompressChunk(ByteSpan input, const DataDesc& desc,
                                       size_t index, Buffer* out) {
  FCB_ASSIGN_OR_RETURN(ChunkedCompressor::Index idx,
                       ChunkedCompressor::ReadIndex(input));
  FCB_RETURN_IF_ERROR(ValidateContainer(idx, desc));
  if (index >= idx.num_chunks()) {
    return Status::InvalidArgument("auto: chunk index out of range");
  }
  return ChunkedCompressor::DecodeChunkWithIndex(idx, input, desc, index, {},
                                                 inner_config_, out);
}

}  // namespace fcbench::select
