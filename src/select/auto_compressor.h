#ifndef FCBENCH_SELECT_AUTO_COMPRESSOR_H_
#define FCBENCH_SELECT_AUTO_COMPRESSOR_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/chunked.h"
#include "core/compressor.h"
#include "core/objective.h"
#include "select/selector.h"

namespace fcbench::select {

/// Registry name of the auto method for `objective`:
///   kBalanced -> "auto", kSpeed -> "auto-speed",
///   kStorageReduction -> "auto-ratio".
std::string_view AutoMethodName(Objective objective);

/// True when `method` names an auto variant; fills `objective` when
/// non-null.
bool ParseAutoMethod(std::string_view method, Objective* objective);

/// Online adaptive compressor: splits the input into fixed-size
/// element-aligned chunks (CompressorConfig::chunk_bytes, same knob as
/// the par-* adapters), runs the Selector on every chunk, compresses
/// each chunk with its chosen method, and emits a version-2 mixed
/// FCPK container (core/chunked.h) that records the per-chunk method —
/// self-describing, checksummed, random-access decodable.
///
/// Determinism: selection runs serially in chunk order (so the decision
/// cache fills identically on every run) and inner methods are pinned
/// to threads=1; only chunk *compression* uses the shared pool. Output
/// is therefore byte-identical across thread counts, the same guarantee
/// par-<m> gives.
///
/// Attach a SelectionTrace via CompressorConfig::selection_trace to
/// capture per-chunk decisions (the --explain API); entries are
/// appended on every Compress call.
class AutoCompressor : public Compressor {
 public:
  static std::unique_ptr<Compressor> Make(Objective objective,
                                          const CompressorConfig& config);

  AutoCompressor(Objective objective, const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }
  const Selector& selector() const { return selector_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  /// Random access into a mixed container: decodes only chunk `index`
  /// with its recorded method. Same contract as
  /// ChunkedCompressor::DecompressChunk.
  Status DecompressChunk(ByteSpan input, const DataDesc& desc, size_t index,
                         Buffer* out);

 private:
  Status ValidateContainer(const ChunkedCompressor::Index& idx,
                           const DataDesc& desc) const;

  CompressorTraits traits_;
  Objective objective_;
  Selector selector_;
  CompressorConfig inner_config_;  // threads pinned to 1
  SelectionTrace* trace_ = nullptr;
  size_t chunk_bytes_;
  int threads_;
};

}  // namespace fcbench::select

#endif  // FCBENCH_SELECT_AUTO_COMPRESSOR_H_
