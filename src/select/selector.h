#ifndef FCBENCH_SELECT_SELECTOR_H_
#define FCBENCH_SELECT_SELECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/format.h"
#include "core/objective.h"
#include "select/features.h"
#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::select {

/// Probe result for one shortlisted candidate: the sample's compression
/// ratio under that method plus the objective-weighted score.
struct CandidateScore {
  std::string method;
  double sample_cr = 0;  // sample bytes / probe output bytes
  double score = 0;      // objective-dependent; higher wins
  bool ok = false;       // probe compression succeeded
};

/// One per-chunk selection with its full supporting evidence — the unit
/// of the explain/trace API.
struct Decision {
  std::string method;
  ChunkFeatures features;
  uint64_t signature = 0;
  bool cache_hit = false;
  /// Probe scores in shortlist order; empty when the decision came from
  /// the cache.
  std::vector<CandidateScore> candidates;
  /// Human-readable explanation built from the features.h vocabulary.
  std::string rationale;
};

/// Per-chunk record of what the selector saw and chose. Attach one to
/// CompressorConfig::selection_trace to capture decisions from any
/// auto-* compression (CLI --explain, ColumnStore, benches).
struct SelectionTrace {
  struct Entry {
    uint64_t chunk_index = 0;
    uint64_t raw_bytes = 0;
    Decision decision;
    double select_seconds = 0;  // feature + probe + cache time
  };
  std::vector<Entry> entries;

  size_t cache_hits() const;
  double total_select_seconds() const;
  /// One line per chunk: index, size, winner, cache/probe evidence,
  /// features. The --explain rendering.
  std::string ToString() const;
};

/// Online per-chunk compressor selection (the paper's cross-domain
/// takeaway made operational: no method wins everywhere, so pick per
/// chunk from the data). Pipeline per Choose() call:
///
///   1. extract ChunkFeatures from a small sample (~probe_bytes);
///   2. decision cache lookup by quantized feature signature — steady
///      streams skip re-probing entirely;
///   3. on a miss, shortlist candidates by the features, compress the
///      sample with each, score by the configured Objective, cache the
///      winner.
///
/// Every step is deterministic (fixed sampling, static speed model, no
/// wall-clock input), so containers built from selections are
/// byte-identical across runs and thread counts. Instances are not
/// thread-safe; use one Selector per writer (same contract as
/// Compressor).
class Selector {
 public:
  struct Config {
    Objective objective = Objective::kBalanced;
    /// Probe sample bytes; 0 = $FCBENCH_SELECT_PROBE_BYTES or 16 KiB,
    /// clamped to [1 KiB, 1 MiB].
    size_t probe_bytes = 0;
    /// Decision-cache capacity (signatures); negative =
    /// $FCBENCH_SELECT_CACHE or 1024; 0 disables caching.
    int cache_capacity = -1;
    /// Candidate methods; empty = DefaultCandidates().
    std::vector<std::string> candidates;
  };

  explicit Selector(Config config);

  Decision Choose(ByteSpan chunk, const DataDesc& desc);

  const Config& config() const { return config_; }
  size_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// The lossless CPU methods the paper evaluates, minus buff (its
  /// lossy-without-precision exception must not hide behind "auto") —
  /// the same exclusion rule as the par-* adapters.
  static const std::vector<std::string>& DefaultCandidates();

  /// Static relative-throughput model (GB/s-scale weights following the
  /// paper's Table 5 CPU ordering). Deterministic by design: scoring
  /// from measured probe time would make the chosen method — and thus
  /// the container bytes — vary run to run. Unknown methods weigh 0.5.
  static double ModeledSpeed(std::string_view method);

 private:
  std::vector<std::string> Shortlist(const ChunkFeatures& f) const;
  void CacheInsert(uint64_t signature, const std::string& method);

  Config config_;
  std::unordered_map<uint64_t, std::string> cache_;
  std::deque<uint64_t> cache_order_;  // FIFO eviction
  /// Atomic although the instance contract is one-writer: with caching
  /// disabled (cache_capacity=0) Choose mutates nothing but these, so
  /// sharing a probe-only Selector across threads is race-free, and the
  /// accessors can always be read concurrently with a Choose in flight.
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace fcbench::select

#endif  // FCBENCH_SELECT_SELECTOR_H_
