#include "nn/nn_coder.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "codecs/arith.h"
#include "util/bitio.h"

namespace fcbench::nn {

namespace {

/// Bit-level context-mixing model. Three context families feed one
/// logistic neuron:
///   0: bit-position within the element + partial byte (order-0)
///   1: previous byte + partial byte (order-1)
///   2: hash of previous two bytes + partial byte (order-2)
/// All state updates are exactly replayed at decode time.
class MixerModel {
 public:
  MixerModel()
      : t0_(1 << 12, 32768),
        t1_(1 << 16, 32768),
        t2_(1 << 18, 32768),
        w_{0.4f, 0.4f, 0.4f} {}

  /// Probability of the next bit being 1, in [1/65536, 65535/65536] units.
  uint32_t Predict(int bit_index, uint32_t partial, uint8_t prev1,
                   uint8_t prev2) {
    idx_[0] = ((bit_index & 7) << 9 | (partial & 0x1ff)) & (t0_.size() - 1);
    idx_[1] = (static_cast<uint32_t>(prev1) << 8 | partial) & (t1_.size() - 1);
    uint32_t h = (static_cast<uint32_t>(prev1) * 2654435761u) ^
                 (static_cast<uint32_t>(prev2) * 40503u) ^ (partial << 1);
    idx_[2] = h & (t2_.size() - 1);

    st_[0] = Stretch(t0_[idx_[0]]);
    st_[1] = Stretch(t1_[idx_[1]]);
    st_[2] = Stretch(t2_[idx_[2]]);
    float mixed = w_[0] * st_[0] + w_[1] * st_[1] + w_[2] * st_[2];
    p_ = Squash(mixed);
    uint32_t pi = static_cast<uint32_t>(p_ * 65536.0f);
    if (pi < 1) pi = 1;
    if (pi > 65535) pi = 65535;
    return pi;
  }

  /// Online update: counter states + one SGD step on the mixer neuron.
  void Update(int bit) {
    float err = static_cast<float>(bit) - p_;
    for (int i = 0; i < 3; ++i) {
      w_[i] += kLearnRate * err * st_[i];
    }
    UpdateCounter(&t0_[idx_[0]], bit);
    UpdateCounter(&t1_[idx_[1]], bit);
    UpdateCounter(&t2_[idx_[2]], bit);
  }

 private:
  static constexpr float kLearnRate = 0.02f;

  static float Stretch(uint16_t p16) {
    float p = (static_cast<float>(p16) + 0.5f) / 65536.0f;
    return std::log(p / (1.0f - p));
  }

  static float Squash(float x) { return 1.0f / (1.0f + std::exp(-x)); }

  static void UpdateCounter(uint16_t* p, int bit) {
    if (bit) {
      *p += (65535 - *p) >> 5;
    } else {
      *p -= *p >> 5;
    }
  }

  std::vector<uint16_t> t0_, t1_, t2_;
  float w_[3];
  size_t idx_[3] = {0, 0, 0};
  float st_[3] = {0, 0, 0};
  float p_ = 0.5f;
};

}  // namespace

DzipNnCompressor::DzipNnCompressor(const CompressorConfig& /*config*/) {
  traits_.name = "dzip_nn";
  traits_.year = 2021;
  traits_.domain = "general";
  traits_.arch = Arch::kGpu;  // the original trains on GPU (PyTorch)
  traits_.predictor = PredictorClass::kNeural;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status DzipNnCompressor::Compress(ByteSpan input, const DataDesc& /*desc*/,
                                  Buffer* out) {
  PutVarint64(out, input.size());
  Buffer coded;
  codecs::BinaryArithEncoder enc(&coded);
  MixerModel model;
  uint8_t prev1 = 0, prev2 = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    uint8_t byte = input[i];
    uint32_t partial = 1;  // leading sentinel bit
    for (int b = 7; b >= 0; --b) {
      int bit = (byte >> b) & 1;
      uint32_t p1 = model.Predict(b, partial, prev1, prev2);
      enc.Encode(bit, p1);
      model.Update(bit);
      partial = (partial << 1) | static_cast<uint32_t>(bit);
    }
    prev2 = prev1;
    prev1 = byte;
  }
  enc.Finish();
  out->Append(coded.span());
  return Status::OK();
}

Status DzipNnCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                    Buffer* out) {
  size_t off = 0;
  uint64_t n = 0;
  if (!GetVarint64(input, &off, &n)) {
    return Status::Corruption("dzip_nn: bad header");
  }
  // The arithmetic decoder will happily synthesize bytes forever from a
  // corrupt stream, so the declared count must be validated against the
  // caller's descriptor before any allocation.
  if (desc.num_elements() > 0 && n != desc.num_bytes()) {
    return Status::Corruption("dzip_nn: declared size disagrees with desc");
  }
  codecs::BinaryArithDecoder dec(input.subspan(off));
  MixerModel model;
  uint8_t prev1 = 0, prev2 = 0;
  size_t base = out->size();
  out->Resize(base + n);
  uint8_t* dst = out->data() + base;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t partial = 1;
    uint8_t byte = 0;
    for (int b = 7; b >= 0; --b) {
      uint32_t p1 = model.Predict(b, partial, prev1, prev2);
      int bit = dec.Decode(p1);
      model.Update(bit);
      partial = (partial << 1) | static_cast<uint32_t>(bit);
      byte = static_cast<uint8_t>((byte << 1) | bit);
    }
    dst[i] = byte;
    prev2 = prev1;
    prev1 = byte;
  }
  return Status::OK();
}

}  // namespace fcbench::nn
