#ifndef FCBENCH_NN_NN_CODER_H_
#define FCBENCH_NN_NN_CODER_H_

#include "core/compressor.h"

namespace fcbench::nn {

/// Dzip-style neural lossless coder (Goyal et al., DCC 2021; paper §4.5).
///
/// The original trains RNN models (bootstrap + supporter) to estimate the
/// conditional distribution of each symbol, encoded arithmetically; its
/// defining property in the study is that NN coders achieve competitive
/// ratios at throughputs orders of magnitude below every other method
/// ("about several KB/s... still not practical", §4.5 insights).
///
/// Our substitution (DESIGN.md): an online-trained logistic-mixing network
/// — per bit, the probabilities of several context models are mixed by a
/// single neuron whose weights follow online gradient descent (exactly the
/// supporter-model idea, minus the recurrence), driving a binary
/// arithmetic coder. Like Dzip, the model trains during encoding and
/// retrains identically during decoding, so no weights are stored.
class DzipNnCompressor : public Compressor {
 public:
  explicit DzipNnCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<DzipNnCompressor>(config);
  }

 private:
  CompressorTraits traits_;
};

}  // namespace fcbench::nn

#endif  // FCBENCH_NN_NN_CODER_H_
