#include "compressors/fpzip.h"

#include <cstring>
#include <vector>

#include "codecs/range_coder.h"
#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

/// Pads an extent to exactly 3 dims (leading 1s); rank > 3 flattens.
void PadExtent(const DataDesc& desc, size_t e[3]) {
  e[0] = e[1] = e[2] = 1;
  int rank = desc.rank();
  if (rank >= 1 && rank <= 3) {
    for (int d = 0; d < rank; ++d) e[3 - rank + d] = desc.extent[d];
  } else {
    e[2] = desc.num_elements();
  }
}

/// Lorenzo prediction at (i,j,k) from previously visited corners; word
/// arithmetic is mod 2^w, matching fpzip's integer mapping.
template <typename W>
W LorenzoPredict(const W* x, size_t i, size_t j, size_t k, size_t s1,
                 size_t s0) {
  auto at = [&](size_t di, size_t dj, size_t dk) -> W {
    if (di > i || dj > j || dk > k) return 0;
    return x[(i - di) * s0 + (j - dj) * s1 + (k - dk)];
  };
  return at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) - at(0, 1, 1) -
         at(1, 0, 1) - at(1, 1, 0) + at(1, 1, 1);
}

template <typename W>
void FpzipEncode(ByteSpan input, const DataDesc& desc, int precision_bits,
                 Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  // Lossy mode: zero the low bits before prediction so encoder and
  // decoder agree on the truncated values.
  W keep_mask = ~W(0);
  if (precision_bits > 0 && precision_bits < kWidth) {
    keep_mask <<= (kWidth - precision_bits);
  }
  size_t e[3];
  PadExtent(desc, e);
  const size_t s1 = e[2];
  const size_t s0 = e[1] * e[2];
  const size_t n = e[0] * e[1] * e[2];

  // Map to order-preserving integers.
  std::vector<W> x(n);
  for (size_t idx = 0; idx < n; ++idx) {
    W bits;
    std::memcpy(&bits, input.data() + idx * sizeof(W), sizeof(W));
    x[idx] = SignedToOrdered(bits) & keep_mask;
  }

  Buffer symbols;  // range-coded significant-bit counts
  Buffer raw;      // verbatim residual bits
  // No speculative Reserve: fpzip's footprint is part of the Figure 10
  // comparison, and the word-spill appends amortize through the buffer's
  // geometric growth.
  codecs::RangeEncoder enc(&symbols);
  codecs::AdaptiveModel model(kWidth + 1);
  BitWriter bw(&raw);

  for (size_t i = 0; i < e[0]; ++i) {
    for (size_t j = 0; j < e[1]; ++j) {
      for (size_t k = 0; k < e[2]; ++k) {
        size_t idx = i * s0 + j * s1 + k;
        W pred = LorenzoPredict(x.data(), i, j, k, s1, s0);
        W r = x[idx] - pred;  // mod 2^w
        // ZigZag the two's-complement residual.
        using S = std::make_signed_t<W>;
        W z = (r << 1) ^ static_cast<W>(static_cast<S>(r) >> (kWidth - 1));
        int sig = kWidth - ((kWidth == 64)
                                ? LeadingZeros64(static_cast<uint64_t>(z))
                                : LeadingZeros32(static_cast<uint32_t>(z)));
        codecs::EncodeAdaptive(&enc, &model, sig);
        if (sig > 1) {
          // Top bit of z is implicitly 1; store the remaining sig-1 bits.
          bw.WriteBits(static_cast<uint64_t>(z), sig - 1);
        }
      }
    }
  }
  enc.Finish();
  bw.Flush();

  PutVarint64(out, symbols.size());
  PutVarint64(out, raw.size());
  out->Append(symbols.span());
  out->Append(raw.span());
}

template <typename W>
Status FpzipDecode(ByteSpan input, const DataDesc& desc, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  size_t e[3];
  PadExtent(desc, e);
  const size_t s1 = e[2];
  const size_t s0 = e[1] * e[2];
  const size_t n = e[0] * e[1] * e[2];

  size_t off = 0;
  uint64_t sym_size = 0, raw_size = 0;
  if (!GetVarint64(input, &off, &sym_size) ||
      !GetVarint64(input, &off, &raw_size) ||
      off + sym_size + raw_size > input.size()) {
    return Status::Corruption("fpzip: bad header");
  }
  codecs::RangeDecoder dec(input.subspan(off, sym_size));
  codecs::AdaptiveModel model(kWidth + 1);
  BitReader br(input.subspan(off + sym_size, raw_size));

  std::vector<W> x(n);
  for (size_t i = 0; i < e[0]; ++i) {
    for (size_t j = 0; j < e[1]; ++j) {
      for (size_t k = 0; k < e[2]; ++k) {
        size_t idx = i * s0 + j * s1 + k;
        W pred = LorenzoPredict(x.data(), i, j, k, s1, s0);
        int sig = codecs::DecodeAdaptive(&dec, &model);
        if (sig > kWidth) return Status::Corruption("fpzip: bad symbol");
        W z = 0;
        if (sig > 0) {
          z = W(1) << (sig - 1);
          if (sig > 1) {
            z |= static_cast<W>(br.ReadBits(sig - 1));
          }
        }
        if (br.overrun()) return Status::Corruption("fpzip: truncated bits");
        W r = (z >> 1) ^ (~(z & 1) + 1);  // un-zigzag
        x[idx] = pred + r;
      }
    }
  }

  size_t base = out->size();
  out->Resize(base + n * sizeof(W));
  uint8_t* dst = out->data() + base;
  for (size_t idx = 0; idx < n; ++idx) {
    W bits = OrderedToSigned(x[idx]);
    std::memcpy(dst + idx * sizeof(W), &bits, sizeof(W));
  }
  return Status::OK();
}

}  // namespace

FpzipCompressor::FpzipCompressor(const CompressorConfig& config)
    : precision_bits_(config.fpzip_precision_bits) {
  traits_.name = "fpzip";
  traits_.year = 2006;
  traits_.domain = "HPC";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kLorenzo;
  traits_.parallel = false;
  traits_.uses_dimensions = true;
}

Status FpzipCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                 Buffer* out) {
  if (input.size() != desc.num_bytes()) {
    return Status::InvalidArgument("fpzip: desc/input size mismatch");
  }
  if (desc.dtype == DType::kFloat64) {
    FpzipEncode<uint64_t>(input, desc, precision_bits_, out);
  } else {
    FpzipEncode<uint32_t>(input, desc, precision_bits_, out);
  }
  return Status::OK();
}

Status FpzipCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  if (desc.dtype == DType::kFloat64) {
    return FpzipDecode<uint64_t>(input, desc, out);
  }
  return FpzipDecode<uint32_t>(input, desc, out);
}

}  // namespace fcbench::compressors
