#ifndef FCBENCH_COMPRESSORS_TIMESERIES_BLOCK_H_
#define FCBENCH_COMPRESSORS_TIMESERIES_BLOCK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::compressors {

/// One time-series sample.
struct TsPoint {
  int64_t ts = 0;
  double value = 0;

  bool operator==(const TsPoint&) const = default;
};

/// The complete Gorilla stream format of paper §3.4: time series are
/// (timestamp, value) pairs; timestamps go through delta-of-delta coding
/// (GorillaTimestampCodec) and values through XOR residual coding, packed
/// into fixed-size blocks with a directory. Facebook's deployment used
/// two-hour blocks; `points_per_block` parameterizes that.
///
/// The block directory stores each block's first/last timestamp and byte
/// extent, so time-range queries decode only overlapping blocks — the
/// property that makes the in-memory TSDB fast at dashboard queries.
///
/// Stream layout:
///   varint total_points, varint points_per_block, varint num_blocks
///   per block: varint first_ts (zigzag), varint last_ts (zigzag),
///              varint ts_bytes, varint val_bytes
///   concatenated per-block payloads (timestamps then values)
class TimeSeriesBlockCodec {
 public:
  struct Options {
    /// Points per block. 720 = two hours of 10-second samples, the
    /// Gorilla paper's block size.
    size_t points_per_block = 720;
  };

  TimeSeriesBlockCodec() = default;
  explicit TimeSeriesBlockCodec(Options opts) : opts_(opts) {}

  /// Compresses the series (timestamps need not be monotone, but range
  /// queries skip blocks based on first/last ts, so monotone input gets
  /// the intended pruning).
  Status Compress(std::span<const TsPoint> points, Buffer* out) const;

  /// Decompresses the full series.
  static Result<std::vector<TsPoint>> Decompress(ByteSpan in);

  /// Returns the points with ts in [t0, t1], decoding only blocks whose
  /// [first_ts, last_ts] range overlaps. `blocks_decoded`, when non-null,
  /// reports how many blocks were actually decompressed (tests use it to
  /// prove the pruning).
  static Result<std::vector<TsPoint>> QueryRange(ByteSpan in, int64_t t0,
                                                 int64_t t1,
                                                 size_t* blocks_decoded =
                                                     nullptr);

 private:
  Options opts_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_TIMESERIES_BLOCK_H_
