#ifndef FCBENCH_COMPRESSORS_BITSHUFFLE_H_
#define FCBENCH_COMPRESSORS_BITSHUFFLE_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// Bitshuffle (Masui et al. 2015; paper §3.7).
///
/// Splits the input into blocks (default 4096 bytes, sized for L1),
/// bit-transposes each block's elements so that the i-th bits of all
/// elements become contiguous bytes, then feeds the transposed block to a
/// dictionary back-end. Blocks are distributed over worker threads
/// (standing in for the original's SIMD + pthread parallelism).
///
/// Back-ends mirror the two paper variants:
///   bitshuffle_lz4  — our from-scratch LZ4 block codec
///   bitshuffle_zstd — our zstd-like LZH codec (see DESIGN.md)
enum class BitshuffleBackend { kLz4, kZstd };

class BitshuffleCompressor : public Compressor {
 public:
  BitshuffleCompressor(BitshuffleBackend backend,
                       const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> MakeLz4(const CompressorConfig& config) {
    return std::make_unique<BitshuffleCompressor>(BitshuffleBackend::kLz4,
                                                  config);
  }
  static std::unique_ptr<Compressor> MakeZstd(
      const CompressorConfig& config) {
    return std::make_unique<BitshuffleCompressor>(BitshuffleBackend::kZstd,
                                                  config);
  }

 private:
  CompressorTraits traits_;
  BitshuffleBackend backend_;
  size_t block_size_;
  int threads_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_BITSHUFFLE_H_
