#include "compressors/ndzip.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "compressors/transpose.h"
#include "util/bitio.h"
#include "util/float_bits.h"
#include "util/thread_pool.h"

namespace fcbench::compressors {

namespace ndzip_detail {

void HypercubeSides(int rank, size_t sides[3]) {
  switch (rank) {
    case 2:
      sides[0] = 1;
      sides[1] = 64;
      sides[2] = 64;
      break;
    case 3:
      sides[0] = 16;
      sides[1] = 16;
      sides[2] = 16;
      break;
    default:  // 1-D and anything above 3-D (flattened)
      sides[0] = 1;
      sides[1] = 1;
      sides[2] = 4096;
      break;
  }
}

template <typename W>
void LorenzoForward(W* x, const size_t sides[3]) {
  const size_t s0 = sides[0], s1 = sides[1], s2 = sides[2];
  const size_t stride1 = s2;
  const size_t stride0 = s1 * s2;
  // Differences along the fastest dimension first; order is irrelevant for
  // correctness (the operators commute) but cache-friendly this way.
  for (size_t i = 0; i < s0; ++i) {
    for (size_t j = 0; j < s1; ++j) {
      W* line = x + i * stride0 + j * stride1;
      for (size_t k = s2 - 1; k > 0; --k) line[k] -= line[k - 1];
    }
  }
  if (s1 > 1) {
    for (size_t i = 0; i < s0; ++i) {
      for (size_t j = s1 - 1; j > 0; --j) {
        W* row = x + i * stride0 + j * stride1;
        W* prev = row - stride1;
        for (size_t k = 0; k < s2; ++k) row[k] -= prev[k];
      }
    }
  }
  if (s0 > 1) {
    for (size_t i = s0 - 1; i > 0; --i) {
      W* plane = x + i * stride0;
      W* prev = plane - stride0;
      for (size_t k = 0; k < stride0; ++k) plane[k] -= prev[k];
    }
  }
}

template <typename W>
void LorenzoInverse(W* x, const size_t sides[3]) {
  const size_t s0 = sides[0], s1 = sides[1], s2 = sides[2];
  const size_t stride1 = s2;
  const size_t stride0 = s1 * s2;
  if (s0 > 1) {
    for (size_t i = 1; i < s0; ++i) {
      W* plane = x + i * stride0;
      W* prev = plane - stride0;
      for (size_t k = 0; k < stride0; ++k) plane[k] += prev[k];
    }
  }
  if (s1 > 1) {
    for (size_t i = 0; i < s0; ++i) {
      for (size_t j = 1; j < s1; ++j) {
        W* row = x + i * stride0 + j * stride1;
        W* prev = row - stride1;
        for (size_t k = 0; k < s2; ++k) row[k] += prev[k];
      }
    }
  }
  for (size_t i = 0; i < s0; ++i) {
    for (size_t j = 0; j < s1; ++j) {
      W* line = x + i * stride0 + j * stride1;
      for (size_t k = 1; k < s2; ++k) line[k] += line[k - 1];
    }
  }
}

template void LorenzoForward<uint32_t>(uint32_t*, const size_t[3]);
template void LorenzoForward<uint64_t>(uint64_t*, const size_t[3]);
template void LorenzoInverse<uint32_t>(uint32_t*, const size_t[3]);
template void LorenzoInverse<uint64_t>(uint64_t*, const size_t[3]);

}  // namespace ndzip_detail

namespace {

using ndzip_detail::HypercubeSides;
using ndzip_detail::LorenzoForward;
using ndzip_detail::LorenzoInverse;

constexpr size_t kBlockElems = 4096;

template <typename W>
W ZigZagW(W v) {
  using S = std::make_signed_t<W>;
  constexpr int kShift = sizeof(W) * 8 - 1;
  return (v << 1) ^ static_cast<W>(static_cast<S>(v) >> kShift);
}

template <typename W>
W UnZigZagW(W v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

/// Geometry of the hypercube grid over a (padded to 3-D) extent.
struct Grid {
  size_t ext[3];    // data extent
  size_t sides[3];  // hypercube sides
  size_t nblk[3];   // number of full hypercubes per dim
  size_t stride1, stride0;

  static Grid Make(const DataDesc& desc) {
    Grid g{};
    int rank = desc.rank();
    size_t e[3] = {1, 1, 1};
    if (rank >= 1 && rank <= 3) {
      for (int d = 0; d < rank; ++d) {
        e[3 - rank + d] = desc.extent[d];
      }
    } else {
      e[2] = desc.num_elements();
    }
    HypercubeSides(rank, g.sides);
    for (int d = 0; d < 3; ++d) {
      g.ext[d] = e[d];
      g.nblk[d] = e[d] / g.sides[d];
    }
    g.stride1 = g.ext[2];
    g.stride0 = g.ext[1] * g.ext[2];
    return g;
  }

  size_t num_blocks() const { return nblk[0] * nblk[1] * nblk[2]; }

  /// Element offset of the block origin for block index b.
  size_t BlockOrigin(size_t b) const {
    size_t b2 = b % nblk[2];
    size_t b1 = (b / nblk[2]) % nblk[1];
    size_t b0 = b / (nblk[2] * nblk[1]);
    return b0 * sides[0] * stride0 + b1 * sides[1] * stride1 +
           b2 * sides[2];
  }

  bool IsBorder(size_t i, size_t j, size_t k) const {
    return i >= nblk[0] * sides[0] || j >= nblk[1] * sides[1] ||
           k >= nblk[2] * sides[2];
  }
};

template <typename W>
void GatherBlock(const uint8_t* base, const Grid& g, size_t origin, W* blk) {
  size_t idx = 0;
  for (size_t i = 0; i < g.sides[0]; ++i) {
    for (size_t j = 0; j < g.sides[1]; ++j) {
      const uint8_t* line =
          base + (origin + i * g.stride0 + j * g.stride1) * sizeof(W);
      std::memcpy(blk + idx, line, g.sides[2] * sizeof(W));
      idx += g.sides[2];
    }
  }
}

template <typename W>
void ScatterBlock(uint8_t* base, const Grid& g, size_t origin, const W* blk) {
  size_t idx = 0;
  for (size_t i = 0; i < g.sides[0]; ++i) {
    for (size_t j = 0; j < g.sides[1]; ++j) {
      uint8_t* line =
          base + (origin + i * g.stride0 + j * g.stride1) * sizeof(W);
      std::memcpy(line, blk + idx, g.sides[2] * sizeof(W));
      idx += g.sides[2];
    }
  }
}

/// Encodes one transformed hypercube: chunked bit-transpose + zero-word
/// removal with bitmap headers.
template <typename W>
void EncodeBlockResiduals(const W* blk, Buffer* out) {
  constexpr size_t kChunk = sizeof(W) * 8;  // 32 or 64 elements
  static_assert(kBlockElems % kChunk == 0);
  uint8_t transposed[kChunk * sizeof(W)];
  for (size_t c = 0; c < kBlockElems; c += kChunk) {
    BitTranspose(reinterpret_cast<const uint8_t*>(blk + c), transposed,
                 kChunk, sizeof(W));
    // kChunk planes, each sizeof(W)*8 bits = kChunk bits... each plane is
    // kChunk/8 bytes = sizeof(W) bytes wide: one W word per plane.
    // Compact bitmap + surviving words into one buffer so the chunk goes
    // out with a single append instead of one call per non-zero word.
    W group[1 + kChunk];
    W bitmap = 0;
    size_t kept = 0;
    for (size_t p = 0; p < kChunk; ++p) {
      W w;
      std::memcpy(&w, transposed + p * sizeof(W), sizeof(W));
      if (w != 0) {
        bitmap |= W(1) << p;
        group[1 + kept] = w;
        ++kept;
      }
    }
    group[0] = bitmap;
    out->Append(group, (1 + kept) * sizeof(W));
  }
}

template <typename W>
Status DecodeBlockResiduals(ByteSpan in, size_t* pos, W* blk) {
  constexpr size_t kChunk = sizeof(W) * 8;
  uint8_t transposed[kChunk * sizeof(W)];
  for (size_t c = 0; c < kBlockElems; c += kChunk) {
    W bitmap;
    if (!GetFixed(in, pos, &bitmap)) {
      return Status::Corruption("ndzip: truncated bitmap");
    }
    for (size_t p = 0; p < kChunk; ++p) {
      W w = 0;
      if ((bitmap >> p) & 1) {
        if (!GetFixed(in, pos, &w)) {
          return Status::Corruption("ndzip: truncated words");
        }
      }
      std::memcpy(transposed + p * sizeof(W), &w, sizeof(W));
    }
    BitUntranspose(transposed, reinterpret_cast<uint8_t*>(blk + c), kChunk,
                   sizeof(W));
  }
  return Status::OK();
}

template <typename W>
Status NdzipCompressImpl(ByteSpan input, const DataDesc& desc, int threads,
                         Buffer* out) {
  Grid g = Grid::Make(desc);
  size_t nblocks = g.num_blocks();
  const uint8_t* base = input.data();

  std::vector<Buffer> parts(nblocks);
  ThreadPool::Shared().ParallelFor(
      nblocks,
      [&](size_t b) {
        W blk[kBlockElems];
        GatherBlock(base, g, g.BlockOrigin(b), blk);
        for (auto& w : blk) w = SignedToOrdered(w);
        LorenzoForward(blk, g.sides);
        for (auto& w : blk) w = ZigZagW(w);
        EncodeBlockResiduals(blk, &parts[b]);
      },
      {/*grain=*/0, /*max_parallelism=*/static_cast<size_t>(threads)});

  PutVarint64(out, nblocks);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());

  // Border elements (not covered by any full hypercube), verbatim, in
  // row-major order.
  const size_t cov0 = g.nblk[0] * g.sides[0];
  const size_t cov1 = g.nblk[1] * g.sides[1];
  const size_t cov2 = g.nblk[2] * g.sides[2];
  for (size_t i = 0; i < g.ext[0]; ++i) {
    for (size_t j = 0; j < g.ext[1]; ++j) {
      size_t k0 = (i < cov0 && j < cov1) ? cov2 : 0;
      for (size_t k = k0; k < g.ext[2]; ++k) {
        size_t idx = i * g.stride0 + j * g.stride1 + k;
        out->Append(base + idx * sizeof(W), sizeof(W));
      }
    }
  }
  return Status::OK();
}

template <typename W>
Status NdzipDecompressImpl(ByteSpan input, const DataDesc& desc, int threads,
                           Buffer* out) {
  Grid g = Grid::Make(desc);
  size_t off = 0;
  uint64_t nblocks = 0;
  if (!GetVarint64(input, &off, &nblocks) || nblocks != g.num_blocks()) {
    return Status::Corruption("ndzip: bad header");
  }
  std::vector<uint64_t> sizes(nblocks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("ndzip: bad block sizes");
    }
  }
  std::vector<size_t> starts(nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    starts[b] = off;
    off += sizes[b];
    if (off > input.size()) return Status::Corruption("ndzip: truncated");
  }

  size_t base_off = out->size();
  out->Resize(base_off + desc.num_bytes());
  uint8_t* base = out->data() + base_off;

  std::vector<Status> stats(nblocks);
  ThreadPool::Shared().ParallelFor(
      nblocks,
      [&](size_t b) {
        W blk[kBlockElems];
        size_t pos = starts[b];
        Status st = DecodeBlockResiduals(
            ByteSpan(input.data(), starts[b] + sizes[b]), &pos, blk);
        if (!st.ok()) {
          stats[b] = st;
          return;
        }
        for (auto& w : blk) w = UnZigZagW(w);
        LorenzoInverse(blk, g.sides);
        for (auto& w : blk) w = OrderedToSigned(w);
        ScatterBlock(base, g, g.BlockOrigin(b), blk);
      },
      {/*grain=*/0, /*max_parallelism=*/static_cast<size_t>(threads)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);

  // Border elements.
  const size_t cov0 = g.nblk[0] * g.sides[0];
  const size_t cov1 = g.nblk[1] * g.sides[1];
  const size_t cov2 = g.nblk[2] * g.sides[2];
  for (size_t i = 0; i < g.ext[0]; ++i) {
    for (size_t j = 0; j < g.ext[1]; ++j) {
      size_t k0 = (i < cov0 && j < cov1) ? cov2 : 0;
      for (size_t k = k0; k < g.ext[2]; ++k) {
        size_t idx = i * g.stride0 + j * g.stride1 + k;
        if (off + sizeof(W) > input.size()) {
          return Status::Corruption("ndzip: truncated border");
        }
        std::memcpy(base + idx * sizeof(W), input.data() + off, sizeof(W));
        off += sizeof(W);
      }
    }
  }
  return Status::OK();
}

}  // namespace

NdzipCompressor::NdzipCompressor(const CompressorConfig& config)
    : threads_(ThreadPool::ResolveThreads(config.threads)) {
  traits_.name = "ndzip_cpu";
  traits_.year = 2021;
  traits_.domain = "HPC";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kLorenzo;
  traits_.parallel = true;
  traits_.uses_dimensions = true;
}

Status NdzipCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                 Buffer* out) {
  if (input.size() != desc.num_bytes()) {
    return Status::InvalidArgument("ndzip: desc/input size mismatch");
  }
  if (desc.dtype == DType::kFloat64) {
    return NdzipCompressImpl<uint64_t>(input, desc, threads_, out);
  }
  return NdzipCompressImpl<uint32_t>(input, desc, threads_, out);
}

Status NdzipCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  if (desc.dtype == DType::kFloat64) {
    return NdzipDecompressImpl<uint64_t>(input, desc, threads_, out);
  }
  return NdzipDecompressImpl<uint32_t>(input, desc, threads_, out);
}

}  // namespace fcbench::compressors
