#ifndef FCBENCH_COMPRESSORS_FPZIP_H_
#define FCBENCH_COMPRESSORS_FPZIP_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// fpzip (Lindstrom & Isenburg, TVCG 2006; paper §3.1).
///
/// Per element:
///   1. the Lorenzo predictor estimates the value from the previously
///      encoded corners of the local hypercube
///      (x-hat = sum of odd-corner values minus sum of even-corner values)
///   2. predicted and actual values are mapped to order-preserving
///      sign-magnitude integers and subtracted to form an integer residual
///   3. the residual's sign and significant-bit count are entropy coded
///      with a fast range coder (Martin 1979)
///   4. remaining residual bits are copied verbatim
/// Serial; needs correct dimensionality for hypercube prediction (§3.1
/// insights; §6.1.5 studies the 1-D fallback).
///
/// Lossy mode (§3.1: fpzip "provides both lossless and lossy
/// compression"): CompressorConfig::fpzip_precision_bits keeps only the
/// given number of most-significant bits of each value's ordered-integer
/// representation before prediction, bounding the relative error while
/// shortening every residual.
class FpzipCompressor : public Compressor {
 public:
  explicit FpzipCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<FpzipCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  int precision_bits_;  // 0 = lossless
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_FPZIP_H_
