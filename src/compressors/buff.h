#ifndef FCBENCH_COMPRESSORS_BUFF_H_
#define FCBENCH_COMPRESSORS_BUFF_H_

#include <vector>

#include "core/compressor.h"

namespace fcbench::compressors {

/// BUFF (Liu, Jiang, Paparrizos & Elmore, VLDB 2021; paper §3.3).
///
/// Delta-from-minimum, bounded-precision, byte-aligned columnar float
/// encoding:
///   1. subtract the dataset minimum so all values are non-negative
///   2. keep `precision_digits` decimal digits of the fraction, using the
///      paper's Table 2 bit budget (1->5, 2->8, ..., 10->35 bits)
///   3. size the integer field for (max - min)
///   4. pad integer+fraction to whole bytes and store each byte position
///      as its own sub-column
/// Two defining features (§3.3): without correct precision information
/// BUFF degrades to a lossy coder, and predicates can be evaluated on the
/// byte sub-columns *without decoding* (SubColumnScan below).
class BuffCompressor : public Compressor {
 public:
  explicit BuffCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<BuffCompressor>(config);
  }

  /// Bits required for `digits` decimal fraction digits (paper Table 2).
  static int FractionBits(int digits);

  /// Predicate kinds supported by the in-place sub-column scan.
  enum class Predicate { kEqual, kLess, kGreaterEqual };

  /// Evaluates `value <pred> constant` directly on a compressed BUFF
  /// stream, one sub-column byte at a time with early disqualification
  /// (the paper's pattern-match scan giving 35-50x filter speedups).
  /// Returns one bool per record.
  static Result<std::vector<bool>> SubColumnScan(ByteSpan compressed,
                                                 Predicate pred,
                                                 double constant);

  /// Aggregations supported by the pushdown path.
  enum class Aggregate { kCount, kSum, kMin, kMax };

  struct AggregateResult {
    /// Number of qualifying records.
    uint64_t count = 0;
    /// Aggregate over qualifying records; 0 / +inf / -inf identity when
    /// count == 0 for kSum / kMin / kMax.
    double value = 0;
  };

  /// Aggregation filtering on the encoded stream (§3.3: BUFF speeds up
  /// "selective and aggregation filtering"): evaluates the predicate with
  /// the same early-disqualification scan and dequantizes *only* the
  /// qualifying records to feed the aggregate.
  static Result<AggregateResult> FilteredAggregate(ByteSpan compressed,
                                                   Predicate pred,
                                                   double constant,
                                                   Aggregate agg);

 private:
  CompressorTraits traits_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_BUFF_H_
