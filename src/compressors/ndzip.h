#ifndef FCBENCH_COMPRESSORS_NDZIP_H_
#define FCBENCH_COMPRESSORS_NDZIP_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// ndzip (Knorr, Thoman & Fahringer, DCC 2021; paper §3.8).
///
/// Pipeline per 4096-element hypercube (4096 / 64x64 / 16x16x16 for
/// 1/2/3-D data):
///   1. map float bits to order-preserving integers
///   2. multidimensional *integer Lorenzo transform* — realized, as in the
///      original, by separable per-dimension differences (mod 2^w), then a
///      zigzag step so residual magnitudes occupy the low bit planes
///   3. bit-transpose chunks of 32 (f32) / 64 (f64) residuals
///   4. remove zero words; positions kept in a 32/64-bit bitmap header
/// Hypercubes compress independently (thread-level parallelism);
/// border elements that do not fill a hypercube are stored verbatim.
///
/// This same kernel, re-hosted on the SIMT simulator, is the paper's
/// ndzip-GPU (§4.4) — see gpusim/ndzip_gpu.h.
class NdzipCompressor : public Compressor {
 public:
  explicit NdzipCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<NdzipCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  int threads_;
};

namespace ndzip_detail {

/// Hypercube side lengths for a given rank (padded to 3 dims, slowest
/// first): rank 1 -> {1,1,4096}, rank 2 -> {1,64,64}, rank 3 -> {16,16,16}.
void HypercubeSides(int rank, size_t sides[3]);

/// Forward separable integer Lorenzo transform over a contiguous block of
/// sides[0]*sides[1]*sides[2] words (in place, mod 2^w arithmetic).
template <typename W>
void LorenzoForward(W* x, const size_t sides[3]);

/// Inverse transform.
template <typename W>
void LorenzoInverse(W* x, const size_t sides[3]);

}  // namespace ndzip_detail

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_NDZIP_H_
