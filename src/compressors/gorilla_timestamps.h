#ifndef FCBENCH_COMPRESSORS_GORILLA_TIMESTAMPS_H_
#define FCBENCH_COMPRESSORS_GORILLA_TIMESTAMPS_H_

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace fcbench::compressors {

/// Gorilla's timestamp half (paper §3.4 workflow step (1)): time series
/// are (timestamp, value) pairs, and timestamps are compressed with
/// delta-of-delta coding — with a fixed sampling interval "the majority of
/// timestamps can be encoded as a single bit of 0".
///
/// Encoding per timestamp (after a raw 64-bit header value and a raw
/// first delta):
///   D = (t[i] - t[i-1]) - (t[i-1] - t[i-2])
///   D == 0               -> '0'
///   D in [-63, 64]       -> '10'   + 7 bits
///   D in [-255, 256]     -> '110'  + 9 bits
///   D in [-2047, 2048]   -> '1110' + 12 bits
///   otherwise            -> '1111' + 32 bits (ZigZag; Gorilla's block
///                           format bounds deltas to 32 bits)
class GorillaTimestampCodec {
 public:
  /// Compresses a monotonically increasing (or arbitrary) timestamp
  /// sequence, appending to `out`.
  static void Compress(const std::vector<int64_t>& timestamps, Buffer* out);

  /// Decompresses `count` timestamps produced by Compress.
  static Result<std::vector<int64_t>> Decompress(ByteSpan in, size_t count);
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_GORILLA_TIMESTAMPS_H_
