#include "compressors/gorilla_timestamps.h"

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

/// Range buckets: (control bits, control length, payload bits, lo, hi).
struct Bucket {
  uint32_t control;
  int control_bits;
  int payload_bits;
  int64_t lo;
  int64_t hi;
};

constexpr Bucket kBuckets[] = {
    {0b10, 2, 7, -63, 64},
    {0b110, 3, 9, -255, 256},
    {0b1110, 4, 12, -2047, 2048},
};

}  // namespace

void GorillaTimestampCodec::Compress(const std::vector<int64_t>& timestamps,
                                     Buffer* out) {
  // Regular series cost ~1 byte per stamp; reserve the typical size (not
  // the worst case, which would distort the MemTracker footprint metric)
  // so the encode loop avoids repeated grow-and-memcpy.
  out->Reserve(out->size() + timestamps.size() + 16);
  BitWriter bw(out);
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (size_t i = 0; i < timestamps.size(); ++i) {
    int64_t t = timestamps[i];
    if (i == 0) {
      bw.WriteBits(static_cast<uint64_t>(t), 64);
    } else if (i == 1) {
      // First delta raw (zigzagged, 32 bits as in the Gorilla block
      // header's 14-bit/aligned variants; 32 keeps arbitrary series safe).
      bw.WriteBits(ZigZagEncode64(t - prev) & 0xffffffffull, 32);
      prev_delta = t - prev;
    } else {
      int64_t delta = t - prev;
      int64_t dod = delta - prev_delta;
      if (dod == 0) {
        bw.WriteBit(0);
      } else {
        bool stored = false;
        for (const Bucket& b : kBuckets) {
          if (dod >= b.lo && dod <= b.hi) {
            // Control code and payload (value - lo, shifted into
            // [0, 2^bits)) fused into one write of at most 16 bits.
            bw.WriteBits((static_cast<uint64_t>(b.control) << b.payload_bits) |
                             static_cast<uint64_t>(dod - b.lo),
                         b.control_bits + b.payload_bits);
            stored = true;
            break;
          }
        }
        if (!stored) {
          bw.WriteBits((uint64_t(0b1111) << 32) |
                           (ZigZagEncode64(dod) & 0xffffffffull),
                       36);
        }
      }
      prev_delta = delta;
    }
    prev = t;
  }
  bw.Flush();
}

Result<std::vector<int64_t>> GorillaTimestampCodec::Decompress(ByteSpan in,
                                                               size_t count) {
  BitReader br(in);
  std::vector<int64_t> out;
  out.reserve(count);
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (size_t i = 0; i < count; ++i) {
    int64_t t;
    if (i == 0) {
      t = static_cast<int64_t>(br.ReadBits(64));
    } else if (i == 1) {
      int64_t delta = ZigZagDecode64(br.ReadBits(32));
      t = prev + delta;
      prev_delta = delta;
    } else {
      // The control codes (0, 10, 110, 1110, 1111) are a unary run of
      // ones capped at 4; one ReadUnary replaces up to four branchy
      // single-bit reads.
      int64_t dod;
      switch (br.ReadUnary(4)) {
        case 0:
          dod = 0;
          break;
        case 1:
          dod = static_cast<int64_t>(br.ReadBits(7)) + kBuckets[0].lo;
          break;
        case 2:
          dod = static_cast<int64_t>(br.ReadBits(9)) + kBuckets[1].lo;
          break;
        case 3:
          dod = static_cast<int64_t>(br.ReadBits(12)) + kBuckets[2].lo;
          break;
        default:
          dod = ZigZagDecode64(br.ReadBits(32));
          break;
      }
      int64_t delta = prev_delta + dod;
      t = prev + delta;
      prev_delta = delta;
    }
    if (br.overrun()) {
      return Status::Corruption("gorilla timestamps: truncated stream");
    }
    out.push_back(t);
    prev = t;
  }
  return out;
}

}  // namespace fcbench::compressors
