#ifndef FCBENCH_COMPRESSORS_SPDP_H_
#define FCBENCH_COMPRESSORS_SPDP_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// SPDP (Claggett, Azimi & Burtscher, DCC 2018; paper §3.2).
///
/// Auto-synthesized four-component pipeline (the winner of the authors'
/// 9.4M-combination sweep):
///   1. LNVs2 — subtract the byte two positions back (stride-2 byte delta)
///   2. DIM8  — group every 8th byte together (byte-plane shuffle),
///              placing exponent bytes into consecutive runs
///   3. LNVs1 — delta between consecutive bytes of the shuffled stream
///   4. LZa6  — fast LZ77 variant; we use our from-scratch LZ4-format
///              codec with a chained matcher, reproducing the
///              ratio/throughput trade-off the paper attributes to LZa6's
///              sliding-window search (§3.2 insights)
/// Precision-agnostic: operates on the raw byte stream, block by block.
class SpdpCompressor : public Compressor {
 public:
  explicit SpdpCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<SpdpCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  size_t block_size_;
  int level_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_SPDP_H_
