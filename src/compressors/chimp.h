#ifndef FCBENCH_COMPRESSORS_CHIMP_H_
#define FCBENCH_COMPRESSORS_CHIMP_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// Chimp128 (Liakos et al., VLDB 2022; paper §3.5).
///
/// A Gorilla descendant that (a) redesigns the control codes for residuals
/// with few trailing zeros and (b) selects, from the 128 most recent
/// values (grouped by their least-significant bits in evicting queues),
/// the reference whose XOR yields the most trailing zeros — making it a
/// prediction-based method with a sliding window. Higher ratio than
/// Gorilla on changing data, at lower compression throughput.
///
/// Control codes (per paper §3.5):
///   C = 00 : residual vs. selected earlier value is all-zero
///            (+ 7-bit index of that value)
///   C = 01 : enough trailing zeros vs. selected value: 7-bit index,
///            3-bit rounded leading-zero code, 6-bit significant count,
///            then the significant bits
///   C = 10 : XOR vs. immediately previous value, leading-zero count equal
///            to the previous one -> significant bits only
///   C = 11 : 3-bit new leading-zero code, then significant bits
class ChimpCompressor : public Compressor {
 public:
  explicit ChimpCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<ChimpCompressor>(config);
  }

 private:
  CompressorTraits traits_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_CHIMP_H_
