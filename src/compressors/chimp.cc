#include "compressors/chimp.h"

#include <cstring>
#include <vector>

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

constexpr int kPrevValues = 128;       // window size (the "128" in chimp128)
constexpr int kIndexBits = 7;          // log2(kPrevValues)
constexpr int kKeyBits = 14;           // low bits used to group values
constexpr size_t kKeySize = size_t(1) << kKeyBits;

/// Rounded leading-zero table: 3-bit code -> leading-zero count, per the
/// Chimp paper. Rounding sacrifices a few bits of precision in the count
/// for a shorter control field.
constexpr int kLeadingRound64[] = {0, 8, 12, 16, 18, 20, 22, 24};
constexpr int kLeadingRound32[] = {0, 4, 6, 8, 10, 12, 14, 16};

template <int kWidth>
int RoundLeadingCode(int lead) {
  const int* table = (kWidth == 64) ? kLeadingRound64 : kLeadingRound32;
  int code = 0;
  for (int i = 0; i < 8; ++i) {
    if (table[i] <= lead) code = i;
  }
  return code;
}

template <typename W>
struct ChimpState {
  std::vector<W> stored = std::vector<W>(kPrevValues, 0);
  std::vector<int64_t> key_to_pos = std::vector<int64_t>(kKeySize, -1);
  int64_t count = 0;  // total values seen

  void Push(W v) {
    stored[count % kPrevValues] = v;
    key_to_pos[static_cast<size_t>(v) & (kKeySize - 1)] = count;
    ++count;
  }

  /// Best earlier value by low-bit grouping; returns ring index or -1.
  int FindCandidate(W v) const {
    int64_t pos = key_to_pos[static_cast<size_t>(v) & (kKeySize - 1)];
    if (pos < 0 || count - pos >= kPrevValues) return -1;
    return static_cast<int>(pos % kPrevValues);
  }
};

template <typename W>
void ChimpEncode(const uint8_t* bytes, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  constexpr int kTrailThreshold = (kWidth == 64) ? 6 : 4;
  const int* lead_table =
      (kWidth == 64) ? kLeadingRound64 : kLeadingRound32;

  // ~kWidth+5 bits per value worst case; reserve for the common case so
  // the hot loop avoids grow-and-memcpy cycles.
  out->Reserve(out->size() + n * sizeof(W) / 2 + 16);
  BitWriter bw(out);
  ChimpState<W> state;
  W prev = 0;
  int prev_lead_code = 0;
  for (size_t i = 0; i < n; ++i) {
    W v;
    std::memcpy(&v, bytes + i * sizeof(W), sizeof(W));
    if (i == 0) {
      bw.WriteBits(v, kWidth);
      state.Push(v);
      prev = v;
      continue;
    }

    int cand = state.FindCandidate(v);
    W xor_cand = (cand >= 0) ? (v ^ state.stored[cand]) : W(~W(0));
    int trail;
    if constexpr (kWidth == 64) {
      trail = TrailingZeros64(xor_cand);
    } else {
      trail = TrailingZeros32(xor_cand);
    }

    if (cand >= 0 && xor_cand == 0) {
      // C = 00: exact repeat of a windowed value; flag + index in one
      // 9-bit write.
      bw.WriteBits(static_cast<uint64_t>(cand), 2 + kIndexBits);
    } else if (cand >= 0 && trail > kTrailThreshold) {
      // C = 01: windowed reference with enough trailing zeros. The 18
      // header bits (flag, index, lead code, length) are fused; the
      // residual rides along too when the total fits one word.
      int lead;
      if constexpr (kWidth == 64) {
        lead = LeadingZeros64(xor_cand);
      } else {
        lead = LeadingZeros32(xor_cand);
      }
      int lead_code = RoundLeadingCode<kWidth>(lead);
      int lead_rounded = lead_table[lead_code];
      int sig = kWidth - lead_rounded - trail;
      uint64_t hdr = (uint64_t(0b01) << 16) |
                     (static_cast<uint64_t>(cand) << 9) |
                     (static_cast<uint64_t>(lead_code) << 6) |
                     static_cast<uint64_t>(sig - 1);
      uint64_t payload = static_cast<uint64_t>(xor_cand >> trail);
      if (sig <= 46) {
        bw.WriteBits((hdr << sig) | payload, 18 + sig);
      } else {
        bw.WriteBits(hdr, 18);
        bw.WriteBits(payload, sig);
      }
    } else {
      // Fall back to the immediately previous value, Gorilla-style but with
      // Chimp's shorter codes.
      W x = v ^ prev;
      int lead;
      if constexpr (kWidth == 64) {
        lead = LeadingZeros64(x);
      } else {
        lead = LeadingZeros32(x);
      }
      int lead_code = RoundLeadingCode<kWidth>(lead);
      if (x != 0 && lead_code == prev_lead_code) {
        // C = 10: same rounded leading-zero count as last time; fuse flag
        // and residual when they fit one word.
        int sig = kWidth - lead_table[lead_code];
        if (sig <= 62) {
          bw.WriteBits((uint64_t(0b10) << sig) | static_cast<uint64_t>(x),
                       2 + sig);
        } else {
          bw.WriteBits(0b10, 2);
          bw.WriteBits(static_cast<uint64_t>(x), sig);
        }
      } else {
        // C = 11: new leading-zero code (x == 0 also lands here with
        // lead_code = 7 -> sig = kWidth - table[7] bits of zeros). Flag and
        // lead code fuse into 5 bits, the residual too when it fits.
        if (x == 0) lead_code = 7;
        int sig = kWidth - lead_table[lead_code];
        uint64_t hdr = (uint64_t(0b11) << 3) | static_cast<uint64_t>(lead_code);
        if (sig <= 59) {
          bw.WriteBits((hdr << sig) | static_cast<uint64_t>(x), 5 + sig);
        } else {
          bw.WriteBits(hdr, 5);
          bw.WriteBits(static_cast<uint64_t>(x), sig);
        }
        prev_lead_code = lead_code;
      }
    }
    state.Push(v);
    prev = v;
  }
  bw.Flush();
}

template <typename W>
Status ChimpDecode(ByteSpan in, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  const int* lead_table =
      (kWidth == 64) ? kLeadingRound64 : kLeadingRound32;

  BitReader br(in);
  ChimpState<W> state;
  W prev = 0;
  int prev_lead_code = 0;
  size_t base = out->size();
  out->Resize(base + n * sizeof(W));
  uint8_t* dst = out->data() + base;
  // On corruption, shrink back to the successfully decoded prefix so the
  // error path never exposes uninitialized buffer contents.
  auto fail = [&](size_t decoded, const char* msg) {
    out->Resize(base + decoded * sizeof(W));
    return Status::Corruption(msg);
  };
  for (size_t i = 0; i < n; ++i) {
    W v;
    if (i == 0) {
      v = static_cast<W>(br.ReadBits(kWidth));
    } else {
      uint32_t flag = static_cast<uint32_t>(br.ReadBits(2));
      switch (flag) {
        case 0b00: {
          int idx = static_cast<int>(br.ReadBits(kIndexBits));
          v = state.stored[idx];
          break;
        }
        case 0b01: {
          // Fused 16-bit header: index (7), lead code (3), length (6).
          uint32_t hdr = static_cast<uint32_t>(br.ReadBits(16));
          int idx = static_cast<int>(hdr >> 9);
          int lead_code = static_cast<int>((hdr >> 6) & 0x7);
          int sig = static_cast<int>(hdr & 0x3f) + 1;
          int trail = kWidth - lead_table[lead_code] - sig;
          if (trail < 0) return fail(i, "chimp: bad 01 window");
          W center = static_cast<W>(br.ReadBits(sig));
          v = state.stored[idx] ^ (center << trail);
          break;
        }
        case 0b10: {
          int sig = kWidth - lead_table[prev_lead_code];
          W x = static_cast<W>(br.ReadBits(sig));
          v = prev ^ x;
          break;
        }
        default: {
          int lead_code = static_cast<int>(br.ReadBits(3));
          int sig = kWidth - lead_table[lead_code];
          W x = static_cast<W>(br.ReadBits(sig));
          v = prev ^ x;
          prev_lead_code = lead_code;
          break;
        }
      }
    }
    if (br.overrun()) return fail(i, "chimp: truncated stream");
    state.Push(v);
    prev = v;
    std::memcpy(dst + i * sizeof(W), &v, sizeof(W));
  }
  return Status::OK();
}

}  // namespace

ChimpCompressor::ChimpCompressor(const CompressorConfig& /*config*/) {
  traits_.name = "chimp128";
  traits_.year = 2022;
  traits_.domain = "Database";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDictionary;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status ChimpCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                 Buffer* out) {
  size_t esize = DTypeSize(desc.dtype);
  if (input.size() % esize != 0) {
    return Status::InvalidArgument("chimp: input not a whole element count");
  }
  size_t n = input.size() / esize;
  if (desc.dtype == DType::kFloat64) {
    ChimpEncode<uint64_t>(input.data(), n, out);
  } else {
    ChimpEncode<uint32_t>(input.data(), n, out);
  }
  return Status::OK();
}

Status ChimpCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  size_t n = desc.num_elements();
  if (desc.dtype == DType::kFloat64) {
    return ChimpDecode<uint64_t>(input, n, out);
  }
  return ChimpDecode<uint32_t>(input, n, out);
}

}  // namespace fcbench::compressors
