#ifndef FCBENCH_COMPRESSORS_GORILLA_H_
#define FCBENCH_COMPRESSORS_GORILLA_H_

#include "core/compressor.h"

namespace fcbench::compressors {

/// Gorilla value compression (Pelkonen et al., VLDB 2015; paper §3.4).
///
/// XORs each value with its predecessor and encodes the residual with
/// three control codes:
///   C = 0   : residual is zero (repeat of previous value)
///   C = 10  : meaningful bits fit inside the previous leading/trailing
///             zero window -> store only those bits
///   C = 11  : 5 bits leading-zero count, 6 bits meaningful-bit count,
///             then the meaningful bits
/// Serial by design; sensitive to rapidly changing values (§3.4 insights).
class GorillaCompressor : public Compressor {
 public:
  explicit GorillaCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<GorillaCompressor>(config);
  }

 private:
  CompressorTraits traits_;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_GORILLA_H_
