#include "compressors/bitshuffle.h"

#include <algorithm>
#include <vector>

#include "codecs/lz4.h"
#include "codecs/lzh.h"
#include "compressors/transpose.h"
#include "util/bitio.h"
#include "util/thread_pool.h"

namespace fcbench::compressors {

namespace {

constexpr size_t kDefaultBlock = 4096;  // bytes; bitshuffle's L1 target

void BackendCompress(BitshuffleBackend backend, ByteSpan in, Buffer* out) {
  if (backend == BitshuffleBackend::kLz4) {
    codecs::Lz4Codec().Compress(in, out);
  } else {
    codecs::LzhCodec().Compress(in, out);
  }
}

Status BackendDecompress(BitshuffleBackend backend, ByteSpan in,
                         size_t orig_size, Buffer* out) {
  if (backend == BitshuffleBackend::kLz4) {
    return codecs::Lz4Codec().Decompress(in, orig_size, out);
  }
  Buffer tmp;
  FCB_RETURN_IF_ERROR(codecs::LzhCodec::Decompress(in, &tmp));
  if (tmp.size() != orig_size) {
    return Status::Corruption("bitshuffle: backend size mismatch");
  }
  out->Append(tmp.span());
  return Status::OK();
}

}  // namespace

BitshuffleCompressor::BitshuffleCompressor(BitshuffleBackend backend,
                                           const CompressorConfig& config)
    : backend_(backend),
      block_size_(config.block_size ? config.block_size : kDefaultBlock),
      threads_(ThreadPool::ResolveThreads(config.threads)) {
  traits_.name = backend == BitshuffleBackend::kLz4 ? "bitshuffle_lz4"
                                                    : "bitshuffle_zstd";
  traits_.year = 2015;
  traits_.domain = "HPC";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDictionary;
  traits_.parallel = true;
  traits_.uses_dimensions = false;
}

Status BitshuffleCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                      Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  // Round the block to a whole number of 8-element groups.
  const size_t group = esize * 8;
  size_t block = std::max(block_size_ / group, size_t(1)) * group;
  size_t nblocks = (input.size() + block - 1) / block;
  if (input.empty()) nblocks = 0;

  std::vector<Buffer> parts(nblocks);
  ThreadPool::Shared().ParallelFor(
      nblocks,
      [&](size_t b) {
        size_t begin = b * block;
        size_t len = std::min(block, input.size() - begin);
        size_t elems = len / esize;
        size_t whole_elems = (elems / 8) * 8;  // transpose granularity
        size_t whole_bytes = whole_elems * esize;

        std::vector<uint8_t> transposed(len);
        BitTranspose(input.data() + begin, transposed.data(), whole_elems,
                     esize);
        // Ragged tail (partial group and partial element bytes) is copied
        // verbatim after the transposed region, exactly like the original.
        std::copy(input.begin() + begin + whole_bytes,
                  input.begin() + begin + len,
                  transposed.begin() + whole_bytes);
        BackendCompress(backend_, ByteSpan(transposed.data(), len),
                        &parts[b]);
      },
      {/*grain=*/0, /*max_parallelism=*/static_cast<size_t>(threads_)});

  PutVarint64(out, input.size());
  PutVarint64(out, block);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());
  return Status::OK();
}

Status BitshuffleCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                        Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  size_t off = 0;
  uint64_t total = 0, block = 0;
  if (!GetVarint64(input, &off, &total) || !GetVarint64(input, &off, &block)) {
    return Status::Corruption("bitshuffle: bad header");
  }
  // Hostile-header guards: the block size divides below, the declared
  // total drives the output allocation, and the block count drives the
  // directory allocation. Each must be plausible before any of them is
  // used (the fuzz suite feeds streams with these fields zeroed/flooded).
  if (block == 0 || block > (uint64_t(1) << 30)) {
    return Status::Corruption("bitshuffle: implausible block size");
  }
  const uint64_t expected =
      desc.num_elements() > 0 ? desc.num_bytes() + 64 : (uint64_t(1) << 33);
  if (total > expected) {
    return Status::Corruption("bitshuffle: declared size disagrees with desc");
  }
  size_t nblocks = (total + block - 1) / block;
  if (total == 0) nblocks = 0;
  if (nblocks > input.size() - off) {  // each block needs >= 1 directory byte
    return Status::Corruption("bitshuffle: implausible block count");
  }

  std::vector<uint64_t> sizes(nblocks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("bitshuffle: bad block size");
    }
  }
  std::vector<size_t> starts(nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    starts[b] = off;
    off += sizes[b];
    if (off > input.size()) {
      return Status::Corruption("bitshuffle: truncated blocks");
    }
  }

  size_t base = out->size();
  out->Resize(base + total);
  std::vector<Status> stats(nblocks);
  ThreadPool::Shared().ParallelFor(
      nblocks,
      [&](size_t b) {
        size_t begin = b * block;
        size_t len = std::min<size_t>(block, total - begin);
        Buffer transposed;
        Status st = BackendDecompress(
            backend_, input.subspan(starts[b], sizes[b]), len, &transposed);
        if (!st.ok()) {
          stats[b] = st;
          return;
        }
        size_t elems = len / esize;
        size_t whole_elems = (elems / 8) * 8;
        size_t whole_bytes = whole_elems * esize;
        uint8_t* dst = out->data() + base + begin;
        BitUntranspose(transposed.data(), dst, whole_elems, esize);
        std::copy(transposed.data() + whole_bytes, transposed.data() + len,
                  dst + whole_bytes);
      },
      {/*grain=*/0, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);
  return Status::OK();
}

}  // namespace fcbench::compressors
