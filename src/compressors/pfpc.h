#ifndef FCBENCH_COMPRESSORS_PFPC_H_
#define FCBENCH_COMPRESSORS_PFPC_H_

#include "core/compressor.h"
#include "util/thread_pool.h"

namespace fcbench::compressors {

/// pFPC (Burtscher & Ratanaworabhan 2009; paper §3.6).
///
/// Prediction-based parallel compressor: two hash-table predictors (FCM
/// predicting the next value from value history, DFCM predicting the next
/// delta from delta history) race per element; the winner (more leading
/// zero bytes in the XOR residual) is recorded in 1 bit, the leading-zero
/// byte count in 3 bits, and the remaining residual bytes are copied.
///
/// Parallelism: the input is split into per-thread chunks, each compressed
/// with private hash tables (the paper notes pFPC prefers thread count
/// aligned with data dimensionality; our chunking honours
/// CompressorConfig::threads and the Table 7/8 scalability sweep).
class PfpcCompressor : public Compressor {
 public:
  explicit PfpcCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<PfpcCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  int threads_;
  /// log2 of predictor table entries; pFPC's main memory/ratio knob.
  int table_log_ = 16;
};

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_PFPC_H_
