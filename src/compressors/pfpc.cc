#include "compressors/pfpc.h"

#include <cstring>
#include <vector>

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

/// FPC kernel over 64-bit words (FPC is double-oriented; single-precision
/// input is processed as pairs of floats packed into 64-bit words plus a
/// possible tail, matching how pFPC treats raw byte streams).
class FpcKernel {
 public:
  explicit FpcKernel(int table_log)
      : mask_((size_t(1) << table_log) - 1),
        fcm_(size_t(1) << table_log, 0),
        dfcm_(size_t(1) << table_log, 0) {}

  /// Compresses n 64-bit words; emits a nibble code stream then residual
  /// bytes (sizes via varint header).
  void Compress(const uint8_t* bytes, size_t n, Buffer* out) {
    Buffer codes;    // packed 4-bit codes, two per byte
    Buffer residue;  // non-zero residual bytes
    codes.Reserve(n / 2 + 1);
    residue.Reserve(n * 4 + 16);  // typical: half the 8 bytes survive
    uint8_t pending_nibble = 0;
    bool have_pending = false;

    for (size_t i = 0; i < n; ++i) {
      uint64_t v;
      std::memcpy(&v, bytes + i * 8, 8);
      uint64_t pred_fcm = fcm_[fcm_hash_];
      uint64_t pred_dfcm = last_ + dfcm_[dfcm_hash_];
      uint64_t x_fcm = v ^ pred_fcm;
      uint64_t x_dfcm = v ^ pred_dfcm;

      UpdateTables(v);

      bool use_dfcm = CountLeadZeroBytes(x_dfcm) > CountLeadZeroBytes(x_fcm);
      uint64_t x = use_dfcm ? x_dfcm : x_fcm;
      int lzb = CountLeadZeroBytes(x);
      // FPC code: 3 bits encode {0,1,2,3,4,5,6,8} leading zero bytes; a
      // count of 7 is mapped down to 6 so that code 7 can mean "all 8".
      int code;
      if (lzb == 8) {
        code = 7;
      } else if (lzb == 7) {
        code = 6;
        lzb = 6;
      } else {
        code = lzb;
      }
      uint8_t nibble =
          static_cast<uint8_t>((use_dfcm ? 8 : 0) | code);
      if (have_pending) {
        codes.PushBack(static_cast<uint8_t>((pending_nibble << 4) | nibble));
        have_pending = false;
      } else {
        pending_nibble = nibble;
        have_pending = true;
      }
      // Residual bytes, most significant first, skipping leading zeros;
      // staged on the stack and appended in one call.
      int keep = 8 - lzb;
      uint8_t rbytes[8];
      for (int b = 0; b < keep; ++b) {
        rbytes[b] = static_cast<uint8_t>(x >> (8 * (keep - 1 - b)));
      }
      residue.Append(rbytes, static_cast<size_t>(keep));
    }
    if (have_pending) codes.PushBack(static_cast<uint8_t>(pending_nibble << 4));

    PutVarint64(out, codes.size());
    PutVarint64(out, residue.size());
    out->Append(codes.span());
    out->Append(residue.span());
  }

  Status Decompress(ByteSpan in, size_t n, Buffer* out) {
    size_t off = 0;
    uint64_t codes_size = 0, residue_size = 0;
    if (!GetVarint64(in, &off, &codes_size) ||
        !GetVarint64(in, &off, &residue_size) ||
        off + codes_size + residue_size > in.size()) {
      return Status::Corruption("pfpc: bad chunk header");
    }
    ByteSpan codes = in.subspan(off, codes_size);
    ByteSpan residue = in.subspan(off + codes_size, residue_size);
    size_t rpos = 0;

    for (size_t i = 0; i < n; ++i) {
      if (i / 2 >= codes.size()) {
        return Status::Corruption("pfpc: truncated code stream");
      }
      uint8_t nibble = (i % 2 == 0) ? (codes[i / 2] >> 4)
                                    : (codes[i / 2] & 0x0f);
      bool use_dfcm = (nibble & 8) != 0;
      int code = nibble & 7;
      int lzb = (code == 7) ? 8 : code;
      int keep = 8 - lzb;
      if (rpos + keep > residue.size()) {
        return Status::Corruption("pfpc: truncated residuals");
      }
      uint64_t x = 0;
      for (int b = keep - 1; b >= 0; --b) {
        x |= static_cast<uint64_t>(residue[rpos++]) << (8 * b);
      }
      uint64_t pred =
          use_dfcm ? (last_ + dfcm_[dfcm_hash_]) : fcm_[fcm_hash_];
      uint64_t v = x ^ pred;
      UpdateTables(v);
      out->Append(&v, 8);
    }
    return Status::OK();
  }

 private:
  static int CountLeadZeroBytes(uint64_t x) { return LeadingZeros64(x) / 8; }

  void UpdateTables(uint64_t v) {
    fcm_[fcm_hash_] = v;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (v >> 48)) & mask_;
    uint64_t delta = v - last_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = v;
  }

  size_t mask_;
  std::vector<uint64_t> fcm_;
  std::vector<uint64_t> dfcm_;
  size_t fcm_hash_ = 0;
  size_t dfcm_hash_ = 0;
  uint64_t last_ = 0;
};

}  // namespace

PfpcCompressor::PfpcCompressor(const CompressorConfig& config)
    : threads_(ThreadPool::ResolveThreads(config.threads)) {
  traits_.name = "pfpc";
  traits_.year = 2009;
  traits_.domain = "HPC";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kPrediction;
  traits_.parallel = true;
  traits_.supports_f32 = true;  // processed as packed 64-bit words
  traits_.uses_dimensions = true;
}

Status PfpcCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                Buffer* out) {
  (void)desc;
  // Work in 64-bit words; a tail of < 8 bytes is stored raw.
  size_t n_words = input.size() / 8;
  size_t tail = input.size() - n_words * 8;

  int nthreads = threads_;
  size_t chunk_words = (n_words + nthreads - 1) / nthreads;
  if (chunk_words == 0) chunk_words = 1;
  size_t nchunks = (n_words + chunk_words - 1) / chunk_words;
  if (n_words == 0) nchunks = 0;

  std::vector<Buffer> parts(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        size_t begin = c * chunk_words;
        size_t end = std::min(n_words, begin + chunk_words);
        FpcKernel kernel(table_log_);
        kernel.Compress(input.data() + begin * 8, end - begin, &parts[c]);
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(nthreads)});

  PutVarint64(out, nchunks);
  PutVarint64(out, chunk_words);
  PutVarint64(out, tail);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());
  out->Append(input.data() + n_words * 8, tail);
  return Status::OK();
}

Status PfpcCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                  Buffer* out) {
  size_t off = 0;
  uint64_t nchunks = 0, chunk_words = 0, tail = 0;
  if (!GetVarint64(input, &off, &nchunks) ||
      !GetVarint64(input, &off, &chunk_words) ||
      !GetVarint64(input, &off, &tail)) {
    return Status::Corruption("pfpc: bad header");
  }
  if (nchunks > input.size() - off) {  // each chunk needs >= 1 header byte
    return Status::Corruption("pfpc: implausible chunk count");
  }
  std::vector<uint64_t> sizes(nchunks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("pfpc: bad chunk size");
    }
  }
  uint64_t total_words = desc.num_bytes() / 8;
  if (nchunks > 0 &&
      (chunk_words == 0 || (nchunks - 1) * chunk_words >= total_words)) {
    return Status::Corruption("pfpc: inconsistent chunk directory");
  }

  // Chunk start offsets for parallel decompression. Every offset is
  // validated as it accumulates so corrupt sizes can neither wrap the
  // offset nor push a subspan past the input.
  std::vector<size_t> starts(nchunks);
  {
    size_t pos = off;
    for (size_t c = 0; c < nchunks; ++c) {
      starts[c] = pos;
      if (sizes[c] > input.size() - pos) {
        return Status::Corruption("pfpc: truncated chunks");
      }
      pos += sizes[c];
    }
    if (tail > input.size() - pos) {
      return Status::Corruption("pfpc: truncated tail");
    }
    off = pos;
  }

  std::vector<Buffer> parts(nchunks);
  std::vector<Status> stats(nchunks);
  ThreadPool::Shared().ParallelFor(
      nchunks,
      [&](size_t c) {
        size_t begin = c * chunk_words;
        size_t end = std::min<uint64_t>(total_words, begin + chunk_words);
        FpcKernel kernel(table_log_);
        stats[c] = kernel.Decompress(input.subspan(starts[c], sizes[c]),
                                     end - begin, &parts[c]);
      },
      {/*grain=*/1, /*max_parallelism=*/static_cast<size_t>(threads_)});
  for (const auto& st : stats) FCB_RETURN_IF_ERROR(st);
  for (const auto& p : parts) out->Append(p.span());
  out->Append(input.data() + off, tail);
  return Status::OK();
}

}  // namespace fcbench::compressors
