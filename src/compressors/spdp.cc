#include "compressors/spdp.h"

#include <algorithm>
#include <vector>

#include "codecs/lz4.h"
#include "compressors/transpose.h"
#include "util/bitio.h"

namespace fcbench::compressors {

namespace {

constexpr size_t kDefaultBlock = 1 << 20;  // 1 MiB, SPDP's buffered mode

/// LNVs2 forward: r[i] = b[i] - b[i-2] (bytes; first two copied).
void Lnv2Forward(ByteSpan in, std::vector<uint8_t>* out) {
  out->resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    uint8_t prev = (i >= 2) ? in[i - 2] : 0;
    (*out)[i] = static_cast<uint8_t>(in[i] - prev);
  }
}

void Lnv2Inverse(const uint8_t* in, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t prev = (i >= 2) ? out[i - 2] : 0;
    out[i] = static_cast<uint8_t>(in[i] + prev);
  }
}

/// LNVs1 forward on an arbitrary byte stream: r[i] = b[i] - b[i-1].
void Lnv1Forward(const uint8_t* in, size_t n, uint8_t* out) {
  uint8_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(in[i] - prev);
    prev = in[i];
  }
}

void Lnv1Inverse(const uint8_t* in, size_t n, uint8_t* out) {
  uint8_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    prev = static_cast<uint8_t>(in[i] + prev);
    out[i] = prev;
  }
}

}  // namespace

SpdpCompressor::SpdpCompressor(const CompressorConfig& config)
    : block_size_(config.block_size ? config.block_size : kDefaultBlock),
      level_(std::max(1, config.level)) {
  traits_.name = "spdp";
  traits_.year = 2018;
  traits_.domain = "HPC";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDictionary;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status SpdpCompressor::Compress(ByteSpan input, const DataDesc& /*desc*/,
                                Buffer* out) {
  // No up-front Reserve here: a worst-case (~input size) reservation would
  // be charged to MemTracker and distort the Figure 10 footprint metric;
  // per-block appends amortize fine through the geometric growth policy.
  PutVarint64(out, input.size());
  PutVarint64(out, block_size_);

  std::vector<uint8_t> stage1, stage2, stage3;
  codecs::Lz4Codec lz(codecs::Lz4Codec::Options{.max_attempts = 4 * level_});

  for (size_t pos = 0; pos < input.size() || pos == 0; pos += block_size_) {
    if (pos > 0 && pos >= input.size()) break;
    size_t len = std::min(block_size_, input.size() - pos);
    ByteSpan block = input.subspan(pos, len);

    // 1. LNVs2
    Lnv2Forward(block, &stage1);
    // 2. DIM8: byte-plane shuffle with plane stride 8; the ragged tail
    //    (len % 8 bytes) is appended unshuffled.
    size_t whole = (len / 8) * 8;
    stage2.resize(len);
    ByteShuffle(stage1.data(), stage2.data(), len / 8, 8);
    std::copy(stage1.begin() + whole, stage1.end(), stage2.begin() + whole);
    // 3. LNVs1
    stage3.resize(len);
    Lnv1Forward(stage2.data(), len, stage3.data());
    // 4. LZa6 (LZ4-format, chained matcher)
    Buffer packed;
    lz.Compress(ByteSpan(stage3.data(), len), &packed);
    PutVarint64(out, packed.size());
    out->Append(packed.span());
    if (input.empty()) break;
  }
  return Status::OK();
}

Status SpdpCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                  Buffer* out) {
  size_t off = 0;
  uint64_t total = 0, bs = 0;
  if (!GetVarint64(input, &off, &total) || !GetVarint64(input, &off, &bs) ||
      bs == 0) {
    return Status::Corruption("spdp: bad header");
  }
  // Hostile-header guards: both fields size allocations below.
  if (bs > (uint64_t(1) << 30)) {
    return Status::Corruption("spdp: implausible block size");
  }
  const uint64_t expected =
      desc.num_elements() > 0 ? desc.num_bytes() + 64 : (uint64_t(1) << 33);
  if (total > expected) {
    return Status::Corruption("spdp: declared size disagrees with desc");
  }
  codecs::Lz4Codec lz;
  std::vector<uint8_t> stage2(std::min<uint64_t>(bs, total)),
      stage1(std::min<uint64_t>(bs, total));

  uint64_t remaining = total;
  while (remaining > 0 || (total == 0 && off < input.size())) {
    size_t len = static_cast<size_t>(std::min<uint64_t>(bs, remaining));
    uint64_t packed_size = 0;
    if (!GetVarint64(input, &off, &packed_size) ||
        off + packed_size > input.size()) {
      return Status::Corruption("spdp: truncated block");
    }
    Buffer stage3;
    FCB_RETURN_IF_ERROR(
        lz.Decompress(input.subspan(off, packed_size), len, &stage3));
    off += packed_size;

    // Inverse LNVs1.
    stage2.resize(len);
    Lnv1Inverse(stage3.data(), len, stage2.data());
    // Inverse DIM8.
    size_t whole = (len / 8) * 8;
    stage1.resize(len);
    ByteUnshuffle(stage2.data(), stage1.data(), len / 8, 8);
    std::copy(stage2.begin() + whole, stage2.end(), stage1.begin() + whole);
    // Inverse LNVs2 (in place into out).
    size_t base = out->size();
    out->Resize(base + len);
    Lnv2Inverse(stage1.data(), len, out->data() + base);

    remaining -= len;
    if (total == 0) break;
  }
  return Status::OK();
}

}  // namespace fcbench::compressors
