#include "compressors/timeseries_block.h"

#include <algorithm>
#include <cstring>

#include "codecs/intcodec.h"
#include "compressors/gorilla.h"
#include "compressors/gorilla_timestamps.h"
#include "util/bitio.h"

namespace fcbench::compressors {

namespace {

/// Per-block directory entry parsed from the stream header.
struct BlockMeta {
  int64_t first_ts = 0;
  int64_t last_ts = 0;
  uint64_t ts_bytes = 0;
  uint64_t val_bytes = 0;
  size_t payload_off = 0;  // absolute offset of the block's ts payload
  size_t count = 0;
};

struct StreamHeader {
  uint64_t total_points = 0;
  uint64_t points_per_block = 0;
  std::vector<BlockMeta> blocks;
};

Status ParseHeader(ByteSpan in, StreamHeader* h) {
  size_t off = 0;
  uint64_t num_blocks = 0;
  if (!GetVarint64(in, &off, &h->total_points) ||
      !GetVarint64(in, &off, &h->points_per_block) ||
      !GetVarint64(in, &off, &num_blocks)) {
    return Status::Corruption("tsblock: bad header");
  }
  if (h->points_per_block == 0 && h->total_points > 0) {
    return Status::Corruption("tsblock: zero block size");
  }
  uint64_t expected_blocks =
      h->total_points == 0
          ? 0
          : (h->total_points + h->points_per_block - 1) / h->points_per_block;
  if (num_blocks != expected_blocks || num_blocks > in.size()) {
    return Status::Corruption("tsblock: inconsistent block count");
  }
  h->blocks.resize(num_blocks);
  for (auto& b : h->blocks) {
    uint64_t zf = 0, zl = 0;
    if (!GetVarint64(in, &off, &zf) || !GetVarint64(in, &off, &zl) ||
        !GetVarint64(in, &off, &b.ts_bytes) ||
        !GetVarint64(in, &off, &b.val_bytes)) {
      return Status::Corruption("tsblock: bad block directory");
    }
    b.first_ts = codecs::ZigZagDecode(zf);
    b.last_ts = codecs::ZigZagDecode(zl);
  }
  uint64_t remaining = h->total_points;
  for (auto& b : h->blocks) {
    b.count = static_cast<size_t>(
        std::min<uint64_t>(h->points_per_block, remaining));
    remaining -= b.count;
    b.payload_off = off;
    if (b.ts_bytes > in.size() - off) {
      return Status::Corruption("tsblock: truncated timestamps");
    }
    off += b.ts_bytes;
    if (b.val_bytes > in.size() - off) {
      return Status::Corruption("tsblock: truncated values");
    }
    off += b.val_bytes;
  }
  return Status::OK();
}

Result<std::vector<TsPoint>> DecodeBlock(ByteSpan in, const BlockMeta& b) {
  auto ts = GorillaTimestampCodec::Decompress(
      in.subspan(b.payload_off, b.ts_bytes), b.count);
  if (!ts.ok()) return ts.status();

  DataDesc desc;
  desc.dtype = DType::kFloat64;
  desc.extent = {b.count};
  CompressorConfig cfg;
  GorillaCompressor values(cfg);
  Buffer raw;
  FCB_RETURN_IF_ERROR(values.Decompress(
      in.subspan(b.payload_off + b.ts_bytes, b.val_bytes), desc, &raw));
  if (raw.size() != b.count * 8) {
    return Status::Corruption("tsblock: value count mismatch");
  }

  std::vector<TsPoint> points(b.count);
  const double* vals = reinterpret_cast<const double*>(raw.data());
  for (size_t i = 0; i < b.count; ++i) {
    points[i] = TsPoint{ts.value()[i], vals[i]};
  }
  return points;
}

}  // namespace

Status TimeSeriesBlockCodec::Compress(std::span<const TsPoint> points,
                                      Buffer* out) const {
  if (opts_.points_per_block == 0) {
    return Status::InvalidArgument("tsblock: points_per_block must be > 0");
  }
  const size_t n = points.size();
  const size_t bs = opts_.points_per_block;
  const size_t num_blocks = n == 0 ? 0 : (n + bs - 1) / bs;

  std::vector<Buffer> ts_parts(num_blocks), val_parts(num_blocks);
  CompressorConfig cfg;
  GorillaCompressor values(cfg);
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    const size_t begin = blk * bs;
    const size_t count = std::min(bs, n - begin);
    std::vector<int64_t> ts(count);
    std::vector<double> vals(count);
    for (size_t i = 0; i < count; ++i) {
      ts[i] = points[begin + i].ts;
      vals[i] = points[begin + i].value;
    }
    GorillaTimestampCodec::Compress(ts, &ts_parts[blk]);
    DataDesc desc;
    desc.dtype = DType::kFloat64;
    desc.extent = {count};
    FCB_RETURN_IF_ERROR(
        values.Compress(AsBytes(vals), desc, &val_parts[blk]));
  }

  // Directory + payload sizes are known here; reserve the full stream so
  // the append loop below never re-allocates. (The per-part encoders use
  // BitWriter::bit_count() semantics scoped to each writer, so parts are
  // sized independently of this aggregate buffer.)
  size_t payload_bytes = 0;
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    payload_bytes += ts_parts[blk].size() + val_parts[blk].size();
  }
  out->Reserve(out->size() + payload_bytes + 30 * (num_blocks + 1));
  PutVarint64(out, n);
  PutVarint64(out, bs);
  PutVarint64(out, num_blocks);
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    const size_t begin = blk * bs;
    const size_t count = std::min(bs, n - begin);
    PutVarint64(out, codecs::ZigZagEncode(points[begin].ts));
    PutVarint64(out, codecs::ZigZagEncode(points[begin + count - 1].ts));
    PutVarint64(out, ts_parts[blk].size());
    PutVarint64(out, val_parts[blk].size());
  }
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    out->Append(ts_parts[blk].span());
    out->Append(val_parts[blk].span());
  }
  return Status::OK();
}

Result<std::vector<TsPoint>> TimeSeriesBlockCodec::Decompress(ByteSpan in) {
  StreamHeader h;
  FCB_RETURN_IF_ERROR(ParseHeader(in, &h));
  std::vector<TsPoint> points;
  points.reserve(h.total_points);
  for (const auto& b : h.blocks) {
    FCB_ASSIGN_OR_RETURN(auto part, DecodeBlock(in, b));
    points.insert(points.end(), part.begin(), part.end());
  }
  return points;
}

Result<std::vector<TsPoint>> TimeSeriesBlockCodec::QueryRange(
    ByteSpan in, int64_t t0, int64_t t1, size_t* blocks_decoded) {
  StreamHeader h;
  FCB_RETURN_IF_ERROR(ParseHeader(in, &h));
  std::vector<TsPoint> hits;
  size_t decoded = 0;
  for (const auto& b : h.blocks) {
    if (b.last_ts < t0 || b.first_ts > t1) continue;  // directory pruning
    FCB_ASSIGN_OR_RETURN(auto part, DecodeBlock(in, b));
    ++decoded;
    for (const TsPoint& p : part) {
      if (p.ts >= t0 && p.ts <= t1) hits.push_back(p);
    }
  }
  if (blocks_decoded != nullptr) *blocks_decoded = decoded;
  return hits;
}

}  // namespace fcbench::compressors
