#include "compressors/gorilla.h"

#include <cstring>

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

/// Width-parametric Gorilla kernel; W is the word type (uint32/uint64).
/// The original operates on doubles; we apply the identical scheme to the
/// 32-bit words of single-precision data (as influxdb does after widening,
/// but without the widening waste).
template <typename W>
void GorillaEncode(const uint8_t* bytes, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  // Leading-zero field is 5 bits (max 31); Gorilla clamps larger counts.
  constexpr int kMaxLead = 31;

  BitWriter bw(out);
  W prev = 0;
  int prev_lead = -1;
  int prev_trail = -1;
  for (size_t i = 0; i < n; ++i) {
    W v;
    std::memcpy(&v, bytes + i * sizeof(W), sizeof(W));
    if (i == 0) {
      bw.WriteBits(v, kWidth);
      prev = v;
      continue;
    }
    W x = v ^ prev;
    prev = v;
    if (x == 0) {
      bw.WriteBit(0);
      continue;
    }
    int lead, trail;
    if constexpr (kWidth == 64) {
      lead = LeadingZeros64(x);
      trail = TrailingZeros64(x);
    } else {
      lead = LeadingZeros32(x);
      trail = TrailingZeros32(x);
    }
    if (lead > kMaxLead) lead = kMaxLead;

    bw.WriteBit(1);
    if (prev_lead >= 0 && lead >= prev_lead && trail >= prev_trail) {
      // C = 10: reuse the previous window.
      bw.WriteBit(0);
      int sig = kWidth - prev_lead - prev_trail;
      bw.WriteBits(static_cast<uint64_t>(x >> prev_trail), sig);
    } else {
      // C = 11: new window. 6-bit length field stores sig-1 so a full-width
      // residual (sig == 64) fits.
      bw.WriteBit(1);
      int sig = kWidth - lead - trail;
      bw.WriteBits(static_cast<uint64_t>(lead), 5);
      bw.WriteBits(static_cast<uint64_t>(sig - 1), 6);
      bw.WriteBits(static_cast<uint64_t>(x >> trail), sig);
      prev_lead = lead;
      prev_trail = trail;
    }
  }
  bw.Flush();
}

template <typename W>
Status GorillaDecode(ByteSpan in, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  BitReader br(in);
  W prev = 0;
  int prev_lead = -1;
  int prev_trail = -1;
  for (size_t i = 0; i < n; ++i) {
    W v;
    if (i == 0) {
      v = static_cast<W>(br.ReadBits(kWidth));
    } else if (br.ReadBit() == 0) {
      v = prev;
    } else if (br.ReadBit() == 0) {
      if (prev_lead < 0) return Status::Corruption("gorilla: no prior window");
      int sig = kWidth - prev_lead - prev_trail;
      W center = static_cast<W>(br.ReadBits(sig));
      v = prev ^ (center << prev_trail);
    } else {
      int lead = static_cast<int>(br.ReadBits(5));
      int sig = static_cast<int>(br.ReadBits(6)) + 1;
      int trail = kWidth - lead - sig;
      if (trail < 0) return Status::Corruption("gorilla: bad window");
      W center = static_cast<W>(br.ReadBits(sig));
      v = prev ^ (center << trail);
      prev_lead = lead;
      prev_trail = trail;
    }
    if (br.overrun()) return Status::Corruption("gorilla: truncated stream");
    prev = v;
    out->Append(&v, sizeof(W));
  }
  return Status::OK();
}

}  // namespace

GorillaCompressor::GorillaCompressor(const CompressorConfig& /*config*/) {
  traits_.name = "gorilla";
  traits_.year = 2015;
  traits_.domain = "Database";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDelta;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status GorillaCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  size_t esize = DTypeSize(desc.dtype);
  if (input.size() % esize != 0) {
    return Status::InvalidArgument("gorilla: input not a whole element count");
  }
  size_t n = input.size() / esize;
  if (desc.dtype == DType::kFloat64) {
    GorillaEncode<uint64_t>(input.data(), n, out);
  } else {
    GorillaEncode<uint32_t>(input.data(), n, out);
  }
  return Status::OK();
}

Status GorillaCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                     Buffer* out) {
  size_t n = desc.num_elements();
  if (desc.dtype == DType::kFloat64) {
    return GorillaDecode<uint64_t>(input, n, out);
  }
  return GorillaDecode<uint32_t>(input, n, out);
}

}  // namespace fcbench::compressors
