#include "compressors/gorilla.h"

#include <cstring>

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::compressors {

namespace {

/// Width-parametric Gorilla kernel; W is the word type (uint32/uint64).
/// The original operates on doubles; we apply the identical scheme to the
/// 32-bit words of single-precision data (as influxdb does after widening,
/// but without the widening waste).
template <typename W>
void GorillaEncode(const uint8_t* bytes, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  // Leading-zero field is 5 bits (max 31); Gorilla clamps larger counts.
  constexpr int kMaxLead = 31;

  // Worst case is ~(kWidth + 13) bits per value (all-new windows); reserve
  // for the common compressible case so the encode loop does not pay
  // repeated grow-and-memcpy cycles.
  out->Reserve(out->size() + n * sizeof(W) / 2 + 16);
  BitWriter bw(out);
  W prev = 0;
  int prev_lead = -1;
  int prev_trail = -1;
  for (size_t i = 0; i < n; ++i) {
    W v;
    std::memcpy(&v, bytes + i * sizeof(W), sizeof(W));
    if (i == 0) {
      bw.WriteBits(v, kWidth);
      prev = v;
      continue;
    }
    W x = v ^ prev;
    prev = v;
    if (x == 0) {
      bw.WriteBit(0);
      continue;
    }
    int lead, trail;
    if constexpr (kWidth == 64) {
      lead = LeadingZeros64(x);
      trail = TrailingZeros64(x);
    } else {
      lead = LeadingZeros32(x);
      trail = TrailingZeros32(x);
    }
    if (lead > kMaxLead) lead = kMaxLead;

    if (prev_lead >= 0 && lead >= prev_lead && trail >= prev_trail) {
      // C = 10: reuse the previous window; control + residual fused into
      // one write when they fit a single word.
      int sig = kWidth - prev_lead - prev_trail;
      uint64_t payload = static_cast<uint64_t>(x >> prev_trail);
      if (sig <= 62) {
        bw.WriteBits((uint64_t(0b10) << sig) | payload, 2 + sig);
      } else {
        bw.WriteBits(0b10, 2);
        bw.WriteBits(payload, sig);
      }
    } else {
      // C = 11: new window. 6-bit length field stores sig-1 so a full-width
      // residual (sig == 64) fits. The 13 header bits (control, lead,
      // length) go out in one write.
      int sig = kWidth - lead - trail;
      bw.WriteBits((uint64_t(0b11) << 11) |
                       (static_cast<uint64_t>(lead) << 6) |
                       static_cast<uint64_t>(sig - 1),
                   13);
      bw.WriteBits(static_cast<uint64_t>(x >> trail), sig);
      prev_lead = lead;
      prev_trail = trail;
    }
  }
  bw.Flush();
}

template <typename W>
Status GorillaDecode(ByteSpan in, size_t n, Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  BitReader br(in);
  W prev = 0;
  int prev_lead = -1;
  int prev_trail = -1;
  size_t base = out->size();
  out->Resize(base + n * sizeof(W));
  uint8_t* dst = out->data() + base;
  // On corruption, shrink back to the successfully decoded prefix so the
  // error path never exposes uninitialized buffer contents.
  auto fail = [&](size_t decoded, const char* msg) {
    out->Resize(base + decoded * sizeof(W));
    return Status::Corruption(msg);
  };
  for (size_t i = 0; i < n; ++i) {
    W v;
    if (i == 0) {
      v = static_cast<W>(br.ReadBits(kWidth));
    } else if (br.ReadBit() == 0) {
      v = prev;
    } else if (br.ReadBit() == 0) {
      if (prev_lead < 0) return fail(i, "gorilla: no prior window");
      int sig = kWidth - prev_lead - prev_trail;
      W center = static_cast<W>(br.ReadBits(sig));
      v = prev ^ (center << prev_trail);
    } else {
      // One fused read for the 5-bit lead + 6-bit length header.
      uint32_t hdr = static_cast<uint32_t>(br.ReadBits(11));
      int lead = static_cast<int>(hdr >> 6);
      int sig = static_cast<int>(hdr & 0x3f) + 1;
      int trail = kWidth - lead - sig;
      if (trail < 0) return fail(i, "gorilla: bad window");
      W center = static_cast<W>(br.ReadBits(sig));
      v = prev ^ (center << trail);
      prev_lead = lead;
      prev_trail = trail;
    }
    if (br.overrun()) return fail(i, "gorilla: truncated stream");
    prev = v;
    std::memcpy(dst + i * sizeof(W), &v, sizeof(W));
  }
  return Status::OK();
}

}  // namespace

GorillaCompressor::GorillaCompressor(const CompressorConfig& /*config*/) {
  traits_.name = "gorilla";
  traits_.year = 2015;
  traits_.domain = "Database";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDelta;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status GorillaCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                   Buffer* out) {
  size_t esize = DTypeSize(desc.dtype);
  if (input.size() % esize != 0) {
    return Status::InvalidArgument("gorilla: input not a whole element count");
  }
  size_t n = input.size() / esize;
  if (desc.dtype == DType::kFloat64) {
    GorillaEncode<uint64_t>(input.data(), n, out);
  } else {
    GorillaEncode<uint32_t>(input.data(), n, out);
  }
  return Status::OK();
}

Status GorillaCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                     Buffer* out) {
  size_t n = desc.num_elements();
  if (desc.dtype == DType::kFloat64) {
    return GorillaDecode<uint64_t>(input, n, out);
  }
  return GorillaDecode<uint32_t>(input, n, out);
}

}  // namespace fcbench::compressors
