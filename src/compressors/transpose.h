#ifndef FCBENCH_COMPRESSORS_TRANSPOSE_H_
#define FCBENCH_COMPRESSORS_TRANSPOSE_H_

#include <cstddef>
#include <cstdint>

namespace fcbench::compressors {

/// Bit-level transpose kernels shared by bitshuffle (§3.7), ndzip (§3.8)
/// and MPC's BIT component (§4.2).
///
/// BitTranspose views `count` elements of `elem_bits` bits as a
/// count x elem_bits matrix and emits the elem_bits x count transpose, so
/// that the i-th bits of all elements become contiguous. This exposes
/// "subtle patterns, such as identical i-th bits" (paper §6.1.1) to
/// downstream coders.

/// Transposes an 8x8 bit matrix held in a 64-bit word (rows = bytes).
/// Classic Hacker's-Delight kernel; the building block of fast bitshuffle.
inline uint64_t Transpose8x8(uint64_t x) {
  uint64_t t;
  t = (x ^ (x >> 7)) & 0x00aa00aa00aa00aaULL;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000cccc0000ccccULL;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000f0f0f0f0ULL;
  x = x ^ t ^ (t << 28);
  return x;
}

/// Transposes bits of `count` elements, each `elem_size` bytes wide
/// (elem_size in {4, 8}), from `src` to `dst`. Output layout: bit plane 0
/// (MSB? no — bit 0 = LSB) of all elements packed first, then plane 1, ...
/// `count` must be a multiple of 8. src and dst must not alias.
void BitTranspose(const uint8_t* src, uint8_t* dst, size_t count,
                  size_t elem_size);

/// Inverse of BitTranspose.
void BitUntranspose(const uint8_t* src, uint8_t* dst, size_t count,
                    size_t elem_size);

/// Byte-plane shuffle: groups byte k of every element together (the DIM8
/// component of SPDP when elem_size == 8). Works for any elem_size >= 1.
void ByteShuffle(const uint8_t* src, uint8_t* dst, size_t count,
                 size_t elem_size);

/// Inverse of ByteShuffle.
void ByteUnshuffle(const uint8_t* src, uint8_t* dst, size_t count,
                   size_t elem_size);

}  // namespace fcbench::compressors

#endif  // FCBENCH_COMPRESSORS_TRANSPOSE_H_
