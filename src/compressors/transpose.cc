#include "compressors/transpose.h"

#include <cstring>
#include <initializer_list>

namespace fcbench::compressors {

namespace {

/// Transposes an 8x8 byte matrix held in eight 64-bit words (row j =
/// m[j], column k = byte lane k, little-endian). Classic three-stage
/// block-swap network, self-inverse. Lets the f64 paths below move whole
/// elements with single unaligned 64-bit loads/stores instead of the
/// byte-at-a-time gather/scatter the reference loop used.
inline void ByteMatrixTranspose8x8(uint64_t m[8]) {
  for (int i = 0; i < 4; ++i) {
    uint64_t& a = m[i];
    uint64_t& b = m[i + 4];
    uint64_t t = ((a >> 32) ^ b) & 0x00000000FFFFFFFFULL;
    b ^= t;
    a ^= t << 32;
  }
  for (int i : {0, 1, 4, 5}) {
    uint64_t& a = m[i];
    uint64_t& b = m[i + 2];
    uint64_t t = ((a >> 16) ^ b) & 0x0000FFFF0000FFFFULL;
    b ^= t;
    a ^= t << 16;
  }
  for (int i : {0, 2, 4, 6}) {
    uint64_t& a = m[i];
    uint64_t& b = m[i + 1];
    uint64_t t = ((a >> 8) ^ b) & 0x00FF00FF00FF00FFULL;
    b ^= t;
    a ^= t << 8;
  }
}

}  // namespace

void BitTranspose(const uint8_t* src, uint8_t* dst, size_t count,
                  size_t elem_size) {
  const size_t groups = count / 8;  // 8 elements per transposed word
  const size_t plane_bytes = groups;
  if (elem_size == 8) {
    // f64 fast path, byte-identical to the generic loop below
    // (little-endian lanes). Eight groups (64 elements) per block: the
    // element side moves through single unaligned 64-bit loads, and a
    // second byte-matrix transpose across the groups turns the per-plane
    // scatter into single unaligned 64-bit stores.
    size_t g = 0;
    for (; g + 8 <= groups; g += 8) {
      uint64_t planes[8][8];  // [group-in-block][byte k] bit-plane words
      for (size_t t = 0; t < 8; ++t) {
        const uint8_t* base = src + (g + t) * 64;
        uint64_t m[8];
        for (size_t j = 0; j < 8; ++j) std::memcpy(&m[j], base + j * 8, 8);
        ByteMatrixTranspose8x8(m);  // m[k] lane j = element j's byte k
        for (size_t k = 0; k < 8; ++k) planes[t][k] = Transpose8x8(m[k]);
      }
      for (size_t k = 0; k < 8; ++k) {
        uint64_t y[8];
        for (size_t t = 0; t < 8; ++t) y[t] = planes[t][k];
        ByteMatrixTranspose8x8(y);  // y[i] lane t = plane k*8+i, group g+t
        for (size_t i = 0; i < 8; ++i) {
          std::memcpy(dst + (k * 8 + i) * plane_bytes + g, &y[i], 8);
        }
      }
    }
    for (; g < groups; ++g) {  // tail groups, one at a time
      const uint8_t* base = src + g * 64;
      uint64_t m[8];
      for (size_t j = 0; j < 8; ++j) std::memcpy(&m[j], base + j * 8, 8);
      ByteMatrixTranspose8x8(m);
      for (size_t k = 0; k < 8; ++k) {
        uint64_t x = Transpose8x8(m[k]);
        for (size_t i = 0; i < 8; ++i) {
          dst[(k * 8 + i) * plane_bytes + g] =
              static_cast<uint8_t>(x >> (8 * i));
        }
      }
    }
    return;
  }
  for (size_t g = 0; g < groups; ++g) {
    const uint8_t* base = src + g * 8 * elem_size;
    for (size_t k = 0; k < elem_size; ++k) {
      // Gather byte k of 8 consecutive elements into one 64-bit word:
      // byte lane j holds element j's k-th byte.
      uint64_t x = 0;
      for (size_t j = 0; j < 8; ++j) {
        x |= static_cast<uint64_t>(base[j * elem_size + k]) << (8 * j);
      }
      x = Transpose8x8(x);
      // After transpose, byte lane i holds bit i (of byte k) across the 8
      // elements. That byte belongs to plane k*8+i at group offset g.
      for (size_t i = 0; i < 8; ++i) {
        dst[(k * 8 + i) * plane_bytes + g] =
            static_cast<uint8_t>(x >> (8 * i));
      }
    }
  }
}

void BitUntranspose(const uint8_t* src, uint8_t* dst, size_t count,
                    size_t elem_size) {
  const size_t groups = count / 8;
  const size_t plane_bytes = groups;
  if (elem_size == 8) {
    // f64 fast path: exact mirror of the blocked forward — plane data
    // arrives through single unaligned 64-bit loads, leaves through one
    // 64-bit store per element.
    size_t g = 0;
    for (; g + 8 <= groups; g += 8) {
      uint64_t planes[8][8];  // [group-in-block][byte k]
      for (size_t k = 0; k < 8; ++k) {
        uint64_t y[8];
        for (size_t i = 0; i < 8; ++i) {
          std::memcpy(&y[i], src + (k * 8 + i) * plane_bytes + g, 8);
        }
        ByteMatrixTranspose8x8(y);  // y[t] lane i = plane k*8+i, group g+t
        for (size_t t = 0; t < 8; ++t) planes[t][k] = Transpose8x8(y[t]);
      }
      for (size_t t = 0; t < 8; ++t) {
        uint8_t* base = dst + (g + t) * 64;
        uint64_t m[8];
        for (size_t k = 0; k < 8; ++k) m[k] = planes[t][k];
        ByteMatrixTranspose8x8(m);  // m[j] = element j's 64-bit word
        for (size_t j = 0; j < 8; ++j) std::memcpy(base + j * 8, &m[j], 8);
      }
    }
    for (; g < groups; ++g) {  // tail groups
      uint8_t* base = dst + g * 64;
      uint64_t m[8];
      for (size_t k = 0; k < 8; ++k) {
        uint64_t x = 0;
        for (size_t i = 0; i < 8; ++i) {
          x |= static_cast<uint64_t>(src[(k * 8 + i) * plane_bytes + g])
               << (8 * i);
        }
        m[k] = Transpose8x8(x);
      }
      ByteMatrixTranspose8x8(m);
      for (size_t j = 0; j < 8; ++j) std::memcpy(base + j * 8, &m[j], 8);
    }
    return;
  }
  for (size_t g = 0; g < groups; ++g) {
    uint8_t* base = dst + g * 8 * elem_size;
    for (size_t k = 0; k < elem_size; ++k) {
      uint64_t x = 0;
      for (size_t i = 0; i < 8; ++i) {
        x |= static_cast<uint64_t>(src[(k * 8 + i) * plane_bytes + g])
             << (8 * i);
      }
      x = Transpose8x8(x);
      for (size_t j = 0; j < 8; ++j) {
        base[j * elem_size + k] = static_cast<uint8_t>(x >> (8 * j));
      }
    }
  }
}

void ByteShuffle(const uint8_t* src, uint8_t* dst, size_t count,
                 size_t elem_size) {
  for (size_t k = 0; k < elem_size; ++k) {
    uint8_t* plane = dst + k * count;
    for (size_t j = 0; j < count; ++j) {
      plane[j] = src[j * elem_size + k];
    }
  }
}

void ByteUnshuffle(const uint8_t* src, uint8_t* dst, size_t count,
                   size_t elem_size) {
  for (size_t k = 0; k < elem_size; ++k) {
    const uint8_t* plane = src + k * count;
    for (size_t j = 0; j < count; ++j) {
      dst[j * elem_size + k] = plane[j];
    }
  }
}

}  // namespace fcbench::compressors
