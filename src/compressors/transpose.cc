#include "compressors/transpose.h"

#include <cstring>

namespace fcbench::compressors {

void BitTranspose(const uint8_t* src, uint8_t* dst, size_t count,
                  size_t elem_size) {
  const size_t groups = count / 8;  // 8 elements per transposed word
  const size_t plane_bytes = groups;
  for (size_t g = 0; g < groups; ++g) {
    const uint8_t* base = src + g * 8 * elem_size;
    for (size_t k = 0; k < elem_size; ++k) {
      // Gather byte k of 8 consecutive elements into one 64-bit word:
      // byte lane j holds element j's k-th byte.
      uint64_t x = 0;
      for (size_t j = 0; j < 8; ++j) {
        x |= static_cast<uint64_t>(base[j * elem_size + k]) << (8 * j);
      }
      x = Transpose8x8(x);
      // After transpose, byte lane i holds bit i (of byte k) across the 8
      // elements. That byte belongs to plane k*8+i at group offset g.
      for (size_t i = 0; i < 8; ++i) {
        dst[(k * 8 + i) * plane_bytes + g] =
            static_cast<uint8_t>(x >> (8 * i));
      }
    }
  }
}

void BitUntranspose(const uint8_t* src, uint8_t* dst, size_t count,
                    size_t elem_size) {
  const size_t groups = count / 8;
  const size_t plane_bytes = groups;
  for (size_t g = 0; g < groups; ++g) {
    uint8_t* base = dst + g * 8 * elem_size;
    for (size_t k = 0; k < elem_size; ++k) {
      uint64_t x = 0;
      for (size_t i = 0; i < 8; ++i) {
        x |= static_cast<uint64_t>(src[(k * 8 + i) * plane_bytes + g])
             << (8 * i);
      }
      x = Transpose8x8(x);
      for (size_t j = 0; j < 8; ++j) {
        base[j * elem_size + k] = static_cast<uint8_t>(x >> (8 * j));
      }
    }
  }
}

void ByteShuffle(const uint8_t* src, uint8_t* dst, size_t count,
                 size_t elem_size) {
  for (size_t k = 0; k < elem_size; ++k) {
    uint8_t* plane = dst + k * count;
    for (size_t j = 0; j < count; ++j) {
      plane[j] = src[j * elem_size + k];
    }
  }
}

void ByteUnshuffle(const uint8_t* src, uint8_t* dst, size_t count,
                   size_t elem_size) {
  for (size_t k = 0; k < elem_size; ++k) {
    const uint8_t* plane = src + k * count;
    for (size_t j = 0; j < count; ++j) {
      dst[j * elem_size + k] = plane[j];
    }
  }
}

}  // namespace fcbench::compressors
