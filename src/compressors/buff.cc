#include "compressors/buff.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/bitio.h"

namespace fcbench::compressors {

namespace {

/// Paper Table 2: bits needed for each decimal-precision target.
constexpr int kFractionBits[11] = {0, 5, 8, 11, 15, 18, 21, 25, 28, 31, 35};

struct BuffHeader {
  uint64_t count = 0;
  double min = 0.0;
  uint8_t int_bits = 0;
  uint8_t frac_bits = 0;
  uint8_t digits = 0;

  size_t value_bytes() const { return (int_bits + frac_bits + 7) / 8; }

  void Put(Buffer* out) const {
    PutVarint64(out, count);
    PutFixed(out, min);
    out->PushBack(int_bits);
    out->PushBack(frac_bits);
    out->PushBack(digits);
  }

  static Result<BuffHeader> Get(ByteSpan in, size_t* off) {
    BuffHeader h;
    if (!GetVarint64(in, off, &h.count) || !GetFixed(in, off, &h.min) ||
        !GetFixed(in, off, &h.int_bits) || !GetFixed(in, off, &h.frac_bits) ||
        !GetFixed(in, off, &h.digits)) {
      return Status::Corruption("buff: bad header");
    }
    if (h.int_bits + h.frac_bits > 64 || h.value_bytes() == 0) {
      return Status::Corruption("buff: invalid bit widths");
    }
    return h;
  }
};

double RoundDecimal(double v, int digits) {
  double scale = std::pow(10.0, digits);
  return std::round(v * scale) / scale;
}

/// Quantizes (v - min) to the fixed-point record representation.
uint64_t Quantize(double v, const BuffHeader& h) {
  double d = v - h.min;
  if (d < 0) d = 0;
  double ipart_d;
  double frac = std::modf(d, &ipart_d);
  uint64_t ipart = static_cast<uint64_t>(ipart_d);
  uint64_t q = static_cast<uint64_t>(
      std::llround(frac * static_cast<double>(uint64_t(1) << h.frac_bits)));
  if (q >> h.frac_bits) {  // fraction rounded up to 1.0: carry
    q = 0;
    ++ipart;
  }
  uint64_t rec = (ipart << h.frac_bits) | q;
  // Clamp to the representable range (guards carry overflow on max).
  int total = h.int_bits + h.frac_bits;
  if (total < 64) {
    uint64_t max_rec = (uint64_t(1) << total) - 1;
    if (rec > max_rec) rec = max_rec;
  }
  return rec;
}

double Dequantize(uint64_t rec, const BuffHeader& h) {
  uint64_t q = rec & ((h.frac_bits < 64)
                          ? ((uint64_t(1) << h.frac_bits) - 1)
                          : ~uint64_t(0));
  uint64_t ipart = rec >> h.frac_bits;
  double v = h.min + static_cast<double>(ipart) +
             static_cast<double>(q) /
                 static_cast<double>(uint64_t(1) << h.frac_bits);
  return RoundDecimal(v, h.digits);
}

int BitsForRange(double range) {
  uint64_t span = static_cast<uint64_t>(std::floor(std::max(range, 0.0))) + 2;
  int bits = 1;
  while ((uint64_t(1) << bits) < span && bits < 50) ++bits;
  return bits;
}

}  // namespace

int BuffCompressor::FractionBits(int digits) {
  digits = std::clamp(digits, 0, 10);
  return kFractionBits[digits];
}

BuffCompressor::BuffCompressor(const CompressorConfig& /*config*/) {
  traits_.name = "buff";
  traits_.year = 2021;
  traits_.domain = "Database";
  traits_.arch = Arch::kCpu;
  traits_.predictor = PredictorClass::kDelta;
  traits_.parallel = false;
  traits_.uses_dimensions = false;
}

Status BuffCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  if (input.size() % esize != 0) {
    return Status::InvalidArgument("buff: input not a whole element count");
  }
  const size_t n = input.size() / esize;

  // Pass 1: min/max.
  double mn = 0.0, mx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double v;
    if (desc.dtype == DType::kFloat32) {
      float f;
      std::memcpy(&f, input.data() + i * 4, 4);
      v = f;
    } else {
      std::memcpy(&v, input.data() + i * 8, 8);
    }
    if (i == 0 || v < mn) mn = v;
    if (i == 0 || v > mx) mx = v;
  }

  BuffHeader h;
  h.count = n;
  h.min = mn;
  h.digits = static_cast<uint8_t>(
      desc.precision_digits > 0 ? std::min(desc.precision_digits, 10) : 10);
  h.frac_bits = static_cast<uint8_t>(FractionBits(h.digits));
  h.int_bits = static_cast<uint8_t>(
      std::min(BitsForRange(mx - mn), 63 - static_cast<int>(h.frac_bits)));
  out->Reserve(out->size() + 24 + h.value_bytes() * n);  // header + planes
  h.Put(out);
  if (n == 0) return Status::OK();

  // Pass 2 follows the original's staging pipeline, which is what gives
  // BUFF the largest working set of the studied suite (paper §6.1.7,
  // Figure 10: ~7x the input): (a) a double-precision staging copy,
  // (b) the quantized fixed-point records, (c) a scratch sub-column
  // matrix, and finally (d) the output columns.
  const size_t vbytes = h.value_bytes();
  Buffer staged(n * sizeof(double));         // (a)
  double* staged_v = reinterpret_cast<double*>(staged.data());
  for (size_t i = 0; i < n; ++i) {
    if (desc.dtype == DType::kFloat32) {
      float f;
      std::memcpy(&f, input.data() + i * 4, 4);
      staged_v[i] = f;
    } else {
      std::memcpy(&staged_v[i], input.data() + i * 8, 8);
    }
  }
  Buffer recs_buf(n * sizeof(uint64_t));     // (b)
  uint64_t* recs = reinterpret_cast<uint64_t*>(recs_buf.data());
  for (size_t i = 0; i < n; ++i) {
    recs[i] = Quantize(staged_v[i], h);
  }
  Buffer scratch(vbytes * n);                // (c)
  uint8_t* planes = scratch.data();
  for (size_t b = 0; b < vbytes; ++b) {
    int shift = static_cast<int>(8 * (vbytes - 1 - b));
    uint8_t* plane = planes + b * n;
    for (size_t i = 0; i < n; ++i) {
      plane[i] = static_cast<uint8_t>(recs[i] >> shift);
    }
  }
  out->Append(scratch.span());               // (d)
  return Status::OK();
}

Status BuffCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                  Buffer* out) {
  size_t off = 0;
  BuffHeader h;
  {
    auto r = BuffHeader::Get(input, &off);
    if (!r.ok()) return r.status();
    h = r.value();
  }
  const size_t n = h.count;
  const size_t vbytes = h.value_bytes();
  // Overflow-safe: a flooded count field makes n * vbytes wrap uint64 and
  // sail past a naive `off + n * vbytes > size` check.
  if (n > (input.size() - off) / vbytes) {
    return Status::Corruption("buff: truncated sub-columns");
  }
  const uint8_t* planes = input.data() + off;

  size_t base = out->size();
  const size_t esize = DTypeSize(desc.dtype);
  out->Resize(base + n * esize);
  uint8_t* dst = out->data() + base;
  for (size_t i = 0; i < n; ++i) {
    uint64_t rec = 0;
    for (size_t b = 0; b < vbytes; ++b) {
      rec = (rec << 8) | planes[b * n + i];
    }
    double v = Dequantize(rec, h);
    if (desc.dtype == DType::kFloat32) {
      float f = static_cast<float>(v);
      std::memcpy(dst + i * 4, &f, 4);
    } else {
      std::memcpy(dst + i * 8, &v, 8);
    }
  }
  return Status::OK();
}

Result<std::vector<bool>> BuffCompressor::SubColumnScan(ByteSpan compressed,
                                                        Predicate pred,
                                                        double constant) {
  size_t off = 0;
  BuffHeader h;
  {
    auto r = BuffHeader::Get(compressed, &off);
    if (!r.ok()) return r.status();
    h = r.value();
  }
  const size_t n = h.count;
  const size_t vbytes = h.value_bytes();
  if (n > (compressed.size() - off) / vbytes) {  // overflow-safe
    return Status::Corruption("buff: truncated sub-columns");
  }
  const uint8_t* planes = compressed.data() + off;

  // Encode the constant into the same fixed-point representation. For
  // values outside the representable range the comparison short-circuits.
  std::vector<bool> hits(n, false);
  int total_bits = h.int_bits + h.frac_bits;
  double range_max =
      h.min + (std::pow(2.0, total_bits) - 1.0) /
                  static_cast<double>(uint64_t(1) << h.frac_bits);
  if (constant < h.min) {
    if (pred == Predicate::kGreaterEqual) hits.assign(n, true);
    return hits;
  }
  if (constant > range_max) {
    if (pred == Predicate::kLess) hits.assign(n, true);
    return hits;
  }
  uint64_t target = Quantize(constant, h);
  uint8_t tbytes[8];
  for (size_t b = 0; b < vbytes; ++b) {
    tbytes[b] = static_cast<uint8_t>(target >> (8 * (vbytes - 1 - b)));
  }

  // Sub-column pattern matching with early disqualification: records are
  // compared byte-plane by byte-plane, most significant first, and drop
  // out of the undecided set as soon as a sub-column disqualifies them.
  for (size_t i = 0; i < n; ++i) {
    bool decided = false;
    for (size_t b = 0; b < vbytes && !decided; ++b) {
      uint8_t vb = planes[b * n + i];
      if (vb == tbytes[b]) continue;  // still undecided at this plane
      decided = true;
      switch (pred) {
        case Predicate::kEqual:
          hits[i] = false;
          break;
        case Predicate::kLess:
          hits[i] = vb < tbytes[b];
          break;
        case Predicate::kGreaterEqual:
          hits[i] = vb > tbytes[b];
          break;
      }
    }
    if (!decided) {
      // All bytes equal.
      hits[i] = (pred == Predicate::kEqual) ||
                (pred == Predicate::kGreaterEqual);
    }
  }
  return hits;
}

Result<BuffCompressor::AggregateResult> BuffCompressor::FilteredAggregate(
    ByteSpan compressed, Predicate pred, double constant, Aggregate agg) {
  size_t off = 0;
  BuffHeader h;
  {
    auto r = BuffHeader::Get(compressed, &off);
    if (!r.ok()) return r.status();
    h = r.value();
  }
  const size_t n = h.count;
  const size_t vbytes = h.value_bytes();
  if (n > (compressed.size() - off) / vbytes) {  // overflow-safe
    return Status::Corruption("buff: truncated sub-columns");
  }
  const uint8_t* planes = compressed.data() + off;

  AggregateResult result;
  result.value = (agg == Aggregate::kMin)
                     ? std::numeric_limits<double>::infinity()
                 : (agg == Aggregate::kMax)
                     ? -std::numeric_limits<double>::infinity()
                     : 0.0;

  // Range short-circuit, mirroring SubColumnScan: outside the encoded
  // range the predicate is decided for every record at once.
  int total_bits = h.int_bits + h.frac_bits;
  double range_max =
      h.min + (std::pow(2.0, total_bits) - 1.0) /
                  static_cast<double>(uint64_t(1) << h.frac_bits);
  bool all_hit = false;
  bool none_hit = false;
  uint8_t tbytes[8] = {0};
  if (constant < h.min) {
    all_hit = (pred == Predicate::kGreaterEqual);
    none_hit = !all_hit;
  } else if (constant > range_max) {
    all_hit = (pred == Predicate::kLess);
    none_hit = !all_hit;
  } else {
    uint64_t target = Quantize(constant, h);
    for (size_t b = 0; b < vbytes; ++b) {
      tbytes[b] = static_cast<uint8_t>(target >> (8 * (vbytes - 1 - b)));
    }
  }
  if (none_hit) return result;

  for (size_t i = 0; i < n; ++i) {
    bool hit;
    if (all_hit) {
      hit = true;
    } else {
      bool decided = false;
      hit = false;
      for (size_t b = 0; b < vbytes && !decided; ++b) {
        uint8_t vb = planes[b * n + i];
        if (vb == tbytes[b]) continue;
        decided = true;
        switch (pred) {
          case Predicate::kEqual:
            hit = false;
            break;
          case Predicate::kLess:
            hit = vb < tbytes[b];
            break;
          case Predicate::kGreaterEqual:
            hit = vb > tbytes[b];
            break;
        }
      }
      if (!decided) {
        hit = (pred == Predicate::kEqual) || (pred == Predicate::kGreaterEqual);
      }
    }
    if (!hit) continue;
    ++result.count;
    if (agg == Aggregate::kCount) continue;
    // Only qualifying records are dequantized — this is the aggregation
    // pushdown that avoids paying full decompression.
    uint64_t rec = 0;
    for (size_t b = 0; b < vbytes; ++b) {
      rec = (rec << 8) | planes[b * n + i];
    }
    double v = Dequantize(rec, h);
    switch (agg) {
      case Aggregate::kSum:
        result.value += v;
        break;
      case Aggregate::kMin:
        result.value = std::min(result.value, v);
        break;
      case Aggregate::kMax:
        result.value = std::max(result.value, v);
        break;
      case Aggregate::kCount:
        break;
    }
  }
  return result;
}

}  // namespace fcbench::compressors
