#include "gpusim/gfc.h"

#include <cstring>
#include <vector>

#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::gpusim {

namespace {

constexpr size_t kSubchunk = 32;  // doubles per warp step (one per lane)
constexpr uint64_t kMaxInput = 512ull << 20;  // historical GFC limit

/// Non-coalesced byte-granular stores waste GDDR transactions; model them
/// as 4x effective traffic (documented in EXPERIMENTS.md).
constexpr int kScatterPenalty = 4;

struct LaneCode {
  uint8_t nibble;
  int keep;
  uint64_t mag;
};

/// Encodes one warp's chunk of doubles. Bit-exact serial implementation of
/// the lane-parallel algorithm; `ctx` accounts the SIMT cost.
void CompressWarpChunk(WarpCtx& ctx, const uint8_t* base, size_t count,
                       Buffer* out) {
  uint64_t prev_last = 0;
  for (size_t s = 0; s < count; s += kSubchunk) {
    size_t lanes = std::min(kSubchunk, count - s);
    ctx.CountRead(lanes * 8);
    ctx.CountInstr(12);  // load, sub, sign/abs, clz, nibble pack (lock-step)

    LaneCode codes[kSubchunk];
    uint64_t last_value = prev_last;
    for (size_t lane = 0; lane < lanes; ++lane) {
      uint64_t v;
      std::memcpy(&v, base + (s + lane) * 8, 8);
      uint64_t r = v - prev_last;  // two's-complement wraparound
      bool neg = (r >> 63) != 0;
      uint64_t mag = neg ? (0 - r) : r;
      int lzb = LeadingZeros64(mag) / 8;
      int code = (lzb == 8) ? 7 : (lzb == 7 ? 6 : lzb);
      int keep = 8 - ((code == 7) ? 8 : code);
      codes[lane] = {static_cast<uint8_t>((neg ? 8 : 0) | code), keep, mag};
      if (lane == lanes - 1) last_value = v;
    }
    prev_last = last_value;

    // Warp-coordinated output: nibbles, then compacted residual bytes at
    // prefix-sum offsets.
    uint32_t keeps[kSubchunk] = {0};
    for (size_t lane = 0; lane < lanes; ++lane) {
      keeps[lane] = static_cast<uint32_t>(codes[lane].keep);
    }
    uint32_t offsets[kSubchunk];
    ctx.PrefixSumExclusive(keeps, offsets);

    uint8_t packed[kSubchunk / 2] = {0};
    for (size_t lane = 0; lane < lanes; ++lane) {
      if (lane % 2 == 0) {
        packed[lane / 2] = static_cast<uint8_t>(codes[lane].nibble << 4);
      } else {
        packed[lane / 2] |= codes[lane].nibble;
      }
    }
    out->Append(packed, (lanes + 1) / 2);
    ctx.CountWrite((lanes + 1) / 2);

    // Assemble the compacted residual bytes on the stack and append them
    // in one call instead of one PushBack (capacity check) per byte.
    uint8_t residuals[kSubchunk * 8];
    uint64_t total_keep = 0;
    for (size_t lane = 0; lane < lanes; ++lane) {
      const auto& c = codes[lane];
      for (int b = c.keep - 1; b >= 0; --b) {
        residuals[total_keep++] = static_cast<uint8_t>(c.mag >> (8 * b));
      }
    }
    out->Append(residuals, total_keep);
    // Byte-granular scattered stores: divergent and non-coalesced.
    ctx.CountDivergent(total_keep / 4 + 1);
    ctx.CountWrite(total_keep * kScatterPenalty);
  }
}

Status DecompressWarpChunk(WarpCtx& ctx, ByteSpan in, size_t count,
                           uint8_t* dst) {
  uint64_t prev_last = 0;
  size_t pos = 0;
  for (size_t s = 0; s < count; s += kSubchunk) {
    size_t lanes = std::min(kSubchunk, count - s);
    size_t nibble_bytes = (lanes + 1) / 2;
    if (pos + nibble_bytes > in.size()) {
      return Status::Corruption("gfc: truncated nibbles");
    }
    ctx.CountRead(nibble_bytes);
    ctx.CountInstr(12);
    const uint8_t* packed = in.data() + pos;
    pos += nibble_bytes;

    uint64_t last_value = prev_last;
    for (size_t lane = 0; lane < lanes; ++lane) {
      uint8_t nibble = (lane % 2 == 0) ? (packed[lane / 2] >> 4)
                                       : (packed[lane / 2] & 0x0f);
      bool neg = (nibble & 8) != 0;
      int code = nibble & 7;
      int keep = 8 - ((code == 7) ? 8 : code);
      if (pos + keep > in.size()) {
        return Status::Corruption("gfc: truncated residual");
      }
      // Bounds were checked once above; gather via raw pointer instead of
      // a bounds-managed span index per byte.
      const uint8_t* rp = in.data() + pos;
      uint64_t mag = 0;
      for (int b = keep - 1; b >= 0; --b) {
        mag |= static_cast<uint64_t>(*rp++) << (8 * b);
      }
      pos += static_cast<size_t>(keep);
      uint64_t v = neg ? (prev_last - mag) : (prev_last + mag);
      std::memcpy(dst + (s + lane) * 8, &v, 8);
      if (lane == lanes - 1) last_value = v;
    }
    prev_last = last_value;
    ctx.CountDivergent(lanes / 4 + 1);
    ctx.CountRead(lanes * 2 * kScatterPenalty);  // scattered byte loads
    ctx.CountWrite(lanes * 8);
  }
  return Status::OK();
}

}  // namespace

GfcCompressor::GfcCompressor(const CompressorConfig& config)
    : device_(DeviceSpec{}, config.threads > 0 ? config.threads : 8) {
  traits_.name = "gfc";
  traits_.year = 2011;
  traits_.domain = "HPC";
  traits_.arch = Arch::kGpu;
  traits_.predictor = PredictorClass::kDelta;
  traits_.parallel = true;
  traits_.supports_f32 = false;  // double-precision only (Table 1)
  traits_.uses_dimensions = true;
}

Status GfcCompressor::Compress(ByteSpan input, const DataDesc& desc,
                               Buffer* out) {
  if (desc.dtype != DType::kFloat64) {
    return Status::NotSupported("gfc: double-precision only");
  }
  if (input.size() > kMaxInput) {
    return Status::ResourceExhausted("gfc: input exceeds 512 MB limit");
  }
  size_t n = input.size() / 8;

  // One chunk per warp; the real GFC sizes the grid to fill the device.
  size_t num_warps = std::max<size_t>(
      1, std::min<size_t>(n / (kSubchunk * 8), 2048));
  size_t chunk = ((n + num_warps - 1) / num_warps + kSubchunk - 1) /
                 kSubchunk * kSubchunk;
  num_warps = chunk ? (n + chunk - 1) / chunk : 0;
  if (n == 0) num_warps = 0;

  std::vector<Buffer> parts(num_warps);
  KernelStats stats = device_.Launch(num_warps, [&](WarpCtx& ctx) {
    size_t w = ctx.warp_id();
    size_t begin = w * chunk;
    size_t cnt = std::min(chunk, n - begin);
    CompressWarpChunk(ctx, input.data() + begin * 8, cnt, &parts[w]);
  });

  PutVarint64(out, n);
  PutVarint64(out, num_warps);
  PutVarint64(out, chunk);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size());
  return Status::OK();
}

Status GfcCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                 Buffer* out) {
  if (desc.dtype != DType::kFloat64) {
    return Status::NotSupported("gfc: double-precision only");
  }
  size_t off = 0;
  uint64_t n = 0, num_warps = 0, chunk = 0;
  if (!GetVarint64(input, &off, &n) || !GetVarint64(input, &off, &num_warps) ||
      !GetVarint64(input, &off, &chunk)) {
    return Status::Corruption("gfc: bad header");
  }
  // Hostile-header guards: n sizes the output allocation, num_warps the
  // directory allocation, and chunk the per-warp offsets (w * chunk must
  // never pass n, or `n - begin` underflows into out-of-bounds writes).
  if (n > kMaxInput / 8) {
    return Status::Corruption("gfc: declared count beyond 512 MB limit");
  }
  if (desc.num_elements() > 0 && n * 8 > desc.num_bytes() + 64) {
    return Status::Corruption("gfc: declared size disagrees with desc");
  }
  uint64_t expected_warps =
      (n == 0 || chunk == 0) ? 0 : (n + chunk - 1) / chunk;
  if (num_warps != expected_warps || (n > 0 && chunk == 0)) {
    return Status::Corruption("gfc: inconsistent chunk directory");
  }
  if (num_warps > input.size() - off) {  // each warp needs >= 1 header byte
    return Status::Corruption("gfc: implausible warp count");
  }
  std::vector<uint64_t> sizes(num_warps);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("gfc: bad warp sizes");
    }
  }
  std::vector<size_t> starts(num_warps);
  for (size_t w = 0; w < num_warps; ++w) {
    starts[w] = off;
    off += sizes[w];
    if (off > input.size()) return Status::Corruption("gfc: truncated");
  }

  size_t base = out->size();
  out->Resize(base + n * 8);
  uint8_t* dst = out->data() + base;
  std::vector<Status> stats_per(num_warps);
  KernelStats stats = device_.Launch(num_warps, [&](WarpCtx& ctx) {
    size_t w = ctx.warp_id();
    size_t begin = w * chunk;
    size_t cnt = std::min<size_t>(chunk, n - begin);
    stats_per[w] = DecompressWarpChunk(
        ctx, input.subspan(starts[w], sizes[w]), cnt, dst + begin * 8);
  });
  for (const auto& st : stats_per) FCB_RETURN_IF_ERROR(st);

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(n * 8);
  return Status::OK();
}

}  // namespace fcbench::gpusim
