#ifndef FCBENCH_GPUSIM_GFC_H_
#define FCBENCH_GPUSIM_GFC_H_

#include "core/compressor.h"
#include "gpusim/device.h"

namespace fcbench::gpusim {

/// GFC (O'Neil & Burtscher 2011; paper §4.1), run on the SIMT simulator.
///
/// The input is divided into chunks, one per warp; each chunk is processed
/// in subchunks of 32 doubles (one per lane). Residuals subtract the
/// corresponding value of the *previous subchunk's last value* — the
/// deliberately cheap predictor whose inaccuracy the paper blames for
/// GFC's bottom ranking (§6.1.1 analysis (3), §6.1.5 analysis (2)).
/// Each residual is encoded as 4 bits (sign + leading-zero-byte count)
/// plus its non-zero bytes.
///
/// Historical limitation preserved: inputs larger than 512 MB are
/// rejected (§4.1 insights).
class GfcCompressor : public Compressor {
 public:
  explicit GfcCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  const GpuTiming* last_gpu_timing() const override { return &timing_; }

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<GfcCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  SimtDevice device_;
  GpuTiming timing_;
};

}  // namespace fcbench::gpusim

#endif  // FCBENCH_GPUSIM_GFC_H_
