#include "gpusim/ndzip_gpu.h"

namespace fcbench::gpusim {

namespace {

/// Memory-traffic model of the ndzip-GPU pipeline (§4.4): read input,
/// write encoded chunks to scratch, read scratch back, write the compacted
/// stream. The shared-memory transform/transpose adds compute but little
/// global traffic.
KernelStats ModelStats(uint64_t input_bytes, uint64_t output_bytes) {
  KernelStats s;
  s.bytes_read = input_bytes + output_bytes;       // input + scratch re-read
  s.bytes_written = output_bytes + output_bytes;   // scratch + final stream
  // ~10 lock-step instructions per 32-element chunk step per stage.
  s.warp_instructions = input_bytes / 4 / 32 * 10;
  return s;
}

}  // namespace

NdzipGpuCompressor::NdzipGpuCompressor(const CompressorConfig& config)
    : cpu_kernel_(config),
      device_(DeviceSpec{}, config.threads > 0 ? config.threads : 8) {
  traits_ = cpu_kernel_.traits();
  traits_.name = "ndzip_gpu";
  traits_.arch = Arch::kGpu;
}

Status NdzipGpuCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                    Buffer* out) {
  size_t before = out->size();
  FCB_RETURN_IF_ERROR(cpu_kernel_.Compress(input, desc, out));
  KernelStats stats = ModelStats(input.size(), out->size() - before);
  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size() - before);
  return Status::OK();
}

Status NdzipGpuCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                      Buffer* out) {
  size_t before = out->size();
  FCB_RETURN_IF_ERROR(cpu_kernel_.Decompress(input, desc, out));
  // Decompression is fully block-parallel without synchronization (§4.4):
  // one read of the stream, one write of the output.
  KernelStats stats;
  stats.bytes_read = input.size();
  stats.bytes_written = out->size() - before;
  stats.warp_instructions = (out->size() - before) / 4 / 32 * 8;
  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size() - before);
  return Status::OK();
}

}  // namespace fcbench::gpusim
