#ifndef FCBENCH_GPUSIM_MPC_H_
#define FCBENCH_GPUSIM_MPC_H_

#include "core/compressor.h"
#include "gpusim/device.h"

namespace fcbench::gpusim {

/// MPC — Massively Parallel Compression (Yang et al. 2015; paper §4.2).
///
/// Auto-synthesized four-component pipeline over 1024-element chunks:
///   1. LNV6s — subtract the 6th prior value in the chunk
///   2. BIT   — bit transpose (same operation as Bitshuffle)
///   3. LNV1s — delta between consecutive words of the transposed chunk
///   4. ZE    — zero-word bitmap + copied non-zero words
/// Requires the word size (single/double) so LNV6s computes the right
/// residuals (§4.2 insights). Chunks are processed by independent
/// simulated thread blocks.
class MpcCompressor : public Compressor {
 public:
  explicit MpcCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  const GpuTiming* last_gpu_timing() const override { return &timing_; }

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<MpcCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  SimtDevice device_;
  GpuTiming timing_;
};

}  // namespace fcbench::gpusim

#endif  // FCBENCH_GPUSIM_MPC_H_
