#include "gpusim/device.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace fcbench::gpusim {

KernelStats SimtDevice::Launch(
    size_t num_warps, const std::function<void(WarpCtx&)>& warp_fn) const {
  if (num_warps == 0) return {};
  size_t parts = std::min<size_t>(num_warps, host_threads_);
  std::vector<KernelStats> partials(parts);
  ThreadPool pool(parts);
  size_t chunk = (num_warps + parts - 1) / parts;
  for (size_t p = 0; p < parts; ++p) {
    size_t begin = p * chunk;
    size_t end = std::min(num_warps, begin + chunk);
    if (begin >= end) break;
    pool.Submit([&, p, begin, end] {
      for (size_t w = begin; w < end; ++w) {
        WarpCtx ctx(w, &partials[p]);
        warp_fn(ctx);
      }
    });
  }
  pool.Wait();
  KernelStats total;
  for (const auto& s : partials) total += s;
  return total;
}

double SimtDevice::ModelKernelSeconds(const KernelStats& stats) const {
  double instr =
      static_cast<double>(stats.warp_instructions + stats.divergent_instructions);
  double compute_s =
      instr / (spec_.sm_count * spec_.warp_ipc * spec_.clock_ghz * 1e9);
  double mem_s = static_cast<double>(stats.bytes_read + stats.bytes_written) /
                 (spec_.mem_bw_gbps * 1e9);
  return std::max(compute_s, mem_s) + spec_.launch_overhead_s;
}

double SimtDevice::ModelTransferSeconds(uint64_t bytes) const {
  return static_cast<double>(bytes) / (spec_.pcie_gbps * 1e9) + 2e-5;
}

}  // namespace fcbench::gpusim
