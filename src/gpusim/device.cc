#include "gpusim/device.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace fcbench::gpusim {

KernelStats SimtDevice::Launch(
    size_t num_warps, const std::function<void(WarpCtx&)>& warp_fn) const {
  if (num_warps == 0) return {};
  // Shared pool (never a per-launch pool: Launch sits inside the
  // GPU-simulated methods' Compress/Decompress paths). KernelStats
  // counters are integers, so merge order cannot change the totals.
  KernelStats total;
  std::mutex merge_mu;
  ThreadPool::Shared().ParallelRanges(
      num_warps,
      [&](size_t begin, size_t end) {
        KernelStats local;
        for (size_t w = begin; w < end; ++w) {
          WarpCtx ctx(w, &local);
          warp_fn(ctx);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        total += local;
      },
      /*max_ranges=*/static_cast<size_t>(std::max(host_threads_, 1)));
  return total;
}

double SimtDevice::ModelKernelSeconds(const KernelStats& stats) const {
  double instr =
      static_cast<double>(stats.warp_instructions + stats.divergent_instructions);
  double compute_s =
      instr / (spec_.sm_count * spec_.warp_ipc * spec_.clock_ghz * 1e9);
  double mem_s = static_cast<double>(stats.bytes_read + stats.bytes_written) /
                 (spec_.mem_bw_gbps * 1e9);
  return std::max(compute_s, mem_s) + spec_.launch_overhead_s;
}

double SimtDevice::ModelTransferSeconds(uint64_t bytes) const {
  return static_cast<double>(bytes) / (spec_.pcie_gbps * 1e9) + 2e-5;
}

}  // namespace fcbench::gpusim
