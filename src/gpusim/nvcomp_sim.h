#ifndef FCBENCH_GPUSIM_NVCOMP_SIM_H_
#define FCBENCH_GPUSIM_NVCOMP_SIM_H_

#include "core/compressor.h"
#include "gpusim/device.h"

namespace fcbench::gpusim {

/// Simulated nvCOMP::LZ4 (paper §4.3). nvCOMP is proprietary; the paper
/// treats it as a black box with documented behaviour: the best GPU-side
/// compression ratio on TS/DB data, with compression throughput crippled
/// by branch divergence in the match search (§6.1.2 analysis (1)) and far
/// faster, nearly divergence-free decompression (18.6x CT, §6.1.3).
///
/// We reproduce it with our from-scratch LZ4 block codec over 64 KiB
/// chunks, one simulated thread block per chunk, with divergence cost
/// counted per byte of match search.
class NvLz4SimCompressor : public Compressor {
 public:
  explicit NvLz4SimCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  const GpuTiming* last_gpu_timing() const override { return &timing_; }

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<NvLz4SimCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  SimtDevice device_;
  GpuTiming timing_;
  size_t chunk_bytes_;
};

/// Simulated nvCOMP::bitcomp (paper §4.3): the fastest method in the
/// study (240 GB/s compress / 122 GB/s decompress modeled) with the
/// weakest ratios (~1.09 average; ~0.999 on unstructured data).
///
/// Reproduced as a single-pass delta + fixed-width bit-packing scheme:
/// per 512-element chunk, residuals are zigzagged and packed to the
/// chunk's maximum significant-bit width (one header byte per chunk).
class NvBitcompSimCompressor : public Compressor {
 public:
  explicit NvBitcompSimCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  const GpuTiming* last_gpu_timing() const override { return &timing_; }

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<NvBitcompSimCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  SimtDevice device_;
  GpuTiming timing_;
};

}  // namespace fcbench::gpusim

#endif  // FCBENCH_GPUSIM_NVCOMP_SIM_H_
