#ifndef FCBENCH_GPUSIM_DEVICE_H_
#define FCBENCH_GPUSIM_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "util/thread_pool.h"

namespace fcbench::gpusim {

/// Static description of the modeled GPU. Defaults approximate the Quadro
/// RTX 6000 used by the paper (§5.5): 72 SMs @ ~1.77 GHz, 24 GB GDDR6 at
/// ~672 GB/s, PCIe 3.0 x16 host link (~12 GB/s effective).
struct DeviceSpec {
  std::string name = "rtx6000-sim";
  int sm_count = 72;
  double clock_ghz = 1.77;
  /// Warp instructions retired per SM per cycle (issue width).
  double warp_ipc = 1.0;
  double mem_bw_gbps = 672.0;
  double pcie_gbps = 12.0;
  /// Fixed kernel-launch overhead, seconds.
  double launch_overhead_s = 8e-6;
  /// Device memory capacity; GFC historically rejected inputs > 512 MB.
  uint64_t memory_bytes = 24ull << 30;
};

/// Counters accumulated while simulated warps execute. These drive both
/// the throughput model (Tables 5/6) and the GPU roofline (Figure 11b).
struct KernelStats {
  /// Warp-level instructions (one per lock-step step of a 32-lane warp).
  uint64_t warp_instructions = 0;
  /// Extra serialized instructions caused by intra-warp branch divergence
  /// (the paper's recurring GPU bottleneck for dictionary methods).
  uint64_t divergent_instructions = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  KernelStats& operator+=(const KernelStats& o) {
    warp_instructions += o.warp_instructions;
    divergent_instructions += o.divergent_instructions;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
};

/// Modeled timing of one compression/decompression call on the device.
struct GpuTiming {
  double kernel_seconds = 0;
  double h2d_seconds = 0;  // host-to-device copy
  double d2h_seconds = 0;  // device-to-host copy

  double total_seconds() const {
    return kernel_seconds + h2d_seconds + d2h_seconds;
  }
};

/// Per-warp execution context handed to simulated kernels. Lanes run in
/// lock step; kernels account their work through the Count* methods and
/// may use the warp-wide primitives (ballot/shuffle/prefix sum) that the
/// real implementations rely on.
class WarpCtx {
 public:
  static constexpr int kWarpSize = 32;

  WarpCtx(size_t warp_id, KernelStats* stats)
      : warp_id_(warp_id), stats_(stats) {}

  size_t warp_id() const { return warp_id_; }

  /// One warp instruction covering all 32 lanes.
  void CountInstr(uint64_t n = 1) { stats_->warp_instructions += n; }
  /// Instructions serialized by divergence (counted on top of CountInstr).
  void CountDivergent(uint64_t n) { stats_->divergent_instructions += n; }
  void CountRead(uint64_t bytes) { stats_->bytes_read += bytes; }
  void CountWrite(uint64_t bytes) { stats_->bytes_written += bytes; }

  /// __ballot_sync: bit i set iff pred[i].
  uint32_t Ballot(const bool pred[kWarpSize]) {
    CountInstr();
    uint32_t mask = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      if (pred[i]) mask |= 1u << i;
    }
    return mask;
  }

  /// Exclusive warp prefix sum (as used for output offsets).
  void PrefixSumExclusive(const uint32_t in[kWarpSize],
                          uint32_t out[kWarpSize]) {
    CountInstr(5);  // log2(32) butterfly steps
    uint32_t acc = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      out[i] = acc;
      acc += in[i];
    }
  }

  /// __shfl_sync: value held by lane src_lane.
  template <typename T>
  T Shfl(const T vals[kWarpSize], int src_lane) {
    CountInstr();
    return vals[src_lane & (kWarpSize - 1)];
  }

 private:
  size_t warp_id_;
  KernelStats* stats_;
};

/// The SIMT device simulator: executes warps on host threads (functional
/// behaviour is bit-exact; the real algorithm runs per lane) and converts
/// the accumulated KernelStats into modeled device time via a roofline-
/// style cost model.
class SimtDevice {
 public:
  explicit SimtDevice(DeviceSpec spec = {}, int host_threads = 8)
      : spec_(std::move(spec)), host_threads_(host_threads) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Runs `warp_fn(ctx)` for every warp id in [0, num_warps); returns the
  /// summed stats. Warps execute concurrently on host threads, mirroring
  /// independent warp scheduling.
  KernelStats Launch(size_t num_warps,
                     const std::function<void(WarpCtx&)>& warp_fn) const;

  /// Modeled device execution time: the larger of the compute and memory
  /// rooflines plus launch overhead (divergent instructions are pure
  /// serialization and always add compute time).
  double ModelKernelSeconds(const KernelStats& stats) const;

  /// Modeled PCIe transfer time for `bytes` in one direction.
  double ModelTransferSeconds(uint64_t bytes) const;

 private:
  DeviceSpec spec_;
  int host_threads_;
};

}  // namespace fcbench::gpusim

#endif  // FCBENCH_GPUSIM_DEVICE_H_
