#ifndef FCBENCH_GPUSIM_NDZIP_GPU_H_
#define FCBENCH_GPUSIM_NDZIP_GPU_H_

#include "compressors/ndzip.h"
#include "core/compressor.h"
#include "gpusim/device.h"

namespace fcbench::gpusim {

/// ndzip-GPU (Knorr et al., SC 2021; paper §4.4).
///
/// "While the algorithm remains the same, the GPU implementation further
/// improves parallelism" — the stream format and therefore the compression
/// ratio are identical to ndzip-CPU (the paper's Table 4 lists equal CR
/// columns for both). We reuse the CPU kernel for the bits and model the
/// GPU execution: hypercubes map to thread blocks, encoded chunks go to a
/// global scratch, a parallel prefix sum computes output offsets, and a
/// final pass compacts scratch into the stream (§4.4 insights) — that
/// scratch round-trip is charged to the memory roofline.
class NdzipGpuCompressor : public Compressor {
 public:
  explicit NdzipGpuCompressor(const CompressorConfig& config);

  const CompressorTraits& traits() const override { return traits_; }

  Status Compress(ByteSpan input, const DataDesc& desc,
                  Buffer* out) override;
  Status Decompress(ByteSpan input, const DataDesc& desc,
                    Buffer* out) override;

  const GpuTiming* last_gpu_timing() const override { return &timing_; }

  static std::unique_ptr<Compressor> Make(const CompressorConfig& config) {
    return std::make_unique<NdzipGpuCompressor>(config);
  }

 private:
  CompressorTraits traits_;
  compressors::NdzipCompressor cpu_kernel_;
  SimtDevice device_;
  GpuTiming timing_;
};

}  // namespace fcbench::gpusim

#endif  // FCBENCH_GPUSIM_NDZIP_GPU_H_
