#include "gpusim/mpc.h"

#include <cstring>
#include <vector>

#include "compressors/transpose.h"
#include "util/bitio.h"

namespace fcbench::gpusim {

namespace {

constexpr size_t kChunkElems = 1024;
constexpr int kLnvStride = 6;
constexpr int kTransposePenalty = 4;  // non-coalesced gather/scatter

/// One 1024-element chunk through LNV6s -> BIT -> LNV1s -> ZE.
template <typename W>
void MpcEncodeChunk(WarpCtx& ctx, const uint8_t* src, Buffer* out) {
  constexpr size_t kBytes = kChunkElems * sizeof(W);
  constexpr int kWidth = sizeof(W) * 8;
  W x[kChunkElems];
  std::memcpy(x, src, kBytes);

  // LNV6s.
  ctx.CountRead(kBytes);
  ctx.CountInstr(kChunkElems / 32 * 2);
  ctx.CountWrite(kBytes);
  for (size_t i = kChunkElems - 1; i >= kLnvStride; --i) {
    x[i] -= x[i - kLnvStride];
  }

  // BIT: transpose the whole chunk (non-coalesced access pattern). The
  // transposed words are emitted plane-interleaved — word k of every bit
  // plane before word k+1 — so that the following LNV1s cancels the
  // sign-extension planes, which are bit-identical for small residuals
  // (this is what lets ZE remove them; without it MPC's ratio collapses
  // toward 1.0).
  ctx.CountRead(kBytes * kTransposePenalty);
  ctx.CountInstr(kChunkElems / 32 * 8);
  ctx.CountWrite(kBytes * kTransposePenalty);
  constexpr size_t kPlanes = kWidth;                  // bit planes
  constexpr size_t kWordsPerPlane = kChunkElems / kWidth;
  W raw[kChunkElems];
  compressors::BitTranspose(reinterpret_cast<const uint8_t*>(x),
                            reinterpret_cast<uint8_t*>(raw), kChunkElems,
                            sizeof(W));
  W t[kChunkElems];
  for (size_t pl = 0; pl < kPlanes; ++pl) {
    for (size_t k = 0; k < kWordsPerPlane; ++k) {
      t[k * kPlanes + pl] = raw[pl * kWordsPerPlane + k];
    }
  }

  // LNV1s over the transposed words.
  ctx.CountRead(kBytes);
  ctx.CountInstr(kChunkElems / 32 * 2);
  ctx.CountWrite(kBytes);
  for (size_t i = kChunkElems - 1; i >= 1; --i) t[i] -= t[i - 1];

  // ZE: bitmap per kWidth-word group, then the non-zero words. Each group
  // is compacted into a stack buffer and appended with a single call
  // (bounded by 1 + kWidth words) instead of one Append per kept word.
  ctx.CountRead(kBytes);
  ctx.CountInstr(kChunkElems / 32 * 4);
  for (size_t g = 0; g < kChunkElems; g += kWidth) {
    W group[1 + kWidth];
    W bitmap = 0;
    uint64_t kept = 0;
    for (int i = 0; i < kWidth; ++i) {
      if (t[g + i] != 0) {
        bitmap |= W(1) << i;
        group[1 + kept] = t[g + i];
        ++kept;
      }
    }
    group[0] = bitmap;
    out->Append(group, (1 + kept) * sizeof(W));
    ctx.CountWrite(sizeof(W) * (1 + kept));
    ctx.CountDivergent(kept / 8 + 1);
  }
}

template <typename W>
Status MpcDecodeChunk(WarpCtx& ctx, ByteSpan in, size_t* pos, uint8_t* dst) {
  constexpr size_t kBytes = kChunkElems * sizeof(W);
  constexpr int kWidth = sizeof(W) * 8;
  W t[kChunkElems];

  for (size_t g = 0; g < kChunkElems; g += kWidth) {
    W bitmap;
    if (!GetFixed(in, pos, &bitmap)) {
      return Status::Corruption("mpc: truncated bitmap");
    }
    for (int i = 0; i < kWidth; ++i) {
      W w = 0;
      if ((bitmap >> i) & 1) {
        if (!GetFixed(in, pos, &w)) {
          return Status::Corruption("mpc: truncated words");
        }
      }
      t[g + i] = w;
    }
  }
  ctx.CountRead(kBytes);
  ctx.CountInstr(kChunkElems / 32 * 6);

  for (size_t i = 1; i < kChunkElems; ++i) t[i] += t[i - 1];
  ctx.CountRead(kBytes);
  ctx.CountWrite(kBytes);

  // Undo the plane interleave, then the bit transpose.
  constexpr size_t kPlanes = kWidth;
  constexpr size_t kWordsPerPlane = kChunkElems / kWidth;
  W raw[kChunkElems];
  for (size_t pl = 0; pl < kPlanes; ++pl) {
    for (size_t k = 0; k < kWordsPerPlane; ++k) {
      raw[pl * kWordsPerPlane + k] = t[k * kPlanes + pl];
    }
  }
  W x[kChunkElems];
  compressors::BitUntranspose(reinterpret_cast<const uint8_t*>(raw),
                              reinterpret_cast<uint8_t*>(x), kChunkElems,
                              sizeof(W));
  ctx.CountRead(kBytes * kTransposePenalty);
  ctx.CountWrite(kBytes * kTransposePenalty);
  ctx.CountInstr(kChunkElems / 32 * 8);

  for (size_t i = kLnvStride; i < kChunkElems; ++i) x[i] += x[i - kLnvStride];
  ctx.CountWrite(kBytes);
  std::memcpy(dst, x, kBytes);
  return Status::OK();
}

}  // namespace

MpcCompressor::MpcCompressor(const CompressorConfig& config)
    : device_(DeviceSpec{}, config.threads > 0 ? config.threads : 8) {
  traits_.name = "mpc";
  traits_.year = 2015;
  traits_.domain = "HPC";
  traits_.arch = Arch::kGpu;
  traits_.predictor = PredictorClass::kDelta;
  traits_.parallel = true;
  traits_.uses_dimensions = false;
}

Status MpcCompressor::Compress(ByteSpan input, const DataDesc& desc,
                               Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  const size_t chunk_bytes = kChunkElems * esize;
  const size_t nchunks = input.size() / chunk_bytes;
  const size_t tail = input.size() - nchunks * chunk_bytes;

  std::vector<Buffer> parts(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    if (esize == 8) {
      MpcEncodeChunk<uint64_t>(ctx, input.data() + c * chunk_bytes,
                               &parts[c]);
    } else {
      MpcEncodeChunk<uint32_t>(ctx, input.data() + c * chunk_bytes,
                               &parts[c]);
    }
  });

  PutVarint64(out, input.size());
  PutVarint64(out, nchunks);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());
  out->Append(input.data() + nchunks * chunk_bytes, tail);

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size());
  return Status::OK();
}

Status MpcCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                 Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  size_t off = 0;
  uint64_t total = 0, nchunks = 0;
  if (!GetVarint64(input, &off, &total) ||
      !GetVarint64(input, &off, &nchunks)) {
    return Status::Corruption("mpc: bad header");
  }
  // Hostile-header guards: total sizes the output allocation, nchunks the
  // directory allocation.
  const uint64_t expected =
      desc.num_elements() > 0 ? desc.num_bytes() + 64 : (uint64_t(1) << 33);
  if (total > expected) {
    return Status::Corruption("mpc: declared size disagrees with desc");
  }
  if (nchunks > input.size() - off) {  // each chunk needs >= 1 header byte
    return Status::Corruption("mpc: implausible chunk count");
  }
  std::vector<uint64_t> sizes(nchunks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("mpc: bad chunk sizes");
    }
  }
  std::vector<size_t> starts(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    starts[c] = off;
    off += sizes[c];
    if (off > input.size()) return Status::Corruption("mpc: truncated");
  }
  const size_t chunk_bytes = kChunkElems * esize;
  if (nchunks * chunk_bytes > total) {
    return Status::Corruption("mpc: inconsistent header");
  }

  size_t base = out->size();
  out->Resize(base + total);
  uint8_t* dst = out->data() + base;
  std::vector<Status> stats_per(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    size_t pos = starts[c];
    ByteSpan view(input.data(), starts[c] + sizes[c]);
    if (esize == 8) {
      stats_per[c] =
          MpcDecodeChunk<uint64_t>(ctx, view, &pos, dst + c * chunk_bytes);
    } else {
      stats_per[c] =
          MpcDecodeChunk<uint32_t>(ctx, view, &pos, dst + c * chunk_bytes);
    }
  });
  for (const auto& st : stats_per) FCB_RETURN_IF_ERROR(st);

  size_t tail = total - nchunks * chunk_bytes;
  if (off + tail > input.size()) {
    return Status::Corruption("mpc: truncated tail");
  }
  std::memcpy(dst + nchunks * chunk_bytes, input.data() + off, tail);

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(total);
  return Status::OK();
}

}  // namespace fcbench::gpusim
