#include "gpusim/nvcomp_sim.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "codecs/lz4.h"
#include "util/bitio.h"
#include "util/float_bits.h"

namespace fcbench::gpusim {

// ---------------------------------------------------------------------------
// nvCOMP::LZ4 simulation

namespace {
/// Divergence model for the LZ4 kernels: the compress-side match search
/// serializes heavily inside a warp (roughly one warp-issue slot per probe
/// per byte); decompression is a mostly-convergent copy loop. Serialized
/// slots per input byte, calibrated against Table 5 (2.7 vs 53 GB/s).
constexpr int kLz4CompressDivergencePerByte = 44;
constexpr double kLz4DecompressDivergencePerByte = 2.2;
}  // namespace

NvLz4SimCompressor::NvLz4SimCompressor(const CompressorConfig& config)
    : device_(DeviceSpec{}, config.threads > 0 ? config.threads : 8),
      chunk_bytes_(config.block_size ? config.block_size : (64u << 10)) {
  traits_.name = "nv_lz4";
  traits_.year = 2020;
  traits_.domain = "general";
  traits_.arch = Arch::kGpu;
  traits_.predictor = PredictorClass::kDictionary;
  traits_.parallel = true;
  traits_.uses_dimensions = false;
}

Status NvLz4SimCompressor::Compress(ByteSpan input, const DataDesc& /*desc*/,
                                    Buffer* out) {
  size_t nchunks = (input.size() + chunk_bytes_ - 1) / chunk_bytes_;
  if (input.empty()) nchunks = 0;

  std::vector<Buffer> parts(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    size_t begin = c * chunk_bytes_;
    size_t len = std::min(chunk_bytes_, input.size() - begin);
    codecs::Lz4Codec().Compress(input.subspan(begin, len), &parts[c]);
    ctx.CountRead(len);
    ctx.CountWrite(parts[c].size());
    ctx.CountInstr(len / 32 * 4);
    ctx.CountDivergent(static_cast<uint64_t>(len) *
                       kLz4CompressDivergencePerByte);
  });

  PutVarint64(out, input.size());
  PutVarint64(out, chunk_bytes_);
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size());
  return Status::OK();
}

Status NvLz4SimCompressor::Decompress(ByteSpan input, const DataDesc& desc,
                                      Buffer* out) {
  size_t off = 0;
  uint64_t total = 0, chunk = 0;
  if (!GetVarint64(input, &off, &total) || !GetVarint64(input, &off, &chunk) ||
      chunk == 0) {
    return Status::Corruption("nv_lz4: bad header");
  }
  // Hostile-header guards (see corruption_test): total sizes the output
  // allocation, the derived chunk count the directory allocation.
  const uint64_t expected =
      desc.num_elements() > 0 ? desc.num_bytes() + 64 : (uint64_t(1) << 33);
  if (total > expected) {
    return Status::Corruption("nv_lz4: declared size disagrees with desc");
  }
  size_t nchunks = (total + chunk - 1) / chunk;
  if (total == 0) nchunks = 0;
  if (nchunks > input.size() - off) {
    return Status::Corruption("nv_lz4: implausible chunk count");
  }
  std::vector<uint64_t> sizes(nchunks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("nv_lz4: bad chunk sizes");
    }
  }
  std::vector<size_t> starts(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    starts[c] = off;
    off += sizes[c];
    if (off > input.size()) return Status::Corruption("nv_lz4: truncated");
  }

  size_t base = out->size();
  out->Resize(base + total);
  std::vector<Status> stats_per(nchunks);
  std::vector<Buffer> parts(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    size_t begin = c * chunk;
    size_t len = std::min<size_t>(chunk, total - begin);
    stats_per[c] = codecs::Lz4Codec().Decompress(
        input.subspan(starts[c], sizes[c]), len, &parts[c]);
    ctx.CountRead(sizes[c]);
    ctx.CountWrite(len);
    ctx.CountInstr(len / 32);
    ctx.CountDivergent(
        static_cast<uint64_t>(len * kLz4DecompressDivergencePerByte));
  });
  for (size_t c = 0; c < nchunks; ++c) {
    FCB_RETURN_IF_ERROR(stats_per[c]);
    std::memcpy(out->data() + base + c * chunk, parts[c].data(),
                parts[c].size());
  }

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(total);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// nvCOMP::bitcomp simulation

namespace {

constexpr size_t kBitcompChunk = 512;  // elements per packed chunk

template <typename W>
W BcZigZag(W v) {
  using S = std::make_signed_t<W>;
  return (v << 1) ^ static_cast<W>(static_cast<S>(v) >> (sizeof(W) * 8 - 1));
}

template <typename W>
W BcUnZigZag(W v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

/// Packs `n` residuals at `bits` width each (MSB-first bit stream).
template <typename W>
void PackBits(const W* vals, size_t n, int bits, Buffer* out) {
  out->Reserve(out->size() + (n * bits + 7) / 8 + 8);
  BitWriter bw(out);
  for (size_t i = 0; i < n; ++i) {
    bw.WriteBits(static_cast<uint64_t>(vals[i]), bits);
  }
  bw.Flush();
}

template <typename W>
void BitcompEncodeChunk(WarpCtx& ctx, const uint8_t* src, size_t n,
                        Buffer* out) {
  constexpr int kWidth = sizeof(W) * 8;
  W res[kBitcompChunk];
  W prev = 0;
  int max_sig = 0;
  for (size_t i = 0; i < n; ++i) {
    W v;
    std::memcpy(&v, src + i * sizeof(W), sizeof(W));
    W z = BcZigZag<W>(v - prev);
    prev = v;
    res[i] = z;
    int sig = kWidth - ((kWidth == 64)
                            ? LeadingZeros64(static_cast<uint64_t>(z))
                            : LeadingZeros32(static_cast<uint32_t>(z)));
    max_sig = std::max(max_sig, sig);
  }
  if (max_sig == 0) max_sig = 1;
  out->PushBack(static_cast<uint8_t>(max_sig));
  PackBits(res, n, max_sig, out);

  ctx.CountRead(n * sizeof(W));
  ctx.CountWrite(1 + (n * max_sig + 7) / 8);
  ctx.CountInstr(n / 32 * 6);  // single pass, fully convergent
}

template <typename W>
Status BitcompDecodeChunk(WarpCtx& ctx, ByteSpan in, size_t* pos, size_t n,
                          uint8_t* dst) {
  constexpr int kWidth = sizeof(W) * 8;
  if (*pos >= in.size()) return Status::Corruption("bitcomp: truncated");
  int bits = in[(*pos)++];
  if (bits <= 0 || bits > kWidth) {
    return Status::Corruption("bitcomp: bad width");
  }
  size_t packed = (n * bits + 7) / 8;
  if (*pos + packed > in.size()) {
    return Status::Corruption("bitcomp: truncated payload");
  }
  BitReader br(in.subspan(*pos, packed));
  *pos += packed;
  W prev = 0;
  if (bits <= 56) {
    // The size check above proved the payload holds n * bits bits, so the
    // per-read overrun branch can be skipped.
    for (size_t i = 0; i < n; ++i) {
      W z = static_cast<W>(br.ReadBitsUnchecked(bits));
      W v = prev + BcUnZigZag<W>(z);
      prev = v;
      std::memcpy(dst + i * sizeof(W), &v, sizeof(W));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      W z = static_cast<W>(br.ReadBits(bits));
      W v = prev + BcUnZigZag<W>(z);
      prev = v;
      std::memcpy(dst + i * sizeof(W), &v, sizeof(W));
    }
  }
  ctx.CountRead(1 + packed);
  ctx.CountWrite(n * sizeof(W));
  ctx.CountInstr(n / 32 * 6);
  return Status::OK();
}

}  // namespace

NvBitcompSimCompressor::NvBitcompSimCompressor(const CompressorConfig& config)
    : device_(DeviceSpec{}, config.threads > 0 ? config.threads : 8) {
  traits_.name = "nv_bitcomp";
  traits_.year = 2020;
  traits_.domain = "general";
  traits_.arch = Arch::kGpu;
  traits_.predictor = PredictorClass::kPrediction;
  traits_.parallel = true;
  traits_.uses_dimensions = false;
}

Status NvBitcompSimCompressor::Compress(ByteSpan input, const DataDesc& desc,
                                        Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  const size_t chunk_bytes = kBitcompChunk * esize;
  size_t nchunks = (input.size() + chunk_bytes - 1) / chunk_bytes;
  if (input.empty()) nchunks = 0;
  size_t n_elems = input.size() / esize;
  size_t tail_bytes = input.size() - n_elems * esize;

  std::vector<Buffer> parts(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    size_t begin_el = c * kBitcompChunk;
    size_t cnt = std::min(kBitcompChunk, n_elems - begin_el);
    if (cnt == 0) return;
    if (esize == 8) {
      BitcompEncodeChunk<uint64_t>(ctx, input.data() + begin_el * 8, cnt,
                                   &parts[c]);
    } else {
      BitcompEncodeChunk<uint32_t>(ctx, input.data() + begin_el * 4, cnt,
                                   &parts[c]);
    }
  });

  PutVarint64(out, input.size());
  for (const auto& p : parts) PutVarint64(out, p.size());
  for (const auto& p : parts) out->Append(p.span());
  out->Append(input.data() + n_elems * esize, tail_bytes);

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(out->size());
  return Status::OK();
}

Status NvBitcompSimCompressor::Decompress(ByteSpan input,
                                          const DataDesc& desc, Buffer* out) {
  const size_t esize = DTypeSize(desc.dtype);
  const size_t chunk_bytes = kBitcompChunk * esize;
  size_t off = 0;
  uint64_t total = 0;
  if (!GetVarint64(input, &off, &total)) {
    return Status::Corruption("bitcomp: bad header");
  }
  const uint64_t expected =
      desc.num_elements() > 0 ? desc.num_bytes() + 64 : (uint64_t(1) << 33);
  if (total > expected) {
    return Status::Corruption("bitcomp: declared size disagrees with desc");
  }
  size_t nchunks = (total + chunk_bytes - 1) / chunk_bytes;
  if (total == 0) nchunks = 0;
  if (nchunks > input.size() - off) {
    return Status::Corruption("bitcomp: implausible chunk count");
  }
  size_t n_elems = total / esize;
  std::vector<uint64_t> sizes(nchunks);
  for (auto& s : sizes) {
    if (!GetVarint64(input, &off, &s)) {
      return Status::Corruption("bitcomp: bad chunk sizes");
    }
  }
  std::vector<size_t> starts(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    starts[c] = off;
    off += sizes[c];
    if (off > input.size()) return Status::Corruption("bitcomp: truncated");
  }

  size_t base = out->size();
  out->Resize(base + total);
  uint8_t* dst = out->data() + base;
  std::vector<Status> stats_per(nchunks);
  KernelStats stats = device_.Launch(nchunks, [&](WarpCtx& ctx) {
    size_t c = ctx.warp_id();
    size_t begin_el = c * kBitcompChunk;
    size_t cnt = std::min(kBitcompChunk, n_elems - begin_el);
    if (cnt == 0) return;
    size_t pos = starts[c];
    ByteSpan view(input.data(), starts[c] + sizes[c]);
    if (esize == 8) {
      stats_per[c] = BitcompDecodeChunk<uint64_t>(ctx, view, &pos, cnt,
                                                  dst + begin_el * 8);
    } else {
      stats_per[c] = BitcompDecodeChunk<uint32_t>(ctx, view, &pos, cnt,
                                                  dst + begin_el * 4);
    }
  });
  for (const auto& st : stats_per) FCB_RETURN_IF_ERROR(st);

  size_t tail = total - n_elems * esize;
  if (off + tail > input.size()) {
    return Status::Corruption("bitcomp: truncated tail");
  }
  if (tail > 0) {  // dst may be null for a zero-size output
    std::memcpy(dst + n_elems * esize, input.data() + off, tail);
  }

  timing_.h2d_seconds = device_.ModelTransferSeconds(input.size());
  timing_.kernel_seconds = device_.ModelKernelSeconds(stats);
  timing_.d2h_seconds = device_.ModelTransferSeconds(total);
  return Status::OK();
}

}  // namespace fcbench::gpusim
