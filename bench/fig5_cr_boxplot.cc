// Figure 5: box plot of all measured compression ratios, plus the §6.1.1
// Observation 1 summary (median ~1.16, outliers up to ~22.8, CRs mostly
// <= 2.0: "floating-point data is difficult to compress").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace fcbench::bench {
namespace {

void RenderBoxPlot(const std::vector<double>& sorted) {
  double lo = 1.0, hi = *std::max_element(sorted.begin(), sorted.end());
  double q1 = Percentile(sorted, 25), med = Percentile(sorted, 50),
         q3 = Percentile(sorted, 75);
  const int width = 64;
  auto pos = [&](double v) {
    double x = std::log2(std::max(v, lo) / lo) /
               std::log2(std::max(hi / lo, 1.0001));
    return std::min(width - 1, static_cast<int>(x * (width - 1)));
  };
  std::string line(width, ' ');
  for (int i = pos(q1); i <= pos(q3); ++i) line[i] = '=';
  line[pos(med)] = '|';
  for (double v : sorted) {
    if (v > q3 + 1.5 * (q3 - q1)) line[pos(v)] = 'o';  // outliers
  }
  std::printf("  1.0 [%s] %.1f  (log scale)\n", line.c_str(), hi);
}

int Main() {
  Banner("Figure 5 - boxplot of compression ratios", "paper §6.1.1 Obs. 1");
  auto results = RunFullSweep(PaperMethods());

  std::vector<double> crs;
  for (const auto& r : results) {
    if (r.ok && r.cr > 0) crs.push_back(r.cr);
  }
  std::sort(crs.begin(), crs.end());

  RenderBoxPlot(crs);
  double med = Percentile(crs, 50);
  std::printf("\nmeasurements: %zu\n", crs.size());
  std::printf("min / q1 / median / q3 / max: %.3f / %.3f / %.3f / %.3f / %.3f\n",
              crs.front(), Percentile(crs, 25), med, Percentile(crs, 75),
              crs.back());
  size_t le2 = std::count_if(crs.begin(), crs.end(),
                             [](double c) { return c <= 2.0; });
  std::printf("share of CRs <= 2.0: %.1f%%  (paper: most, median 1.16)\n",
              100.0 * le2 / crs.size());
  std::printf("outliers above 2.0 range up to %.1fx (paper: 2.0 - 22.8)\n",
              crs.back());
  std::printf("\nObservation 1 reproduced: median CR %s 2.0 -> "
              "floating-point data is difficult to compress.\n",
              med <= 2.0 ? "<=" : ">");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
