// Microbenchmarks of the transform kernels (google-benchmark): bit
// transpose, byte shuffle, Lorenzo transform -- the building blocks whose
// cost DESIGN.md's ablations reference (bit transpose must run near
// memory bandwidth for bitshuffle/ndzip/MPC to be viable).

#include <benchmark/benchmark.h>

#include <vector>

#include "compressors/ndzip.h"
#include "compressors/transpose.h"
#include "util/rng.h"

namespace fcbench::compressors {
namespace {

std::vector<uint8_t> RandomBytes(size_t n) {
  Rng rng(7);
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

void BM_BitTranspose(benchmark::State& state) {
  size_t esize = static_cast<size_t>(state.range(0));
  size_t count = (1 << 20) / esize;
  auto src = RandomBytes(count * esize);
  std::vector<uint8_t> dst(count * esize);
  for (auto _ : state) {
    BitTranspose(src.data(), dst.data(), count, esize);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_BitTranspose)->Arg(4)->Arg(8);

void BM_BitUntranspose(benchmark::State& state) {
  size_t esize = static_cast<size_t>(state.range(0));
  size_t count = (1 << 20) / esize;
  auto src = RandomBytes(count * esize);
  std::vector<uint8_t> dst(count * esize);
  for (auto _ : state) {
    BitUntranspose(src.data(), dst.data(), count, esize);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_BitUntranspose)->Arg(4)->Arg(8);

void BM_ByteShuffle(benchmark::State& state) {
  size_t count = 1 << 17;
  auto src = RandomBytes(count * 8);
  std::vector<uint8_t> dst(count * 8);
  for (auto _ : state) {
    ByteShuffle(src.data(), dst.data(), count, 8);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_ByteShuffle);

void BM_LorenzoForward3D(benchmark::State& state) {
  size_t sides[3] = {16, 16, 16};
  Rng rng(9);
  std::vector<uint32_t> block(4096);
  for (auto& w : block) w = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    auto copy = block;
    ndzip_detail::LorenzoForward(copy.data(), sides);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 4);
}
BENCHMARK(BM_LorenzoForward3D);

void BM_LorenzoInverse3D(benchmark::State& state) {
  size_t sides[3] = {16, 16, 16};
  Rng rng(9);
  std::vector<uint32_t> block(4096);
  for (auto& w : block) w = static_cast<uint32_t>(rng.Next());
  ndzip_detail::LorenzoForward(block.data(), sides);
  for (auto _ : state) {
    auto copy = block;
    ndzip_detail::LorenzoInverse(copy.data(), sides);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 4);
}
BENCHMARK(BM_LorenzoInverse3D);

void BM_Transpose8x8(benchmark::State& state) {
  Rng rng(13);
  uint64_t x = rng.Next();
  for (auto _ : state) {
    x = Transpose8x8(x + 1);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Transpose8x8);

}  // namespace
}  // namespace fcbench::compressors

BENCHMARK_MAIN();
