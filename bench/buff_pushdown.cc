// BUFF query pushdown (paper §3.3): "BUFF can directly query
// byte-oriented columnar encoded data without decoding. This capability
// allows BUFF to achieve a speedup ranging from 35x to 50x for selective
// and aggregation filtering."
//
// This bench reproduces that claim's shape: the same selective filter and
// filtered aggregation run (a) as a sub-column scan on the encoded BUFF
// stream with early disqualification, (b) as BUFF-decompress + dataframe
// scan, and (c) as decompress + scan through the other serial database
// methods (Gorilla, Chimp), which is the baseline the original compares
// against. Expect (a) to beat (b) comfortably and (c) by well over an
// order of magnitude.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "compressors/buff.h"
#include "core/compressor.h"
#include "db/dataframe.h"
#include "db/query.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

using compressors::BuffCompressor;

struct Timed {
  double seconds = 0;
  uint64_t checksum = 0;  // keeps the work observable
};

// Runs `fn` (returning a checksum) `repeats` times, keeping the minimum.
template <typename F>
Timed TimeBest(int repeats, F&& fn) {
  Timed best;
  best.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    uint64_t sink = fn();
    double s = t.ElapsedSeconds();
    if (s < best.seconds) best = {s, sink};
  }
  return best;
}

int Main() {
  Banner("BUFF query pushdown", "paper §3.3 (35-50x filter speedup)");

  // Low-precision sensor series: BUFF's motivating workload (server
  // monitoring / IoT, 2 decimal digits).
  const size_t n = BenchBytes() / sizeof(double);
  Rng rng(2024);
  std::vector<double> values(n);
  double level = 20.0;
  for (auto& v : values) {
    level += rng.Normal() * 0.05;
    v = std::round(level * 100.0) / 100.0;
  }
  DataDesc desc;
  desc.dtype = DType::kFloat64;
  desc.extent = {n};
  desc.precision_digits = 2;

  // Selective constant: ~1% of records qualify for `value < c`.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double selective_c = sorted[n / 100];
  const int repeats = BenchRepeats(5);

  CompressorConfig cfg;
  BuffCompressor buff(cfg);
  Buffer encoded;
  if (!buff.Compress(AsBytes(values), desc, &encoded).ok()) return 1;

  // (a) pushdown on the encoded stream.
  Timed pd_filter = TimeBest(repeats, [&] {
    auto hits = BuffCompressor::SubColumnScan(
        encoded.span(), BuffCompressor::Predicate::kLess, selective_c);
    uint64_t count = 0;
    for (bool h : hits.value()) count += h;
    return count;
  });
  Timed pd_agg = TimeBest(repeats, [&] {
    auto agg = BuffCompressor::FilteredAggregate(
        encoded.span(), BuffCompressor::Predicate::kLess, selective_c,
        BuffCompressor::Aggregate::kSum);
    return agg.value().count;
  });

  TablePrinter t({"path", "filter_ms", "agg_ms", "filter_x", "agg_x",
                  "matches"},
                 11, 26);
  auto add_row = [&](const std::string& name, Timed filter, Timed agg) {
    t.AddRow({name, TablePrinter::Fmt(filter.seconds * 1e3),
              TablePrinter::Fmt(agg.seconds * 1e3),
              TablePrinter::Fmt(filter.seconds / pd_filter.seconds, 1),
              TablePrinter::Fmt(agg.seconds / pd_agg.seconds, 1),
              TablePrinter::Fmt(double(filter.checksum), 0)});
  };
  add_row("buff pushdown (encoded)", pd_filter, pd_agg);

  // (b, c) decompress + dataframe scan for each serial DB-side method.
  for (const std::string& method : {std::string("buff"),
                                    std::string("gorilla"),
                                    std::string("chimp128")}) {
    auto comp = CompressorRegistry::Global().Create(method, cfg);
    if (!comp.ok()) continue;
    Buffer stream;
    if (!comp.value()->Compress(AsBytes(values), desc, &stream).ok()) {
      continue;
    }
    Timed filter = TimeBest(repeats, [&] {
      Buffer out;
      if (!comp.value()->Decompress(stream.span(), desc, &out).ok()) return uint64_t(0);
      auto df = db::DataFrame::FromBytes(out.span(), desc);
      auto sel = db::Filter(df.value(), db::ScanPredicate{
                                            .column = 0,
                                            .op = db::CompareOp::kLt,
                                            .value = selective_c});
      return uint64_t(sel.value().size());
    });
    Timed agg = TimeBest(repeats, [&] {
      Buffer out;
      if (!comp.value()->Decompress(stream.span(), desc, &out).ok()) return uint64_t(0);
      auto df = db::DataFrame::FromBytes(out.span(), desc);
      auto sel = db::Filter(df.value(), db::ScanPredicate{
                                            .column = 0,
                                            .op = db::CompareOp::kLt,
                                            .value = selective_c});
      auto sum = db::Aggregate(df.value(), 0, db::AggregateOp::kSum,
                               &sel.value());
      (void)sum;
      return uint64_t(sel.value().size());
    });
    add_row(method + " decode+scan", filter, agg);
  }
  t.Print();

  std::printf(
      "\nShape check vs paper: pushdown should be the fastest path; the\n"
      "decode+scan baselines through XOR coders (gorilla/chimp) should be\n"
      ">= an order of magnitude slower (paper reports 35-50x).\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
