// Dzip-style NN coder speed check (paper §4.5): "Although Dzip is faster
// than other NN-based compressors ... its compression speed is about
// several KB/s. Thus, NN-based compression methods are still not
// practical." This bench reproduces that finding against the fastest and
// slowest conventional methods: the NN coder should land orders of
// magnitude below both, while often matching or beating them on ratio.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/compressor.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("NN coder practicality", "paper §4.5 (Dzip: several KB/s)");

  // Small corpus: the NN coder is the bottleneck by design.
  const size_t bytes = std::min<uint64_t>(BenchBytes(), 256 << 10);
  auto info = data::FindDataset("citytemp");
  auto ds = data::GenerateDataset(*info, bytes);
  if (!ds.ok()) return 1;

  TablePrinter t({"method", "CR", "comp_MBps", "decomp_MBps", "class"}, 12,
                 14);
  for (const std::string& m :
       {std::string("dzip_nn"), std::string("gorilla"),
        std::string("bitshuffle_zstd"), std::string("ndzip_cpu")}) {
    auto comp = CompressorRegistry::Global().Create(m);
    if (!comp.ok()) continue;
    Buffer enc;
    Timer ct;
    if (!comp.value()
             ->Compress(ds.value().bytes.span(), ds.value().desc, &enc)
             .ok()) {
      continue;
    }
    double cs = ct.ElapsedSeconds();
    Buffer dec;
    Timer dt;
    if (!comp.value()->Decompress(enc.span(), ds.value().desc, &dec).ok()) {
      continue;
    }
    double dsec = dt.ElapsedSeconds();
    t.AddRow({m, TablePrinter::Fmt(double(bytes) / enc.size()),
              TablePrinter::Fmt(bytes / cs / 1e6, 2),
              TablePrinter::Fmt(bytes / dsec / 1e6, 2),
              m == "dzip_nn" ? "neural" : "conventional"});
  }
  t.Print();
  std::printf(
      "\nShape check vs paper: dzip_nn throughput should be orders of\n"
      "magnitude below the conventional methods (the paper measures KB/s\n"
      "for the PyTorch original; this fixed-point CPU port is faster in\n"
      "absolute terms but preserves the impracticality gap).\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
