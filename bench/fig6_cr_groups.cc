// Figure 6: compression ratios grouped by (a) data type and domain and
// (b) predictor class and hardware platform (§6.1.1 medians:
// single > double; OBS > HPC/TS > DB; dictionary > Lorenzo > delta;
// CPU > GPU).

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/compressor.h"

namespace fcbench::bench {
namespace {

void PrintGroup(const char* title,
                const std::map<std::string, std::vector<double>>& groups) {
  std::printf("\n%s\n", title);
  TablePrinter t({"group", "median", "q1", "q3", "n"}, 10, 14);
  for (const auto& [name, crs] : groups) {
    t.AddRow({name, TablePrinter::Fmt(Percentile(crs, 50)),
              TablePrinter::Fmt(Percentile(crs, 25)),
              TablePrinter::Fmt(Percentile(crs, 75)),
              std::to_string(crs.size())});
  }
  t.Print();
}

int Main() {
  Banner("Figure 6 - CR by data/method groups", "paper §6.1.1 Obs. 1");
  auto results = RunFullSweep(PaperMethods());

  std::map<std::string, std::vector<double>> by_dtype, by_domain, by_pred,
      by_arch;
  auto& registry = CompressorRegistry::Global();
  std::map<std::string, CompressorTraits> traits;
  for (const auto& m : PaperMethods()) {
    traits[m] = registry.Create(m).value()->traits();
  }

  for (const auto& r : results) {
    if (!r.ok || r.cr <= 0) continue;
    const data::DatasetInfo* info = data::FindDataset(r.dataset);
    by_dtype[info->dtype == DType::kFloat32 ? "single(f32)" : "double(f64)"]
        .push_back(r.cr);
    by_domain[std::string(data::DomainName(info->domain))].push_back(r.cr);
    by_pred[std::string(PredictorClassName(traits[r.method].predictor))]
        .push_back(r.cr);
    by_arch[traits[r.method].arch == Arch::kCpu ? "CPU" : "GPU"].push_back(
        r.cr);
  }

  PrintGroup("(a1) by precision", by_dtype);
  PrintGroup("(a2) by data domain", by_domain);
  PrintGroup("(b1) by predictor class", by_pred);
  PrintGroup("(b2) by hardware platform", by_arch);

  auto med = [&](std::map<std::string, std::vector<double>>& g,
                 const std::string& k) { return Percentile(g[k], 50); };
  std::printf("\nShape checks vs. paper:\n");
  std::printf("  single >= double:        %s (%.3f vs %.3f; paper 1.225 vs 1.202)\n",
              med(by_dtype, "single(f32)") >= med(by_dtype, "double(f64)")
                  ? "yes" : "NO",
              med(by_dtype, "single(f32)"), med(by_dtype, "double(f64)"));
  std::printf("  DB hardest domain:       %s (DB median %.3f; paper 1.080)\n",
              med(by_domain, "DB") <= med(by_domain, "HPC") &&
                      med(by_domain, "DB") <= med(by_domain, "OBS")
                  ? "yes" : "NO",
              med(by_domain, "DB"));
  std::printf("  dictionary > delta:      %s (%.3f vs %.3f; paper 1.309 vs 1.116)\n",
              med(by_pred, "DICTIONARY") > med(by_pred, "DELTA") ? "yes"
                                                                 : "NO",
              med(by_pred, "DICTIONARY"), med(by_pred, "DELTA"));
  std::printf("  CPU >= GPU:              %s (%.3f vs %.3f)\n",
              med(by_arch, "CPU") >= med(by_arch, "GPU") ? "yes" : "NO",
              med(by_arch, "CPU"), med(by_arch, "GPU"));
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
