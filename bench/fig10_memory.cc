// Figure 10: memory footprint during compression vs. input size. The
// paper's finding: most methods use ~2x the input; pFPC/SPDP run in
// fixed-size buffers; BUFF's staging makes it the most memory-hungry
// (unsuitable for in-situ analysis).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/mem_tracker.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Figure 10 - memory footprint", "paper §6.1.7");
  const std::vector<std::string> methods = {
      "gfc",  "mpc",  "spdp", "bitshuffle_zstd",
      "buff", "fpzip", "ndzip_cpu", "pfpc"};
  const std::vector<uint64_t> sizes = {1ull << 20, 2ull << 20, 4ull << 20,
                                       8ull << 20};

  std::vector<std::string> headers = {"input MB"};
  for (const auto& m : methods) headers.push_back(m.substr(0, 9));
  TablePrinter t(headers, 11, 10);

  std::vector<double> buff_ratio, other_ratio;
  for (uint64_t bytes : sizes) {
    auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"), bytes);
    if (!ds.ok()) continue;
    std::vector<std::string> row = {
        TablePrinter::Fmt(ds.value().bytes.size() / 1e6, 1)};
    for (const auto& m : methods) {
      auto comp = CompressorRegistry::Global().Create(m).TakeValue();
      MemTracker::Global().ResetPeak();
      size_t before = MemTracker::Global().current();
      Buffer out;
      Status st = comp->Compress(ds.value().bytes.span(), ds.value().desc,
                                 &out);
      double peak_mb =
          st.ok() ? (MemTracker::Global().peak() - before) / 1e6 : 0;
      row.push_back(TablePrinter::Fmt(peak_mb, 1));
      double ratio = peak_mb * 1e6 / ds.value().bytes.size();
      if (m == "buff") {
        buff_ratio.push_back(ratio);
      } else {
        other_ratio.push_back(ratio);
      }
    }
    t.AddRow(row);
  }
  t.Print();

  double buff_avg = 0, other_avg = 0;
  for (double r : buff_ratio) buff_avg += r;
  for (double r : other_ratio) other_avg += r;
  buff_avg /= buff_ratio.empty() ? 1 : buff_ratio.size();
  other_avg /= other_ratio.empty() ? 1 : other_ratio.size();
  std::printf("\nWorking-set growth (tracked compressor buffers, MB of "
              "footprint per MB of input):\n");
  std::printf("  BUFF: %.2fx   other methods avg: %.2fx\n", buff_avg,
              other_avg);
  std::printf("Shape check vs. paper: BUFF's staging uses the largest "
              "footprint of the suite (paper ~7x vs ~2x) -> %s\n",
              buff_avg > other_avg ? "yes (largest)" : "NO");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
