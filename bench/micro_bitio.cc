// Microbenchmark of the bit I/O engine (the substrate under every
// variable-length coder: Gorilla, Chimp, timestamps, Huffman, FSE, fpzip,
// bitcomp). Three tiers:
//
//   1. Raw field packing: WriteBits/ReadBits over a Gorilla-shaped field
//      mix, word-at-a-time engine vs the seed one-bit-at-a-time reference
//      (vendored below, byte-identical output asserted at runtime).
//   2. Kernel ablation: the same XOR-compression kernels templated over
//      both engines, isolating the bit I/O contribution to codec speed.
//   3. End-to-end: the real registered Gorilla / Chimp / timestamp coders.
//
// `--json[=path]` records rows in the BENCH_*.json schema (default path
// BENCH_micro_codecs.json); the committed copy at the repo root is the
// perf trajectory artifact reviewed in perf PRs. Paper context: CT/DT
// columns of Tables 5-8 (throughput is FCBench's headline axis).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compressors/chimp.h"
#include "compressors/gorilla.h"
#include "compressors/gorilla_timestamps.h"
#include "util/bitio.h"
#include "util/float_bits.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

// ---------------------------------------------------------------------------
// Seed (pre-refactor) one-bit-at-a-time engine, vendored verbatim as the
// baseline. Do not "fix" it: its job is to stay slow the way the original
// was slow.
// ---------------------------------------------------------------------------
class RefBitWriter {
 public:
  explicit RefBitWriter(Buffer* out) : out_(out) {}
  void WriteBits(uint64_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) WriteBit((value >> i) & 1u);
  }
  void WriteBit(uint32_t bit) {
    acc_ = static_cast<uint8_t>((acc_ << 1) | (bit & 1u));
    if (++nacc_ == 8) {
      out_->PushBack(acc_);
      acc_ = 0;
      nacc_ = 0;
    }
  }
  void Flush() {
    if (nacc_ > 0) {
      out_->PushBack(static_cast<uint8_t>(acc_ << (8 - nacc_)));
      acc_ = 0;
      nacc_ = 0;
    }
  }

 private:
  Buffer* out_;
  uint8_t acc_ = 0;
  int nacc_ = 0;
};

class RefBitReader {
 public:
  explicit RefBitReader(ByteSpan in) : in_(in) {}
  uint32_t ReadBit() {
    if (byte_ >= in_.size()) {
      overrun_ = true;
      return 0;
    }
    uint32_t bit = (in_[byte_] >> (7 - nbit_)) & 1u;
    if (++nbit_ == 8) {
      nbit_ = 0;
      ++byte_;
    }
    return bit;
  }
  uint64_t ReadBits(int nbits) {
    uint64_t v = 0;
    for (int i = 0; i < nbits; ++i) v = (v << 1) | ReadBit();
    return v;
  }
  bool overrun() const { return overrun_; }

 private:
  ByteSpan in_;
  size_t byte_ = 0;
  int nbit_ = 0;
  bool overrun_ = false;
};

// ---------------------------------------------------------------------------
// Data: random walks shaped like sensor series (libm-free, reproducible).
// ---------------------------------------------------------------------------
std::vector<double> WalkF64(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 100.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Uniform(-0.25, 0.25);
    if (i % 64 == 0) x += rng.Uniform(0.0, 8.0);
    v[i] = x;
  }
  return v;
}

std::vector<int64_t> StampsMs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  int64_t t = 1600000000000;
  for (size_t i = 0; i < n; ++i) {
    t += 1000 + static_cast<int64_t>(rng.UniformInt(7)) - 3;
    v[i] = t;
  }
  return v;
}

/// Gorilla-shaped field schedule: mostly short control codes plus
/// medium-width residuals, the mix every XOR coder feeds the bit engine.
struct Field {
  uint64_t value;
  int nbits;
};

std::vector<Field> FieldMix(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Field> f(n);
  for (size_t i = 0; i < n; ++i) {
    int w;
    switch (rng.UniformInt(8)) {
      case 0:
      case 1:
      case 2:
        w = 1;  // zero-XOR control bit
        break;
      case 3:
      case 4:
        w = 2;  // two-bit flags
        break;
      case 5:
        w = 13;  // fused window header
        break;
      default:
        w = 10 + static_cast<int>(rng.UniformInt(45));  // residual
        break;
    }
    f[i] = {rng.Next() & ((w == 64) ? ~0ull : ((uint64_t(1) << w) - 1)), w};
  }
  return f;
}

// ---------------------------------------------------------------------------
// Tier 2: the Gorilla XOR kernel templated over the engine. Logic mirrors
// compressors/gorilla.cc (which asserts byte-identity against the seed
// format in tests/wire_format_test.cc); here both instantiations must
// produce identical streams too, checked at startup.
// ---------------------------------------------------------------------------
template <typename Writer>
void KernelGorillaEncode(const std::vector<double>& vals, Buffer* out) {
  Writer bw(out);
  uint64_t prev = 0;
  int prev_lead = -1, prev_trail = -1;
  for (size_t i = 0; i < vals.size(); ++i) {
    uint64_t v;
    std::memcpy(&v, &vals[i], 8);
    if (i == 0) {
      bw.WriteBits(v, 64);
      prev = v;
      continue;
    }
    uint64_t x = v ^ prev;
    prev = v;
    if (x == 0) {
      bw.WriteBit(0);
      continue;
    }
    int lead = LeadingZeros64(x);
    int trail = TrailingZeros64(x);
    if (lead > 31) lead = 31;
    if (prev_lead >= 0 && lead >= prev_lead && trail >= prev_trail) {
      int sig = 64 - prev_lead - prev_trail;
      bw.WriteBits(0b10, 2);
      bw.WriteBits(x >> prev_trail, sig);
    } else {
      int sig = 64 - lead - trail;
      bw.WriteBits(0b11, 2);
      bw.WriteBits(static_cast<uint64_t>(lead), 5);
      bw.WriteBits(static_cast<uint64_t>(sig - 1), 6);
      bw.WriteBits(x >> trail, sig);
      prev_lead = lead;
      prev_trail = trail;
    }
  }
  bw.Flush();
}

template <typename Reader>
bool KernelGorillaDecode(ByteSpan in, size_t n, std::vector<double>* out) {
  Reader br(in);
  out->resize(n);
  uint64_t prev = 0;
  int prev_lead = -1, prev_trail = -1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v;
    if (i == 0) {
      v = br.ReadBits(64);
    } else if (br.ReadBit() == 0) {
      v = prev;
    } else if (br.ReadBit() == 0) {
      int sig = 64 - prev_lead - prev_trail;
      v = prev ^ (br.ReadBits(sig) << prev_trail);
    } else {
      int lead = static_cast<int>(br.ReadBits(5));
      int sig = static_cast<int>(br.ReadBits(6)) + 1;
      int trail = 64 - lead - sig;
      if (trail < 0) return false;
      v = prev ^ (br.ReadBits(sig) << trail);
      prev_lead = lead;
      prev_trail = trail;
    }
    if (br.overrun()) return false;
    prev = v;
    std::memcpy(&(*out)[i], &v, 8);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Tier 2b: the Chimp128 kernel (64-bit path) templated over the engine,
// mirroring compressors/chimp.cc.
// ---------------------------------------------------------------------------
constexpr int kChimpPrev = 128;
constexpr int kChimpKeyBits = 14;
constexpr size_t kChimpKeySize = size_t(1) << kChimpKeyBits;
constexpr int kChimpLeadRound[] = {0, 8, 12, 16, 18, 20, 22, 24};

int ChimpLeadCode(int lead) {
  int code = 0;
  for (int i = 0; i < 8; ++i) {
    if (kChimpLeadRound[i] <= lead) code = i;
  }
  return code;
}

struct ChimpWindow {
  std::vector<uint64_t> stored = std::vector<uint64_t>(kChimpPrev, 0);
  std::vector<int64_t> key_to_pos = std::vector<int64_t>(kChimpKeySize, -1);
  int64_t count = 0;
  void Push(uint64_t v) {
    stored[count % kChimpPrev] = v;
    key_to_pos[static_cast<size_t>(v) & (kChimpKeySize - 1)] = count;
    ++count;
  }
  int Find(uint64_t v) const {
    int64_t pos = key_to_pos[static_cast<size_t>(v) & (kChimpKeySize - 1)];
    if (pos < 0 || count - pos >= kChimpPrev) return -1;
    return static_cast<int>(pos % kChimpPrev);
  }
};

template <typename Writer>
void KernelChimpEncode(const std::vector<double>& vals, Buffer* out) {
  Writer bw(out);
  ChimpWindow state;
  uint64_t prev = 0;
  int prev_lead_code = 0;
  for (size_t i = 0; i < vals.size(); ++i) {
    uint64_t v;
    std::memcpy(&v, &vals[i], 8);
    if (i == 0) {
      bw.WriteBits(v, 64);
      state.Push(v);
      prev = v;
      continue;
    }
    int cand = state.Find(v);
    uint64_t xc = (cand >= 0) ? (v ^ state.stored[cand]) : ~uint64_t(0);
    int trail = TrailingZeros64(xc);
    if (cand >= 0 && xc == 0) {
      bw.WriteBits(0b00, 2);
      bw.WriteBits(static_cast<uint64_t>(cand), 7);
    } else if (cand >= 0 && trail > 6) {
      int lead_code = ChimpLeadCode(LeadingZeros64(xc));
      int sig = 64 - kChimpLeadRound[lead_code] - trail;
      bw.WriteBits(0b01, 2);
      bw.WriteBits(static_cast<uint64_t>(cand), 7);
      bw.WriteBits(static_cast<uint64_t>(lead_code), 3);
      bw.WriteBits(static_cast<uint64_t>(sig - 1), 6);
      bw.WriteBits(xc >> trail, sig);
    } else {
      uint64_t x = v ^ prev;
      int lead_code = ChimpLeadCode(LeadingZeros64(x));
      if (x != 0 && lead_code == prev_lead_code) {
        bw.WriteBits(0b10, 2);
        bw.WriteBits(x, 64 - kChimpLeadRound[lead_code]);
      } else {
        if (x == 0) lead_code = 7;
        bw.WriteBits(0b11, 2);
        bw.WriteBits(static_cast<uint64_t>(lead_code), 3);
        bw.WriteBits(x, 64 - kChimpLeadRound[lead_code]);
        prev_lead_code = lead_code;
      }
    }
    state.Push(v);
    prev = v;
  }
  bw.Flush();
}

template <typename Reader>
bool KernelChimpDecode(ByteSpan in, size_t n, std::vector<double>* out) {
  Reader br(in);
  ChimpWindow state;
  out->resize(n);
  uint64_t prev = 0;
  int prev_lead_code = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v;
    if (i == 0) {
      v = br.ReadBits(64);
    } else {
      switch (br.ReadBits(2)) {
        case 0b00:
          v = state.stored[br.ReadBits(7)];
          break;
        case 0b01: {
          int idx = static_cast<int>(br.ReadBits(7));
          int lead_code = static_cast<int>(br.ReadBits(3));
          int sig = static_cast<int>(br.ReadBits(6)) + 1;
          int trail = 64 - kChimpLeadRound[lead_code] - sig;
          if (trail < 0) return false;
          v = state.stored[idx] ^ (br.ReadBits(sig) << trail);
          break;
        }
        case 0b10:
          v = prev ^ br.ReadBits(64 - kChimpLeadRound[prev_lead_code]);
          break;
        default: {
          int lead_code = static_cast<int>(br.ReadBits(3));
          v = prev ^ br.ReadBits(64 - kChimpLeadRound[lead_code]);
          prev_lead_code = lead_code;
          break;
        }
      }
    }
    if (br.overrun()) return false;
    state.Push(v);
    prev = v;
    std::memcpy(&(*out)[i], &v, 8);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Measurement helpers.
// ---------------------------------------------------------------------------
double BestGbps(uint64_t bytes, int repeats, const auto& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    best = std::max(best, ThroughputGBps(bytes, t.ElapsedSeconds()));
  }
  return best;
}

double RoundTripGbps(double ct, double dt) {
  if (ct <= 0 || dt <= 0) return 0;
  return 1.0 / (1.0 / ct + 1.0 / dt);  // harmonic: one byte through both
}

}  // namespace

int Main(int argc, char** argv) {
  Banner("micro_bitio (bit I/O engine)", "Tables 5-8 CT/DT substrate");
  std::string json_path = JsonOutputPath(argc, argv, "BENCH_micro_codecs.json");
  JsonReporter report;
  const int repeats = BenchRepeats(5);
  const size_t n = BenchBytes() / 8;  // elements per series

  TablePrinter table({"bench", "cr", "ct_gbps", "dt_gbps", "rt_gbps"}, 12, 26);

  // Tier 1: raw field packing, both engines, identical schedules.
  {
    auto fields = FieldMix(n, 0x0B17);
    uint64_t payload_bits = 0;
    for (const auto& f : fields) payload_bits += f.nbits;
    uint64_t bytes = payload_bits / 8;

    Buffer ref_stream, word_stream;
    double ref_ct = BestGbps(bytes, repeats, [&] {
      ref_stream.Clear();
      RefBitWriter bw(&ref_stream);
      for (const auto& f : fields) bw.WriteBits(f.value, f.nbits);
      bw.Flush();
    });
    double word_ct = BestGbps(bytes, repeats, [&] {
      word_stream.Clear();
      BitWriter bw(&word_stream);
      for (const auto& f : fields) bw.WriteBits(f.value, f.nbits);
      bw.Flush();
    });
    if (ref_stream.size() != word_stream.size() ||
        std::memcmp(ref_stream.data(), word_stream.data(),
                    ref_stream.size()) != 0) {
      std::fprintf(stderr, "FATAL: engines produced different streams\n");
      return 1;
    }
    uint64_t sink = 0;
    double ref_dt = BestGbps(bytes, repeats, [&] {
      RefBitReader br(ref_stream.span());
      for (const auto& f : fields) sink ^= br.ReadBits(f.nbits);
    });
    double word_dt = BestGbps(bytes, repeats, [&] {
      BitReader br(word_stream.span());
      for (const auto& f : fields) sink ^= br.ReadBits(f.nbits);
    });
    if (sink == 0xdeadbeef) std::printf(" ");  // keep reads alive
    report.Add("bitio_ref", "field_mix", 1.0, ref_ct, ref_dt);
    report.Add("bitio_word", "field_mix", 1.0, word_ct, word_dt);
    table.AddRow({"bitio_ref(field_mix)", "-", TablePrinter::Fmt(ref_ct),
                  TablePrinter::Fmt(ref_dt),
                  TablePrinter::Fmt(RoundTripGbps(ref_ct, ref_dt))});
    table.AddRow({"bitio_word(field_mix)", "-", TablePrinter::Fmt(word_ct),
                  TablePrinter::Fmt(word_dt),
                  TablePrinter::Fmt(RoundTripGbps(word_ct, word_dt))});
  }

  // Tier 2: identical Gorilla kernel over both engines.
  double ablation_speedup = 0;
  {
    auto vals = WalkF64(n, 0xBEEF);
    uint64_t bytes = vals.size() * 8;
    Buffer ref_stream, word_stream;
    double ref_ct = BestGbps(bytes, repeats, [&] {
      ref_stream.Clear();
      KernelGorillaEncode<RefBitWriter>(vals, &ref_stream);
    });
    double word_ct = BestGbps(bytes, repeats, [&] {
      word_stream.Clear();
      KernelGorillaEncode<BitWriter>(vals, &word_stream);
    });
    if (ref_stream.size() != word_stream.size() ||
        std::memcmp(ref_stream.data(), word_stream.data(),
                    ref_stream.size()) != 0) {
      std::fprintf(stderr, "FATAL: gorilla kernel streams diverged\n");
      return 1;
    }
    std::vector<double> out;
    double ref_dt = BestGbps(bytes, repeats, [&] {
      KernelGorillaDecode<RefBitReader>(ref_stream.span(), vals.size(), &out);
    });
    double word_dt = BestGbps(bytes, repeats, [&] {
      KernelGorillaDecode<BitReader>(word_stream.span(), vals.size(), &out);
    });
    double cr = static_cast<double>(bytes) / ref_stream.size();
    report.Add("gorilla_kernel_ref", "walk_f64", cr, ref_ct, ref_dt);
    report.Add("gorilla_kernel_word", "walk_f64", cr, word_ct, word_dt);
    ablation_speedup = RoundTripGbps(word_ct, word_dt) /
                       RoundTripGbps(ref_ct, ref_dt);
    table.AddRow({"gorilla_kernel_ref", TablePrinter::Fmt(cr),
                  TablePrinter::Fmt(ref_ct), TablePrinter::Fmt(ref_dt),
                  TablePrinter::Fmt(RoundTripGbps(ref_ct, ref_dt))});
    table.AddRow({"gorilla_kernel_word", TablePrinter::Fmt(cr),
                  TablePrinter::Fmt(word_ct), TablePrinter::Fmt(word_dt),
                  TablePrinter::Fmt(RoundTripGbps(word_ct, word_dt))});
  }

  // Tier 2b: identical Chimp128 kernel over both engines.
  double chimp_speedup = 0;
  {
    auto vals = WalkF64(n, 0xBEEF);
    uint64_t bytes = vals.size() * 8;
    Buffer ref_stream, word_stream;
    double ref_ct = BestGbps(bytes, repeats, [&] {
      ref_stream.Clear();
      KernelChimpEncode<RefBitWriter>(vals, &ref_stream);
    });
    double word_ct = BestGbps(bytes, repeats, [&] {
      word_stream.Clear();
      KernelChimpEncode<BitWriter>(vals, &word_stream);
    });
    if (ref_stream.size() != word_stream.size() ||
        std::memcmp(ref_stream.data(), word_stream.data(),
                    ref_stream.size()) != 0) {
      std::fprintf(stderr, "FATAL: chimp kernel streams diverged\n");
      return 1;
    }
    std::vector<double> out;
    double ref_dt = BestGbps(bytes, repeats, [&] {
      KernelChimpDecode<RefBitReader>(ref_stream.span(), vals.size(), &out);
    });
    double word_dt = BestGbps(bytes, repeats, [&] {
      KernelChimpDecode<BitReader>(word_stream.span(), vals.size(), &out);
    });
    double cr = static_cast<double>(bytes) / ref_stream.size();
    report.Add("chimp_kernel_ref", "walk_f64", cr, ref_ct, ref_dt);
    report.Add("chimp_kernel_word", "walk_f64", cr, word_ct, word_dt);
    chimp_speedup = RoundTripGbps(word_ct, word_dt) /
                    RoundTripGbps(ref_ct, ref_dt);
    table.AddRow({"chimp_kernel_ref", TablePrinter::Fmt(cr),
                  TablePrinter::Fmt(ref_ct), TablePrinter::Fmt(ref_dt),
                  TablePrinter::Fmt(RoundTripGbps(ref_ct, ref_dt))});
    table.AddRow({"chimp_kernel_word", TablePrinter::Fmt(cr),
                  TablePrinter::Fmt(word_ct), TablePrinter::Fmt(word_dt),
                  TablePrinter::Fmt(RoundTripGbps(word_ct, word_dt))});
  }

  // Tier 3: the real registered coders end to end.
  auto bench_compressor = [&](const char* name, auto& comp, DType dtype,
                              const auto& vals) {
    DataDesc desc = DataDesc::Make(dtype, {vals.size()});
    uint64_t bytes = vals.size() * DTypeSize(dtype);
    Buffer compressed;
    double ct = BestGbps(bytes, repeats, [&] {
      compressed.Clear();
      comp.Compress(AsBytes(vals), desc, &compressed);
    });
    Buffer out;
    double dt = BestGbps(bytes, repeats, [&] {
      out.Clear();
      comp.Decompress(compressed.span(), desc, &out);
    });
    double cr = static_cast<double>(bytes) / compressed.size();
    report.Add(name, "walk_f64", cr, ct, dt);
    table.AddRow({name, TablePrinter::Fmt(cr), TablePrinter::Fmt(ct),
                  TablePrinter::Fmt(dt),
                  TablePrinter::Fmt(RoundTripGbps(ct, dt))});
  };
  {
    auto vals = WalkF64(n, 0xBEEF);
    CompressorConfig cfg;
    compressors::GorillaCompressor gorilla(cfg);
    compressors::ChimpCompressor chimp(cfg);
    bench_compressor("gorilla", gorilla, DType::kFloat64, vals);
    bench_compressor("chimp128", chimp, DType::kFloat64, vals);
  }
  {
    auto ts = StampsMs(n, 0x7157);
    uint64_t bytes = ts.size() * 8;
    Buffer compressed;
    double ct = BestGbps(bytes, repeats, [&] {
      compressed.Clear();
      compressors::GorillaTimestampCodec::Compress(ts, &compressed);
    });
    double dt = BestGbps(bytes, repeats, [&] {
      auto got = compressors::GorillaTimestampCodec::Decompress(
          compressed.span(), ts.size());
      if (!got.ok()) std::abort();
    });
    double cr = static_cast<double>(bytes) / compressed.size();
    report.Add("gorilla_ts", "stamps_ms", cr, ct, dt);
    table.AddRow({"gorilla_ts", TablePrinter::Fmt(cr), TablePrinter::Fmt(ct),
                  TablePrinter::Fmt(dt),
                  TablePrinter::Fmt(RoundTripGbps(ct, dt))});
  }

  table.Print();
  std::printf("\nround-trip speedup, word vs seed bit-at-a-time engine: "
              "gorilla %.2fx, chimp %.2fx\n",
              ablation_speedup, chimp_speedup);
  if (!json_path.empty() && !report.WriteToFile(json_path)) return 1;
  return 0;
}

}  // namespace fcbench::bench

int main(int argc, char** argv) { return fcbench::bench::Main(argc, argv); }
