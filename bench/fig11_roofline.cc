// Figure 11: roofline analysis. CPU methods: measured throughput x
// analytic ops/byte of the hottest kernel -> dot under the Xeon roofs.
// GPU methods: modeled SIMT throughput -> dot under the RTX 6000 roofs.
// Paper §6.3 Observation 10: GPU methods hug the memory roof; serial CPU
// methods sit far below both roofs; ndzip is compute-bound.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "roofline/roofline.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Figure 11 - roofline analysis", "paper §6.3 Obs. 10");
  // Profile on msg-bt, like the paper (footnote 15).
  auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"),
                                  BenchBytes(4ull << 20));
  if (!ds.ok()) return 1;
  BenchmarkRunner::Options opt;
  opt.repeats = BenchRepeats();
  BenchmarkRunner runner(opt);

  // CPU plot.
  std::vector<roofline::KernelPoint> cpu_points;
  for (const auto& m : CpuMethods()) {
    auto r = runner.RunOne(m, ds.value());
    if (!r.ok) continue;
    cpu_points.push_back(roofline::PointFromThroughput(
        m, roofline::CpuMethodOpsPerByte(m), r.ct_gbps * 1e9));
  }
  auto cpu = roofline::CpuRoofline();
  std::printf("\n(a) CPU-based methods\n%s",
              roofline::RenderAscii(cpu, cpu_points).c_str());

  // GPU plot: modeled achieved rates with per-pipeline intensity
  // estimates (lane ops per device byte; see gpusim kernels).
  std::vector<roofline::KernelPoint> gpu_points;
  auto gpu_intensity = [](const std::string& m) {
    if (m == "gfc") return 0.4;
    if (m == "mpc") return 0.5;
    if (m == "nv_lz4") return 45.0;   // divergence-serialized search
    if (m == "nv_bitcomp") return 0.8;
    return 1.2;  // ndzip_gpu
  };
  for (const auto& m : GpuMethods()) {
    auto r = runner.RunOne(m, ds.value());
    if (!r.ok) continue;
    gpu_points.push_back(roofline::PointFromThroughput(
        m, gpu_intensity(m), r.ct_gbps * 1e9));
  }
  auto gpu = roofline::GpuRoofline();
  std::printf("\n(b) GPU-based methods (modeled)\n%s",
              roofline::RenderAscii(gpu, gpu_points).c_str());

  int gpu_near_mem = 0;
  for (const auto& p : gpu_points) {
    if (roofline::Classify(gpu, p, 0.25) != roofline::Bound::kLatencyBound) {
      ++gpu_near_mem;
    }
  }
  int cpu_below = 0;
  for (const auto& p : cpu_points) {
    if (roofline::Classify(cpu, p, 0.25) == roofline::Bound::kLatencyBound) {
      ++cpu_below;
    }
  }
  std::printf("\nShape checks vs. paper:\n");
  std::printf("  GPU methods near a roof: %d/%zu (paper: most near the "
              "memory roof)\n",
              gpu_near_mem, gpu_points.size());
  std::printf("  CPU methods far below the roofs: %d/%zu (paper: serial "
              "methods are neither memory- nor compute-bound -> "
              "parallelism would help)\n",
              cpu_below, cpu_points.size());
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
