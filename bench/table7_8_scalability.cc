// Tables 7 and 8: parallel compression/decompression scalability of the
// multi-threaded CPU methods (pFPC, bitshuffle::LZ4, bitshuffle::zstd,
// ndzip-CPU) across 1..48 threads.
//
// Two result sets are printed:
//   measured - wall clock on this host (meaningful only when the host has
//              as many cores as threads; the reference container for this
//              reproduction exposes a single core, where every speedup is
//              pinned at ~1x by physics);
//   modeled  - a work-span host model (DESIGN.md substitution table): the
//              measured single-thread throughput scaled by an Amdahl term
//              with per-method parallel fraction, a memory-bandwidth
//              ceiling shared by all cores, and a per-thread coordination
//              cost. Parameters derive from each method's architecture
//              (pFPC's serial merge, bitshuffle's block independence,
//              ndzip's internally-saturated pipeline) and reproduce the
//              paper's saturate-at-16-24-threads-then-degrade shape.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

/// Host scaling model parameters per method.
struct ScalingModel {
  double parallel_fraction;  // Amdahl p
  double bw_cap_speedup;     // ceiling from shared memory bandwidth
  double per_thread_cost;    // contention cost per thread past the knee
  int degrade_start;         // thread count where contention kicks in
};

ScalingModel ModelFor(const std::string& method, bool decompress) {
  // Calibrated against the Table 7/8 saturation points: pFPC ~4.7x@24
  // staying ~4x@48, shf+LZ4 peaking ~3.5x@16 then 1.6x@48, shf+zstd
  // ~11x@24 then ~6x@48, ndzip ~1x flat (§6.1.6 "implementation issue").
  if (method == "pfpc") return {0.80, 5.0, 0.004, 24};
  if (method == "bitshuffle_lz4") {
    return decompress ? ScalingModel{0.70, 2.9, 0.045, 8}
                      : ScalingModel{0.75, 3.6, 0.030, 16};
  }
  if (method == "bitshuffle_zstd") {
    return decompress ? ScalingModel{0.75, 3.7, 0.040, 8}
                      : ScalingModel{0.97, 11.5, 0.040, 24};
  }
  return {0.02, 1.05, 0.0, 48};  // ndzip_cpu: internally saturated
}

double ModeledSpeedup(const ScalingModel& m, int threads) {
  double amdahl = 1.0 / ((1.0 - m.parallel_fraction) +
                         m.parallel_fraction / threads);
  double s = std::min(amdahl, m.bw_cap_speedup);
  // Contention/oversubscription erodes the gain past the knee (the
  // >16-24-thread decline in the paper's tables).
  s /= 1.0 + m.per_thread_cost * std::max(0, threads - m.degrade_start);
  return s;
}

int Main() {
  Banner("Tables 7/8 - parallel scalability", "paper §6.1.6 Obs. 7");
  const std::vector<std::string> methods = {"pfpc", "bitshuffle_lz4",
                                            "bitshuffle_zstd", "ndzip_cpu"};
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16, 24, 32, 48};
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("host cores available: %u%s\n", hw,
              hw < 16 ? "  (wall-clock scaling capped by hardware; see the "
                        "modeled table)"
                      : "");

  auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"),
                                  BenchBytes(8ull << 20));
  if (!ds.ok()) {
    std::printf("dataset generation failed\n");
    return 1;
  }
  const double mb = static_cast<double>(ds.value().bytes.size()) / 1e6;

  // Every cell is genuinely executed on the shared pool; the pool caps
  // concurrency at the host's cores, so budgets past `hw` measure the
  // real (flat) behaviour rather than oversubscription noise.
  const int pool_threads = ThreadPool::DefaultThreads();
  std::printf("shared pool: %d workers\n", pool_threads);

  for (bool decompress : {false, true}) {
    std::printf("\n%s\n", decompress
                              ? "Table 8 - decompression throughput"
                              : "Table 7 - compression throughput");
    std::vector<std::string> headers = {"threads"};
    for (const auto& m : methods) headers.push_back(m.substr(0, 15));
    TablePrinter measured_t(headers, 22, 8);
    std::vector<double> base_mbps(methods.size(), 0);

    for (int threads : thread_counts) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        CompressorConfig cfg;
        cfg.threads = threads;
        auto comp = CompressorRegistry::Global()
                        .Create(methods[mi], cfg)
                        .TakeValue();
        Buffer c;
        Status st =
            comp->Compress(ds.value().bytes.span(), ds.value().desc, &c);
        int reps = BenchRepeats();
        Timer timer;
        for (int r = 0; r < reps; ++r) {
          Buffer tmp;
          if (decompress) {
            st = comp->Decompress(c.span(), ds.value().desc, &tmp);
          } else {
            st = comp->Compress(ds.value().bytes.span(), ds.value().desc,
                                &tmp);
          }
        }
        double secs = timer.ElapsedSeconds() / reps;
        double mbps = st.ok() && secs > 0 ? mb / secs : 0;
        if (threads == 1) base_mbps[mi] = mbps;
        char buf[80];
        std::snprintf(buf, sizeof(buf), "%8.0f %5.2fx", mbps,
                      base_mbps[mi] > 0 ? mbps / base_mbps[mi] : 0.0);
        row.push_back(buf);
      }
      measured_t.AddRow(row);
    }
    std::printf("measured on this host (wall clock, shared pool):\n");
    measured_t.Print();

    TablePrinter model_t(headers, 30, 8);
    for (int threads : thread_counts) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        double model_speedup =
            ModeledSpeedup(ModelFor(methods[mi], decompress), threads);
        double mbps = base_mbps[mi] * model_speedup;
        char buf[80];
        std::snprintf(buf, sizeof(buf), "%7.0f %5.2fx(%3.0f%%)", mbps,
                      model_speedup, 100.0 * model_speedup / threads);
        row.push_back(buf);
      }
      model_t.AddRow(row);
    }
    std::printf("modeled for the paper's 48-core host (work-span model on "
                "the measured 1-thread baseline):\n");
    model_t.Print();
  }

  std::printf("\nShape check vs. paper: pFPC ~4.7x and bitshuffle_zstd "
              "~11x at 24 threads then declining; bitshuffle_lz4 peaking "
              "~3.4x near 8-16 threads; ndzip-CPU flat at ~1x "
              "(paper Tables 7/8).\n");
  std::printf("Measured cells run for real on the shared pool (capped at "
              "%d cores); the modeled table projects the paper's host "
              "from the measured baselines.\n",
              pool_threads);
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
