// Table 4: the full 33-dataset x 14-method compression-ratio matrix with
// per-domain averages and the overall average (harmonic means, §5.2).

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/entropy.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Table 4 - compression ratio matrix", "paper §6.1.1");
  const auto& methods = PaperMethods();
  auto results = RunFullSweep(methods);

  std::map<std::pair<std::string, std::string>, const RunResult*> lookup;
  for (const auto& r : results) lookup[{r.dataset, r.method}] = &r;

  std::vector<std::string> headers = {"dataset"};
  for (const auto& m : methods) headers.push_back(m.substr(0, 9));
  TablePrinter table(headers, 10, 18);

  data::Domain current = data::Domain::kHpc;
  std::map<std::string, std::vector<double>> domain_crs;
  auto flush_domain = [&](data::Domain d) {
    std::vector<std::string> row = {std::string("avg-") +
                                    std::string(data::DomainName(d))};
    for (const auto& m : methods) {
      auto& v = domain_crs[m];
      row.push_back(TablePrinter::Fmt(HarmonicMean(v.data(), v.size())));
      v.clear();
    }
    table.AddRow(row);
  };

  bool first = true;
  for (const auto& info : data::AllDatasets()) {
    if (!first && info.domain != current) flush_domain(current);
    first = false;
    current = info.domain;
    std::vector<std::string> row = {info.name};
    for (const auto& m : methods) {
      auto it = lookup.find({info.name, m});
      if (it == lookup.end() || !it->second->ok) {
        row.push_back("-");  // paper's "-" cells (runtime errors / limits)
      } else {
        row.push_back(TablePrinter::Fmt(it->second->cr));
        domain_crs[m].push_back(it->second->cr);
      }
    }
    table.AddRow(row);
  }
  flush_domain(current);

  // Overall harmonic means (Figure 7a values).
  std::vector<std::string> overall = {"overall-avg"};
  auto summaries = Summarize(results);
  for (const auto& m : methods) {
    for (const auto& s : summaries) {
      if (s.method == m) {
        overall.push_back(TablePrinter::Fmt(s.harmonic_cr));
      }
    }
  }
  table.AddRow(overall);
  table.Print();

  std::printf("\nNote: '-' marks runs the method rejected (e.g. GFC on "
              "single-precision data), matching the paper's missing "
              "cells.\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
