// Table 5 + Figure 8: average compression and decompression throughput
// per method (GB/s). CPU methods are wall-clock measured on this host;
// GPU methods report the SIMT cost model's device throughput (§5.2,
// DESIGN.md substitution table). Observation 3: GPU-based methods are
// orders of magnitude faster; Observation 4: decompression tends to be
// faster than compression.

#include <cstdio>

#include "bench_common.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Table 5 / Figure 8 - throughputs", "paper §6.1.2-6.1.3");
  auto results = RunFullSweep(PaperMethods());
  auto summaries = Summarize(results);

  TablePrinter t({"method", "avg CT GB/s", "avg DT GB/s", "arch"}, 13, 18);
  double cpu_ct_max = 0, gpu_ct_median_src = 0;
  std::vector<double> gpu_cts, cpu_cts;
  auto gpu = GpuMethods();
  for (const auto& s : summaries) {
    bool is_gpu =
        std::find(gpu.begin(), gpu.end(), s.method) != gpu.end();
    t.AddRow({s.method, TablePrinter::Fmt(s.mean_ct_gbps),
              TablePrinter::Fmt(s.mean_dt_gbps), is_gpu ? "GPU" : "CPU"});
    if (is_gpu) {
      gpu_cts.push_back(s.mean_ct_gbps);
    } else {
      cpu_cts.push_back(s.mean_ct_gbps);
      cpu_ct_max = std::max(cpu_ct_max, s.mean_ct_gbps);
    }
  }
  t.Print();
  (void)gpu_ct_median_src;

  double gpu_med = Percentile(gpu_cts, 50);
  double cpu_med = Percentile(cpu_cts, 50);
  std::printf("\nObservation 3: GPU median CT %.2f GB/s vs CPU median %.3f "
              "GB/s -> %.0fx (paper: ~350x, 73.71 vs 0.21)\n",
              gpu_med, cpu_med, cpu_med > 0 ? gpu_med / cpu_med : 0.0);

  int decomp_faster = 0, total = 0;
  for (const auto& s : summaries) {
    ++total;
    if (s.mean_dt_gbps >= s.mean_ct_gbps * 0.8) ++decomp_faster;
  }
  std::printf("Observation 4: decompression >= ~compression for %d/%d "
              "methods (LZ-family strongly asymmetric).\n",
              decomp_faster, total);
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
