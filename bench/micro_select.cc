// Adaptive-selection microbenchmark: oracle-vs-auto compression ratio
// and selection overhead across the nine synthetic generator kinds.
//
// For one representative dataset per data::GenKind this bench
//   1. compresses every chunk with every candidate method to build the
//      per-chunk *oracle* (the best any fixed assignment could do) and
//      the best/worst *single-method* baselines,
//   2. runs auto-ratio cold (empty decision cache) and warm (second
//      pass on the same instance) and records its ratio, throughput and
//      the fraction of compression wall time spent selecting.
//
// The committed artifact BENCH_adaptive_selection.json records, per
// dataset, rows "oracle", "auto-ratio", "best-single(<m>)",
// "worst-single(<m>)" (cr column = compression ratio) and
// "select-overhead-warm" / "select-overhead-cold" (cr column = fraction
// of compression wall time spent in selection), plus harmonic-mean
// "ALL" aggregate rows. Acceptance tracked here: auto-ratio within 5%
// of the oracle's harmonic-mean CR, strictly better than the worst
// single method, warm selection overhead < 10%.

#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.h"
#include "core/compressor.h"
#include "select/auto_compressor.h"
#include "select/selector.h"
#include "util/entropy.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace fcbench;

namespace {

constexpr size_t kChunkBytes = 128 << 10;

/// One representative dataset per synthetic generator kind.
const char* kGenKindDataset[][2] = {
    {"kSmoothField", "wave"},      {"kNoisyField", "msg-bt"},
    {"kSparseField", "astro-mhd"}, {"kSensorWalk", "phone-gyro"},
    {"kQuantizedTs", "citytemp"},  {"kMarketData", "jane-street"},
    {"kSkyImage", "acs-wht"},      {"kHdrImage", "hdr-night"},
    {"kTpcColumns", "tpcH-order"},
};

struct DatasetResult {
  double oracle_cr = 0;
  double auto_cr = 0;
  double best_single_cr = 0;
  double worst_single_cr = 0;
  std::string best_single, worst_single;
  double auto_ct_gbps = 0;
  double auto_dt_gbps = 0;
  double overhead_cold = 0;  // select seconds / compress wall, cold cache
  double overhead_warm = 0;
};

DatasetResult RunDataset(const data::Dataset& ds) {
  DatasetResult r;
  const auto& candidates = select::Selector::DefaultCandidates();
  const size_t esize = DTypeSize(ds.desc.dtype);
  const size_t chunk_elems = kChunkBytes / esize;
  const uint64_t chunk_raw = chunk_elems * esize;
  const size_t nchunks =
      (ds.bytes.size() + chunk_raw - 1) / chunk_raw;

  // Per-chunk payload size for every candidate (chunk-parallel; each
  // task owns one (chunk, method) cell).
  std::vector<std::vector<uint64_t>> sizes(
      candidates.size(), std::vector<uint64_t>(nchunks, 0));
  ThreadPool::Shared().ParallelFor(nchunks * candidates.size(), [&](size_t t) {
    const size_t m = t / nchunks;
    const size_t c = t % nchunks;
    const uint64_t begin = c * chunk_raw;
    const uint64_t len =
        std::min<uint64_t>(chunk_raw, ds.bytes.size() - begin);
    DataDesc desc;
    desc.dtype = ds.desc.dtype;
    desc.extent = {len / esize};
    CompressorConfig cfg;
    cfg.threads = 1;
    auto comp = CompressorRegistry::Global().Create(candidates[m], cfg);
    Buffer out;
    if (comp.ok() &&
        comp.value()
            ->Compress(ds.bytes.span().subspan(begin, len), desc, &out)
            .ok()) {
      sizes[m][c] = out.size();
    }
  });

  uint64_t oracle_bytes = 0;
  for (size_t c = 0; c < nchunks; ++c) {
    uint64_t best = UINT64_MAX;
    for (size_t m = 0; m < candidates.size(); ++m) {
      if (sizes[m][c] > 0) best = std::min(best, sizes[m][c]);
    }
    oracle_bytes += best == UINT64_MAX ? chunk_raw : best;
  }
  r.oracle_cr = static_cast<double>(ds.bytes.size()) / oracle_bytes;

  for (size_t m = 0; m < candidates.size(); ++m) {
    uint64_t total = 0;
    bool ok = true;
    for (size_t c = 0; c < nchunks; ++c) {
      if (sizes[m][c] == 0) ok = false;
      total += sizes[m][c];
    }
    if (!ok) continue;
    double cr = static_cast<double>(ds.bytes.size()) / total;
    if (r.best_single.empty() || cr > r.best_single_cr) {
      r.best_single_cr = cr;
      r.best_single = candidates[m];
    }
    if (r.worst_single.empty() || cr < r.worst_single_cr) {
      r.worst_single_cr = cr;
      r.worst_single = candidates[m];
    }
  }

  // auto-ratio: cold pass (empty decision cache), then a warm pass on
  // the same instance. Selection seconds come from the trace; the
  // overhead ratio is selection time over the whole compression wall.
  CompressorConfig cfg;
  cfg.chunk_bytes = kChunkBytes;
  select::SelectionTrace cold_trace;
  cfg.selection_trace = &cold_trace;
  auto auto_comp = CompressorRegistry::Global().Create("auto-ratio", cfg);
  if (!auto_comp.ok()) return r;

  Buffer cold_out;
  Timer cold_timer;
  if (!auto_comp.value()
           ->Compress(ds.bytes.span(), ds.desc, &cold_out)
           .ok()) {
    return r;
  }
  const double cold_wall = cold_timer.ElapsedSeconds();
  r.overhead_cold = cold_trace.total_select_seconds() / cold_wall;

  // The trace pointer was captured at construction; clear the cold
  // entries so the warm pass is measured alone.
  cold_trace.entries.clear();
  Buffer warm_out;
  Timer warm_timer;
  if (!auto_comp.value()
           ->Compress(ds.bytes.span(), ds.desc, &warm_out)
           .ok()) {
    return r;
  }
  const double warm_wall = warm_timer.ElapsedSeconds();
  r.overhead_warm = cold_trace.total_select_seconds() / warm_wall;
  r.auto_cr = static_cast<double>(ds.bytes.size()) / warm_out.size();
  r.auto_ct_gbps = ds.bytes.size() / warm_wall / 1e9;

  Buffer decoded;
  Timer dec_timer;
  if (auto_comp.value()->Decompress(warm_out.span(), ds.desc, &decoded).ok()) {
    r.auto_dt_gbps = ds.bytes.size() / dec_timer.ElapsedSeconds() / 1e9;
    if (decoded.size() != ds.bytes.size() ||
        std::memcmp(decoded.data(), ds.bytes.data(), decoded.size()) != 0) {
      std::fprintf(stderr, "WARNING: auto-ratio round trip NOT exact on %s\n",
                   ds.info->name.c_str());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("micro_select: oracle-vs-auto adaptive selection",
                "selector over the paper's lossless CPU suite");
  const uint64_t bytes = bench::BenchBytes(1 << 20);
  bench::JsonReporter json;
  bench::TablePrinter table({"generator/dataset", "oracle", "auto", "best1",
                             "worst1", "ovh-cold", "ovh-warm"},
                            10, 24);

  std::vector<double> oracle_crs, auto_crs, worst_crs;
  bool all_within = true, all_beat_worst = true, all_overhead_ok = true;
  for (const auto& [kind, name] : kGenKindDataset) {
    const data::DatasetInfo* info = data::FindDataset(name);
    auto ds = data::GenerateDataset(*info, bytes);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   ds.status().ToString().c_str());
      continue;
    }
    DatasetResult r = RunDataset(ds.value());
    oracle_crs.push_back(r.oracle_cr);
    auto_crs.push_back(r.auto_cr);
    worst_crs.push_back(r.worst_single_cr);
    all_within &= r.auto_cr >= 0.95 * r.oracle_cr;
    all_beat_worst &= r.auto_cr > r.worst_single_cr;
    all_overhead_ok &= r.overhead_warm < 0.10;

    table.AddRow({std::string(kind) + "/" + name,
                  bench::TablePrinter::Fmt(r.oracle_cr),
                  bench::TablePrinter::Fmt(r.auto_cr),
                  bench::TablePrinter::Fmt(r.best_single_cr),
                  bench::TablePrinter::Fmt(r.worst_single_cr),
                  bench::TablePrinter::Fmt(r.overhead_cold),
                  bench::TablePrinter::Fmt(r.overhead_warm)});

    json.Add("oracle", name, r.oracle_cr, 0, 0);
    json.Add("auto-ratio", name, r.auto_cr, r.auto_ct_gbps, r.auto_dt_gbps);
    json.Add("best-single(" + r.best_single + ")", name, r.best_single_cr,
             0, 0);
    json.Add("worst-single(" + r.worst_single + ")", name,
             r.worst_single_cr, 0, 0);
    json.Add("select-overhead-cold", name, r.overhead_cold, 0, 0);
    json.Add("select-overhead-warm", name, r.overhead_warm, 0, 0);
  }
  table.Print();

  const double hm_oracle = HarmonicMean(oracle_crs.data(), oracle_crs.size());
  const double hm_auto = HarmonicMean(auto_crs.data(), auto_crs.size());
  const double hm_worst = HarmonicMean(worst_crs.data(), worst_crs.size());
  std::printf("\nharmonic-mean CR: oracle %.3f, auto-ratio %.3f (%.1f%% of "
              "oracle), worst single %.3f\n",
              hm_oracle, hm_auto, 100.0 * hm_auto / hm_oracle, hm_worst);
  std::printf("auto within 5%% of oracle per dataset: %s; beats worst "
              "single: %s; warm overhead < 10%%: %s\n",
              all_within ? "yes" : "NO", all_beat_worst ? "yes" : "NO",
              all_overhead_ok ? "yes" : "NO");
  json.Add("oracle", "ALL", hm_oracle, 0, 0);
  json.Add("auto-ratio", "ALL", hm_auto, 0, 0);
  json.Add("worst-single", "ALL", hm_worst, 0, 0);

  const std::string json_path = bench::JsonOutputPath(
      argc, argv, "BENCH_adaptive_selection.json");
  if (!json_path.empty()) json.WriteToFile(json_path);
  return 0;
}
