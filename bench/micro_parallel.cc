// Threads -> throughput curve of the chunk-parallel execution engine
// (core/chunked.h + util/thread_pool.h): serial baselines vs their par-*
// variants at increasing thread budgets.
//
// `--threads=1,2,4` selects the budgets (default 1,2,4,8); budgets above
// the shared pool size still run (the pool caps execution, the row
// records what the host could actually do). `--json[=path]` writes the
// BENCH_*.json schema with the thread budget suffixed to the method name
// ("par-gorilla@t4"); the committed BENCH_parallel_scaling.json is the
// perf-trajectory artifact for this PR — on a multi-core host the
// par-gorilla round trip must beat its serial row, on a single-core
// reference container the rows simply record the flat curve.
//
// Paper context: Tables 7/8 study thread scalability of pFPC/bitshuffle/
// ndzip only; the chunked adapter extends the measured story to every
// wrapped method.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

double BestGbps(uint64_t bytes, int repeats, const std::function<void()>& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    double secs = t.ElapsedSeconds();
    if (secs > 0) best = std::max(best, bytes / secs / 1e9);
  }
  return best;
}

std::vector<int> ParseThreadList(int argc, char** argv) {
  std::vector<int> threads = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) != 0) continue;
    threads.clear();
    const char* p = argv[i] + 10;
    while (*p != '\0') {
      int v = std::atoi(p);
      if (v > 0) threads.push_back(v);
      while (*p != '\0' && *p != ',') ++p;
      if (*p == ',') ++p;
    }
    if (threads.empty()) threads = {1, 2, 4, 8};
  }
  return threads;
}

double RoundTripGbps(double ct, double dt) {
  return (ct > 0 && dt > 0) ? 1.0 / (1.0 / ct + 1.0 / dt) : 0;
}

int Main(int argc, char** argv) {
  Banner("micro_parallel - chunk-parallel engine scaling",
         "extends paper Tables 7/8 to every method");
  const std::string json_path =
      JsonOutputPath(argc, argv, "BENCH_parallel_scaling.json");
  const std::vector<int> thread_list = ParseThreadList(argc, argv);
  std::printf("shared pool: %d worker threads (FCBENCH_THREADS overrides)\n",
              ThreadPool::DefaultThreads());

  auto ds = data::GenerateDataset(*data::FindDataset("msg-bt"),
                                  BenchBytes(8ull << 20));
  if (!ds.ok()) {
    std::printf("dataset generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }
  const ByteSpan raw = ds.value().bytes.span();
  const DataDesc& desc = ds.value().desc;
  const uint64_t bytes = raw.size();
  const int repeats = BenchRepeats(3);

  JsonReporter report;
  TablePrinter table({"method", "cr", "ct_gbps", "dt_gbps", "rt_gbps",
                      "rt_vs_serial"},
                     14, 24);
  const std::vector<std::string> bases = {"gorilla", "chimp128", "pfpc",
                                          "bitshuffle_lz4"};

  for (const auto& base : bases) {
    // Serial baseline row.
    CompressorConfig serial_cfg;
    serial_cfg.threads = 1;
    auto serial =
        CompressorRegistry::Global().Create(base, serial_cfg).TakeValue();
    Buffer enc;
    double serial_ct = BestGbps(bytes, repeats, [&] {
      enc.Clear();
      serial->Compress(raw, desc, &enc);
    });
    Buffer dec;
    double serial_dt = BestGbps(bytes, repeats, [&] {
      dec.Clear();
      serial->Decompress(enc.span(), desc, &dec);
    });
    double serial_cr = enc.empty() ? 0 : double(bytes) / enc.size();
    double serial_rt = RoundTripGbps(serial_ct, serial_dt);
    report.Add(base, ds.value().info->name, serial_cr, serial_ct, serial_dt);
    table.AddRow({base, TablePrinter::Fmt(serial_cr),
                  TablePrinter::Fmt(serial_ct), TablePrinter::Fmt(serial_dt),
                  TablePrinter::Fmt(serial_rt), "1.00x"});

    for (int threads : thread_list) {
      CompressorConfig cfg;
      cfg.threads = threads;
      const std::string par = "par-" + base;
      auto comp = CompressorRegistry::Global().Create(par, cfg).TakeValue();
      Buffer penc;
      double ct = BestGbps(bytes, repeats, [&] {
        penc.Clear();
        comp->Compress(raw, desc, &penc);
      });
      Buffer pdec;
      double dt = BestGbps(bytes, repeats, [&] {
        pdec.Clear();
        comp->Decompress(penc.span(), desc, &pdec);
      });
      double cr = penc.empty() ? 0 : double(bytes) / penc.size();
      double rt = RoundTripGbps(ct, dt);
      char name[64], ratio[32];
      std::snprintf(name, sizeof(name), "%s@t%d", par.c_str(), threads);
      std::snprintf(ratio, sizeof(ratio), "%.2fx",
                    serial_rt > 0 ? rt / serial_rt : 0.0);
      report.Add(name, ds.value().info->name, cr, ct, dt);
      table.AddRow({name, TablePrinter::Fmt(cr), TablePrinter::Fmt(ct),
                    TablePrinter::Fmt(dt), TablePrinter::Fmt(rt), ratio});
    }
  }

  table.Print();
  std::printf("\nrt_gbps = 1/(1/ct + 1/dt); rt_vs_serial compares each "
              "par-* row to its serial baseline on this host.\n");
  if (!json_path.empty() && !report.WriteToFile(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main(int argc, char** argv) {
  return fcbench::bench::Main(argc, argv);
}
