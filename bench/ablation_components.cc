// Ablation bench: isolates the design choices DESIGN.md calls out.
//
//   A. Does bitshuffle's bit transpose earn its keep? Compare LZ4 / LZH
//      with and without the transpose front-end (paper takeaway: "data
//      transforms like bit and byte-level shuffling effectively improve
//      compression ratios").
//   B. SPDP pipeline ablation: drop each transform component in turn
//      (the original was auto-synthesized from 9.4M candidates; the full
//      pipeline should beat its ablations on HPC-like data).
//   C. ndzip residual coding: with vs without the zigzag step (sign
//      handling is what lets zero-word removal fire on mixed-sign
//      residuals).
//   D. Chimp's 128-value window: window hit rate vs plain Gorilla on
//      repeating data (why the "128" matters).

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "codecs/lz4.h"
#include "codecs/lzh.h"
#include "compressors/transpose.h"
#include "util/entropy.h"
#include "util/rng.h"

namespace fcbench::bench {
namespace {

double SizeOfLz4(ByteSpan in) {
  Buffer out;
  codecs::Lz4Codec().Compress(in, &out);
  return static_cast<double>(out.size());
}

double SizeOfLzh(ByteSpan in) {
  Buffer out;
  codecs::LzhCodec().Compress(in, &out);
  return static_cast<double>(out.size());
}

void AblationA() {
  std::printf("\nA. bit transpose front-end (ratio with/without)\n");
  TablePrinter t({"dataset", "lz4", "shuffle+lz4", "lzh", "shuffle+lzh"},
                 12, 16);
  for (const char* name : {"msg-bt", "citytemp", "hst-wfc3-ir",
                           "tpcxBB-web"}) {
    auto ds = data::GenerateDataset(*data::FindDataset(name),
                                    BenchBytes(1 << 20));
    if (!ds.ok()) continue;
    ByteSpan raw = ds.value().bytes.span();
    size_t esize = DTypeSize(ds.value().desc.dtype);
    size_t elems = raw.size() / esize / 8 * 8;
    std::vector<uint8_t> shuffled(elems * esize);
    compressors::BitTranspose(raw.data(), shuffled.data(), elems, esize);
    ByteSpan shuf(shuffled.data(), shuffled.size());
    double n = static_cast<double>(shuf.size());
    t.AddRow({name, TablePrinter::Fmt(n / SizeOfLz4(raw.subspan(0, shuf.size()))),
              TablePrinter::Fmt(n / SizeOfLz4(shuf)),
              TablePrinter::Fmt(n / SizeOfLzh(raw.subspan(0, shuf.size()))),
              TablePrinter::Fmt(n / SizeOfLzh(shuf))});
  }
  t.Print();
  std::printf("finding: the transpose wins where compressibility hides in "
              "bit planes (mantissa-noise HPC/OBS data) and loses where "
              "whole values repeat (quantized TS/DB data, where LZ can "
              "match full records) — which is why bitshuffle leads on "
              "HPC/OBS but Chimp/nv_lz4 lead on TS/DB in Table 4.\n");
}

// --- SPDP components --------------------------------------------------------

void Lnv2(ByteSpan in, std::vector<uint8_t>* out) {
  out->resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    (*out)[i] = static_cast<uint8_t>(in[i] - (i >= 2 ? in[i - 2] : 0));
  }
}

void Dim8(const std::vector<uint8_t>& in, std::vector<uint8_t>* out) {
  out->resize(in.size());
  size_t whole = in.size() / 8;
  compressors::ByteShuffle(in.data(), out->data(), whole, 8);
  std::copy(in.begin() + whole * 8, in.end(), out->begin() + whole * 8);
}

void Lnv1(const std::vector<uint8_t>& in, std::vector<uint8_t>* out) {
  out->resize(in.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    (*out)[i] = static_cast<uint8_t>(in[i] - prev);
    prev = in[i];
  }
}

void AblationB() {
  std::printf("\nB. SPDP pipeline ablation (ratio on an HPC stream)\n");
  auto ds = data::GenerateDataset(*data::FindDataset("num-brain"),
                                  BenchBytes(1 << 20));
  if (!ds.ok()) return;
  ByteSpan raw = ds.value().bytes.span();
  codecs::Lz4Codec lz(codecs::Lz4Codec::Options{.max_attempts = 4});
  auto ratio = [&](const std::vector<uint8_t>& bytes) {
    Buffer out;
    lz.Compress(ByteSpan(bytes.data(), bytes.size()), &out);
    return static_cast<double>(bytes.size()) / out.size();
  };

  std::vector<uint8_t> s1, s2, s3, tmp;
  Lnv2(raw, &s1);
  Dim8(s1, &s2);
  Lnv1(s2, &s3);
  std::vector<uint8_t> rawv(raw.begin(), raw.end());

  TablePrinter t({"pipeline", "ratio"}, 10, 34);
  t.AddRow({"LZa6 only (no transforms)", TablePrinter::Fmt(ratio(rawv))});
  Lnv2(raw, &tmp);
  t.AddRow({"LNVs2 -> LZa6", TablePrinter::Fmt(ratio(tmp))});
  Dim8(rawv, &tmp);
  t.AddRow({"DIM8 -> LZa6", TablePrinter::Fmt(ratio(tmp))});
  std::vector<uint8_t> no_lnv1;
  Dim8(s1, &no_lnv1);
  t.AddRow({"LNVs2 -> DIM8 -> LZa6", TablePrinter::Fmt(ratio(no_lnv1))});
  t.AddRow({"full SPDP (+LNVs1)", TablePrinter::Fmt(ratio(s3))});
  t.Print();
  std::printf("finding: DIM8 (byte-plane grouping) is the load-bearing "
              "component on this stream; the LNV delta stages only pay "
              "off on smoother data than num-brain's noisy mantissas. "
              "The original authors picked the combination by searching "
              "9.4M pipelines over 26 datasets (§3.2) — component value "
              "is data-dependent, which this ablation reproduces.\n");
}

void AblationC() {
  std::printf("\nC. ndzip zero-word removal with/without zigzag\n");
  // Mixed-sign small residuals: without zigzag, sign extension fills the
  // high bit planes with ones and no words can be removed.
  std::vector<uint32_t> residuals(4096);
  Rng rng(3);
  for (auto& r : residuals) {
    int32_t v = static_cast<int32_t>(rng.UniformInt(200)) - 100;
    r = static_cast<uint32_t>(v);
  }
  auto zero_words = [](const std::vector<uint32_t>& words) {
    std::vector<uint8_t> transposed(words.size() * 4);
    compressors::BitTranspose(
        reinterpret_cast<const uint8_t*>(words.data()), transposed.data(),
        words.size(), 4);
    size_t zeros = 0;
    for (size_t w = 0; w + 4 <= transposed.size(); w += 4) {
      uint32_t word;
      std::memcpy(&word, transposed.data() + w, 4);
      if (word == 0) ++zeros;
    }
    return zeros;
  };
  size_t without = zero_words(residuals);
  std::vector<uint32_t> zz(residuals.size());
  for (size_t i = 0; i < zz.size(); ++i) {
    uint32_t v = residuals[i];
    zz[i] = (v << 1) ^ static_cast<uint32_t>(static_cast<int32_t>(v) >> 31);
  }
  size_t with = zero_words(zz);
  std::printf("  zero bit-plane words: %zu without zigzag vs %zu with "
              "(of %zu) -> zigzag unlocks zero-word removal\n",
              without, with, residuals.size());
}

void AblationD() {
  std::printf("\nD. Chimp window vs Gorilla on repeating values\n");
  auto ds = data::GenerateDataset(*data::FindDataset("gas-price"),
                                  BenchBytes(1 << 20));
  if (!ds.ok()) return;
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  BenchmarkRunner runner(opt);
  auto g = runner.RunOne("gorilla", ds.value());
  auto c = runner.RunOne("chimp128", ds.value());
  std::printf("  gas-price (repeating decimals): gorilla CR %.3f vs "
              "chimp128 CR %.3f (paper: 1.141 vs 2.702); chimp slower: "
              "CT %.4f vs %.4f GB/s\n",
              g.cr, c.cr, c.ct_gbps, g.ct_gbps);
}

void AblationE() {
  std::printf("\nE. LZH entropy back-end: canonical Huffman vs FSE/tANS\n");
  // Same LZ77 parse, different entropy stage — the design choice that
  // separates real zstd (FSE) from deflate-era coders. FSE codes symbols
  // in fractional bits, so it pulls ahead exactly where the token
  // distributions are most skewed.
  TablePrinter t({"dataset", "huffman", "fse", "fse_gain%"}, 11, 16);
  for (const char* name :
       {"msg-bt", "citytemp", "astro-mhd", "tpcxBB-web"}) {
    auto ds = data::GenerateDataset(*data::FindDataset(name),
                                    BenchBytes(1 << 20));
    if (!ds.ok()) continue;
    ByteSpan raw = ds.value().bytes.span();
    size_t esize = DTypeSize(ds.value().desc.dtype);
    size_t elems = raw.size() / esize / 8 * 8;
    std::vector<uint8_t> shuffled(elems * esize);
    compressors::BitTranspose(raw.data(), shuffled.data(), elems, esize);
    ByteSpan shuf(shuffled.data(), shuffled.size());

    Buffer h_out, f_out;
    codecs::LzhCodec(
        codecs::LzhCodec::Options{.entropy =
                                      codecs::LzhCodec::Entropy::kHuffman})
        .Compress(shuf, &h_out);
    codecs::LzhCodec(
        codecs::LzhCodec::Options{.entropy = codecs::LzhCodec::Entropy::kFse})
        .Compress(shuf, &f_out);
    double n = static_cast<double>(shuf.size());
    t.AddRow({name, TablePrinter::Fmt(n / h_out.size()),
              TablePrinter::Fmt(n / f_out.size()),
              TablePrinter::Fmt(
                  100.0 * (double(h_out.size()) - double(f_out.size())) /
                      double(h_out.size()),
                  2)});
  }
  t.Print();
  std::printf("finding: after the LZ77 parse the two back-ends land within "
              "~1%% of each other on these streams — the parse, not the "
              "entropy stage, dominates end-to-end ratio. FSE's fractional-"
              "bit advantage shows up on raw highly-skewed streams (see "
              "FseTest.BeatsHuffmanOnHighlySkewedData: ~0.4 vs 1.0+ "
              "bits/byte), but LZ match/literal token streams are rarely "
              "that skewed, and FSE pays a larger per-stream table header "
              "(visible on astro-mhd's many near-empty token streams).\n");
}

void AblationF() {
  std::printf("\nF. SPDP sliding-window search depth (paper §3.2 insight: "
              "\"larger sliding window sizes can increase the compression "
              "ratio with the cost of decreased throughput\")\n");
  // Needs data where longer match searches can actually find matches:
  // astro-mhd's low-entropy field is SPDP's best cell here and in the
  // paper (20.9x, Table 4).
  auto ds = data::GenerateDataset(*data::FindDataset("astro-mhd"),
                                  BenchBytes(1 << 20));
  if (!ds.ok()) return;
  TablePrinter t({"level", "ratio", "CT_MBps"}, 11, 8);
  BenchmarkRunner::Options opt;
  opt.repeats = BenchRepeats(2);
  for (int level : {1, 2, 4, 8, 16, 32}) {
    opt.config.level = level;
    BenchmarkRunner runner(opt);
    auto r = runner.RunOne("spdp", ds.value());
    if (!r.ok) continue;
    t.AddRow({std::to_string(level), TablePrinter::Fmt(r.cr),
              TablePrinter::Fmt(r.ct_gbps * 1e3, 1)});
  }
  t.Print();
  std::printf("finding: ratio improves with search depth and saturates "
              "within a few chain probes; the effect is small here because "
              "the synthetic fields lack the long-range repeats of real "
              "simulation output where §3.2's ratio-vs-throughput trade-off "
              "bites hardest. Direction matches; magnitude is a documented "
              "dataset deviation (EXPERIMENTS.md).\n");
}

void AblationG() {
  std::printf("\nG. fpzip native lossy mode (§3.1: \"provides both lossless "
              "and lossy compression\"): kept mantissa bits vs ratio\n");
  auto ds = data::GenerateDataset(*data::FindDataset("wave"),
                                  BenchBytes(1 << 20));
  if (!ds.ok()) return;
  TablePrinter t({"kept_bits", "ratio", "bit_exact"}, 11, 10);
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  for (int bits : {0, 28, 24, 20, 16, 12}) {  // 0 = lossless, f32 data
    opt.config.fpzip_precision_bits = bits;
    BenchmarkRunner runner(opt);
    auto r = runner.RunOne("fpzip", ds.value());
    if (!r.ok) continue;
    t.AddRow({bits == 0 ? "all (lossless)" : std::to_string(bits),
              TablePrinter::Fmt(r.cr),
              r.round_trip_exact ? "yes" : "no"});
  }
  t.Print();
  std::printf("finding: truncation barely moves the ratio while the "
              "residuals' top bits still carry the field's noise (the "
              "range coder already skips trailing zeros), then pays off "
              "dramatically once the kept width drops below the noise "
              "scale (12 bits -> ~4x the lossless ratio here). Only 0 "
              "keeps the lossless guarantee the rest of this study "
              "requires.\n");
}

int Main() {
  Banner("Ablations - component-level design choices", "DESIGN.md §4");
  AblationA();
  AblationB();
  AblationC();
  AblationD();
  AblationE();
  AblationF();
  AblationG();
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
