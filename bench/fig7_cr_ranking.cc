// Figure 7: (a) average (harmonic-mean) compression ratios per method and
// (b) the Friedman test + Nemenyi critical-difference diagram over the
// 33 x 14 CR matrix (paper §6.1.1 Observation 2: "no significant
// winner").

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "stats/stats.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Figure 7 - CR ranking + critical difference",
         "paper §6.1.1 Obs. 2, §5.4");
  const auto& methods = PaperMethods();
  auto results = RunFullSweep(methods);

  // (a) harmonic-mean CRs.
  std::printf("\n(a) harmonic-mean compression ratios\n");
  TablePrinter t({"method", "harmonic CR", "failures"}, 14, 18);
  for (const auto& s : Summarize(results)) {
    t.AddRow({s.method, TablePrinter::Fmt(s.harmonic_cr),
              std::to_string(s.failures)});
  }
  t.Print();

  // (b) Friedman + Nemenyi over the full matrix.
  std::vector<std::string> dataset_names;
  for (const auto& d : data::AllDatasets()) dataset_names.push_back(d.name);
  auto matrix = CrMatrix(results, methods, dataset_names);
  auto fr = stats::FriedmanTest(matrix);
  if (!fr.ok()) {
    std::printf("Friedman test failed: %s\n",
                fr.status().ToString().c_str());
    return 1;
  }
  std::printf("\n(b) Friedman test: chi2 = %.2f, p = %.3g (k=%d, N=%d) -> %s\n",
              fr.value().chi2, fr.value().p_value, fr.value().k,
              fr.value().n,
              fr.value().reject_h0
                  ? "reject H0: methods differ (as in the paper)"
                  : "cannot reject H0");
  auto cd = stats::BuildCdDiagram(methods, fr.value().avg_ranks,
                                  fr.value().n);
  std::printf("%s", cd.Render().c_str());

  // Pairwise follow-up (Demsar 2006): Wilcoxon signed-rank on the two
  // best-ranked methods over the per-dataset CR columns. This is the
  // "no significant winner" observation made precise for the top pair.
  int best = 0, second = 1;
  for (size_t m = 0; m < methods.size(); ++m) {
    if (fr.value().avg_ranks[m] < fr.value().avg_ranks[best]) {
      second = best;
      best = static_cast<int>(m);
    } else if (static_cast<int>(m) != best &&
               fr.value().avg_ranks[m] < fr.value().avg_ranks[second]) {
      second = static_cast<int>(m);
    }
  }
  std::vector<double> col_a, col_b;
  for (const auto& row : matrix) {
    col_a.push_back(row[best]);
    col_b.push_back(row[second]);
  }
  auto wx = stats::WilcoxonSignedRankTest(col_a, col_b);
  std::printf("\nWilcoxon signed-rank, top pair %s vs %s: W = %.1f, "
              "p = %.3g -> %s\n",
              methods[best].c_str(), methods[second].c_str(), wx.w,
              wx.p_value,
              wx.significant ? "significant pairwise difference"
                             : "no significant pairwise difference "
                               "(consistent with the paper's Obs. 2)");

  std::printf("\nShape check vs. paper: the top clique should join several "
              "dictionary/transform methods (bitshuffle, chimp, SPDP, "
              "nv::LZ4, MPC, fpzip) with no single significant winner; GFC "
              "ranks at the bottom.\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
