// Table 6: end-to-end wall time (ms), including the host-to-device /
// device-to-host memory copies for GPU methods. The §6.1.4 takeaway:
// transfers are non-negligible -- bitshuffle on the CPU becomes
// competitive with GFC/MPC, and ndzip-CPU can beat ndzip-GPU end to end.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Table 6 - end-to-end wall time", "paper §6.1.4");
  auto results = RunFullSweep(PaperMethods());
  auto summaries = Summarize(results);

  TablePrinter t({"method", "avg comp ms", "avg decomp ms", "arch"}, 15, 18);
  double shf_zstd = 0, gfc = 0, ndzip_c = 0, ndzip_g = 0, mpc = 0;
  auto gpu = GpuMethods();
  for (const auto& s : summaries) {
    bool is_gpu = std::find(gpu.begin(), gpu.end(), s.method) != gpu.end();
    t.AddRow({s.method, TablePrinter::Fmt(s.mean_comp_wall_ms, 2),
              TablePrinter::Fmt(s.mean_decomp_wall_ms, 2),
              is_gpu ? "GPU (modeled, incl. H2D/D2H)" : "CPU"});
    if (s.method == "bitshuffle_zstd") shf_zstd = s.mean_comp_wall_ms;
    if (s.method == "gfc") gfc = s.mean_comp_wall_ms;
    if (s.method == "mpc") mpc = s.mean_comp_wall_ms;
    if (s.method == "ndzip_cpu") ndzip_c = s.mean_comp_wall_ms;
    if (s.method == "ndzip_gpu") ndzip_g = s.mean_comp_wall_ms;
  }
  t.Print();

  std::printf("\nShape checks vs. paper (Table 6):\n");
  std::printf("  bitshuffle_zstd within ~one order of GFC/MPC end-to-end: "
              "%.2f ms vs %.2f / %.2f ms -> %s\n",
              shf_zstd, gfc, mpc,
              (shf_zstd < 12 * std::max(gfc, mpc)) ? "yes" : "NO");
  std::printf("  host-to-device copy erodes the GPU kernel advantage "
              "(ndzip CPU %.2f ms vs GPU %.2f ms; paper 282 vs 636).\n",
              ndzip_c, ndzip_g);
  std::printf("Takeaway: the H2D overhead is non-negligible; "
              "bitshuffle_zstd combines best average CR with competitive "
              "end-to-end time.\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
