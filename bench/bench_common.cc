#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fcbench::bench {

const std::vector<std::string>& PaperMethods() {
  static const std::vector<std::string>* methods =
      new std::vector<std::string>{
          "pfpc",    "spdp",       "fpzip",     "bitshuffle_lz4",
          "bitshuffle_zstd", "ndzip_cpu", "buff", "gorilla",
          "chimp128", "gfc",       "mpc",       "nv_lz4",
          "nv_bitcomp", "ndzip_gpu"};
  return *methods;
}

std::vector<std::string> CpuMethods() {
  return {"pfpc",  "spdp",    "fpzip",   "bitshuffle_lz4", "bitshuffle_zstd",
          "ndzip_cpu", "buff", "gorilla", "chimp128"};
}

std::vector<std::string> GpuMethods() {
  return {"gfc", "mpc", "nv_lz4", "nv_bitcomp", "ndzip_gpu"};
}

uint64_t BenchBytes(uint64_t fallback) {
  const char* env = std::getenv("FCBENCH_BENCH_BYTES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v >= 1024) return v;
  }
  return fallback;
}

int BenchRepeats(int fallback) {
  const char* env = std::getenv("FCBENCH_BENCH_REPEATS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return fallback;
}

std::vector<RunResult> RunFullSweep(const std::vector<std::string>& methods) {
  BenchmarkRunner::Options opt;
  opt.repeats = BenchRepeats();
  opt.dataset_bytes = BenchBytes();
  BenchmarkRunner runner(opt);
  return runner.RunAll(methods, data::AllDatasets());
}

std::vector<data::DatasetInfo> DatasetsOfDomain(data::Domain d) {
  std::vector<data::DatasetInfo> out;
  for (const auto& info : data::AllDatasets()) {
    if (info.domain == d) out.push_back(info);
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int col_width,
                           int first_width)
    : headers_(std::move(headers)),
      col_width_(col_width),
      first_width_(first_width) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void TablePrinter::Print() const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      int w = (i == 0) ? first_width_ : col_width_;
      std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = first_width_ + col_width_ * (headers_.size() - 1);
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& r : rows_) print_row(r);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("FCBench reproduction: %s (%s)\n", experiment.c_str(),
              paper_ref.c_str());
  std::printf("dataset scale: %llu bytes/dataset, %d repeats\n",
              static_cast<unsigned long long>(BenchBytes()), BenchRepeats());
  std::printf("==============================================================\n");
}

void JsonReporter::Add(const std::string& method, const std::string& dataset,
                       double cr, double ct_gbps, double dt_gbps) {
  rows_.push_back(Row{method, dataset, cr, ct_gbps, dt_gbps, {}});
}

void JsonReporter::Add(
    const std::string& method, const std::string& dataset, double cr,
    double ct_gbps, double dt_gbps,
    const std::vector<std::pair<std::string, double>>& extras) {
  rows_.push_back(Row{method, dataset, cr, ct_gbps, dt_gbps, extras});
}

bool JsonReporter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReporter: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(f,
                 "  {\"method\": \"%s\", \"dataset\": \"%s\", "
                 "\"cr\": %.4f, \"ct_gbps\": %.4f, \"dt_gbps\": %.4f",
                 r.method.c_str(), r.dataset.c_str(), r.cr, r.ct_gbps,
                 r.dt_gbps);
    for (const auto& [key, value] : r.extras) {
      std::fprintf(f, ", \"%s\": %.4f", key.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  bool ok = std::fclose(f) == 0;
  if (ok) std::printf("wrote %zu rows to %s\n", rows_.size(), path.c_str());
  return ok;
}

std::string JsonOutputPath(int argc, char** argv,
                           const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") return default_path;
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double idx = p / 100.0 * (v.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - lo;
  return v[lo] * (1 - frac) + v[hi] * frac;
}

}  // namespace fcbench::bench
