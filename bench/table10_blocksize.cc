// Table 10: compression performance under different block sizes
// (4 KiB / 64 KiB / 8 MiB). Data is split into blocks and each block is
// compressed independently -- the access pattern a paged database imposes
// (paper §6.2.1 Observation 8: compressors prefer larger blocks; the
// takeaway recommends larger default page sizes).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/entropy.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

struct BlockMetrics {
  double cr = 0;
  double ct_gbps = 0;
  double dt_gbps = 0;
};

/// Compresses `ds` in independent blocks of `block_bytes` via the method's
/// own block_size knob where it has one, otherwise by explicit chunking.
Result<BlockMetrics> RunBlocked(const std::string& method,
                                const data::Dataset& ds,
                                size_t block_bytes) {
  CompressorConfig cfg;
  cfg.block_size = block_bytes;
  auto cr = CompressorRegistry::Global().Create(method, cfg);
  if (!cr.ok()) return cr.status();
  auto comp = std::move(cr).TakeValue();

  const size_t esize = DTypeSize(ds.desc.dtype);
  size_t block = std::max(block_bytes / esize * esize, esize);
  ByteSpan data = ds.bytes.span();
  size_t nblocks = (data.size() + block - 1) / block;

  std::vector<Buffer> compressed(nblocks);
  std::vector<DataDesc> descs(nblocks);
  double comp_s = 0, decomp_s = 0, comp_bytes = 0, gpu_comp_s = 0,
         gpu_decomp_s = 0;
  bool gpu = false;
  Timer t1;
  for (size_t b = 0; b < nblocks; ++b) {
    size_t begin = b * block;
    size_t len = std::min(block, data.size() - begin);
    descs[b] = DataDesc::Make(ds.desc.dtype, {len / esize},
                              ds.desc.precision_digits);
    FCB_RETURN_IF_ERROR(
        comp->Compress(data.subspan(begin, len), descs[b], &compressed[b]));
    if (const gpusim::GpuTiming* gt = comp->last_gpu_timing()) {
      gpu = true;
      gpu_comp_s += gt->kernel_seconds;
    }
    comp_bytes += compressed[b].size();
  }
  comp_s = gpu ? gpu_comp_s : t1.ElapsedSeconds();

  Timer t2;
  for (size_t b = 0; b < nblocks; ++b) {
    Buffer out;
    FCB_RETURN_IF_ERROR(
        comp->Decompress(compressed[b].span(), descs[b], &out));
    if (const gpusim::GpuTiming* gt = comp->last_gpu_timing()) {
      gpu_decomp_s += gt->kernel_seconds;
    }
  }
  decomp_s = gpu ? gpu_decomp_s : t2.ElapsedSeconds();

  BlockMetrics m;
  m.cr = comp_bytes > 0 ? data.size() / comp_bytes : 0;
  m.ct_gbps = ThroughputGBps(data.size(), comp_s);
  m.dt_gbps = ThroughputGBps(data.size(), decomp_s);
  return m;
}

int Main() {
  Banner("Table 10 - block-size sweep", "paper §6.2.1 Obs. 8");
  // The paper's Table 10 columns (methods that convert naturally to
  // block-wise operation).
  const std::vector<std::string> methods = {
      "pfpc",     "spdp",   "bitshuffle_lz4", "bitshuffle_zstd",
      "gorilla",  "chimp128", "nv_lz4",       "nv_bitcomp"};
  const std::vector<std::pair<const char*, size_t>> block_sizes = {
      {"4K", 4 << 10}, {"64K", 64 << 10}, {"8M", 8 << 20}};

  // Average over all 33 datasets, like the paper.
  std::vector<data::Dataset> datasets;
  for (const auto& info : data::AllDatasets()) {
    auto ds = data::GenerateDataset(info, BenchBytes());
    if (ds.ok()) datasets.push_back(std::move(ds).TakeValue());
  }

  std::vector<std::string> headers = {"blocksize/metric"};
  for (const auto& m : methods) headers.push_back(m.substr(0, 9));
  double cr_4k_sum = 0, cr_64k_sum = 0;
  for (const auto& [label, bytes] : block_sizes) {
    TablePrinter t(headers, 10, 18);
    std::vector<double> crs(methods.size()), cts(methods.size()),
        dts(methods.size());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      std::vector<double> cr_list, ct_list, dt_list;
      for (const auto& ds : datasets) {
        auto r = RunBlocked(methods[mi], ds, bytes);
        if (!r.ok()) continue;
        cr_list.push_back(r.value().cr);
        ct_list.push_back(r.value().ct_gbps);
        dt_list.push_back(r.value().dt_gbps);
      }
      crs[mi] = HarmonicMean(cr_list.data(), cr_list.size());
      cts[mi] = ArithmeticMean(ct_list.data(), ct_list.size());
      dts[mi] = ArithmeticMean(dt_list.data(), dt_list.size());
    }
    std::printf("\nblock size %s\n", label);
    std::vector<std::string> r1 = {"avg-CR"}, r2 = {"avg-CT (GB/s)"},
                             r3 = {"avg-DT (GB/s)"};
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      r1.push_back(TablePrinter::Fmt(crs[mi]));
      r2.push_back(TablePrinter::Fmt(cts[mi]));
      r3.push_back(TablePrinter::Fmt(dts[mi]));
    }
    t.AddRow(r1);
    t.AddRow(r2);
    t.AddRow(r3);
    t.Print();
    double cr_sum = 0;
    for (double c : crs) cr_sum += c;
    if (std::string(label) == "4K") cr_4k_sum = cr_sum;
    if (std::string(label) == "64K") cr_64k_sum = cr_sum;
  }

  std::printf("\nShape check vs. paper: larger blocks improve ratio for "
              "most methods (64K avg CR sum %.3f vs 4K %.3f -> %s); "
              "database designers should raise default page sizes.\n",
              cr_64k_sum, cr_4k_sum,
              cr_64k_sum >= cr_4k_sum * 0.99 ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
