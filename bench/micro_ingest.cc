// Ingest-engine microbenchmark: WAL append throughput under the three
// durability policies, recovery (WAL replay) speed, and the compression
// ratio the flushed segments achieve.
//
// Modes (JSON `method` column):
//   ingest-nosync       sync_on_commit=false, 256-row batches — upper
//                       bound: the OS page cache absorbs every commit
//   ingest-batched      sync_on_commit=true, 256-row batches — the
//                       group-commit sweet spot (one fsync per batch)
//   ingest-fsync-row    sync_on_commit=true, one-row batches — worst
//                       case, one fsync per row (row count capped)
//
// Per mode the JSON row records
//   ct_gbps  append throughput (raw row bytes / append wall time)
//   dt_gbps  recovery throughput (raw row bytes / reopen-replay wall)
//   cr       raw row bytes / on-disk segment bytes after a flush
//
// The committed artifact is BENCH_ingest_throughput.json (perf-smoke
// lane). No thresholds are enforced; the JSON records the trajectory.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "db/lsm/lsm_engine.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/fs.h"
#include "util/timer.h"

using namespace fcbench;
using namespace fcbench::db::lsm;

namespace {

constexpr size_t kNumCols = 3;
constexpr size_t kBatchRows = 256;
/// fsync-per-row is O(row count) in disk flushes; cap it so the lane
/// stays fast while still measuring a real per-row sync cost.
constexpr uint64_t kMaxFsyncRows = 2000;

std::vector<ColumnDef> Schema() {
  return {
      {.name = "ts", .dtype = DType::kFloat64, .compressor = ""},
      {.name = "value", .dtype = DType::kFloat64, .compressor = ""},
      {.name = "flag", .dtype = DType::kFloat32, .compressor = ""},
  };
}

/// Row i of the deterministic sensor-like table: a regular timestamp, a
/// smooth oscillation, and a small categorical — compressible, but not
/// degenerate.
void FillRow(uint64_t i, double* out) {
  out[0] = 1.0e9 + static_cast<double>(i) * 10.0;
  out[1] = std::sin(static_cast<double>(i) * 0.01) * 100.0;
  out[2] = static_cast<double>(i % 7);
}

uint64_t DirBytes(const std::string& dir, const char* prefix) {
  auto names = fs::ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const auto& n : names.value()) {
    if (n.compare(0, std::strlen(prefix), prefix) != 0) continue;
    auto sz = fs::FileSize(fs::JoinPath(dir, n));
    if (sz.ok()) total += sz.value();
  }
  return total;
}

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) fs::RemoveFile(fs::JoinPath(dir, n));
  }
  ::rmdir(dir.c_str());
}

struct ModeResult {
  double ct_gbps = 0;
  double dt_gbps = 0;
  double cr = 0;
  /// Per-AppendBatch latency percentiles for THIS run, from the
  /// lsm.append_nanos histogram delta (0 when metrics are disabled).
  double append_p50_ns = 0;
  double append_p99_ns = 0;
  bool ok = false;
};

ModeResult RunMode(const std::string& tag, uint64_t nrows, size_t batch_rows,
                   bool sync_on_commit) {
  ModeResult r;
  const std::string dir =
      "/tmp/fcbench_ingest_" + std::to_string(::getpid()) + "_" + tag;
  const uint64_t raw_bytes = nrows * kNumCols * sizeof(double);

  EngineOptions opt;
  opt.sync_on_commit = sync_on_commit;
  opt.background_flush = false;
  opt.compact_fanout = 0;
  // Keep the whole run in one memtable so the append loop times the
  // WAL+memtable path alone, not a flush in the middle.
  opt.memtable_bytes = raw_bytes + (1 << 20);
  opt.wal_segment_bytes = 8 << 20;

  RemoveTree(dir);
  {
    auto eng = IngestEngine::Open(dir, Schema(), opt);
    if (!eng.ok()) {
      std::fprintf(stderr, "%s: open: %s\n", tag.c_str(),
                   eng.status().ToString().c_str());
      return r;
    }
    std::vector<double> batch;
    batch.reserve(batch_rows * kNumCols);
    static obs::Histogram* append_nanos =
        obs::MetricsRegistry::Global().GetHistogram("lsm.append_nanos",
                                                    obs::Unit::kNanos);
    const obs::HistogramSnapshot before = append_nanos->SnapshotNow();
    Timer append_timer;
    for (uint64_t i = 0; i < nrows;) {
      batch.clear();
      const uint64_t take = std::min<uint64_t>(batch_rows, nrows - i);
      batch.resize(take * kNumCols);
      for (uint64_t k = 0; k < take; ++k) {
        FillRow(i + k, &batch[k * kNumCols]);
      }
      if (!eng.value()->AppendBatch(batch).ok()) {
        std::fprintf(stderr, "%s: append failed\n", tag.c_str());
        return r;
      }
      i += take;
    }
    r.ct_gbps = raw_bytes / append_timer.ElapsedSeconds() / 1e9;
    // This run's slice of the process-lifetime histogram: the tail the
    // throughput number hides (one slow fsync in 8k batches).
    const obs::HistogramSnapshot run = append_nanos->SnapshotNow().Delta(before);
    r.append_p50_ns = run.p50();
    r.append_p99_ns = run.p99();
    // Engine destroyed without Flush: recovery below replays every row
    // from the WAL, exactly the crash path.
  }

  Timer replay_timer;
  auto eng = IngestEngine::Open(dir, Schema(), opt);
  if (!eng.ok() || eng.value()->rows() != nrows) {
    std::fprintf(stderr, "%s: recovery lost rows\n", tag.c_str());
    return r;
  }
  r.dt_gbps = raw_bytes / replay_timer.ElapsedSeconds() / 1e9;

  if (!eng.value()->Flush().ok()) {
    std::fprintf(stderr, "%s: flush failed\n", tag.c_str());
    return r;
  }
  const uint64_t seg_bytes = DirBytes(dir, "seg-");
  if (seg_bytes > 0) r.cr = static_cast<double>(raw_bytes) / seg_bytes;
  eng.value().reset();  // close before deleting the tree
  RemoveTree(dir);
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("micro_ingest: WAL-backed ingest engine",
                "crash-safe append / recovery / segment-CR trajectory");
  const uint64_t bytes = bench::BenchBytes(2 << 20);
  const int repeats = bench::BenchRepeats(2);
  const uint64_t nrows = std::max<uint64_t>(
      kBatchRows, bytes / (kNumCols * sizeof(double)));

  struct Mode {
    const char* name;
    uint64_t rows;
    size_t batch_rows;
    bool sync;
  } modes[] = {
      {"ingest-nosync", nrows, kBatchRows, false},
      {"ingest-batched", nrows, kBatchRows, true},
      {"ingest-fsync-row", std::min(nrows, kMaxFsyncRows), 1, true},
  };

  bench::JsonReporter json;
  bench::TablePrinter table({"mode", "rows", "append GB/s", "replay GB/s",
                             "seg CR", "p50 us", "p99 us"},
                            12, 18);
  for (const auto& m : modes) {
    // Best-of-N: ingest wall time is fsync-dominated and noisy; the max
    // is the honest capability number, like the other micro benches.
    ModeResult best;
    for (int rep = 0; rep < repeats; ++rep) {
      ModeResult r = RunMode(m.name, m.rows, m.batch_rows, m.sync);
      if (!r.ok) continue;
      if (!best.ok || r.ct_gbps > best.ct_gbps) {
        best.ct_gbps = r.ct_gbps;
        // The percentiles travel with the run whose throughput is
        // reported, not a max over runs.
        best.append_p50_ns = r.append_p50_ns;
        best.append_p99_ns = r.append_p99_ns;
        best.ok = true;
      }
      best.dt_gbps = std::max(best.dt_gbps, r.dt_gbps);
      best.cr = std::max(best.cr, r.cr);
    }
    if (!best.ok) continue;
    table.AddRow({m.name, std::to_string(m.rows),
                  bench::TablePrinter::Fmt(best.ct_gbps),
                  bench::TablePrinter::Fmt(best.dt_gbps),
                  bench::TablePrinter::Fmt(best.cr),
                  bench::TablePrinter::Fmt(best.append_p50_ns / 1e3),
                  bench::TablePrinter::Fmt(best.append_p99_ns / 1e3)});
    json.Add(m.name, "sensor-rows", best.cr, best.ct_gbps, best.dt_gbps,
             {{"append_p50_ns", best.append_p50_ns},
              {"append_p99_ns", best.append_p99_ns}});
  }
  table.Print();

  // Metrics-overhead check (acceptance: < 2% append-throughput
  // regression with collection enabled vs idle). The nosync mode is the
  // honest worst case — no fsync to hide the counter adds behind.
  {
    const int overhead_reps = std::max(repeats, 3);
    double on_best = 0, off_best = 0;
    obs::SetEnabled(true);
    for (int rep = 0; rep < overhead_reps; ++rep) {
      ModeResult r = RunMode("overhead-on", nrows, kBatchRows, false);
      if (r.ok) on_best = std::max(on_best, r.ct_gbps);
    }
    obs::SetEnabled(false);
    for (int rep = 0; rep < overhead_reps; ++rep) {
      ModeResult r = RunMode("overhead-off", nrows, kBatchRows, false);
      if (r.ok) off_best = std::max(off_best, r.ct_gbps);
    }
    obs::SetEnabled(true);
    const double overhead_pct =
        off_best > 0 ? (off_best - on_best) / off_best * 100.0 : 0.0;
    const bool within = overhead_pct < 2.0;
    std::printf(
        "metrics overhead: enabled %.3f GB/s vs idle %.3f GB/s -> "
        "%+.2f%% [%s]\n",
        on_best, off_best, overhead_pct,
        within ? "OK, budget 2%" : "EXCEEDED, budget 2%");
    json.Add("ingest-metrics-overhead", "sensor-rows", 0.0, on_best, off_best,
             {{"overhead_pct", overhead_pct}, {"budget_pct", 2.0}});
  }

  // Trace-overhead check (acceptance: < 2% append-throughput regression
  // with span tracing disabled — its steady state — versus sampled
  // tracing at 1/64). The disabled side exercises the
  // one-relaxed-load-per-span fast path that every production append
  // pays; the sampled side bounds the cost of turning tracing on.
  {
    const int overhead_reps = std::max(repeats, 3);
    double off_best = 0, sampled_best = 0;
    // Interleaved A/B: machine-load drift during the measurement hits
    // both sides equally instead of biasing whichever ran last.
    for (int rep = 0; rep < overhead_reps; ++rep) {
      obs::SetTraceSampling(0);
      ModeResult off = RunMode("trace-off", nrows, kBatchRows, false);
      if (off.ok) off_best = std::max(off_best, off.ct_gbps);
      obs::SetTraceSampling(64, 1);
      ModeResult on = RunMode("trace-sampled", nrows, kBatchRows, false);
      if (on.ok) sampled_best = std::max(sampled_best, on.ct_gbps);
    }
    obs::SetTraceSampling(0);
    const double overhead_pct =
        off_best > 0 ? (off_best - sampled_best) / off_best * 100.0 : 0.0;
    const bool within = overhead_pct < 2.0;
    std::printf(
        "trace overhead: sampled 1/64 %.3f GB/s vs disabled %.3f GB/s -> "
        "%+.2f%% [%s]\n",
        sampled_best, off_best, overhead_pct,
        within ? "OK, budget 2%" : "EXCEEDED, budget 2%");
    json.Add("trace-overhead", "sensor-rows", 0.0, sampled_best, off_best,
             {{"overhead_pct", overhead_pct}, {"budget_pct", 2.0}});
  }

  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_ingest_throughput.json");
  if (!json_path.empty()) json.WriteToFile(json_path);

  // --metrics-json=PATH: dump the full registry snapshot (the perf-smoke
  // lane commits this next to the BENCH_*.json artifacts).
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) != 0) continue;
    const std::string path = arg.substr(std::strlen("--metrics-json="));
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    const std::string snap =
        obs::MetricsRegistry::Global().Snapshot().ToJson();
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote metrics snapshot to %s\n", path.c_str());
  }
  return 0;
}
