// Table 9: does dimensionality metadata matter? Each dimension-aware
// method compresses the multi-dimensional datasets twice -- once with the
// true extent ("md") and once flattened to a 1-D column-store view
// ("1d") -- and a Mann-Whitney U test checks for a significant CR change
// (paper §6.1.5 Observation 6: compression is 1-D friendly; no
// significant difference).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "stats/stats.h"
#include "util/entropy.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Table 9 - dimensionality information", "paper §6.1.5 Obs. 6");
  const std::vector<std::string> methods = {"gfc", "mpc", "fpzip",
                                            "ndzip_cpu", "ndzip_gpu"};

  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = BenchBytes();
  BenchmarkRunner runner(opt);

  TablePrinter t({"method", "md harm.CR", "1d harm.CR", "U-test p",
                  "significant?"},
                 13, 12);
  for (const auto& m : methods) {
    std::vector<double> md_crs, oned_crs;
    for (const auto& info : data::AllDatasets()) {
      if (info.extent.size() < 2) continue;  // only multi-d datasets
      auto ds = data::GenerateDataset(info, opt.dataset_bytes);
      if (!ds.ok()) continue;
      auto r_md = runner.RunOne(m, ds.value());
      // 1-D view of the same bytes.
      data::Dataset flat;
      flat.info = ds.value().info;
      flat.desc = ds.value().desc.As1D();
      flat.bytes = Buffer::FromSpan(ds.value().bytes.span());
      auto r_1d = runner.RunOne(m, flat);
      if (r_md.ok && r_1d.ok) {
        md_crs.push_back(r_md.cr);
        oned_crs.push_back(r_1d.cr);
      }
    }
    auto u = stats::MannWhitneyUTest(md_crs, oned_crs);
    double md_h = HarmonicMean(md_crs.data(), md_crs.size());
    double od_h = HarmonicMean(oned_crs.data(), oned_crs.size());
    t.AddRow({m, TablePrinter::Fmt(md_h), TablePrinter::Fmt(od_h),
              TablePrinter::Fmt(u.p_value), u.significant ? "YES" : "no"});
  }
  t.Print();

  std::printf("\nShape check vs. paper: the Mann-Whitney test finds no "
              "significant difference for any method (all p >> 0.05) -> "
              "column stores can flatten to 1-D without losing ratio; the "
              "bit-level transpose absorbs the degraded Lorenzo "
              "prediction.\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
