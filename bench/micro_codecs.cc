// Microbenchmarks of the codec substrates (google-benchmark): LZ4 vs the
// zstd-like LZH, Huffman, range coder, arithmetic coder. These are the
// ablation benches for DESIGN.md's codec choices (e.g. why bitshuffle's
// two back-ends trade ratio for speed).

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "codecs/arith.h"
#include "codecs/fse.h"
#include "codecs/huffman.h"
#include "codecs/intcodec.h"
#include "codecs/lz4.h"
#include "codecs/lzh.h"
#include "codecs/range_coder.h"
#include "util/hash.h"
#include "util/rng.h"

namespace fcbench::codecs {
namespace {

std::vector<uint8_t> FloatLikeBytes(size_t n) {
  Rng rng(11);
  std::vector<uint8_t> data(n);
  double x = 1000.0;
  for (size_t i = 0; i + 4 <= n; i += 4) {
    x += rng.Normal() * 0.01;
    float f = static_cast<float>(x);
    std::memcpy(&data[i], &f, 4);
  }
  return data;
}

void BM_Lz4Compress(benchmark::State& state) {
  auto data = FloatLikeBytes(static_cast<size_t>(state.range(0)));
  Lz4Codec codec;
  for (auto _ : state) {
    Buffer out;
    codec.Compress(ByteSpan(data.data(), data.size()), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Lz4Compress)->Arg(64 << 10)->Arg(1 << 20);

void BM_Lz4Decompress(benchmark::State& state) {
  auto data = FloatLikeBytes(static_cast<size_t>(state.range(0)));
  Lz4Codec codec;
  Buffer comp;
  codec.Compress(ByteSpan(data.data(), data.size()), &comp);
  for (auto _ : state) {
    Buffer out;
    benchmark::DoNotOptimize(
        codec.Decompress(comp.span(), data.size(), &out).ok());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Lz4Decompress)->Arg(64 << 10)->Arg(1 << 20);

void BM_Lz4ChainedCompress(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  Lz4Codec codec(Lz4Codec::Options{
      .max_attempts = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    Buffer out;
    codec.Compress(ByteSpan(data.data(), data.size()), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Lz4ChainedCompress)->Arg(1)->Arg(8)->Arg(64);

void BM_LzhCompress(benchmark::State& state) {
  auto data = FloatLikeBytes(static_cast<size_t>(state.range(0)));
  LzhCodec codec;
  for (auto _ : state) {
    Buffer out;
    codec.Compress(ByteSpan(data.data(), data.size()), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzhCompress)->Arg(64 << 10)->Arg(1 << 20);

void BM_LzhDecompress(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  Buffer comp;
  LzhCodec().Compress(ByteSpan(data.data(), data.size()), &comp);
  for (auto _ : state) {
    Buffer out;
    benchmark::DoNotOptimize(LzhCodec::Decompress(comp.span(), &out).ok());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzhDecompress);

void BM_HuffmanCompress(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  for (auto _ : state) {
    Buffer out;
    HuffmanCodec::Compress(ByteSpan(data.data(), data.size()), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_HuffmanCompress);

void BM_FseCompress(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  for (auto _ : state) {
    Buffer out;
    FseCodec::Compress(ByteSpan(data.data(), data.size()), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FseCompress);

void BM_FseDecompress(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  Buffer comp;
  FseCodec::Compress(ByteSpan(data.data(), data.size()), &comp);
  for (auto _ : state) {
    Buffer out;
    size_t consumed = 0;
    benchmark::DoNotOptimize(
        FseCodec::Decompress(comp.span(), &consumed, &out).ok());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FseDecompress);

// Huffman-backed vs FSE-backed LZH end to end: the ratio/speed trade the
// bitshuffle::zstd stand-in makes.
void BM_LzhEntropyBackend(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  LzhCodec codec(LzhCodec::Options{
      .entropy = state.range(0) ? LzhCodec::Entropy::kFse
                                : LzhCodec::Entropy::kHuffman});
  size_t comp_size = 0;
  for (auto _ : state) {
    Buffer out;
    codec.Compress(ByteSpan(data.data(), data.size()), &out);
    comp_size = out.size();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(comp_size);
}
BENCHMARK(BM_LzhEntropyBackend)->Arg(0)->Arg(1);

void BM_RleRoundTrip(benchmark::State& state) {
  // Zero-heavy residual stream, RLE's target shape.
  Rng rng(21);
  std::vector<uint8_t> data(1 << 20, 0);
  for (size_t i = 0; i < data.size(); i += 50 + rng.UniformInt(100)) {
    data[i] = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    Buffer comp, out;
    RleCodec::Compress(ByteSpan(data.data(), data.size()), &comp);
    size_t consumed = 0;
    benchmark::DoNotOptimize(
        RleCodec::Decompress(comp.span(), &consumed, &out).ok());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RleRoundTrip);

void BM_Simple8bPack(benchmark::State& state) {
  Rng rng(23);
  std::vector<uint64_t> values(1 << 17);
  for (auto& v : values) v = rng.UniformInt(1 << state.range(0));
  for (auto _ : state) {
    Buffer out;
    Simple8bCodec::Compress(values, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Simple8bPack)->Arg(1)->Arg(8)->Arg(20);

void BM_TimestampCodec(benchmark::State& state) {
  std::vector<int64_t> ts(1 << 17);
  for (size_t i = 0; i < ts.size(); ++i) {
    ts[i] = 1600000000000 + static_cast<int64_t>(i) * 1000;
  }
  for (auto _ : state) {
    Buffer out;
    TimestampCodec::Compress(ts, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * ts.size());
}
BENCHMARK(BM_TimestampCodec);

void BM_XxHash64(benchmark::State& state) {
  auto data = FloatLikeBytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_XxHash64);

void BM_RangeCoder(benchmark::State& state) {
  Rng rng(3);
  std::vector<int> syms(1 << 16);
  for (auto& s : syms) s = static_cast<int>(rng.UniformInt(64));
  for (auto _ : state) {
    Buffer out;
    RangeEncoder enc(&out);
    AdaptiveModel model(65);
    for (int s : syms) EncodeAdaptive(&enc, &model, s);
    enc.Finish();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * syms.size());
}
BENCHMARK(BM_RangeCoder);

void BM_BinaryArith(benchmark::State& state) {
  Rng rng(5);
  std::vector<int> bits(1 << 18);
  for (auto& b : bits) b = rng.UniformInt(100) < 70 ? 1 : 0;
  for (auto _ : state) {
    Buffer out;
    BinaryArithEncoder enc(&out);
    BitModel model;
    for (int b : bits) {
      enc.Encode(b, model.p1());
      model.Update(b);
    }
    enc.Finish();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(BM_BinaryArith);

}  // namespace
}  // namespace fcbench::codecs

BENCHMARK_MAIN();
