#ifndef FCBENCH_BENCH_BENCH_COMMON_H_
#define FCBENCH_BENCH_BENCH_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "data/dataset.h"

namespace fcbench::bench {

/// The 14 Table-4 method columns, in paper order.
const std::vector<std::string>& PaperMethods();

/// CPU subset / GPU subset of PaperMethods().
std::vector<std::string> CpuMethods();
std::vector<std::string> GpuMethods();

/// Per-dataset payload size for bench sweeps; FCBENCH_BENCH_BYTES
/// overrides the default (2 MiB) for larger-scale runs.
uint64_t BenchBytes(uint64_t fallback = 2ull << 20);

/// Benchmark repetitions; FCBENCH_BENCH_REPEATS overrides (default 2; the
/// paper uses 10).
int BenchRepeats(int fallback = 2);

/// Runs the full (methods x 33 datasets) sweep with the standard options.
std::vector<RunResult> RunFullSweep(const std::vector<std::string>& methods);

/// Datasets restricted to one domain.
std::vector<data::DatasetInfo> DatasetsOfDomain(data::Domain d);

/// Fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 10,
                        int first_width = 16);

  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int col_width_;
  int first_width_;
};

/// Prints the standard bench banner (binary name + scale knobs).
void Banner(const std::string& experiment, const std::string& paper_ref);

/// Collects benchmark rows and writes them as a JSON array using the
/// repo-wide BENCH_*.json schema: one object per row with keys
///   method (string), dataset (string), cr, ct_gbps, dt_gbps (numbers).
/// This is how the perf trajectory is recorded: each perf-relevant PR
/// commits a refreshed BENCH_*.json produced by the touched benches, so
/// speedups are reviewable artifacts rather than claims.
class JsonReporter {
 public:
  void Add(const std::string& method, const std::string& dataset, double cr,
           double ct_gbps, double dt_gbps);
  /// Same row plus extra numeric keys appended after the fixed schema
  /// (e.g. append-latency percentiles from the obs histograms). Extra
  /// keys must be valid JSON identifiers; values print with %.4f.
  void Add(const std::string& method, const std::string& dataset, double cr,
           double ct_gbps, double dt_gbps,
           const std::vector<std::pair<std::string, double>>& extras);

  /// Serializes all rows; returns false (and prints to stderr) on I/O
  /// failure.
  bool WriteToFile(const std::string& path) const;

  size_t size() const { return rows_.size(); }

 private:
  struct Row {
    std::string method;
    std::string dataset;
    double cr;
    double ct_gbps;
    double dt_gbps;
    std::vector<std::pair<std::string, double>> extras;
  };
  std::vector<Row> rows_;
};

/// Parses a `--json[=path]` flag: returns `default_path` for a bare
/// `--json`, the given path for `--json=path`, and "" when the flag is
/// absent (benches then print tables only).
std::string JsonOutputPath(int argc, char** argv,
                           const std::string& default_path);

/// Percentile of a sorted copy of `v` (p in [0,100]).
double Percentile(std::vector<double> v, double p);

}  // namespace fcbench::bench

#endif  // FCBENCH_BENCH_BENCH_COMMON_H_
