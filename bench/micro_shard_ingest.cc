// Sharded-ingest microbenchmark: multi-tenant append throughput across
// 64k synthetic series hash-routed onto 8 IngestEngine shards, on
// 1/2/4/8 writer threads, with and without per-shard fsync.
//
// Modes (JSON `method` column):
//   shard-nosync-tN     sync_on_commit=false, N writer threads over the
//                       full series population — upper bound, page-cache
//                       absorbed
//   shard-fsync-tN      sync_on_commit=true, N writer threads over a
//                       reduced series population (one group commit =
//                       one fsync per series batch; capped so the lane
//                       stays fast)
//
// Per mode the JSON row records
//   ct_gbps  append throughput (raw row bytes / append wall time)
//   dt_gbps  recovery throughput (raw row bytes / reopen-replay wall)
//   cr       raw row bytes / on-disk segment bytes after a flush
//
// The committed artifact is BENCH_ingest_scaling.json (perf-smoke lane).
// Single-core hosts legitimately produce a flat thread curve — the
// banner records the knobs so trajectories compare like with like.

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "db/shard/sharded_engine.h"
#include "obs/metrics.h"
#include "util/fs.h"
#include "util/timer.h"

using namespace fcbench;
using namespace fcbench::db;

namespace {

constexpr size_t kNumCols = 2;
constexpr size_t kNumShards = 8;
constexpr size_t kSeries = 65536;
/// fsync mode costs one disk flush per series batch; cap the population
/// so the lane stays fast while still measuring real per-commit syncs.
constexpr size_t kFsyncSeries = 1024;

std::vector<lsm::ColumnDef> Schema() {
  return {
      {.name = "ts", .dtype = DType::kFloat64, .compressor = ""},
      {.name = "value", .dtype = DType::kFloat64, .compressor = ""},
  };
}

/// One batch for `series`: a regular timestamp and a per-series phase of
/// a smooth oscillation — compressible, but not degenerate.
void FillBatch(uint64_t series, size_t rows, std::vector<double>* out) {
  out->resize(rows * kNumCols);
  for (size_t i = 0; i < rows; ++i) {
    (*out)[i * kNumCols + 0] = 1.0e9 + static_cast<double>(i) * 10.0;
    (*out)[i * kNumCols + 1] =
        std::sin(static_cast<double>(series) * 0.1 +
                 static_cast<double>(i) * 0.01) *
        100.0;
  }
}

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string p = fs::JoinPath(dir, n);
      if (!fs::RemoveFile(p).ok()) RemoveTree(p);  // a shard subdirectory
    }
  }
  ::rmdir(dir.c_str());
}

/// Total bytes of seg-* files across every shard subdirectory.
uint64_t SegmentBytes(const std::string& dir) {
  uint64_t total = 0;
  auto names = fs::ListDir(dir);
  if (!names.ok()) return 0;
  for (const auto& n : names.value()) {
    if (n.compare(0, 6, "shard-") != 0) continue;
    const std::string sub = fs::JoinPath(dir, n);
    auto files = fs::ListDir(sub);
    if (!files.ok()) continue;
    for (const auto& f : files.value()) {
      if (f.compare(0, 4, "seg-") != 0) continue;
      auto sz = fs::FileSize(fs::JoinPath(sub, f));
      if (sz.ok()) total += sz.value();
    }
  }
  return total;
}

struct ModeResult {
  double ct_gbps = 0;
  double dt_gbps = 0;
  double cr = 0;
  /// Per-AppendBatch latency percentiles for THIS run, from the
  /// lsm.append_nanos histogram delta (all shards pooled).
  double append_p50_ns = 0;
  double append_p99_ns = 0;
  bool ok = false;
};

ModeResult RunMode(const std::string& tag, size_t num_series,
                   size_t rows_per_series, size_t threads, bool sync) {
  ModeResult r;
  const std::string dir =
      "/tmp/fcbench_shard_bench_" + std::to_string(::getpid()) + "_" + tag;
  const uint64_t total_rows =
      static_cast<uint64_t>(num_series) * rows_per_series;
  const uint64_t raw_bytes = total_rows * kNumCols * sizeof(double);

  shard::ShardOptions opt;
  opt.num_shards = kNumShards;
  opt.engine.sync_on_commit = sync;
  opt.engine.background_flush = true;
  opt.engine.compact_fanout = 0;
  // Keep the run in the memtables so the append loop times the
  // admission + WAL + memtable path, not a flush in the middle; quota
  // sized so admission never stalls the writers.
  opt.engine.memtable_bytes = raw_bytes / kNumShards + (1 << 20);
  opt.engine.wal_segment_bytes = 8 << 20;
  opt.shard_quota_bytes = static_cast<size_t>(raw_bytes) + (1 << 20);

  RemoveTree(dir);
  {
    auto eng = shard::ShardedIngestEngine::Open(dir, Schema(), opt);
    if (!eng.ok()) {
      std::fprintf(stderr, "%s: open: %s\n", tag.c_str(),
                   eng.status().ToString().c_str());
      return r;
    }
    std::atomic<bool> failed{false};
    static obs::Histogram* append_nanos =
        obs::MetricsRegistry::Global().GetHistogram("lsm.append_nanos",
                                                    obs::Unit::kNanos);
    const obs::HistogramSnapshot before = append_nanos->SnapshotNow();
    Timer append_timer;
    std::vector<std::thread> writers;
    for (size_t t = 0; t < threads; ++t) {
      writers.emplace_back([&, t] {
        // Each writer owns a contiguous slice of the series population.
        const size_t lo = t * num_series / threads;
        const size_t hi = (t + 1) * num_series / threads;
        std::vector<double> batch;
        for (size_t s = lo; s < hi && !failed.load(); ++s) {
          FillBatch(s, rows_per_series, &batch);
          if (!eng.value()->AppendBatch(s, batch).ok()) failed = true;
        }
      });
    }
    for (auto& w : writers) w.join();
    if (failed.load()) {
      std::fprintf(stderr, "%s: append failed\n", tag.c_str());
      return r;
    }
    r.ct_gbps = raw_bytes / append_timer.ElapsedSeconds() / 1e9;
    const obs::HistogramSnapshot run =
        append_nanos->SnapshotNow().Delta(before);
    r.append_p50_ns = run.p50();
    r.append_p99_ns = run.p99();
    // Engine closed without Flush: recovery below replays every row
    // from the per-shard WALs, exactly the crash path.
  }

  shard::ShardOptions reopen = opt;
  reopen.num_shards = 0;  // adopt the pinned count
  Timer replay_timer;
  auto eng = shard::ShardedIngestEngine::Open(dir, Schema(), reopen);
  if (!eng.ok() || eng.value()->rows() != total_rows) {
    std::fprintf(stderr, "%s: recovery lost rows\n", tag.c_str());
    return r;
  }
  r.dt_gbps = raw_bytes / replay_timer.ElapsedSeconds() / 1e9;

  if (!eng.value()->Flush().ok()) {
    std::fprintf(stderr, "%s: flush failed\n", tag.c_str());
    return r;
  }
  const uint64_t seg_bytes = SegmentBytes(dir);
  if (seg_bytes > 0) r.cr = static_cast<double>(raw_bytes) / seg_bytes;
  eng.value()->Close();
  eng.value().reset();
  RemoveTree(dir);
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("micro_shard_ingest: sharded multi-tenant ingest",
                "admission-controlled append scaling across 8 shards");
  const uint64_t bytes = bench::BenchBytes(2 << 20);
  const int repeats = bench::BenchRepeats(2);
  // Rows per series so the nosync population totals ~FCBENCH_BENCH_BYTES.
  const size_t rows_per_series = static_cast<size_t>(std::max<uint64_t>(
      1, bytes / (kSeries * kNumCols * sizeof(double))));

  bench::JsonReporter json;
  bench::TablePrinter table({"mode", "series", "append GB/s", "replay GB/s",
                             "seg CR", "p50 us", "p99 us"},
                            12, 18);
  for (const bool sync : {false, true}) {
    const size_t num_series = sync ? kFsyncSeries : kSeries;
    // fsync batches are padded so the reduced population still carries a
    // measurable payload per commit.
    const size_t rows = sync ? std::max<size_t>(rows_per_series, 16)
                             : rows_per_series;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const std::string name = std::string("shard-") +
                               (sync ? "fsync" : "nosync") + "-t" +
                               std::to_string(threads);
      ModeResult best;
      for (int rep = 0; rep < repeats; ++rep) {
        ModeResult r = RunMode(name, num_series, rows, threads, sync);
        if (!r.ok) continue;
        if (!best.ok || r.ct_gbps > best.ct_gbps) {
          best.ct_gbps = r.ct_gbps;
          best.append_p50_ns = r.append_p50_ns;
          best.append_p99_ns = r.append_p99_ns;
          best.ok = true;
        }
        best.dt_gbps = std::max(best.dt_gbps, r.dt_gbps);
        best.cr = std::max(best.cr, r.cr);
      }
      if (!best.ok) continue;
      table.AddRow({name, std::to_string(num_series),
                    bench::TablePrinter::Fmt(best.ct_gbps),
                    bench::TablePrinter::Fmt(best.dt_gbps),
                    bench::TablePrinter::Fmt(best.cr),
                    bench::TablePrinter::Fmt(best.append_p50_ns / 1e3),
                    bench::TablePrinter::Fmt(best.append_p99_ns / 1e3)});
      json.Add(name, "synthetic-series", best.cr, best.ct_gbps, best.dt_gbps,
               {{"append_p50_ns", best.append_p50_ns},
                {"append_p99_ns", best.append_p99_ns}});
    }
  }
  table.Print();

  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_ingest_scaling.json");
  if (!json_path.empty()) json.WriteToFile(json_path);
  return 0;
}
