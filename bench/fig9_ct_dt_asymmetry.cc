// Figure 9: rD = (CT - DT) / CT per method. Negative rD means
// decompression is faster than compression; the paper highlights
// nvCOMP::LZ4 at -18.64 and Chimp at -4.16, with delta/Lorenzo methods
// near balance.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Figure 9 - compression/decompression asymmetry", "paper §6.1.3");
  auto results = RunFullSweep(PaperMethods());
  auto summaries = Summarize(results);

  TablePrinter t({"method", "rD=(CT-DT)/CT", "reading"}, 16, 18);
  double rd_nvlz4 = 0, rd_ndzip = 0;
  for (const auto& s : summaries) {
    double rd = s.mean_ct_gbps > 0
                    ? (s.mean_ct_gbps - s.mean_dt_gbps) / s.mean_ct_gbps
                    : 0;
    const char* reading = rd < -1.0   ? "decompress >> compress"
                          : rd < -0.1 ? "decompress faster"
                          : rd > 0.1  ? "compress faster"
                                      : "balanced";
    t.AddRow({s.method, TablePrinter::Fmt(rd, 2), reading});
    if (s.method == "nv_lz4") rd_nvlz4 = rd;
    if (s.method == "ndzip_cpu") rd_ndzip = rd;
  }
  t.Print();

  std::printf("\nShape checks vs. paper:\n");
  std::printf("  nv_lz4 strongly asymmetric (paper -18.64): rD = %.2f -> %s\n",
              rd_nvlz4, rd_nvlz4 < -3.0 ? "yes" : "NO");
  std::printf("  ndzip balanced (paper 0.25): rD = %.2f -> %s\n", rd_ndzip,
              std::abs(rd_ndzip) < 0.6 ? "yes" : "NO");
  std::printf("Takeaway: dictionary methods decode with far fewer "
              "computations than they search during encode; good for "
              "query-heavy databases.\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
