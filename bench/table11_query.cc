// Table 11: read + decode + query time (ms) on the TPC datasets through
// the simulated in-memory database: compressed pages on disk -> file I/O
// -> per-page decompression -> columnar dataframe -> 10 full-table-scan
// queries driven by a histogram of the first column (paper §6.2.2,
// footnote 14).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/timer.h"

namespace fcbench::bench {
namespace {

int Main() {
  Banner("Table 11 - read and query time", "paper §6.2.2 Obs. 9");
  // Paper's Table 11 method columns.
  const std::vector<std::string> methods = {
      "pfpc",    "spdp",      "fpzip",   "bitshuffle_lz4",
      "bitshuffle_zstd", "ndzip_cpu", "gorilla", "chimp128",
      "gfc",     "mpc",       "ndzip_gpu"};

  std::vector<std::string> headers = {"dataset"};
  for (const auto& m : methods) headers.push_back(m.substr(0, 9));
  headers.push_back("query");
  TablePrinter t(headers, 11, 15);

  std::string tmpdir = "/tmp";
  for (const auto& info : data::AllDatasets()) {
    if (info.domain != data::Domain::kDatabase) continue;
    auto ds = data::GenerateDataset(info, BenchBytes());
    if (!ds.ok()) continue;

    std::vector<std::string> row = {info.name};
    double query_ms = 0;
    for (const auto& m : methods) {
      db::PagedFile::Options opt;
      opt.compressor = m;
      opt.page_size = 64 << 10;
      std::string path = tmpdir + "/fcbench_t11_" + info.name + "_" + m;
      Status ws = db::PagedFile::Write(path, ds.value().bytes.span(),
                                       ds.value().desc, opt);
      if (!ws.ok()) {
        row.push_back("-");
        continue;
      }
      db::PagedFile::ReadTiming timing;
      auto bytes = db::PagedFile::Read(path, &timing);
      std::remove(path.c_str());
      if (!bytes.ok()) {
        row.push_back("-");
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f+%.1f",
                    timing.io_seconds * 1e3, timing.decode_seconds * 1e3);
      row.push_back(buf);

      if (query_ms == 0) {  // query time identical across methods
        auto df = db::DataFrame::FromBytes(bytes.value().span(),
                                           ds.value().desc);
        if (df.ok()) {
          auto edges = df.value().HistogramEdges(0, 10);
          Timer timer;
          uint64_t sink = 0;
          for (double e : edges) sink += df.value().CountLessEqual(0, e);
          query_ms = timer.ElapsedSeconds() * 1e3 / edges.size();
          if (sink == 0) query_ms += 0;  // keep the scan alive
        }
      }
    }
    char qbuf[32];
    std::snprintf(qbuf, sizeof(qbuf), "%.2f", query_ms);
    row.push_back(qbuf);
    t.AddRow(row);
  }
  t.Print();

  std::printf("\nCells are io_ms+decode_ms per method; 'query' is one "
              "full-table scan on the decoded dataframe (identical for "
              "all methods).\n");
  std::printf("Shape check vs. paper: read overhead follows each method's "
              "DT and CR; dictionary/transform methods (bitshuffle) decode "
              "fastest among CPU methods; end-to-end time, not kernel "
              "time, decides the ranking (Obs. 9).\n");
  return 0;
}

}  // namespace
}  // namespace fcbench::bench

int main() { return fcbench::bench::Main(); }
