// Example: monitoring-dashboard queries over compressed sensor data.
//
// A server-metrics pipeline (the BUFF motivation of paper §3.3) stores
// low-precision readings compressed on disk in a checksummed .fcz
// container, then answers dashboard queries two ways:
//
//   1. decode path  — decompress into a DataFrame, filter + aggregate
//                     with the db::query engine (works for every method);
//   2. pushdown path — evaluate the predicate directly on the encoded
//                     BUFF sub-columns, decoding only qualifying records.
//
// Build & run:  ./examples/query_pushdown

#include <cmath>
#include <cstdio>
#include <vector>

#include "compressors/buff.h"
#include "core/container.h"
#include "db/dataframe.h"
#include "db/query.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace fcbench;

int main() {
  // --- ingest: one day of 10 Hz CPU-temperature readings, 2 decimals ----
  const size_t kReadings = 864000;
  Rng rng(7);
  std::vector<double> temps(kReadings);
  double level = 55.0;
  for (auto& t : temps) {
    level += rng.Normal() * 0.02;
    t = std::round(level * 100.0) / 100.0;  // sensor reports 0.01 C steps
  }

  DataDesc desc;
  desc.dtype = DType::kFloat64;
  desc.extent = {kReadings};
  desc.precision_digits = 2;  // BUFF's lossless bound for this feed

  // --- store: checksummed self-describing container --------------------
  Buffer fcz;
  Status st = FczContainer::Pack("buff", desc, AsBytes(temps),
                                 CompressorConfig{}, &fcz);
  if (!st.ok()) {
    std::fprintf(stderr, "pack: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("stored %zu readings: %zu -> %zu bytes (ratio %.2f)\n",
              kReadings, temps.size() * 8, fcz.size(),
              double(temps.size() * 8) / fcz.size());

  auto info = FczContainer::Inspect(fcz.span());
  std::printf("container: method=%s %s (checked without decode)\n\n",
              info.value().method.c_str(),
              info.value().desc.ToString().c_str());

  // --- query 1: decode path (any method) --------------------------------
  const double kAlertThreshold = 55.8;
  Timer decode_timer;
  auto raw = FczContainer::Unpack(fcz.span());
  if (!raw.ok()) {
    std::fprintf(stderr, "unpack: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto df = db::DataFrame::FromBytes(raw.value().span(), desc);
  auto sel = db::Filter(df.value(), db::ScanPredicate{
                                        .column = 0,
                                        .op = db::CompareOp::kGe,
                                        .value = kAlertThreshold});
  auto mean = db::Aggregate(df.value(), 0, db::AggregateOp::kMean,
                            &sel.value());
  double decode_ms = decode_timer.ElapsedSeconds() * 1e3;
  std::printf("decode path:   %8zu readings >= %.2f C, mean %.3f C "
              "(%.2f ms: unpack+verify+scan)\n",
              sel.value().size(), kAlertThreshold, mean.value(), decode_ms);

  // --- query 2: pushdown path (BUFF only, no decode) ---------------------
  // The encoded payload sits after the container header; hand the scan the
  // BUFF stream itself.
  auto payload_off = fcz.size() - info.value().payload_bytes;
  ByteSpan buff_stream = fcz.span().subspan(payload_off);
  Timer push_timer;
  auto agg = compressors::BuffCompressor::FilteredAggregate(
      buff_stream, compressors::BuffCompressor::Predicate::kGreaterEqual,
      kAlertThreshold, compressors::BuffCompressor::Aggregate::kSum);
  double push_ms = push_timer.ElapsedSeconds() * 1e3;
  double push_mean =
      agg.value().count ? agg.value().value / agg.value().count : 0.0;
  std::printf("pushdown path: %8llu readings >= %.2f C, mean %.3f C "
              "(%.2f ms: predicate on encoded sub-columns)\n",
              static_cast<unsigned long long>(agg.value().count),
              kAlertThreshold, push_mean, push_ms);
  std::printf("\npushdown speedup: %.1fx (paper §3.3 reports 35-50x vs "
              "decompress-then-filter baselines)\n",
              decode_ms / push_ms);

  // --- integrity: flip one bit anywhere and the store notices -----------
  Buffer tampered = Buffer::FromSpan(fcz.span());
  tampered.data()[tampered.size() / 2] ^= 0x04;
  auto bad = FczContainer::Unpack(tampered.span());
  std::printf("tamper check: %s\n",
              bad.ok() ? "MISSED (bug!)" : bad.status().ToString().c_str());
  return bad.ok() ? 1 : 0;
}
