// Compressor selection, offline and online. First runs a scaled-down
// benchmark sweep and asks the §7.3 recommendation engine which method
// to use per domain and objective (the paper's static "map to assist
// users in selecting the most suitable compressors"). Then drives the
// online per-chunk selector (src/select/) over one dataset per domain
// and prints each chunk's decision, so the two answers — one from
// benchmark sweeps, one from the data itself — can be compared side by
// side.

#include <cstdio>

#include "core/recommend.h"
#include "core/runner.h"
#include "data/dataset.h"
#include "select/auto_compressor.h"
#include "select/selector.h"

using namespace fcbench;

namespace {

void RunOnlineSelection(const data::DatasetInfo& info, Objective objective,
                        const std::string& offline_pick) {
  constexpr uint64_t kBytes = 1 << 20;
  constexpr size_t kChunkBytes = 128 << 10;
  auto ds = data::GenerateDataset(info, kBytes);
  if (!ds.ok()) {
    std::printf("  %s: %s\n", info.name.c_str(),
                ds.status().ToString().c_str());
    return;
  }

  select::SelectionTrace trace;
  CompressorConfig config;
  config.chunk_bytes = kChunkBytes;
  config.selection_trace = &trace;
  auto comp = CompressorRegistry::Global().Create(
      select::AutoMethodName(objective), config);
  if (!comp.ok()) {
    std::printf("  %s\n", comp.status().ToString().c_str());
    return;
  }
  Buffer out;
  Status st = comp.value()->Compress(ds.value().bytes.span(),
                                     ds.value().desc, &out);
  if (!st.ok()) {
    std::printf("  compress failed: %s\n", st.ToString().c_str());
    return;
  }

  std::printf("dataset %s (%s, objective=%s): offline map says %s\n",
              info.name.c_str(),
              std::string(data::DomainName(info.domain)).c_str(),
              std::string(ObjectiveName(objective)).c_str(),
              offline_pick.c_str());
  std::printf("  online: %zu -> %zu bytes (ratio %.3f), per chunk:\n",
              ds.value().bytes.size(), out.size(),
              static_cast<double>(ds.value().bytes.size()) / out.size());
  for (const auto& e : trace.entries) {
    std::printf("    chunk %llu: %-16s %s\n",
                static_cast<unsigned long long>(e.chunk_index),
                e.decision.method.c_str(),
                e.decision.cache_hit ? "(decision cache)"
                                     : e.decision.rationale.c_str());
  }
}

}  // namespace

int main() {
  std::printf("running a scaled benchmark sweep to build the "
              "recommendation map (a few seconds)...\n\n");
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = 1 << 20;
  BenchmarkRunner runner(opt);

  std::vector<std::string> methods = {
      "pfpc",    "spdp",      "fpzip",     "bitshuffle_lz4",
      "bitshuffle_zstd", "ndzip_cpu", "buff", "gorilla",
      "chimp128", "gfc",      "mpc",       "nv_lz4",
      "nv_bitcomp", "ndzip_gpu"};
  auto results = runner.RunAll(methods, data::AllDatasets());

  RecommendationEngine engine(std::move(results));
  std::printf("%s\n", engine.RenderMap().c_str());

  // Scenario queries a downstream user might ask of the offline map.
  struct Query {
    const char* description;
    data::Domain domain;
    Objective objective;
  };
  for (const Query& q : {
           Query{"archive 3-D simulation checkpoints (smallest files)",
                 data::Domain::kHpc, Objective::kStorageReduction},
           Query{"monitor IoT sensors with tight ingest deadlines",
                 data::Domain::kTimeSeries, Objective::kSpeed},
           Query{"store telescope images, balanced cost",
                 data::Domain::kObservation, Objective::kBalanced},
           Query{"compress numeric columns of a transactional DB",
                 data::Domain::kDatabase, Objective::kStorageReduction},
       }) {
    auto rec = engine.Recommend(q.domain, q.objective);
    std::printf("workload: %s\n  -> use %-16s (%s; harmonic CR %.3f, "
                "end-to-end %.2f ms)\n",
                q.description, rec.method.c_str(), rec.rationale.c_str(),
                rec.harmonic_cr, rec.mean_wall_ms);
  }

  // The same questions answered online, per chunk, from the data itself
  // (src/select/): one representative dataset per domain. The offline
  // map gives one method per (domain, objective); the online selector
  // is free to switch methods mid-dataset when the data changes.
  std::printf("\n--- online per-chunk selection vs the offline map ---\n\n");
  struct OnlineCase {
    const char* dataset;
    data::Domain domain;
    Objective objective;
  };
  for (const OnlineCase& c : {
           OnlineCase{"msg-bt", data::Domain::kHpc,
                      Objective::kStorageReduction},
           OnlineCase{"citytemp", data::Domain::kTimeSeries,
                      Objective::kSpeed},
           OnlineCase{"acs-wht", data::Domain::kObservation,
                      Objective::kBalanced},
           OnlineCase{"tpcH-order", data::Domain::kDatabase,
                      Objective::kStorageReduction},
       }) {
    auto rec = engine.Recommend(c.domain, c.objective);
    RunOnlineSelection(*data::FindDataset(c.dataset), c.objective,
                       rec.method);
  }
  return 0;
}
