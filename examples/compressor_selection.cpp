// Compressor selection: runs a scaled-down benchmark sweep and asks the
// §7.3 recommendation engine which method to use per domain and
// objective — the "map to assist users in selecting the most suitable
// compressors" the paper concludes with.

#include <cstdio>

#include "core/recommend.h"
#include "core/runner.h"
#include "data/dataset.h"

using namespace fcbench;

int main() {
  std::printf("running a scaled benchmark sweep to build the "
              "recommendation map (a few seconds)...\n\n");
  BenchmarkRunner::Options opt;
  opt.repeats = 1;
  opt.dataset_bytes = 1 << 20;
  BenchmarkRunner runner(opt);

  std::vector<std::string> methods = {
      "pfpc",    "spdp",      "fpzip",     "bitshuffle_lz4",
      "bitshuffle_zstd", "ndzip_cpu", "buff", "gorilla",
      "chimp128", "gfc",      "mpc",       "nv_lz4",
      "nv_bitcomp", "ndzip_gpu"};
  auto results = runner.RunAll(methods, data::AllDatasets());

  RecommendationEngine engine(std::move(results));
  std::printf("%s\n", engine.RenderMap().c_str());

  // Scenario queries a downstream user might ask.
  struct Query {
    const char* description;
    data::Domain domain;
    Objective objective;
  };
  for (const Query& q : {
           Query{"archive 3-D simulation checkpoints (smallest files)",
                 data::Domain::kHpc, Objective::kStorageReduction},
           Query{"monitor IoT sensors with tight ingest deadlines",
                 data::Domain::kTimeSeries, Objective::kSpeed},
           Query{"store telescope images, balanced cost",
                 data::Domain::kObservation, Objective::kBalanced},
           Query{"compress numeric columns of a transactional DB",
                 data::Domain::kDatabase, Objective::kStorageReduction},
       }) {
    auto rec = engine.Recommend(q.domain, q.objective);
    std::printf("workload: %s\n  -> use %-16s (%s; harmonic CR %.3f, "
                "end-to-end %.2f ms)\n",
                q.description, rec.method.c_str(), rec.rationale.c_str(),
                rec.harmonic_cr, rec.mean_wall_ms);
  }
  return 0;
}
