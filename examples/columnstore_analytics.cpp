// Example: analytics over a compressed column store.
//
// The paper's takeaway for database designers (§7.2) is that column
// stores can adopt these compressors per column: 1-D columns compress
// without ratio loss (§6.1.5), and different columns suit different
// methods. This example builds a telemetry table where each column uses
// the method its data character calls for, then runs projected
// scan/aggregate queries that only touch (and only decompress) the
// columns they need.
//
// Build & run:  ./examples/columnstore_analytics

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "db/column_store.h"
#include "db/query.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace fcbench;
using namespace fcbench::db;

int main() {
  const size_t kRows = 200000;
  Rng rng(2026);

  // Three columns with very different characters:
  //   temperature — slow random walk: XOR residuals are tiny -> Gorilla
  //   vibration   — noisy f32 spectra: bit-plane structure -> bitshuffle
  //   machine_id  — few distinct repeating values -> chimp128's window
  ColumnStore::ColumnSpec temperature{.name = "temperature",
                                      .compressor = "gorilla",
                                      .dtype = DType::kFloat64};
  ColumnStore::ColumnSpec vibration{.name = "vibration",
                                    .compressor = "bitshuffle_zstd",
                                    .dtype = DType::kFloat32};
  ColumnStore::ColumnSpec machine{.name = "machine_id",
                                  .compressor = "chimp128",
                                  .dtype = DType::kFloat64};
  double level = 70.0;
  for (size_t r = 0; r < kRows; ++r) {
    level += rng.Normal() * 0.01;
    temperature.values.push_back(std::round(level * 100.0) / 100.0);
    vibration.values.push_back(
        static_cast<float>(std::fabs(rng.Normal()) * 0.5));
    machine.values.push_back(static_cast<double>(r % 48));
  }

  const std::string prefix = "/tmp/fcbench_telemetry";
  Status st = ColumnStore::Write(prefix, {temperature, vibration, machine});
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t raw_bytes = kRows * (8 + 4 + 8);
  ColumnStore::ReadStats full_stats;
  auto whole = ColumnStore::Read(prefix, {}, &full_stats);
  if (!whole.ok()) return 1;
  std::printf("telemetry table: %zu rows, raw %.2f MB -> %.2f MB on disk "
              "(ratio %.2f) with per-column methods\n",
              kRows, raw_bytes / 1e6, full_stats.bytes_on_disk / 1e6,
              double(raw_bytes) / full_stats.bytes_on_disk);

  // Query 1: mean temperature of one machine — touches two columns.
  Timer q1;
  ColumnStore::ReadStats q1_stats;
  auto df = ColumnStore::Read(prefix, {"machine_id", "temperature"},
                              &q1_stats);
  if (!df.ok()) return 1;
  auto sel = Filter(df.value(), ScanPredicate{.column = 0,
                                              .op = CompareOp::kEq,
                                              .value = 7.0});
  auto mean =
      Aggregate(df.value(), 1, AggregateOp::kMean, &sel.value());
  std::printf("\nquery 1: mean(temperature) where machine_id == 7\n");
  std::printf("  -> %.3f over %zu rows; read %0.2f MB (not %0.2f MB: "
              "vibration never decoded) in %.1f ms\n",
              mean.value(), sel.value().size(),
              q1_stats.bytes_on_disk / 1e6, full_stats.bytes_on_disk / 1e6,
              q1.ElapsedSeconds() * 1e3);

  // Query 2: alert scan across two measures, conjunctive predicate.
  Timer q2;
  auto df2 = ColumnStore::Read(prefix, {"temperature", "vibration"});
  if (!df2.ok()) return 1;
  std::vector<ScanPredicate> preds = {
      {.column = 0, .op = CompareOp::kGe, .value = 70.0},
      {.column = 1, .op = CompareOp::kGe, .value = 1.2},
  };
  auto alerts = FilterAll(df2.value(), preds);
  auto worst = Aggregate(df2.value(), 1, AggregateOp::kMax,
                         &alerts.value());
  std::printf("\nquery 2: hot AND shaking (temp >= 70, vibration >= 1.2)\n");
  std::printf("  -> %zu alert rows, worst vibration %.3f, in %.1f ms\n",
              alerts.value().size(), worst.value(),
              q2.ElapsedSeconds() * 1e3);

  ColumnStore::Drop(prefix);
  return 0;
}
