// Exports the full benchmark grid as CSV for external analysis (R/pandas
// notebooks) — the artifact-style workflow the paper's repository offers.
//
//   export_results [out.csv] [--bytes=N] [--repeats=N] [--methods=a,b,c]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/runner.h"
#include "data/dataset.h"

using namespace fcbench;

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = (argc > 1 && argv[1][0] != '-')
                             ? argv[1]
                             : "fcbench_results.csv";
  BenchmarkRunner::Options opt;
  opt.dataset_bytes = std::strtoull(
      FlagValue(argc, argv, "bytes", "1048576").c_str(), nullptr, 10);
  opt.repeats = std::atoi(FlagValue(argc, argv, "repeats", "1").c_str());

  std::vector<std::string> methods;
  std::string methods_flag = FlagValue(argc, argv, "methods", "");
  if (methods_flag.empty()) {
    for (const auto& name : CompressorRegistry::Global().Names()) {
      if (name != "dzip_nn") methods.push_back(name);  // NN coder too slow
    }
  } else {
    methods = SplitCsv(methods_flag);
  }

  std::printf("sweep: %zu methods x %zu datasets, %llu bytes each...\n",
              methods.size(), data::AllDatasets().size(),
              static_cast<unsigned long long>(opt.dataset_bytes));
  BenchmarkRunner runner(opt);
  auto results = runner.RunAll(methods, data::AllDatasets());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "dataset,domain,dtype,method,ok,cr,ct_gbps,dt_gbps,"
               "comp_wall_ms,decomp_wall_ms,orig_bytes,comp_bytes,"
               "peak_mem_bytes,round_trip_exact,error\n");
  for (const auto& r : results) {
    const data::DatasetInfo* info = data::FindDataset(r.dataset);
    std::fprintf(
        f, "%s,%s,%s,%s,%d,%.6f,%.6f,%.6f,%.4f,%.4f,%llu,%llu,%llu,%d,%s\n",
        r.dataset.c_str(),
        info ? std::string(data::DomainName(info->domain)).c_str() : "?",
        info ? DTypeName(info->dtype) : "?", r.method.c_str(), r.ok ? 1 : 0,
        r.cr, r.ct_gbps, r.dt_gbps, r.comp_wall_ms, r.decomp_wall_ms,
        static_cast<unsigned long long>(r.orig_bytes),
        static_cast<unsigned long long>(r.comp_bytes),
        static_cast<unsigned long long>(r.peak_mem_bytes),
        r.round_trip_exact ? 1 : 0, r.error.c_str());
  }
  std::fclose(f);
  std::printf("wrote %zu rows to %s\n", results.size(), out_path.c_str());
  return 0;
}
