// In-situ analysis scenario (§1.1 motivation: Seer-Dash storing HACC
// simulation steps in a KV store for live visualization): each simulation
// time step produces a 3-D field; the field is compressed with an
// HPC-oriented method and staged into the paged store; an analysis query
// reads it back and computes summary statistics.

#include <cmath>
#include <cstdio>
#include <string>

#include "core/compressor.h"
#include "core/streaming.h"
#include "data/dataset.h"
#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/timer.h"

using namespace fcbench;

int main() {
  const int kTimeSteps = 4;
  std::printf("in-situ pipeline: %d simulation steps of a 3-D field, "
              "staged through compressed pages, analyzed in memory\n\n",
              kTimeSteps);

  double total_raw = 0, total_stored = 0;
  for (int step = 0; step < kTimeSteps; ++step) {
    // One simulation time step (turbulence-like 3-D field; a different
    // seed per step plays the role of time evolution).
    auto ds = data::GenerateDataset(*data::FindDataset("turbulence"),
                                    2ull << 20, 100 + step);
    if (!ds.ok()) return 1;

    // Stage: compress with ndzip (the paper's high-throughput HPC choice)
    // into the paged store.
    std::string path = "/tmp/fcbench_insitu_step" + std::to_string(step);
    db::PagedFile::Options opt;
    opt.compressor = "ndzip_cpu";
    opt.page_size = 256 << 10;
    Timer stage_timer;
    Status st = db::PagedFile::Write(path, ds.value().bytes.span(),
                                     ds.value().desc, opt);
    double stage_ms = stage_timer.ElapsedSeconds() * 1e3;
    if (!st.ok()) {
      std::printf("stage failed: %s\n", st.ToString().c_str());
      return 1;
    }
    double stored = static_cast<double>(db::PagedFile::FileSize(path).value());

    // Analyze: read back, compute field statistics (the "query" half of
    // Figure 4's staging/query split).
    db::PagedFile::ReadTiming timing;
    auto bytes = db::PagedFile::Read(path, &timing);
    if (!bytes.ok()) return 1;
    auto flat_desc = ds.value().desc.As1D();
    auto df =
        db::DataFrame::FromBytes(bytes.value().span(), flat_desc).TakeValue();
    Timer q_timer;
    const auto& col = df.column(0);
    double mn = col[0], mx = col[0], sum = 0;
    for (double v : col) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
    }
    double query_ms = q_timer.ElapsedSeconds() * 1e3;

    std::printf("step %d: raw %.2f MB -> stored %.2f MB (ratio %.2f)  "
                "stage %.1f ms  io+decode %.1f+%.1f ms  analyze %.1f ms  "
                "range [%.1f, %.1f] mean %.2f\n",
                step, ds.value().bytes.size() / 1e6, stored / 1e6,
                ds.value().bytes.size() / stored, stage_ms,
                timing.io_seconds * 1e3, timing.decode_seconds * 1e3,
                query_ms, mn, mx, sum / col.size());
    total_raw += static_cast<double>(ds.value().bytes.size());
    total_stored += stored;
    std::remove(path.c_str());
  }

  std::printf("\ntotal: %.2f MB of simulation output stored in %.2f MB "
              "(%.2fx saved) while remaining queryable per step.\n",
              total_raw / 1e6, total_stored / 1e6, total_raw / total_stored);

  // The same pipeline as a single append-only stream (core/streaming.h):
  // one checksummed frame per time step, shipped to the consumer as soon
  // as it is produced — the inter-node transfer path of §1 where lossless
  // coding is mandatory to avoid error accumulation.
  std::printf("\nstreaming variant: one frame per step, decoded as it "
              "arrives\n");
  auto writer = StreamWriter::Open("ndzip_cpu").TakeValue();
  auto reader = StreamReader::Open("ndzip_cpu").TakeValue();
  Buffer wire;
  for (int step = 0; step < kTimeSteps; ++step) {
    auto ds = data::GenerateDataset(*data::FindDataset("turbulence"),
                                    512 << 10, 100 + step);
    if (!ds.ok()) return 1;
    if (!writer.Append(ds.value().bytes.span(), ds.value().desc.dtype,
                       &wire)
             .ok()) {
      return 1;
    }
    Buffer received;  // consumer side: decode the frame just shipped
    if (!reader.Next(wire.span(), &received).ok()) return 1;
    std::printf("  step %d on the wire: %llu raw -> %llu framed bytes "
                "(running ratio %.2f)\n",
                step,
                static_cast<unsigned long long>(ds.value().bytes.size()),
                static_cast<unsigned long long>(writer.frame_bytes()),
                double(writer.raw_bytes()) / writer.frame_bytes());
  }
  return 0;
}
