// Time-series database scenario (the Gorilla/Chimp motivation): sensor
// streams are compressed into a paged store; range queries read pages,
// decode, and scan. Also demonstrates BUFF's signature trick — predicate
// evaluation directly on the compressed sub-columns, no decode.

#include <cstdio>
#include <string>
#include <vector>

#include "compressors/buff.h"
#include "compressors/timeseries_block.h"
#include "core/compressor.h"
#include "data/dataset.h"
#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace fcbench;

int main() {
  // Generate a realistic multi-column sensor stream (phone gyroscope
  // character: 3 columns of quantized random-walk readings).
  auto ds = data::GenerateDataset(*data::FindDataset("phone-gyro"),
                                  4ull << 20);
  if (!ds.ok()) {
    std::printf("dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("sensor stream: %s, %llu readings\n",
              ds.value().desc.ToString().c_str(),
              static_cast<unsigned long long>(ds.value().num_elements()));

  // Store with Gorilla vs Chimp page compression, then time the
  // read->decode->scan path of each.
  for (const char* method : {"gorilla", "chimp128"}) {
    std::string path = std::string("/tmp/fcbench_tsdb_") + method;
    db::PagedFile::Options opt;
    opt.compressor = method;
    opt.page_size = 64 << 10;
    Status st = db::PagedFile::Write(path, ds.value().bytes.span(),
                                     ds.value().desc, opt);
    if (!st.ok()) {
      std::printf("%s write: %s\n", method, st.ToString().c_str());
      return 1;
    }
    auto size = db::PagedFile::FileSize(path).value();

    db::PagedFile::ReadTiming timing;
    auto bytes = db::PagedFile::Read(path, &timing);
    if (!bytes.ok()) return 1;
    auto df = db::DataFrame::FromBytes(bytes.value().span(), ds.value().desc)
                  .TakeValue();
    Timer timer;
    uint64_t hits = df.CountLessEqual(0, 0.0);
    double scan_ms = timer.ElapsedSeconds() * 1e3;

    std::printf("%-10s file %7.2f KB (ratio %.3f)  io %.2f ms  decode %.2f "
                "ms  scan %.2f ms  (%llu readings below 0)\n",
                method, size / 1e3,
                static_cast<double>(ds.value().bytes.size()) / size,
                timing.io_seconds * 1e3, timing.decode_seconds * 1e3,
                scan_ms, static_cast<unsigned long long>(hits));
    std::remove(path.c_str());
  }

  // BUFF: query the compressed representation directly.
  std::printf("\nBUFF sub-column scan (no decode):\n");
  auto buff = CompressorRegistry::Global().Create("buff").TakeValue();
  Buffer compressed;
  Status st =
      buff->Compress(ds.value().bytes.span(), ds.value().desc, &compressed);
  if (!st.ok()) return 1;

  Timer timer;
  auto scan = compressors::BuffCompressor::SubColumnScan(
      compressed.span(), compressors::BuffCompressor::Predicate::kLess, 0.0);
  double in_place_ms = timer.ElapsedSeconds() * 1e3;
  if (!scan.ok()) return 1;
  uint64_t hits = 0;
  for (bool b : scan.value()) hits += b;

  // Compare against decode + scan.
  timer.Reset();
  Buffer restored;
  st = buff->Decompress(compressed.span(), ds.value().desc, &restored);
  auto df =
      db::DataFrame::FromBytes(restored.span(), ds.value().desc).TakeValue();
  uint64_t hits2 = 0;
  for (size_t c = 0; c < df.num_columns(); ++c) {
    hits2 += df.CountLessEqual(c, 0.0);
  }
  double decode_scan_ms = timer.ElapsedSeconds() * 1e3;

  std::printf("  predicate x < 0: in-place %.2f ms vs decode+scan %.2f ms "
              "(%.1fx), %llu vs %llu hits\n",
              in_place_ms, decode_scan_ms,
              in_place_ms > 0 ? decode_scan_ms / in_place_ms : 0.0,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(hits2));
  std::printf("  (BUFF scans every element as flat records; the dataframe "
              "path must decode first — the paper reports 35-50x for "
              "selective filters.)\n");

  // Full Gorilla stream (§3.4): (timestamp, value) pairs in two-hour
  // blocks, with time-range queries that decode only overlapping blocks.
  std::printf("\nGorilla block stream (timestamps + values):\n");
  Rng rng(99);
  std::vector<compressors::TsPoint> series(86400);  // one day at 1 Hz
  int64_t t = 1700000000000;
  double level = 21.0;
  for (auto& p : series) {
    t += 1000;
    level += rng.Normal() * 0.02;
    p = {t, level};
  }
  compressors::TimeSeriesBlockCodec codec(
      compressors::TimeSeriesBlockCodec::Options{.points_per_block = 7200});
  Buffer blocks;
  if (!codec.Compress(series, &blocks).ok()) return 1;
  std::printf("  %zu points: %zu raw -> %zu bytes (%.2f bytes/point; raw "
              "is 16)\n",
              series.size(), series.size() * 16, blocks.size(),
              double(blocks.size()) / series.size());
  size_t decoded = 0;
  Timer range_timer;
  auto window = compressors::TimeSeriesBlockCodec::QueryRange(
      blocks.span(), series[40000].ts, series[41000].ts, &decoded);
  if (!window.ok()) return 1;
  std::printf("  17-minute window query: %zu points from %zu of 12 blocks "
              "in %.2f ms (directory pruning)\n",
              window.value().size(), decoded,
              range_timer.ElapsedSeconds() * 1e3);
  return 0;
}
