// fcbench — command-line driver for the library. The tool a downstream
// user reaches for first:
//
//   fcbench_cli list
//   fcbench_cli compress   <method> <in.raw> <out.fcz> --dtype=f32 [--dims=AxBxC]
//   fcbench_cli compress   --method=auto --explain <in.raw> <out.fcz> --dtype=f64
//   fcbench_cli decompress <in.fcz> <out.raw>
//   fcbench_cli bench      <method> <in.raw> --dtype=f64 [--repeats=N]
//   fcbench_cli gen        <dataset> <out.raw> [--bytes=N]
//   fcbench_cli ingest     <dir> [--shards=N] [--series=N] [--rows=N]
//                          [--quota-bytes=N] [--fsync] [--scrub]
//                          [--stats-every=N] [--trace-out=FILE]
//   fcbench_cli stats      [--format=text|json|prom] [--trace]
//                          [--exercise]
//   fcbench_cli trace      [--out=FILE] [--series=N] [--rows=N]
//                          [--sample=N] [--seed=N]
//
// The method can be given positionally or as --method=<name>; the auto
// selectors (auto, auto-speed, auto-ratio) pick a concrete method per
// chunk from the data, and --explain prints each chunk's features,
// probe scores and winner (the selection trace).
//
// The .fcz container (core/container.h) stores method name + DataDesc +
// xxHash64 checksums, so decompression is self-describing and any file
// corruption is detected end to end.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "core/container.h"
#include "core/runner.h"
#include "data/dataset.h"
#include "db/lsm/lsm_engine.h"
#include "db/shard/sharded_engine.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "select/selector.h"
#include "util/bitio.h"
#include "util/fs.h"
#include "util/timer.h"

using namespace fcbench;

namespace {

Result<Buffer> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Buffer buf(static_cast<size_t>(size));
  size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) return Status::IoError("short read " + path);
  return buf;
}

Status WriteFile(const std::string& path, ByteSpan data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t put = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (put != data.size()) return Status::IoError("short write " + path);
  return Status::OK();
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Arguments that are not --flags, in order (argv[1] — the command — is
/// element 0). Lets the method be given positionally or via --method=.
std::vector<std::string> Positionals(int argc, char** argv) {
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) pos.emplace_back(argv[i]);
  }
  return pos;
}

Result<DataDesc> ParseDesc(int argc, char** argv, size_t raw_bytes) {
  DataDesc desc;
  std::string dtype = FlagValue(argc, argv, "dtype", "f64");
  if (dtype == "f32") {
    desc.dtype = DType::kFloat32;
  } else if (dtype == "f64") {
    desc.dtype = DType::kFloat64;
  } else {
    return Status::InvalidArgument("--dtype must be f32 or f64");
  }
  std::string dims = FlagValue(argc, argv, "dims", "");
  if (dims.empty()) {
    desc.extent = {raw_bytes / DTypeSize(desc.dtype)};
  } else {
    size_t pos = 0;
    while (pos < dims.size()) {
      size_t next = dims.find('x', pos);
      if (next == std::string::npos) next = dims.size();
      desc.extent.push_back(std::stoull(dims.substr(pos, next - pos)));
      pos = next + 1;
    }
  }
  desc.precision_digits =
      std::atoi(FlagValue(argc, argv, "precision", "0").c_str());
  if (desc.num_bytes() != raw_bytes) {
    return Status::InvalidArgument("--dims does not match file size");
  }
  return desc;
}

int CmdList() {
  std::printf("%-18s %-6s %-10s %-12s %s\n", "name", "year", "arch",
              "predictor", "domain");
  for (const auto& name : CompressorRegistry::Global().Names()) {
    auto c = CompressorRegistry::Global().Create(name).TakeValue();
    const auto& t = c->traits();
    std::printf("%-18s %-6d %-10s %-12s %s\n", t.name.c_str(), t.year,
                t.arch == Arch::kCpu ? "CPU" : "GPU(sim)",
                std::string(PredictorClassName(t.predictor)).c_str(),
                t.domain.c_str());
  }
  return 0;
}

int CmdCompress(int argc, char** argv) {
  std::string method = FlagValue(argc, argv, "method", "");
  auto pos = Positionals(argc, argv);
  size_t next = 1;
  if (method.empty() && pos.size() > next) method = pos[next++];
  if (method.empty() || pos.size() < next + 2) {
    std::fprintf(stderr,
                 "usage: fcbench_cli compress <method> <in> <out> "
                 "--dtype=f32|f64 [--dims=AxB] [--precision=N]\n"
                 "       fcbench_cli compress --method=auto [--explain] "
                 "<in> <out> --dtype=f32|f64\n");
    return 2;
  }
  const std::string in_path = pos[next];
  const std::string out_path = pos[next + 1];
  auto raw = ReadFile(in_path);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto desc = ParseDesc(argc, argv, raw.value().size());
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  const bool explain = HasFlag(argc, argv, "explain");
  select::SelectionTrace trace;
  CompressorConfig config;
  if (explain) config.selection_trace = &trace;
  Buffer out;
  Timer timer;
  Status st = FczContainer::Pack(method, desc.value(), raw.value().span(),
                                 config, &out);
  double secs = timer.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "compress: %s\n", st.ToString().c_str());
    return 1;
  }
  st = WriteFile(out_path, out.span());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu -> %zu bytes (ratio %.3f) in %.3f s (%.1f MB/s)\n",
              method.c_str(), raw.value().size(), out.size(),
              static_cast<double>(raw.value().size()) / out.size(), secs,
              raw.value().size() / secs / 1e6);
  if (explain) {
    if (trace.entries.empty()) {
      std::printf("(--explain: '%s' records no selection trace; use an "
                  "auto method)\n",
                  method.c_str());
    } else {
      std::printf("selection trace:\n%s", trace.ToString().c_str());
    }
  }
  return 0;
}

int CmdDecompress(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: fcbench_cli decompress <in.fcz> <out>\n");
    return 2;
  }
  auto file = ReadFile(argv[2]);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  ByteSpan in = file.value().span();
  ContainerInfo info;
  Timer timer;
  auto out = FczContainer::Unpack(in, &info);
  double secs = timer.ElapsedSeconds();
  if (!out.ok()) {
    std::fprintf(stderr, "decompress: %s\n", out.status().ToString().c_str());
    return 1;
  }
  Status st = WriteFile(argv[3], out.value().span());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu -> %zu bytes in %.3f s (%s, checksums ok)\n",
              info.method.c_str(), in.size(), out.value().size(), secs,
              info.desc.ToString().c_str());
  return 0;
}

int CmdBench(int argc, char** argv) {
  std::string method = FlagValue(argc, argv, "method", "");
  auto pos = Positionals(argc, argv);
  size_t next = 1;
  if (method.empty() && pos.size() > next) method = pos[next++];
  if (method.empty() || pos.size() < next + 1) {
    std::fprintf(stderr, "usage: fcbench_cli bench <method> <in> "
                         "--dtype=f32|f64 [--repeats=N]\n");
    return 2;
  }
  auto raw = ReadFile(pos[next]);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto desc = ParseDesc(argc, argv, raw.value().size());
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  int repeats = std::atoi(FlagValue(argc, argv, "repeats", "3").c_str());

  // Wrap the bytes in a Dataset so the standard runner protocol applies.
  data::Dataset ds;
  static data::DatasetInfo info{"cli-input", data::Domain::kHpc,
                                desc.value().dtype, desc.value().extent,
                                0.0, desc.value().precision_digits,
                                data::GenKind::kSmoothField, 0.0};
  ds.info = &info;
  ds.desc = desc.value();
  ds.bytes = Buffer::FromSpan(raw.value().span());

  BenchmarkRunner::Options opt;
  opt.repeats = repeats > 0 ? repeats : 3;
  BenchmarkRunner runner(opt);
  auto r = runner.RunOne(method, ds);
  if (!r.ok) {
    std::fprintf(stderr, "bench failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("method      %s\n", r.method.c_str());
  std::printf("ratio       %.4f (%llu -> %llu bytes)\n", r.cr,
              static_cast<unsigned long long>(r.orig_bytes),
              static_cast<unsigned long long>(r.comp_bytes));
  std::printf("compress    %.4f GB/s (%.2f ms end-to-end)\n", r.ct_gbps,
              r.comp_wall_ms);
  std::printf("decompress  %.4f GB/s (%.2f ms end-to-end)\n", r.dt_gbps,
              r.decomp_wall_ms);
  std::printf("round trip  %s\n", r.round_trip_exact ? "bit-exact"
                                                     : "NOT exact");
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: fcbench_cli gen <dataset> <out> [--bytes=N]\n");
    return 2;
  }
  const data::DatasetInfo* info = data::FindDataset(argv[2]);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown dataset '%s'; available:\n", argv[2]);
    for (const auto& d : data::AllDatasets()) {
      std::fprintf(stderr, "  %s\n", d.name.c_str());
    }
    return 1;
  }
  uint64_t bytes =
      std::strtoull(FlagValue(argc, argv, "bytes", "4194304").c_str(),
                    nullptr, 10);
  auto ds = data::GenerateDataset(*info, bytes);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  Status st = WriteFile(argv[3], ds.value().bytes.span());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("generated %s: %s (%zu bytes) -> %s\n", info->name.c_str(),
              ds.value().desc.ToString().c_str(), ds.value().bytes.size(),
              argv[3]);
  std::printf("hint: --dtype=%s --dims=", DTypeName(info->dtype));
  for (size_t i = 0; i < ds.value().desc.extent.size(); ++i) {
    std::printf("%s%llu", i ? "x" : "",
                static_cast<unsigned long long>(ds.value().desc.extent[i]));
  }
  std::printf(" --precision=%d\n", info->precision_digits);
  return 0;
}

/// Renders the global registry in the requested exposition format.
int PrintStats(const std::string& format) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  if (format == "text") {
    std::fputs(snap.ToText().c_str(), stdout);
  } else if (format == "json") {
    std::printf("%s\n", snap.ToJson().c_str());
  } else if (format == "prom") {
    std::fputs(snap.ToPrometheus().c_str(), stdout);
  } else {
    std::fprintf(stderr, "--format must be text, json or prom\n");
    return 2;
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  // --exercise runs a small throwaway ingest+flush+selection workload
  // first, so the snapshot demonstrates the live metric catalog instead
  // of an empty registry.
  if (HasFlag(argc, argv, "exercise")) {
    const std::string dir =
        "/tmp/fcbench_stats_exercise_" + std::to_string(::getpid());
    db::lsm::EngineOptions opt;
    opt.background_flush = false;
    auto eng = db::lsm::IngestEngine::Open(
        dir, {{.name = "ts", .dtype = DType::kFloat64, .compressor = ""},
              {.name = "value", .dtype = DType::kFloat64, .compressor = ""}},
        opt);
    if (eng.ok()) {
      std::vector<double> batch(256 * 2);
      for (int b = 0; b < 8; ++b) {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch[i] = static_cast<double>(b * 1000 + i);
        }
        (void)eng.value()->AppendBatch(batch);
      }
      (void)eng.value()->Flush();
      (void)eng.value()->Scrub();
      eng.value().reset();
      auto names = fs::ListDir(dir);
      if (names.ok()) {
        for (const auto& n : names.value()) {
          (void)fs::RemoveFile(fs::JoinPath(dir, n));
        }
      }
      ::rmdir(dir.c_str());
    }
  }
  const int rc = PrintStats(FlagValue(argc, argv, "format", "text"));
  if (rc != 0) return rc;
  if (HasFlag(argc, argv, "trace")) {
    std::printf("--- event trace (last 32) ---\n%s",
                obs::EventTrace::Global().Dump().c_str());
  }
  return 0;
}

int CmdIngest(int argc, char** argv) {
  auto pos = Positionals(argc, argv);
  if (pos.size() < 2) {
    std::fprintf(stderr,
                 "usage: fcbench_cli ingest <dir> [--shards=N] [--series=N] "
                 "[--rows=N] [--quota-bytes=N] [--fsync] [--scrub] "
                 "[--stats-every=N]\n"
                 "Appends --rows rows to each of --series series, hash-routed "
                 "across the store's shards,\nthen prints the per-shard "
                 "health/budget report. Reopening an existing store adopts "
                 "its\npinned shard count; pass --shards only to create.\n");
    return 2;
  }
  const std::string dir = pos[1];
  db::shard::ShardOptions opt;
  // 0 adopts the shard count pinned in <dir>/SHARDS; a new store needs
  // an explicit --shards.
  opt.num_shards = static_cast<size_t>(
      std::strtoull(FlagValue(argc, argv, "shards", "0").c_str(), nullptr, 10));
  opt.shard_quota_bytes = static_cast<size_t>(std::strtoull(
      FlagValue(argc, argv, "quota-bytes", "0").c_str(), nullptr, 10));
  opt.engine.sync_on_commit = HasFlag(argc, argv, "fsync");
  const uint64_t series =
      std::strtoull(FlagValue(argc, argv, "series", "16").c_str(), nullptr, 10);
  const uint64_t rows =
      std::strtoull(FlagValue(argc, argv, "rows", "128").c_str(), nullptr, 10);
  // Print a metrics snapshot every N series batches (0 = never): a live
  // view of the append/admission counters while the ingest runs.
  const uint64_t stats_every = std::strtoull(
      FlagValue(argc, argv, "stats-every", "0").c_str(), nullptr, 10);
  // --trace-out exports the run's span trace as Chrome trace JSON
  // (loadable in Perfetto / chrome://tracing). If sampling was not
  // already requested via FCBENCH_TRACE_SAMPLE, every root is sampled
  // so the exported file covers the whole run.
  const std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  if (!trace_out.empty() && obs::TraceSampleN() == 0) {
    obs::SetTraceSampling(1);
  }

  std::vector<db::lsm::ColumnDef> schema(2);
  schema[0].name = "ts";
  schema[1].name = "value";
  auto opened = db::shard::ShardedIngestEngine::Open(dir, schema, opt);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto& eng = *opened.value();

  Timer timer;
  std::vector<double> batch(rows * 2);
  for (uint64_t s = 0; s < series; ++s) {
    for (uint64_t i = 0; i < rows; ++i) {
      batch[i * 2 + 0] = static_cast<double>(i);
      batch[i * 2 + 1] = static_cast<double>(s) * 1000.0 + i;
    }
    // Deadline-blocking append: ride out transient admission pressure
    // instead of failing fast, but bail out after 30 s.
    Status st = eng.AppendBatchUntil(
        s, batch, std::chrono::steady_clock::now() + std::chrono::seconds(30));
    if (!st.ok()) {
      std::fprintf(stderr, "append series %llu: %s\n",
                   static_cast<unsigned long long>(s), st.ToString().c_str());
      return 1;
    }
    if (stats_every > 0 && (s + 1) % stats_every == 0) {
      std::printf("--- metrics after %llu/%llu series ---\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(series));
      std::fputs(
          obs::MetricsRegistry::Global().Snapshot().ToText().c_str(), stdout);
    }
  }
  const double secs = timer.ElapsedSeconds();
  Status st = eng.Flush();
  if (!st.ok()) {
    std::fprintf(stderr, "flush: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu rows (%llu series) in %.3f s (%.1f MB/s), "
              "total rows now %llu\n",
              static_cast<unsigned long long>(series * rows),
              static_cast<unsigned long long>(series), secs,
              series * rows * 2 * sizeof(double) / secs / 1e6,
              static_cast<unsigned long long>(eng.rows()));

  const db::shard::HealthReport health = eng.Health();
  for (const auto& sh : health.shards) {
    std::printf("shard-%zu: %llu rows, %zu buffered bytes, "
                "%llu appends / %llu flushes / %llu retries%s%s\n",
                sh.shard, static_cast<unsigned long long>(sh.rows),
                sh.buffered_bytes,
                static_cast<unsigned long long>(sh.stats.append_batches),
                static_cast<unsigned long long>(sh.stats.flushes),
                static_cast<unsigned long long>(sh.stats.retry_attempts),
                sh.read_only ? ", READ-ONLY: " : "",
                sh.read_only ? sh.error.ToString().c_str() : "");
  }
  std::printf("budget %zu/%zu bytes, %zu/%zu shards degraded\n",
              health.budget_used, health.budget_total, health.degraded_shards,
              health.shards.size());

  if (HasFlag(argc, argv, "scrub")) {
    const db::shard::ScrubSummary scrub = eng.Scrub();
    std::printf("scrub: %llu segments checked, %llu quarantined, clean=%s\n",
                static_cast<unsigned long long>(scrub.segments_checked),
                static_cast<unsigned long long>(scrub.segments_quarantined),
                scrub.all_clean ? "yes" : "no");
  }
  st = eng.Close();
  if (!st.ok()) {
    std::fprintf(stderr, "close: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!trace_out.empty()) {
    auto& coll = obs::TraceCollector::Global();
    const std::string json = coll.ToChromeJson();
    Status wst = WriteFile(
        trace_out, ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                            json.size()));
    if (!wst.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", wst.ToString().c_str());
      return 1;
    }
    std::printf("trace: %llu spans recorded (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(coll.recorded()),
                static_cast<unsigned long long>(coll.dropped()),
                trace_out.c_str());
  }
  return 0;
}

/// Runs a small self-contained ingest+flush+scrub workload with span
/// sampling forced on and prints (or writes) the Chrome trace JSON.
/// The quickest way to see what the tracer records without standing up
/// a real workload.
int CmdTrace(int argc, char** argv) {
  const std::string out_path = FlagValue(argc, argv, "out", "");
  const uint64_t series =
      std::strtoull(FlagValue(argc, argv, "series", "8").c_str(), nullptr, 10);
  const uint64_t rows =
      std::strtoull(FlagValue(argc, argv, "rows", "512").c_str(), nullptr, 10);
  const uint64_t sample =
      std::strtoull(FlagValue(argc, argv, "sample", "1").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagValue(argc, argv, "seed", "1").c_str(), nullptr, 10);
  obs::SetTraceSampling(sample == 0 ? 1 : sample, seed);

  const std::string dir =
      "/tmp/fcbench_trace_demo_" + std::to_string(::getpid());
  {
    db::shard::ShardOptions opt;
    opt.num_shards = 2;
    std::vector<db::lsm::ColumnDef> schema(2);
    schema[0].name = "ts";
    schema[1].name = "value";
    auto opened = db::shard::ShardedIngestEngine::Open(dir, schema, opt);
    if (!opened.ok()) {
      std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    auto& eng = *opened.value();
    std::vector<double> batch(rows * 2);
    for (uint64_t s = 0; s < series; ++s) {
      for (uint64_t i = 0; i < rows; ++i) {
        batch[i * 2 + 0] = static_cast<double>(i);
        batch[i * 2 + 1] = static_cast<double>(s) * 1000.0 + i;
      }
      Status st = eng.AppendBatch(s, batch);
      if (!st.ok()) {
        std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    Status st = eng.Flush();
    if (st.ok()) {
      (void)eng.Scrub();
      st = eng.Close();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Best-effort cleanup of the throwaway store (shard subdirectories).
  if (auto names = fs::ListDir(dir); names.ok()) {
    for (const auto& n : names.value()) {
      const std::string sub = fs::JoinPath(dir, n);
      if (auto inner = fs::ListDir(sub); inner.ok()) {
        for (const auto& f : inner.value()) {
          (void)fs::RemoveFile(fs::JoinPath(sub, f));
        }
        ::rmdir(sub.c_str());
      } else {
        (void)fs::RemoveFile(sub);
      }
    }
  }
  ::rmdir(dir.c_str());

  auto& coll = obs::TraceCollector::Global();
  const std::string json = coll.ToChromeJson();
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    Status wst = WriteFile(
        out_path, ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                           json.size()));
    if (!wst.ok()) {
      std::fprintf(stderr, "%s\n", wst.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace: %llu spans recorded (%llu dropped) -> %s\n",
                 static_cast<unsigned long long>(coll.recorded()),
                 static_cast<unsigned long long>(coll.dropped()),
                 out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "fcbench_cli — FCBench compressor toolbox\n"
                 "commands: list | compress | decompress | bench | gen | "
                 "ingest | stats | trace\n");
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "list") return CmdList();
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "compress") return CmdCompress(argc, argv);
  if (cmd == "decompress") return CmdDecompress(argc, argv);
  if (cmd == "bench") return CmdBench(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "ingest") return CmdIngest(argc, argv);
  if (cmd == "trace") return CmdTrace(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
