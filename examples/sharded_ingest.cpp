// Sharded multi-tenant ingest scenario: many independent series are
// hash-routed onto IngestEngine shards behind admission control. The
// example walks the overload and isolation story end to end: fail-fast
// kOverloaded appends, deadline-blocking appends that are admitted once
// a flush drains the budget, a snapshot-consistent cross-shard read
// during ingest, and the aggregated health/scrub view.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "db/shard/sharded_engine.h"
#include "util/fs.h"

using namespace fcbench;
using namespace fcbench::db;

namespace {

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string p = fs::JoinPath(dir, n);
      if (!fs::RemoveFile(p).ok()) RemoveTree(p);
    }
  }
  ::rmdir(dir.c_str());
}

std::vector<double> Batch(uint64_t series, size_t rows) {
  std::vector<double> out;
  for (size_t i = 0; i < rows; ++i) {
    out.push_back(static_cast<double>(i));                      // ts
    out.push_back(static_cast<double>(series) * 100.0 + i);     // value
  }
  return out;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/fcbench_sharded_ingest_example";
  RemoveTree(dir);

  // 4 shards with a deliberately small per-shard quota so the overload
  // path is demonstrable; real deployments size the quota to a couple
  // of memtables.
  shard::ShardOptions opt;
  opt.num_shards = 4;
  opt.shard_quota_bytes = 16 << 10;
  opt.engine.sync_on_commit = false;
  opt.engine.background_flush = false;
  std::vector<lsm::ColumnDef> schema(2);
  schema[0].name = "ts";
  schema[1].name = "value";

  auto opened = shard::ShardedIngestEngine::Open(dir, schema, opt);
  if (!opened.ok()) {
    std::printf("open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto& eng = *opened.value();

  // Multi-tenant ingest: 16 series spread across the shards.
  for (uint64_t s = 0; s < 16; ++s) {
    Status st = eng.AppendBatch(s, Batch(s, 32));
    if (!st.ok()) {
      std::printf("series %llu: %s\n", static_cast<unsigned long long>(s),
                  st.ToString().c_str());
      return 1;
    }
  }
  std::printf("ingested %llu rows across %zu shards\n",
              static_cast<unsigned long long>(eng.rows()),
              eng.num_shards());

  // Drive ONE tenant over its shard's quota: the typed kOverloaded
  // rejection names the shard, the request and the headroom.
  uint64_t hot = 0;
  Status overload;
  for (int i = 0; i < 200; ++i) {
    overload = eng.AppendBatch(hot, Batch(hot, 64));
    if (!overload.ok()) break;
  }
  std::printf("hot tenant eventually sees: %s\n",
              overload.ToString().c_str());

  // A sibling tenant on another shard is not affected by the overload.
  uint64_t other = 1;
  while (eng.ShardOf(other) == eng.ShardOf(hot)) ++other;
  std::printf("sibling shard still accepts writes: %s\n",
              eng.AppendBatch(other, Batch(other, 8)).ToString().c_str());

  // Deadline-blocking append: a background flush drains the budget, so
  // the same over-quota write is admitted before the deadline.
  Status st = eng.Flush();
  if (!st.ok()) std::printf("flush: %s\n", st.ToString().c_str());
  st = eng.AppendBatchUntil(
      hot, Batch(hot, 64),
      std::chrono::steady_clock::now() + std::chrono::seconds(5));
  std::printf("after flush, the blocked append is admitted: %s\n",
              st.ToString().c_str());

  // Snapshot-consistent cross-shard read: one row-count cut across all
  // shards at a single instant, no torn batches.
  auto snap = eng.SnapshotReadShards("value");
  if (snap.ok()) {
    std::printf("snapshot:");
    for (size_t k = 0; k < snap.value().size(); ++k) {
      std::printf(" shard-%zu=%zu rows", k, snap.value()[k].size());
    }
    std::printf("\n");
  }

  // Aggregated health and integrity: per-shard degradation state (none
  // here) and the PR-6 scrub fanned out across every shard.
  const shard::HealthReport health = eng.Health();
  std::printf("health: %zu/%zu shards healthy, budget %zu/%zu bytes\n",
              health.shards.size() - health.degraded_shards,
              health.shards.size(), health.budget_used,
              health.budget_total);
  const shard::ScrubSummary scrub = eng.Scrub();
  std::printf("scrub: %llu segments checked, %llu quarantined, clean=%s\n",
              static_cast<unsigned long long>(scrub.segments_checked),
              static_cast<unsigned long long>(scrub.segments_quarantined),
              scrub.all_clean ? "yes" : "no");

  st = eng.Close();
  if (!st.ok()) {
    std::printf("close: %s\n", st.ToString().c_str());
    return 1;
  }
  RemoveTree(dir);
  return 0;
}
