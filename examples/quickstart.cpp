// Quickstart: compress and decompress a floating-point array with three
// methods from the registry, print ratio + throughput, verify the round
// trip. This is the 60-second tour of the public API.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/compressor.h"
#include "util/timer.h"

using namespace fcbench;

int main() {
  // 1. Some data: a smooth-ish time series of doubles.
  std::vector<double> values(1 << 18);
  double x = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    x += 0.01;
    values[i] = std::sin(x) * 100.0 + 0.001 * (i % 97);
  }
  DataDesc desc = DataDesc::Make(DType::kFloat64, {values.size()});

  // 2. Pick methods from the registry (every method of the FCBench paper
  //    is available by its paper name).
  auto& registry = CompressorRegistry::Global();
  std::printf("registered methods:");
  for (const auto& name : registry.Names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  for (const char* name : {"gorilla", "bitshuffle_zstd", "ndzip_cpu"}) {
    auto create = registry.Create(name);
    if (!create.ok()) {
      std::printf("%s: %s\n", name, create.status().ToString().c_str());
      return 1;
    }
    auto compressor = std::move(create).TakeValue();

    // 3. Compress.
    Buffer compressed;
    Timer timer;
    Status st = compressor->Compress(AsBytes(values), desc, &compressed);
    double comp_s = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::printf("%s: compress failed: %s\n", name, st.ToString().c_str());
      return 1;
    }

    // 4. Decompress and verify bit-exactness.
    Buffer restored;
    timer.Reset();
    st = compressor->Decompress(compressed.span(), desc, &restored);
    double decomp_s = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::printf("%s: decompress failed: %s\n", name, st.ToString().c_str());
      return 1;
    }
    bool exact = restored.size() == values.size() * 8 &&
                 std::memcmp(restored.data(), values.data(),
                             restored.size()) == 0;

    std::printf("%-16s ratio %.3f   compress %.2f MB/s   decompress %.2f "
                "MB/s   round-trip %s\n",
                name,
                static_cast<double>(values.size() * 8) / compressed.size(),
                values.size() * 8 / comp_s / 1e6,
                values.size() * 8 / decomp_s / 1e6,
                exact ? "bit-exact" : "MISMATCH");
    if (!exact) return 1;
  }
  return 0;
}
