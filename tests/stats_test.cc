// Tests for the statistics substrate: ranks, Friedman, Nemenyi CD,
// Mann-Whitney U, and the special functions behind them.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/stats.h"
#include "util/rng.h"

namespace fcbench::stats {
namespace {

TEST(RankTest, HigherScoreGetsLowerRank) {
  std::vector<std::vector<double>> scores = {{3.0, 1.0, 2.0}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RankTest, TiesShareAveragedRanks) {
  std::vector<std::vector<double>> scores = {{2.0, 2.0, 1.0}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(RankTest, AveragesOverDatasets) {
  std::vector<std::vector<double>> scores = {{3.0, 1.0}, {1.0, 3.0}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
}

TEST(GammaTest, KnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(GammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(GammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(ChiSquareTest, SurvivalFunctionKnownQuantiles) {
  // chi2 with 12 df: P(X > 21.026) = 0.05.
  EXPECT_NEAR(ChiSquareSf(21.026, 12), 0.05, 0.001);
  // chi2 with 1 df: P(X > 3.841) = 0.05.
  EXPECT_NEAR(ChiSquareSf(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(ChiSquareSf(0.0, 5), 1.0, 1e-12);
}

TEST(NormalTest, SurvivalFunction) {
  EXPECT_NEAR(NormalSf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalSf(1.959964), 0.025, 1e-5);
  EXPECT_NEAR(NormalSf(-1.959964), 0.975, 1e-5);
}

TEST(FriedmanTest, DetectsClearDifference) {
  // Method 0 always best, method 2 always worst, 20 datasets.
  std::vector<std::vector<double>> scores;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    scores.push_back({3.0 + rng.Uniform(), 2.0 + 0.1 * rng.Uniform(),
                      1.0 + 0.1 * rng.Uniform()});
  }
  auto r = FriedmanTest(scores);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().reject_h0);
  EXPECT_LT(r.value().p_value, 0.001);
  EXPECT_LT(r.value().avg_ranks[0], r.value().avg_ranks[2]);
}

TEST(FriedmanTest, AcceptsEquivalentMethods) {
  // Random scores: no method systematically better.
  std::vector<std::vector<double>> scores;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    scores.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform(),
                      rng.Uniform()});
  }
  auto r = FriedmanTest(scores);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().reject_h0);
}

TEST(FriedmanTest, RejectsBadInput) {
  EXPECT_FALSE(FriedmanTest({}).ok());
  EXPECT_FALSE(FriedmanTest({{1.0}}).ok());
  EXPECT_FALSE(FriedmanTest({{1.0, 2.0}, {1.0}}).ok());
}

TEST(NemenyiTest, PaperConfiguration) {
  // k = 13 methods, N = 33 datasets (paper §5.4): CD = q * sqrt(k(k+1)/6N)
  // with q_{0.05,13} = 3.313 -> about 3.19 average-rank units.
  double cd = NemenyiCriticalDifference(13, 33);
  EXPECT_NEAR(cd, 3.313 * std::sqrt(13.0 * 14.0 / (6.0 * 33.0)), 1e-9);
  EXPECT_GT(cd, 3.0);
  EXPECT_LT(cd, 3.4);
}

TEST(CdDiagramTest, OrdersAndGroups) {
  std::vector<std::string> names = {"a", "b", "c", "d"};
  std::vector<double> ranks = {3.5, 1.0, 1.2, 3.4};
  auto d = BuildCdDiagram(names, ranks, 10);
  ASSERT_EQ(d.ordered.size(), 4u);
  EXPECT_EQ(d.ordered[0].name, "b");
  EXPECT_EQ(d.ordered[1].name, "c");
  // With 4 methods over 10 datasets CD ~ 1.48: {b,c} and {d,a} grouped.
  std::string rendered = d.Render();
  EXPECT_NE(rendered.find("no significant difference"), std::string::npos);
}

TEST(MannWhitneyTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  auto r = MannWhitneyUTest(a, a);
  EXPECT_FALSE(r.significant);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(MannWhitneyTest, ShiftedSamplesSignificant) {
  std::vector<double> a, b;
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal() + 3.0);
  }
  auto r = MannWhitneyUTest(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(MannWhitneyTest, SlightJitterNotSignificant) {
  // The Table 9 scenario: multi-d vs 1-d CRs barely differ.
  std::vector<double> md = {1.091, 1.347, 1.334, 1.223, 1.207};
  std::vector<double> oned = {1.089, 1.365, 1.326, 1.210, 1.200};
  auto r = MannWhitneyUTest(md, oned);
  EXPECT_FALSE(r.significant);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  auto r = WilcoxonSignedRankTest(a, a);
  EXPECT_EQ(r.n_effective, 0);
  EXPECT_FALSE(r.significant);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WilcoxonTest, ConsistentImprovementIsSignificant) {
  // Method a beats method b on every one of 30 datasets by a varying
  // margin: W- = 0, strongly significant.
  std::vector<double> a(30), b(30);
  for (size_t i = 0; i < a.size(); ++i) {
    b[i] = 1.0 + 0.01 * static_cast<double>(i);
    a[i] = b[i] + 0.05 + 0.001 * static_cast<double>(i % 7);
  }
  auto r = WilcoxonSignedRankTest(a, b);
  EXPECT_EQ(r.n_effective, 30);
  EXPECT_DOUBLE_EQ(r.w, 0.0);  // no negative ranks
  EXPECT_TRUE(r.significant);
  EXPECT_LT(r.p_value, 1e-5);
}

TEST(WilcoxonTest, SymmetricNoiseNotSignificant) {
  // Differences alternate sign with equal magnitude: W+ == W-.
  std::vector<double> a(20, 1.0), b(20, 1.0);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += (i % 2 == 0) ? 0.01 : -0.01;
  }
  auto r = WilcoxonSignedRankTest(a, b);
  EXPECT_FALSE(r.significant);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(WilcoxonTest, HandComputedExample) {
  // Differences: 15,-7,5,20,0,-9,17,-12,5,-10; the zero is dropped (n=9).
  // |d| ranks with tie-averaged 5s: 5->1.5, 5->1.5, 7->3, 9->4, 10->5,
  // 12->6, 15->7, 17->8, 20->9. W+ = 7+1.5+9+8+1.5 = 27, W- = 3+4+6+5 =
  // 18, so W = 18; mean 22.5, var 71.125 (one tie pair), z ~ -0.534,
  // two-sided p ~ 0.594.
  std::vector<double> before = {125, 115, 130, 140, 140,
                                115, 140, 125, 140, 135};
  std::vector<double> after = {110, 122, 125, 120, 140,
                               124, 123, 137, 135, 145};
  auto r = WilcoxonSignedRankTest(before, after);
  EXPECT_EQ(r.n_effective, 9);
  EXPECT_NEAR(r.w, 18.0, 1e-9);
  EXPECT_NEAR(r.z, -0.5336, 0.001);
  EXPECT_NEAR(r.p_value, 0.5936, 0.001);
  EXPECT_FALSE(r.significant);
}

TEST(WilcoxonTest, MismatchedSizesRejected) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {1, 2};
  auto r = WilcoxonSignedRankTest(a, b);
  EXPECT_EQ(r.n_effective, 0);
  EXPECT_FALSE(r.significant);
}

}  // namespace
}  // namespace fcbench::stats
