// Fault-injection tests (src/util/failpoint.h): the failpoint registry's
// spec grammar and trigger semantics, targeted regressions for the
// hardened error paths (ENOSPC in group commit, failed fsync during
// segment publish, WAL heal poisoning, scrub + quarantine), and the
// exhaustive fault sweep: every registered failpoint site is fired at
// every hit index of an ingest+flush+compact workload, asserting either
// success-after-retry or a clean typed error with zero acknowledged-data
// loss and idempotent recovery.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <algorithm>
#include <chrono>
#include <thread>

#include "db/column_store.h"
#include "db/lsm/lsm_engine.h"
#include "db/lsm/wal.h"
#include "db/shard/sharded_engine.h"
#include "obs/event_trace.h"
#include "obs/span.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace fcbench::db::lsm {
namespace {

// One pool worker: deterministic one-shot (@N) injection — a hit index
// always lands on the same operation, so every sweep run reproduces.
const bool g_single_thread = [] {
  ::setenv("FCBENCH_THREADS", "1", /*overwrite=*/0);
  return true;
}();

std::string UniqueDir(const std::string& tag) {
  return "/tmp/fcbench_fault_" + std::to_string(::getpid()) + "_" + tag;
}

/// Removes dir and one level of subdirectories (the quarantine/ dir).
void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string p = fs::JoinPath(dir, n);
      auto sub = fs::ListDir(p);
      if (sub.ok()) {
        for (const auto& m : sub.value()) fs::RemoveFile(fs::JoinPath(p, m));
        ::rmdir(p.c_str());
      } else {
        fs::RemoveFile(p);
      }
    }
  }
  ::rmdir(dir.c_str());
}

/// Every fault test runs with a clean registry and leaves one behind.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::FailPoints::ClearAll(); }
  void TearDown() override {
    fail::FailPoints::ClearAll();
    fail::FailPoints::EnableCounting(false);
  }
};

// ---------------------------------------------------------------------------
// FailPoints: spec grammar and trigger semantics
// ---------------------------------------------------------------------------

using FailPointsTest = FaultTest;

TEST_F(FailPointsTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fail::FailPoints::Set("x", "bogus").ok());
  EXPECT_FALSE(fail::FailPoints::Set("x", "err@0").ok());
  EXPECT_FALSE(fail::FailPoints::Set("x", "err@p1.5").ok());
  EXPECT_FALSE(fail::FailPoints::Set("x", "err@p0.5:sxyz").ok());
  EXPECT_FALSE(fail::FailPoints::Set("x", "off@3").ok());
  EXPECT_FALSE(fail::FailPoints::Set("x", "err@every-0").ok());
  EXPECT_FALSE(fail::FailPoints::Set("", "err").ok());
  EXPECT_FALSE(fail::FailPoints::Configure("noequalsign").ok());
  EXPECT_TRUE(
      fail::FailPoints::Configure("a=err@3; b=enospc ;; c=short@every-2")
          .ok());
}

TEST_F(FailPointsTest, AtHitFiresExactlyOnce) {
  ASSERT_TRUE(fail::FailPoints::Set("t.athit", "err@3").ok());
  for (int hit = 1; hit <= 6; ++hit) {
    fail::Decision d = fail::Evaluate("t.athit");
    EXPECT_EQ(d.fire, hit == 3) << "hit " << hit;
    if (d.fire) {
      EXPECT_EQ(d.err, EIO);
      EXPECT_FALSE(d.short_write);
    }
  }
}

TEST_F(FailPointsTest, EveryNFiresPeriodically) {
  ASSERT_TRUE(fail::FailPoints::Set("t.every", "enospc@every-2").ok());
  for (int hit = 1; hit <= 6; ++hit) {
    fail::Decision d = fail::Evaluate("t.every");
    EXPECT_EQ(d.fire, hit % 2 == 0) << "hit " << hit;
    if (d.fire) {
      EXPECT_EQ(d.err, ENOSPC);
    }
  }
}

TEST_F(FailPointsTest, BareActionFiresAlwaysAndOffDisarms) {
  ASSERT_TRUE(fail::FailPoints::Set("t.always", "short").ok());
  for (int hit = 0; hit < 3; ++hit) {
    fail::Decision d = fail::Evaluate("t.always");
    EXPECT_TRUE(d.fire);
    EXPECT_TRUE(d.short_write);
    EXPECT_EQ(d.err, EIO);
  }
  ASSERT_TRUE(fail::FailPoints::Set("t.always", "off").ok());
  EXPECT_FALSE(fail::Evaluate("t.always").fire);
}

TEST_F(FailPointsTest, ProbabilisticIsSeedDeterministic) {
  auto sample = [](const std::string& spec) {
    EXPECT_TRUE(fail::FailPoints::Set("t.prob", spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fail::Evaluate("t.prob").fire);
    return fired;
  };
  const std::vector<bool> a = sample("err@p0.5:s7");
  const std::vector<bool> b = sample("err@p0.5:s7");
  EXPECT_EQ(a, b);  // re-arming with the same seed replays the pattern
  // p=0.5 over 64 hits: all-same would be a broken RNG (P = 2^-63).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailPointsTest, CountingEnumeratesSites) {
  fail::FailPoints::EnableCounting(true);
  fail::FailPoints::ResetCounters();
  fail::Evaluate("t.counted");
  fail::Evaluate("t.counted");
  EXPECT_EQ(fail::FailPoints::HitCount("t.counted"), 2u);
  const auto sites = fail::FailPoints::Sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "t.counted"), sites.end());
  fail::FailPoints::ResetCounters();
  EXPECT_EQ(fail::FailPoints::HitCount("t.counted"), 0u);
}

TEST_F(FailPointsTest, InjectedStatusIsTypedAndAttributed) {
  fail::Decision d;
  d.fire = true;
  d.err = ENOSPC;
  Status st = fail::InjectedStatus("wal.append", d, "/db/wal-000001.log");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("wal.append"), std::string::npos);
  EXPECT_NE(st.message().find("/db/wal-000001.log"), std::string::npos);
  d.err = EIO;
  EXPECT_EQ(fail::InjectedStatus("fs.sync", d, "").code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// util/fs under injection
// ---------------------------------------------------------------------------

class FsFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    dir_ = UniqueDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    RemoveTree(dir_);
    ASSERT_TRUE(fs::CreateDir(dir_).ok());
  }
  void TearDown() override {
    FaultTest::TearDown();
    RemoveTree(dir_);
  }
  std::string dir_;
};

TEST_F(FsFaultTest, FailedAtomicWriteLeavesTargetAndNoTemp) {
  const std::string path = fs::JoinPath(dir_, "file");
  Buffer v1, v2;
  v1.Append("version-1", 9);
  v2.Append("version-2", 9);
  ASSERT_TRUE(fs::WriteFileAtomic(path, v1.span()).ok());

  ASSERT_TRUE(fail::FailPoints::Set("fs.write_atomic", "err@1").ok());
  EXPECT_FALSE(fs::WriteFileAtomic(path, v2.span()).ok());
  fail::FailPoints::ClearAll();

  auto back = fs::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(back.value().data()),
                        back.value().size()),
            "version-1");
  auto names = fs::ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const auto& n : names.value()) EXPECT_FALSE(fs::IsTempPath(n)) << n;
}

TEST_F(FsFaultTest, ShortWriteLandsPrefixAndTruncateHeals) {
  const std::string path = fs::JoinPath(dir_, "wal");
  auto f = fs::AppendFile::Create(path, /*durable=*/false);
  ASSERT_TRUE(f.ok());
  Buffer data(100);
  for (size_t i = 0; i < data.size(); ++i) data.data()[i] = uint8_t(i);
  ASSERT_TRUE(f.value().Append(data.span()).ok());

  ASSERT_TRUE(fail::FailPoints::Set("fs.append", "short@1").ok());
  Status st = f.value().Append(data.span());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find(path), std::string::npos);
  fail::FailPoints::ClearAll();

  // Torn write: half the bytes landed, offset() did not advance.
  EXPECT_EQ(f.value().offset(), 100u);
  auto size = fs::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 150u);

  // Healing truncates back to the last known-good length.
  ASSERT_TRUE(f.value().TruncateTo(f.value().offset()).ok());
  size = fs::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 100u);
  ASSERT_TRUE(f.value().Append(data.span()).ok());
  ASSERT_TRUE(f.value().Close().ok());
  size = fs::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 200u);
}

TEST_F(FsFaultTest, CloseReportsFailedFinalFsync) {
  const std::string path = fs::JoinPath(dir_, "durable");
  auto f = fs::AppendFile::Create(path, /*durable=*/true);
  ASSERT_TRUE(f.ok());
  Buffer data(10);
  ASSERT_TRUE(f.value().Append(data.span()).ok());

  ASSERT_TRUE(fail::FailPoints::Set("fs.sync", "err@1").ok());
  Status st = f.value().Close();
  EXPECT_FALSE(st.ok());  // the unsynced tail's fsync failed: reported
  EXPECT_NE(st.message().find(path), std::string::npos);
  EXPECT_FALSE(f.value().is_open());
}

TEST_F(FsFaultTest, EnospcSurfacesAsResourceExhausted) {
  const std::string path = fs::JoinPath(dir_, "full");
  auto f = fs::AppendFile::Create(path, /*durable=*/false);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fail::FailPoints::Set("fs.append", "enospc@1").ok());
  Buffer data(10);
  Status st = f.value().Append(data.span());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Shared engine workload
// ---------------------------------------------------------------------------

std::vector<ColumnDef> FaultSchema() {
  ColumnDef v, w, s;
  v.name = "v";
  w.name = "w";
  s.name = "s";
  return {v, w, s};
}

EngineOptions FaultOptions() {
  EngineOptions o;
  o.memtable_bytes = 2 << 10;
  o.wal_segment_bytes = 4 << 10;
  o.sync_on_commit = true;
  o.background_flush = false;  // deterministic hit indices
  o.flush_compressor = "gorilla";
  o.compact_compressor = "gorilla";
  o.compact_fanout = 2;
  o.io_retry_attempts = 2;
  o.io_retry_backoff_ms = 0;
  return o;
}

std::vector<double> BatchRows(size_t b, size_t nrows) {
  std::vector<double> rows;
  for (size_t r = 0; r < nrows; ++r) {
    const double v = static_cast<double>(b) * 1000.0 + static_cast<double>(r);
    rows.push_back(v);
    rows.push_back(v * 0.5);
    rows.push_back(v + 0.25);
  }
  return rows;
}

constexpr size_t kSweepBatches = 8;
constexpr size_t kSweepRows = 25;

/// The standard ingest+flush+compact workload, tolerant of injected
/// failures: every step may error. Returns the 'v' values of every
/// ACKNOWLEDGED batch (AppendBatch returned OK), in ack order — the
/// exact set recovery must reproduce.
std::vector<double> RunWorkload(const std::string& dir) {
  std::vector<double> acked;
  auto engr = IngestEngine::Open(dir, FaultSchema(), FaultOptions());
  if (!engr.ok()) return acked;  // a faulted Open is a clean typed error
  auto& eng = engr.value();
  for (size_t b = 0; b < kSweepBatches; ++b) {
    if (eng->AppendBatch(BatchRows(b, kSweepRows)).ok()) {
      for (size_t r = 0; r < kSweepRows; ++r) {
        acked.push_back(static_cast<double>(b) * 1000.0 +
                        static_cast<double>(r));
      }
    }
    if (b == kSweepBatches / 2) eng->Flush();  // mid-run flush, may fail
  }
  eng->Flush();
  eng->Compact();
  return acked;  // destructor joins background work and closes the WAL
}

/// Recovery invariants checked after every faulted run (all failpoints
/// cleared): reopen is green, the recovered column equals the acked
/// values exactly (no loss, no resurrection), recovery is idempotent,
/// and the store is writable again.
void CheckRecovery(const std::string& dir, const std::vector<double>& acked) {
  {
    auto engr = IngestEngine::Open(dir, FaultSchema(), FaultOptions());
    ASSERT_TRUE(engr.ok()) << engr.status().ToString();
    auto v = engr.value()->ReadColumn("v");
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    ASSERT_EQ(v.value(), acked);
  }
  // Idempotence: recovering a second time yields the identical store.
  auto engr = IngestEngine::Open(dir, FaultSchema(), FaultOptions());
  ASSERT_TRUE(engr.ok()) << engr.status().ToString();
  auto v = engr.value()->ReadColumn("v");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v.value(), acked);
  EXPECT_FALSE(engr.value()->read_only());
  ASSERT_TRUE(engr.value()->AppendBatch(BatchRows(999, 1)).ok());
}

// ---------------------------------------------------------------------------
// Engine regressions under targeted injection
// ---------------------------------------------------------------------------

class EngineFaultTest : public FsFaultTest {};

TEST_F(EngineFaultTest, EnospcDuringGroupCommitRejectsOnlyThatBatch) {
  auto engr = IngestEngine::Open(dir_, FaultSchema(), FaultOptions());
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  std::vector<double> acked;
  ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 5)).ok());
  for (size_t r = 0; r < 5; ++r) acked.push_back(r);

  // The disk "fills up" exactly at the next group commit's write.
  ASSERT_TRUE(fail::FailPoints::Set("fs.append", "enospc@1").ok());
  Status st = eng->AppendBatch(BatchRows(1, 5));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  // Rejecting the batch did not degrade the engine: the condition was
  // transient (the one-shot is spent) and later batches commit fine.
  EXPECT_FALSE(eng->read_only());
  ASSERT_TRUE(eng->AppendBatch(BatchRows(2, 5)).ok());
  for (size_t r = 0; r < 5; ++r) acked.push_back(2000.0 + r);
  fail::FailPoints::ClearAll();

  auto v = eng->ReadColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), acked);  // the rejected batch never surfaces
  engr.value().reset();
  CheckRecovery(dir_, acked);
}

TEST_F(EngineFaultTest, FailedFsyncDuringPublishSucceedsAfterRetry) {
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;  // no watermark flush
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 40)).ok());

  // Hit 1 is the WAL rotation's fsync (passes); hit 2 is the first
  // column file's fsync inside the segment publish — a one-shot
  // transient failure the bounded retry must absorb.
  ASSERT_TRUE(fail::FailPoints::Set("fs.sync", "err@2").ok());
  Status st = eng->Flush();
  EXPECT_TRUE(st.ok()) << st.ToString();
  fail::FailPoints::ClearAll();

  EXPECT_FALSE(eng->read_only());
  EXPECT_EQ(eng->segments().size(), 1u);
  auto v = eng->ReadColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().size(), 40u);
}

TEST_F(EngineFaultTest, ExhaustedFlushRetriesDegradeToReadOnly) {
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  std::vector<double> acked;
  for (size_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(eng->AppendBatch(BatchRows(b, 20)).ok());
    for (size_t r = 0; r < 20; ++r) acked.push_back(b * 1000.0 + r);
  }

  // A sticky segment-write failure: both retry attempts fail.
  ASSERT_TRUE(fail::FailPoints::Set("lsm.flush", "err").ok());
  Status st = eng->Flush();
  EXPECT_FALSE(st.ok());
  fail::FailPoints::ClearAll();

  // Degraded to read-only with the root cause attributed...
  EXPECT_TRUE(eng->read_only());
  const Status bg = eng->background_error();
  EXPECT_EQ(bg.code(), StatusCode::kIoError);
  EXPECT_NE(bg.message().find("injected fault"), std::string::npos);
  EXPECT_NE(bg.message().find("2 attempts"), std::string::npos);
  Status append_st = eng->AppendBatch(BatchRows(9, 1));
  EXPECT_FALSE(append_st.ok());
  EXPECT_NE(append_st.message().find("read-only"), std::string::npos);
  EXPECT_EQ(append_st.code(), StatusCode::kIoError);  // root cause's code

  // ...while reads keep serving EVERYTHING acknowledged: the memtable
  // that failed to flush is retained (its rows are WAL-durable).
  auto v = eng->ReadColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), acked);

  engr.value().reset();
  CheckRecovery(dir_, acked);
}

TEST_F(EngineFaultTest, DegradationLeavesRetryAndDegradedEventsInTrace) {
  // The flight recorder is the post-mortem artifact: after an injected
  // fault exhausts the flush retries and degrades the engine, the tail
  // of the global EventTrace must tell the story — the retry/backoff
  // attempts and the degradation itself, attributed to the failed
  // engine's dir.
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 20)).ok());

  const uint64_t before = obs::EventTrace::Global().recorded();
  ASSERT_TRUE(fail::FailPoints::Set("lsm.flush", "err").ok());
  EXPECT_FALSE(eng->Flush().ok());
  fail::FailPoints::ClearAll();
  ASSERT_TRUE(eng->read_only());

  // Only events recorded by THIS degradation (seq > before): the trace
  // is process-global and other suites in the binary share it.
  bool saw_retry = false, saw_fail = false, saw_degraded = false;
  uint64_t retry_seq = 0, degraded_seq = 0;
  for (const obs::TraceEvent& e : obs::EventTrace::Global().Snapshot()) {
    if (e.seq <= before) continue;
    if (std::string(e.detail).find(dir_.substr(0, 40)) == std::string::npos) {
      continue;  // not ours
    }
    switch (e.kind) {
      case obs::EventKind::kRetryBackoff:
        saw_retry = true;
        retry_seq = e.seq;
        EXPECT_GE(e.a, 1u);  // a = attempt index
        break;
      case obs::EventKind::kFlushFail:
        saw_fail = true;
        break;
      case obs::EventKind::kDegraded:
        saw_degraded = true;
        degraded_seq = e.seq;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_degraded);
  EXPECT_LT(retry_seq, degraded_seq);  // backoff precedes degradation

  // The rendered dump (what the degradation hook printed to stderr)
  // names both phases.
  const std::string dump = obs::EventTrace::Global().Dump();
  EXPECT_NE(dump.find("retry-backoff"), std::string::npos);
  EXPECT_NE(dump.find("degraded"), std::string::npos);
}

TEST_F(EngineFaultTest, WalPoisonedWhenHealFails) {
  Wal::Options wopt;
  auto walr = Wal::Open(dir_, 0, wopt);
  ASSERT_TRUE(walr.ok());
  auto& wal = walr.value();
  Buffer rec;
  rec.Append("acked-record", 12);
  ASSERT_TRUE(wal->Append(Wal::kTypeRows, rec.span()).ok());
  ASSERT_TRUE(wal->Commit().ok());

  // A torn write whose heal (truncate) also fails: the segment tail is
  // in an unknown state, so the WAL must refuse all further work.
  ASSERT_TRUE(fail::FailPoints::Set("fs.append", "short@1").ok());
  ASSERT_TRUE(fail::FailPoints::Set("fs.truncate", "err@1").ok());
  ASSERT_TRUE(wal->Append(Wal::kTypeRows, rec.span()).ok());
  EXPECT_FALSE(wal->Commit().ok());
  fail::FailPoints::ClearAll();

  EXPECT_FALSE(wal->poisoned().ok());
  EXPECT_NE(wal->poisoned().message().find("poisoned"), std::string::npos);
  Status st = wal->Append(Wal::kTypeRows, rec.span());
  EXPECT_FALSE(st.ok());  // sticky: fails fast with the recorded cause
  wal->Close();

  // Recovery: prefix truncation drops the torn bytes, keeps the ack'd
  // record — poisoning never loses acknowledged data.
  auto replay = WalReader::ReplayDir(dir_, 0);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_TRUE(replay.value().truncated);
}

// ---------------------------------------------------------------------------
// Scrub + quarantine
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, ScrubQuarantinesBitFlippedSegment) {
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;
  opts.compact_fanout = 0;  // keep the two segments separate
  std::vector<double> kept;  // values that must survive the quarantine
  uint64_t bad_id = 0;
  {
    auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
    ASSERT_TRUE(engr.ok());
    auto& eng = engr.value();
    ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 40)).ok());
    ASSERT_TRUE(eng->Flush().ok());  // segment A (will be corrupted)
    ASSERT_TRUE(eng->AppendBatch(BatchRows(1, 40)).ok());
    ASSERT_TRUE(eng->Flush().ok());  // segment B
    ASSERT_TRUE(eng->AppendBatch(BatchRows(2, 10)).ok());  // memtable tail
    for (size_t r = 0; r < 40; ++r) kept.push_back(1000.0 + r);
    for (size_t r = 0; r < 10; ++r) kept.push_back(2000.0 + r);

    auto segs = eng->segments();
    ASSERT_EQ(segs.size(), 2u);
    bad_id = segs[0].id;

    // Plant a single bit flip in the middle of a cold column file.
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%06llu.0.col",
                  static_cast<unsigned long long>(bad_id));
    const std::string path = fs::JoinPath(dir_, name);
    auto bytes = fs::ReadFile(path);
    ASSERT_TRUE(bytes.ok());
    Buffer flipped = std::move(bytes).TakeValue();
    flipped.data()[flipped.size() / 2] ^= 0x01;
    ASSERT_TRUE(
        fs::WriteFileAtomic(path, flipped.span(), /*durable=*/false).ok());

    auto rep = eng->Scrub();
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep.value().segments_checked, 2u);
    EXPECT_TRUE(rep.value().wal_clean);
    ASSERT_EQ(rep.value().quarantined_ids, std::vector<uint64_t>{bad_id});

    // The corrupt segment's files moved aside; the rest keeps serving.
    auto names = fs::ListDir(dir_);
    ASSERT_TRUE(names.ok());
    for (const auto& n : names.value()) {
      EXPECT_EQ(n.find(name), std::string::npos) << n;
    }
    auto qnames = fs::ListDir(fs::JoinPath(dir_, "quarantine"));
    ASSERT_TRUE(qnames.ok());
    EXPECT_NE(std::find(qnames.value().begin(), qnames.value().end(),
                        std::string(name)),
              qnames.value().end());

    auto v = eng->ReadColumn("v");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), kept);
    EXPECT_FALSE(eng->read_only());
    ASSERT_EQ(eng->quarantined().size(), 1u);
    EXPECT_EQ(eng->quarantined()[0].id, bad_id);
    EXPECT_EQ(eng->quarantined()[0].rows, 40u);
    EXPECT_FALSE(eng->quarantined()[0].reason.empty());

    // A second pass finds nothing new (quarantined segments are not
    // re-checked) — scrubbing is idempotent.
    auto rep2 = eng->Scrub();
    ASSERT_TRUE(rep2.ok());
    EXPECT_EQ(rep2.value().segments_checked, 1u);
    EXPECT_TRUE(rep2.value().quarantined_ids.empty());
  }

  // The quarantine survives reopen, and the engine stays writable.
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok()) << engr.status().ToString();
  auto v = engr.value()->ReadColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), kept);
  ASSERT_EQ(engr.value()->quarantined().size(), 1u);
  EXPECT_EQ(engr.value()->quarantined()[0].id, bad_id);
  EXPECT_TRUE(engr.value()->AppendBatch(BatchRows(3, 2)).ok());
}

// ---------------------------------------------------------------------------
// The exhaustive fault sweep
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, SweepEverySiteAtEveryHit) {
  // Pass 1 (counting): run the workload clean to enumerate every
  // failpoint site it evaluates and how often.
  fail::FailPoints::EnableCounting(true);
  fail::FailPoints::ResetCounters();
  const std::vector<double> clean = RunWorkload(dir_);
  ASSERT_EQ(clean.size(), kSweepBatches * kSweepRows);
  {
    // Include recovery's own sites (manifest read, WAL replay, sweep).
    auto engr = IngestEngine::Open(dir_, FaultSchema(), FaultOptions());
    ASSERT_TRUE(engr.ok());
  }
  fail::FailPoints::EnableCounting(false);
  std::map<std::string, uint64_t> hits;
  for (const auto& site : fail::FailPoints::Sites()) {
    hits[site] = fail::FailPoints::HitCount(site);
  }
  for (const char* core :
       {"fs.append", "fs.sync", "fs.sync_dir", "fs.rename",
        "fs.write_atomic", "fs.create", "fs.read", "fs.list", "wal.append",
        "wal.rotate", "segment.column", "segment.publish", "lsm.flush",
        "lsm.compact", "lsm.manifest"}) {
    EXPECT_TRUE(hits.count(core) && hits[core] > 0)
        << "site " << core << " was never evaluated by the workload";
  }

  // Pass 2: fire each site at every hit index (sampled when a site is
  // hit very often), alternating EIO and ENOSPC, and assert the run
  // either succeeds transparently or fails cleanly — then recovery is
  // green, lossless, and idempotent.
  size_t runs = 0;
  for (const auto& [site, n] : hits) {
    std::vector<uint64_t> targets;
    if (n <= 12) {
      for (uint64_t h = 1; h <= n; ++h) targets.push_back(h);
    } else {
      for (uint64_t h = 1; h <= 8; ++h) targets.push_back(h);
      targets.push_back(n / 2);
      targets.push_back(n);
    }
    for (uint64_t h : targets) {
      const char* action = (runs++ % 2 == 0) ? "err" : "enospc";
      const std::string spec = std::string(action) + "@" + std::to_string(h);
      SCOPED_TRACE(site + "=" + spec);
      const std::string run_dir = UniqueDir("sweep");
      RemoveTree(run_dir);
      ASSERT_TRUE(fs::CreateDir(run_dir).ok());
      ASSERT_TRUE(fail::FailPoints::Set(site, spec).ok());
      const std::vector<double> acked = RunWorkload(run_dir);
      fail::FailPoints::ClearAll();
      ASSERT_NO_FATAL_FAILURE(CheckRecovery(run_dir, acked));
      RemoveTree(run_dir);
    }
  }
  EXPECT_GT(runs, 50u);  // the sweep actually swept
}

// ---------------------------------------------------------------------------
// Interruptible retry backoff
// ---------------------------------------------------------------------------

TEST_F(EngineFaultTest, CloseInterruptsRetryBackoffInsteadOfSleepingItOut) {
  // An 8-attempt ladder at 300 ms base is 300+600+...+19200 ms of pure
  // backoff (~38 s). Close() must cancel the wait in flight, not ride
  // it out — this is the regression pin for the old uninterruptible
  // sleep_for backoff.
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;
  opts.io_retry_attempts = 8;
  opts.io_retry_backoff_ms = 300;
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 20)).ok());

  // Sticky flush failure: without interruption the flush would burn the
  // whole ladder.
  ASSERT_TRUE(fail::FailPoints::Set("lsm.flush", "err").ok());
  const auto t0 = std::chrono::steady_clock::now();
  Status flush_st;
  std::thread flusher([&] { flush_st = eng->Flush(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Status close_st = eng->Close();
  flusher.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  fail::FailPoints::ClearAll();

  EXPECT_TRUE(close_st.ok()) << close_st.ToString();
  // Seconds, not the ~38 s ladder: the backoff wait was interrupted.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ASSERT_FALSE(flush_st.ok());
  EXPECT_NE(flush_st.message().find("interrupted"), std::string::npos)
      << flush_st.ToString();

  // The unflushed rows are WAL-durable; recovery serves them.
  engr.value().reset();
  std::vector<double> acked;
  for (size_t r = 0; r < 20; ++r) acked.push_back(r);
  CheckRecovery(dir_, acked);
}

// ---------------------------------------------------------------------------
// Sharded engine: per-shard fault isolation
// ---------------------------------------------------------------------------

/// Recursive tree removal (shard stores nest shard-<k>/quarantine/).
void RemoveTreeRec(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string p = fs::JoinPath(dir, n);
      if (!fs::RemoveFile(p).ok()) RemoveTreeRec(p);
    }
  }
  ::rmdir(dir.c_str());
}

std::vector<ColumnDef> ShardFaultSchema() {
  ColumnDef t, v;
  t.name = "t";
  v.name = "v";
  return {t, v};
}

shard::ShardOptions ShardFaultOptions() {
  shard::ShardOptions o;
  o.num_shards = 4;
  o.shard_quota_bytes = 1 << 20;  // admission out of the way
  o.engine = FaultOptions();
  o.engine.memtable_bytes = 2 << 10;  // flushes mid-ingest
  o.engine.io_retry_attempts = 1;     // a one-shot @1 is not absorbed
  o.engine.compact_fanout = 0;
  return o;
}

constexpr size_t kShardSeries = 8;
constexpr size_t kShardBatches = 6;
constexpr size_t kShardRows = 40;

std::vector<double> ShardBatch(uint64_t series, uint64_t start, size_t n) {
  std::vector<double> rows;
  rows.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(static_cast<double>(start + i));
    rows.push_back(static_cast<double>(series) * 1e6 +
                   static_cast<double>(start + i));
  }
  return rows;
}

/// Sharded ingest workload tolerant of injected faults. Returns, per
/// series, how many rows were ACKNOWLEDGED (acks are prefixes: series
/// rows are appended in order and a failed batch is not retried).
std::vector<uint64_t> RunShardWorkload(const std::string& dir) {
  std::vector<uint64_t> acked(kShardSeries, 0);
  auto opened =
      shard::ShardedIngestEngine::Open(dir, ShardFaultSchema(),
                                       ShardFaultOptions());
  if (!opened.ok()) return acked;  // a faulted Open is a clean typed error
  auto& eng = *opened.value();
  for (size_t b = 0; b < kShardBatches; ++b) {
    for (uint64_t s = 0; s < kShardSeries; ++s) {
      if (eng.AppendBatch(s, ShardBatch(s, acked[s], kShardRows)).ok()) {
        acked[s] += kShardRows;
      }
    }
  }
  eng.Flush();  // may fail on a degraded shard; siblings still flush
  eng.Close();
  return acked;
}

/// Post-fault invariants (failpoints cleared): reopen green, every
/// acked row back exactly once per series in order, idempotent.
void CheckShardRecovery(const std::string& dir,
                        const std::vector<uint64_t>& acked) {
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("recovery round " + std::to_string(round));
    shard::ShardOptions opt = ShardFaultOptions();
    opt.num_shards = 0;  // adopt (Open may have failed pre-SHARDS too)
    auto opened =
        shard::ShardedIngestEngine::Open(dir, ShardFaultSchema(), opt);
    if (!opened.ok()) {
      // Only legitimate when the faulted run never created the store.
      ASSERT_EQ(std::count(acked.begin(), acked.end(), 0u),
                static_cast<long>(acked.size()))
          << opened.status().ToString();
      return;
    }
    auto& eng = *opened.value();
    auto shards = eng.SnapshotReadShards("v");
    ASSERT_TRUE(shards.ok()) << shards.status().ToString();
    for (uint64_t s = 0; s < kShardSeries; ++s) {
      std::vector<double> seq;
      for (double v : shards.value()[eng.ShardOf(s)]) {
        if (static_cast<uint64_t>(v / 1e6) == s) {
          seq.push_back(v - static_cast<double>(s) * 1e6);
        }
      }
      ASSERT_EQ(seq.size(), acked[s]) << "series " << s;
      for (size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(seq[i], static_cast<double>(i))
            << "series " << s << " row " << i;
      }
    }
    eng.Close();
  }
}

TEST_F(EngineFaultTest, ShardDegradationIsolatesSiblings) {
  auto opened = shard::ShardedIngestEngine::Open(dir_, ShardFaultSchema(),
                                                 ShardFaultOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& eng = *opened.value();

  // The FIRST shard to reach its memtable watermark hits the one-shot
  // flush fault and (attempts=1) degrades to sticky read-only.
  ASSERT_TRUE(fail::FailPoints::Set("lsm.flush", "err@1").ok());
  std::vector<uint64_t> acked(kShardSeries, 0);
  for (size_t b = 0; b < kShardBatches; ++b) {
    for (uint64_t s = 0; s < kShardSeries; ++s) {
      if (eng.AppendBatch(s, ShardBatch(s, acked[s], kShardRows)).ok()) {
        acked[s] += kShardRows;
      }
    }
  }
  fail::FailPoints::ClearAll();

  // Exactly one shard degraded, with the injected root cause in the
  // aggregated health report.
  const shard::HealthReport h = eng.Health();
  ASSERT_EQ(h.degraded_shards, 1u);
  EXPECT_FALSE(h.all_healthy());
  size_t bad = h.shards.size();
  for (const auto& sh : h.shards) {
    if (sh.read_only) {
      bad = sh.shard;
      EXPECT_EQ(sh.error.code(), StatusCode::kIoError);
      EXPECT_NE(sh.error.message().find("injected fault"),
                std::string::npos);
    }
  }
  ASSERT_LT(bad, h.shards.size());

  // Sibling shards keep accepting writes; the degraded one fails fast
  // with its sticky root cause, never a timeout.
  for (uint64_t s = 0; s < kShardSeries; ++s) {
    const Status st = eng.AppendBatch(s, ShardBatch(s, acked[s], 1));
    if (eng.ShardOf(s) == bad) {
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.code(), StatusCode::kIoError);
      EXPECT_NE(st.message().find("read-only"), std::string::npos);
    } else {
      ASSERT_TRUE(st.ok()) << "series " << s << ": " << st.ToString();
      acked[s] += 1;
    }
  }

  // Reads still serve every acknowledged row — including the degraded
  // shard's (its unflushed memtable is retained and WAL-durable).
  auto shards = eng.SnapshotReadShards("v");
  ASSERT_TRUE(shards.ok());
  for (uint64_t s = 0; s < kShardSeries; ++s) {
    size_t found = 0;
    for (double v : shards.value()[eng.ShardOf(s)]) {
      if (static_cast<uint64_t>(v / 1e6) == s) ++found;
    }
    EXPECT_EQ(found, acked[s]) << "series " << s;
  }

  // Reopen with the fault gone: every acked row, exactly once, and the
  // formerly-degraded shard is writable again.
  ASSERT_TRUE(eng.Close().ok());
  opened.value().reset();
  ASSERT_NO_FATAL_FAILURE(CheckShardRecovery(dir_, acked));
  shard::ShardOptions opt = ShardFaultOptions();
  opt.num_shards = 0;
  auto reopened =
      shard::ShardedIngestEngine::Open(dir_, ShardFaultSchema(), opt);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value()->Health().all_healthy());
  for (uint64_t s = 0; s < kShardSeries; ++s) {
    ASSERT_TRUE(
        reopened.value()->AppendBatch(s, ShardBatch(s, acked[s], 1)).ok());
  }
}

TEST_F(EngineFaultTest, ShardChaosSweepRecoversAckedRowsExactlyOnce) {
  // EIO/ENOSPC into one shard mid-ingest (the one-shot @1 lands on the
  // first shard to exercise the site), across every flush-path site:
  // whatever degrades, siblings' and the victim's acked rows all
  // recover exactly once, idempotently.
  const std::vector<std::string> sites = {
      "lsm.flush", "segment.column", "segment.publish",
      "lsm.manifest", "fs.sync", "wal.rotate"};
  size_t runs = 0;
  for (const auto& site : sites) {
    for (const char* action : {"err", "enospc"}) {
      const std::string spec = std::string(action) + "@1";
      SCOPED_TRACE(site + "=" + spec);
      const std::string run_dir = UniqueDir("shard_sweep");
      RemoveTreeRec(run_dir);
      ASSERT_TRUE(fail::FailPoints::Set(site, spec).ok());
      const std::vector<uint64_t> acked = RunShardWorkload(run_dir);
      fail::FailPoints::ClearAll();
      ASSERT_NO_FATAL_FAILURE(CheckShardRecovery(run_dir, acked));
      RemoveTreeRec(run_dir);
      ++runs;
    }
  }
  EXPECT_EQ(runs, sites.size() * 2);
}

TEST_F(EngineFaultTest, ShardFailpointSitesAreTypedAndAttributed) {
  auto opened = shard::ShardedIngestEngine::Open(dir_, ShardFaultSchema(),
                                                 ShardFaultOptions());
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();

  ASSERT_TRUE(fail::FailPoints::Set("shard.route", "err@1").ok());
  Status st = eng.AppendBatch(0, ShardBatch(0, 0, 1));
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("shard.route"), std::string::npos);

  ASSERT_TRUE(fail::FailPoints::Set("shard.admit", "err@1").ok());
  st = eng.AppendBatch(0, ShardBatch(0, 0, 1));
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_NE(st.message().find("shard.admit"), std::string::npos);
  fail::FailPoints::ClearAll();

  // Both injections rejected cleanly: the store is intact and writable.
  EXPECT_TRUE(eng.AppendBatch(0, ShardBatch(0, 0, 1)).ok());
  EXPECT_TRUE(eng.Health().all_healthy());
}

TEST_F(EngineFaultTest, ProbabilisticChaosNeverLosesAckedData) {
  uint64_t seed = 42;
  if (const char* env = std::getenv("FCBENCH_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const std::vector<std::string> sites = {
      "fs.append", "fs.sync", "fs.sync_dir", "fs.rename", "fs.write_atomic",
      "fs.create", "fs.read", "fs.list", "fs.close", "wal.append",
      "wal.rotate", "segment.column", "segment.publish", "lsm.flush",
      "lsm.compact", "lsm.manifest"};
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " trial " +
                 std::to_string(trial));
    const std::string run_dir = UniqueDir("chaos" + std::to_string(trial));
    RemoveTree(run_dir);
    ASSERT_TRUE(fs::CreateDir(run_dir).ok());
    for (size_t i = 0; i < sites.size(); ++i) {
      const uint64_t site_seed = seed * 1000 + uint64_t(trial) * 37 + i;
      ASSERT_TRUE(fail::FailPoints::Set(
                      sites[i], "err@p0.03:s" + std::to_string(site_seed))
                      .ok());
    }
    const std::vector<double> acked = RunWorkload(run_dir);
    fail::FailPoints::ClearAll();
    ASSERT_NO_FATAL_FAILURE(CheckRecovery(run_dir, acked));
    RemoveTree(run_dir);
  }
}

TEST_F(EngineFaultTest, InjectedFlushStallTripsWatchdogExactlyOnce) {
  // A sticky lsm.flush fault plus a long retry backoff turns the flush
  // into a stall the watchdog must catch: with a 5 ms budget and a
  // ~60 ms retry ladder (2 attempts x 30 ms backoff) the deadline
  // passes mid-flush. The stall must fire exactly once — the flush,
  // compaction and scrub watches all share the dog, and a retry ladder
  // must not refire per attempt — and leave a `stall` event in the
  // flight recorder attributed to this engine's dir.
  auto opts = FaultOptions();
  opts.memtable_bytes = 1 << 20;
  opts.io_retry_backoff_ms = 30;
  opts.watchdog_budget_ms = 5;
  auto engr = IngestEngine::Open(dir_, FaultSchema(), opts);
  ASSERT_TRUE(engr.ok());
  auto& eng = engr.value();
  ASSERT_TRUE(eng->AppendBatch(BatchRows(0, 20)).ok());

  const uint64_t stalls_before = obs::Watchdog::Global().stalls_fired();
  const uint64_t events_before = obs::EventTrace::Global().recorded();
  ASSERT_TRUE(fail::FailPoints::Set("lsm.flush", "err").ok());
  Status st = eng->Flush();
  EXPECT_FALSE(st.ok());
  fail::FailPoints::ClearAll();

  EXPECT_EQ(obs::Watchdog::Global().stalls_fired(), stalls_before + 1);
  bool saw_stall = false;
  for (const obs::TraceEvent& e : obs::EventTrace::Global().Snapshot()) {
    if (e.seq <= events_before) continue;  // seq is 1-based
    if (e.kind != obs::EventKind::kStall) continue;
    saw_stall = true;
    EXPECT_EQ(std::string(e.detail), dir_.substr(0, sizeof(e.detail) - 1));
    EXPECT_GE(e.a, 5u) << "elapsed_ms at firing";
    EXPECT_EQ(e.b, 5u) << "budget_ms";
  }
  EXPECT_TRUE(saw_stall) << "no stall event in the flight recorder";

  // The watch disarmed with the flush: quiet from here on.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(obs::Watchdog::Global().stalls_fired(), stalls_before + 1);
}

}  // namespace
}  // namespace fcbench::db::lsm
