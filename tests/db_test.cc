// Tests for the simulated in-memory database: paged container, dataframe,
// and the I/O + decode + scan pipeline of paper §5.1.2.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "data/dataset.h"
#include "db/dataframe.h"
#include "db/paged_file.h"
#include "util/rng.h"

namespace fcbench::db {
namespace {

std::string TempPath(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/fcbench_" + tag + ".fcbf";
}

class PagedFileRoundTrip : public ::testing::TestWithParam<
                               std::tuple<const char*, size_t>> {};

TEST_P(PagedFileRoundTrip, WriteReadIdentity) {
  auto [method, page_size] = GetParam();
  auto ds = data::GenerateDataset(*data::FindDataset("nyc-taxi"), 1 << 20);
  ASSERT_TRUE(ds.ok());

  std::string path = TempPath(std::string(method) + "_" +
                              std::to_string(page_size));
  PagedFile::Options opt;
  opt.page_size = page_size;
  opt.compressor = method;
  ASSERT_TRUE(
      PagedFile::Write(path, ds.value().bytes.span(), ds.value().desc, opt)
          .ok());

  PagedFile::ReadTiming timing;
  auto r = PagedFile::Read(path, &timing);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), ds.value().bytes.size());
  EXPECT_EQ(std::memcmp(r.value().data(), ds.value().bytes.data(),
                        r.value().size()),
            0);
  EXPECT_GE(timing.io_seconds, 0.0);
  EXPECT_GT(timing.decode_seconds, 0.0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndPages, PagedFileRoundTrip,
    ::testing::Combine(
        ::testing::Values("none", "bitshuffle_lz4", "bitshuffle_zstd",
                          "chimp128", "gorilla", "spdp", "mpc",
                          "nv_bitcomp"),
        ::testing::Values(size_t(4) << 10, size_t(64) << 10,
                          size_t(8) << 20)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_" +
             std::to_string(std::get<1>(param_info.param) >> 10) + "K";
    });

TEST(PagedFileTest, StoresDescMetadata) {
  auto ds = data::GenerateDataset(*data::FindDataset("wesad-chest"),
                                  512 << 10);
  ASSERT_TRUE(ds.ok());
  std::string path = TempPath("desc");
  PagedFile::Options opt;
  opt.compressor = "gorilla";
  ASSERT_TRUE(
      PagedFile::Write(path, ds.value().bytes.span(), ds.value().desc, opt)
          .ok());
  auto desc = PagedFile::ReadDesc(path);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc.value().dtype, DType::kFloat64);
  EXPECT_EQ(desc.value().extent, ds.value().desc.extent);
  std::remove(path.c_str());
}

TEST(PagedFileTest, CompressionShrinksFile) {
  auto ds = data::GenerateDataset(*data::FindDataset("citytemp"), 1 << 20);
  ASSERT_TRUE(ds.ok());
  std::string raw_path = TempPath("raw"), comp_path = TempPath("comp");
  PagedFile::Options raw_opt;  // "none"
  PagedFile::Options comp_opt;
  comp_opt.compressor = "bitshuffle_zstd";
  comp_opt.page_size = 64 << 10;
  ASSERT_TRUE(PagedFile::Write(raw_path, ds.value().bytes.span(),
                               ds.value().desc, raw_opt)
                  .ok());
  ASSERT_TRUE(PagedFile::Write(comp_path, ds.value().bytes.span(),
                               ds.value().desc, comp_opt)
                  .ok());
  auto raw_size = PagedFile::FileSize(raw_path);
  auto comp_size = PagedFile::FileSize(comp_path);
  ASSERT_TRUE(raw_size.ok());
  ASSERT_TRUE(comp_size.ok());
  EXPECT_LT(comp_size.value(), raw_size.value());
  std::remove(raw_path.c_str());
  std::remove(comp_path.c_str());
}

TEST(PagedFileTest, UnknownCompressorRejected) {
  std::vector<double> v(100, 1.0);
  PagedFile::Options opt;
  opt.compressor = "zpaq-ultra";
  EXPECT_FALSE(PagedFile::Write(TempPath("bad"), AsBytes(v),
                                DataDesc::Make(DType::kFloat64, {100}), opt)
                   .ok());
}

TEST(PagedFileTest, MissingFileFails) {
  PagedFile::ReadTiming t;
  EXPECT_FALSE(PagedFile::Read("/nonexistent/x.fcbf", &t).ok());
}

TEST(PagedFileTest, CorruptHeaderFails) {
  std::string path = TempPath("corrupt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "this is not a paged file at all";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  PagedFile::ReadTiming t;
  EXPECT_FALSE(PagedFile::Read(path, &t).ok());
  std::remove(path.c_str());
}

// --- dataframe ---------------------------------------------------------

TEST(DataFrameTest, ColumnsFromRank2Extent) {
  std::vector<double> v;
  for (int r = 0; r < 100; ++r) {
    for (int c = 0; c < 4; ++c) v.push_back(r * 10.0 + c);
  }
  auto df = DataFrame::FromBytes(AsBytes(v),
                                 DataDesc::Make(DType::kFloat64, {100, 4}));
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().num_rows(), 100u);
  EXPECT_EQ(df.value().num_columns(), 4u);
  EXPECT_DOUBLE_EQ(df.value().column(2)[5], 52.0);
  EXPECT_EQ(df.value().column_name(3), "c3");
}

TEST(DataFrameTest, SingleColumnFromRank1) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  auto df = DataFrame::FromBytes(AsBytes(v),
                                 DataDesc::Make(DType::kFloat32, {3}));
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().num_columns(), 1u);
  EXPECT_DOUBLE_EQ(df.value().column(0)[1], 2.0);
}

TEST(DataFrameTest, ScanCountsAndSums) {
  std::vector<double> v = {1, 5, 3, 8, 2, 9, 4};
  auto df = DataFrame::FromBytes(
      AsBytes(v), DataDesc::Make(DType::kFloat64, {v.size()}));
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().CountLessEqual(0, 4.0), 4u);
  EXPECT_DOUBLE_EQ(df.value().SumLessEqual(0, 4.0), 1 + 3 + 2 + 4);
  EXPECT_EQ(df.value().CountLessEqual(0, -1.0), 0u);
  EXPECT_EQ(df.value().CountLessEqual(0, 100.0), v.size());
}

TEST(DataFrameTest, HistogramEdgesSpanRange) {
  std::vector<double> v;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) v.push_back(rng.Uniform(0, 100));
  auto df = DataFrame::FromBytes(
      AsBytes(v), DataDesc::Make(DType::kFloat64, {v.size()}));
  ASSERT_TRUE(df.ok());
  auto edges = df.value().HistogramEdges(0, 10);
  ASSERT_EQ(edges.size(), 10u);
  for (size_t i = 1; i < edges.size(); ++i) EXPECT_GT(edges[i], edges[i - 1]);
  // Last edge reaches the maximum -> full-table match.
  EXPECT_EQ(df.value().CountLessEqual(0, edges.back()), v.size());
}

TEST(DataFrameTest, SizeMismatchRejected) {
  std::vector<double> v(10);
  EXPECT_FALSE(DataFrame::FromBytes(
                   AsBytes(v), DataDesc::Make(DType::kFloat64, {11}))
                   .ok());
}

// --- end-to-end pipeline (the Table 11 path) -------------------------------

TEST(PipelineTest, ReadDecodeQuery) {
  auto ds = data::GenerateDataset(*data::FindDataset("tpcDS-web"), 1 << 20);
  ASSERT_TRUE(ds.ok());
  std::string path = TempPath("pipeline");
  PagedFile::Options opt;
  opt.compressor = "bitshuffle_lz4";
  opt.page_size = 64 << 10;
  ASSERT_TRUE(
      PagedFile::Write(path, ds.value().bytes.span(), ds.value().desc, opt)
          .ok());

  PagedFile::ReadTiming timing;
  auto bytes = PagedFile::Read(path, &timing);
  ASSERT_TRUE(bytes.ok());
  auto df = DataFrame::FromBytes(bytes.value().span(), ds.value().desc);
  ASSERT_TRUE(df.ok());
  auto edges = df.value().HistogramEdges(0, 10);
  ASSERT_EQ(edges.size(), 10u);
  uint64_t prev = 0;
  for (double e : edges) {
    uint64_t count = df.value().CountLessEqual(0, e);
    EXPECT_GE(count, prev);  // cumulative histogram is monotone
    prev = count;
  }
  EXPECT_EQ(prev, df.value().num_rows());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fcbench::db
