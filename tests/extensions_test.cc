// Tests for the extension features beyond the paper's headline grid:
// fpzip's lossy mode, BUFF's Table 2 precision sweep, and codec
// property sweeps across page sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "compressors/buff.h"
#include "compressors/fpzip.h"
#include "data/dataset.h"
#include "db/paged_file.h"
#include "util/rng.h"

namespace fcbench {
namespace {

std::vector<float> SmoothF32(size_t n, uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  double x = 0;
  for (auto& f : v) {
    x += 0.002;
    f = static_cast<float>(std::sin(x) * 500.0 + 1000.0 +
                           0.01 * rng.Normal());
  }
  return v;
}

// --- fpzip lossy mode --------------------------------------------------

class FpzipLossy : public ::testing::TestWithParam<int> {};

TEST_P(FpzipLossy, ErrorBoundedAndIdempotent) {
  int bits = GetParam();
  auto v = SmoothF32(20000, 1);
  auto desc = DataDesc::Make(DType::kFloat32, {v.size()});
  CompressorConfig cfg;
  cfg.fpzip_precision_bits = bits;
  compressors::FpzipCompressor comp(cfg);

  Buffer c, d;
  ASSERT_TRUE(comp.Compress(AsBytes(v), desc, &c).ok());
  ASSERT_TRUE(comp.Decompress(c.span(), desc, &d).ok());
  ASSERT_EQ(d.size(), v.size() * 4);
  const float* back = reinterpret_cast<const float*>(d.data());

  // Truncating to `bits` of the ordered representation keeps the top
  // (bits - 9) mantissa bits -> bounded relative error.
  double rel_bound = std::pow(2.0, -(bits - 10));
  for (size_t i = 0; i < v.size(); i += 37) {
    EXPECT_NEAR(back[i], v[i], std::abs(v[i]) * rel_bound + 1e-30)
        << "bits=" << bits << " i=" << i;
  }

  // Idempotence: recompressing the lossy output is lossless.
  Buffer c2, d2;
  ASSERT_TRUE(comp.Compress(d.span(), desc, &c2).ok());
  ASSERT_TRUE(comp.Decompress(c2.span(), desc, &d2).ok());
  EXPECT_EQ(std::memcmp(d.data(), d2.data(), d.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(PrecisionSweep, FpzipLossy,
                         ::testing::Values(16, 20, 24, 28),
                         [](const auto& param_info) {
                           return "bits" + std::to_string(param_info.param);
                         });

TEST(FpzipLossyTest, RatioImprovesMonotonicallyWithTruncation) {
  auto v = SmoothF32(50000, 2);
  auto desc = DataDesc::Make(DType::kFloat32, {v.size()});
  size_t prev_size = 0;
  for (int bits : {0 /* lossless */, 28, 24, 20, 16, 12}) {
    CompressorConfig cfg;
    cfg.fpzip_precision_bits = bits;
    compressors::FpzipCompressor comp(cfg);
    Buffer c;
    ASSERT_TRUE(comp.Compress(AsBytes(v), desc, &c).ok());
    if (prev_size != 0) {
      EXPECT_LE(c.size(), prev_size + 16) << "bits=" << bits;
    }
    prev_size = c.size();
  }
}

TEST(FpzipLossyTest, ZeroBitsMeansLossless) {
  auto v = SmoothF32(8000, 3);
  auto desc = DataDesc::Make(DType::kFloat32, {v.size()});
  CompressorConfig cfg;
  cfg.fpzip_precision_bits = 0;
  compressors::FpzipCompressor comp(cfg);
  Buffer c, d;
  ASSERT_TRUE(comp.Compress(AsBytes(v), desc, &c).ok());
  ASSERT_TRUE(comp.Decompress(c.span(), desc, &d).ok());
  EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0);
}

// --- BUFF Table 2 sweep --------------------------------------------------

class BuffTable2 : public ::testing::TestWithParam<int> {};

TEST_P(BuffTable2, EveryPrecisionRoundTripsItsOwnData) {
  int digits = GetParam();
  double scale = std::pow(10.0, digits);
  Rng rng(100 + digits);
  std::vector<double> v(8000);
  double x = 5.0;
  for (auto& f : v) {
    x += rng.Normal() * 0.5;
    f = std::round(x * scale) / scale;
    if (f == 0.0) f = 0.0;  // canonical zero
  }
  auto desc = DataDesc::Make(DType::kFloat64, {v.size()}, digits);
  auto comp = compressors::BuffCompressor::Make({});
  Buffer c, d;
  ASSERT_TRUE(comp->Compress(AsBytes(v), desc, &c).ok());
  ASSERT_TRUE(comp->Decompress(c.span(), desc, &d).ok());
  EXPECT_EQ(std::memcmp(d.data(), v.data(), d.size()), 0)
      << "digits=" << digits;
}

INSTANTIATE_TEST_SUITE_P(AllDigits, BuffTable2, ::testing::Range(1, 11),
                         [](const auto& param_info) {
                           return "digits" + std::to_string(param_info.param);
                         });

TEST(BuffTable2Test, FractionBitsMatchPaperTable2) {
  const int expected[] = {0, 5, 8, 11, 15, 18, 21, 25, 28, 31, 35};
  for (int d = 1; d <= 10; ++d) {
    EXPECT_EQ(compressors::BuffCompressor::FractionBits(d), expected[d])
        << "digits=" << d;
  }
}

// --- paged file page-size property sweep ---------------------------------

class PageSizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PageSizeProperty, AnyPageSizeRoundTrips) {
  size_t page = GetParam();
  auto ds = data::GenerateDataset(*data::FindDataset("ts-gas"), 96 << 10);
  ASSERT_TRUE(ds.ok());
  std::string path = std::string(::testing::TempDir()) + "/fcb_page_" +
                     std::to_string(page);
  db::PagedFile::Options opt;
  opt.compressor = "gorilla";
  opt.page_size = page;
  ASSERT_TRUE(db::PagedFile::Write(path, ds.value().bytes.span(),
                                   ds.value().desc, opt)
                  .ok());
  db::PagedFile::ReadTiming t;
  auto back = db::PagedFile::Read(path, &t);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::memcmp(back.value().data(), ds.value().bytes.data(),
                        back.value().size()),
            0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(OddSizes, PageSizeProperty,
                         ::testing::Values(size_t(1), size_t(7),
                                           size_t(100), size_t(4096),
                                           size_t(10000), size_t(1) << 20),
                         [](const auto& param_info) {
                           return "page" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace fcbench
