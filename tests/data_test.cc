// Tests for the dataset registry and synthetic generators: Table 3
// coverage, determinism, scaling, and per-domain compressibility
// character.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "data/dataset.h"
#include "util/entropy.h"

namespace fcbench::data {
namespace {

TEST(RegistryTest, Has33Datasets) {
  EXPECT_EQ(AllDatasets().size(), 33u);
}

TEST(RegistryTest, DomainCountsMatchTable3) {
  std::map<Domain, int> counts;
  for (const auto& d : AllDatasets()) ++counts[d.domain];
  EXPECT_EQ(counts[Domain::kHpc], 10);
  EXPECT_EQ(counts[Domain::kTimeSeries], 8);
  EXPECT_EQ(counts[Domain::kObservation], 8);
  EXPECT_EQ(counts[Domain::kDatabase], 7);
}

TEST(RegistryTest, NamesUniqueAndFindable) {
  std::set<std::string> names;
  for (const auto& d : AllDatasets()) {
    EXPECT_TRUE(names.insert(d.name).second) << d.name;
    EXPECT_EQ(FindDataset(d.name), &d);
  }
  EXPECT_EQ(FindDataset("no-such-dataset"), nullptr);
}

TEST(RegistryTest, ExtentsMatchTable3) {
  const DatasetInfo* mhd = FindDataset("astro-mhd");
  ASSERT_NE(mhd, nullptr);
  EXPECT_EQ(mhd->extent, (std::vector<uint64_t>{130, 514, 1026}));
  EXPECT_EQ(mhd->dtype, DType::kFloat64);
  EXPECT_NEAR(mhd->table_entropy_bits, 0.97, 1e-9);

  const DatasetInfo* miranda = FindDataset("miranda3d");
  ASSERT_NE(miranda, nullptr);
  EXPECT_EQ(miranda->extent,
            (std::vector<uint64_t>{1024, 1024, 1024}));
  EXPECT_EQ(miranda->dtype, DType::kFloat32);
}

TEST(GenerateTest, DeterministicForSameSeed) {
  const DatasetInfo* info = FindDataset("citytemp");
  auto a = GenerateDataset(*info, 1 << 20, 7);
  auto b = GenerateDataset(*info, 1 << 20, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().bytes.size(), b.value().bytes.size());
  EXPECT_EQ(std::memcmp(a.value().bytes.data(), b.value().bytes.data(),
                        a.value().bytes.size()),
            0);
}

TEST(GenerateTest, DifferentSeedsDiffer) {
  const DatasetInfo* info = FindDataset("turbulence");
  auto a = GenerateDataset(*info, 1 << 20, 1);
  auto b = GenerateDataset(*info, 1 << 20, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(std::memcmp(a.value().bytes.data(), b.value().bytes.data(),
                        std::min(a.value().bytes.size(),
                                 b.value().bytes.size())),
            0);
}

TEST(GenerateTest, SizeApproximatesTarget) {
  for (const char* name : {"miranda3d", "tpcxBB-store", "hdr-night"}) {
    const DatasetInfo* info = FindDataset(name);
    ASSERT_NE(info, nullptr);
    auto ds = GenerateDataset(*info, 4 << 20);
    ASSERT_TRUE(ds.ok()) << name;
    // Dimensional rounding allows generous slack, but the order of
    // magnitude must hold.
    EXPECT_GT(ds.value().bytes.size(), 1u << 20) << name;
    EXPECT_LT(ds.value().bytes.size(), 16u << 20) << name;
  }
}

TEST(GenerateTest, PreservesDtypeAndRank) {
  for (const auto& info : AllDatasets()) {
    auto ds = GenerateDataset(info, 256 << 10);
    ASSERT_TRUE(ds.ok()) << info.name;
    EXPECT_EQ(ds.value().desc.dtype, info.dtype) << info.name;
    EXPECT_EQ(ds.value().desc.extent.size(), info.extent.size())
        << info.name;
    EXPECT_EQ(ds.value().bytes.size(), ds.value().desc.num_bytes())
        << info.name;
  }
}

TEST(GenerateTest, TableDatasetsKeepColumnCount) {
  const DatasetInfo* info = FindDataset("wesad-chest");
  auto ds = GenerateDataset(*info, 1 << 20);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().desc.extent[1], 8u);  // 8 sensor columns preserved
}

TEST(GenerateTest, EntropyOrderingMatchesTable3) {
  // Absolute entropies depend on instance size; the *ordering* between
  // clearly-separated datasets must hold: astro-mhd (0.97) << citytemp
  // (9.43) << jane-street (26.07).
  auto mhd = GenerateDataset(*FindDataset("astro-mhd"), 1 << 20);
  auto city = GenerateDataset(*FindDataset("citytemp"), 1 << 20);
  auto jane = GenerateDataset(*FindDataset("jane-street"), 1 << 20);
  ASSERT_TRUE(mhd.ok() && city.ok() && jane.ok());
  double h_mhd = ShannonEntropyBits(mhd.value().bytes.span(), 8);
  double h_city = ShannonEntropyBits(city.value().bytes.span(), 4);
  double h_jane = ShannonEntropyBits(jane.value().bytes.span(), 8);
  EXPECT_LT(h_mhd, 3.0);
  EXPECT_LT(h_mhd, h_city);
  EXPECT_LT(h_city, h_jane - 1.0);
}

TEST(GenerateTest, SparseFieldMostlyBackground) {
  auto ds = GenerateDataset(*FindDataset("astro-mhd"), 1 << 20);
  ASSERT_TRUE(ds.ok());
  const double* v = reinterpret_cast<const double*>(ds.value().bytes.data());
  size_t n = ds.value().bytes.size() / 8;
  size_t zeros = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] == 0.0) ++zeros;
  }
  EXPECT_GT(static_cast<double>(zeros) / n, 0.85);
}

TEST(GenerateTest, QuantizedSeriesHasFewDistinctValues) {
  auto ds = GenerateDataset(*FindDataset("citytemp"), 1 << 20);
  ASSERT_TRUE(ds.ok());
  const float* v = reinterpret_cast<const float*>(ds.value().bytes.data());
  size_t n = ds.value().bytes.size() / 4;
  std::set<float> distinct(v, v + n);
  EXPECT_LT(distinct.size(), n / 50);  // heavy value reuse
}

TEST(GenerateTest, TpcColumnsHaveExpectedStructure) {
  auto ds = GenerateDataset(*FindDataset("tpcxBB-store"), 1 << 20);
  ASSERT_TRUE(ds.ok());
  size_t cols = ds.value().desc.extent[1];
  size_t rows = ds.value().desc.extent[0];
  const double* v = reinterpret_cast<const double*>(ds.value().bytes.data());
  // Column 1 (quantities) must be small integers.
  for (size_t r = 0; r < std::min<size_t>(rows, 500); ++r) {
    double q = v[r * cols + 1];
    EXPECT_EQ(q, std::floor(q));
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 50.0);
  }
}

TEST(GenerateTest, RejectsTinyTarget) {
  EXPECT_FALSE(GenerateDataset(*FindDataset("citytemp"), 100).ok());
}

TEST(DomainNameTest, AllNamed) {
  EXPECT_EQ(DomainName(Domain::kHpc), "HPC");
  EXPECT_EQ(DomainName(Domain::kTimeSeries), "TS");
  EXPECT_EQ(DomainName(Domain::kObservation), "OBS");
  EXPECT_EQ(DomainName(Domain::kDatabase), "DB");
}

}  // namespace
}  // namespace fcbench::data
