// Tests for the sharded multi-tenant ingest engine (src/db/shard/):
// hash routing and its pinned shard count, admission control (fail-fast
// kOverloaded, deadline waits, oversized-batch rejection, shutdown
// wakeups), snapshot-consistent cross-shard reads under concurrent
// ingest, coordinated flush, aggregated health/scrub, and recovery
// accounting across reopen.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/shard/sharded_engine.h"
#include "util/fs.h"

namespace fcbench::db::shard {
namespace {

using lsm::ColumnDef;

std::string UniqueDir(const std::string& tag) {
  return "/tmp/fcbench_shard_" + std::to_string(::getpid()) + "_" + tag;
}

void RemoveTree(const std::string& dir) {
  auto names = fs::ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string path = fs::JoinPath(dir, n);
      if (!fs::RemoveFile(path).ok()) RemoveTree(path);  // a subdirectory
    }
  }
  ::rmdir(dir.c_str());
}

std::vector<ColumnDef> TestSchema() {
  return {{"t", DType::kFloat64, 0, ""}, {"v", DType::kFloat64, 0, ""}};
}

/// Fast deterministic defaults: no fsync, inline flushes, no compaction.
ShardOptions TestOptions(size_t shards, size_t quota = 0, size_t total = 0) {
  ShardOptions o;
  o.num_shards = shards;
  o.shard_quota_bytes = quota;
  o.total_budget_bytes = total;
  o.engine.sync_on_commit = false;
  o.engine.background_flush = false;
  o.engine.io_retry_backoff_ms = 0;
  o.engine.compact_fanout = 0;
  return o;
}

/// `n` rows for `series`: t = start+i, v = series * 1e6 + (start + i).
/// The v encoding makes every row attributable to its series, so
/// snapshot and recovery checks can verify per-series prefixes.
std::vector<double> Batch(uint64_t series, uint64_t start, size_t n) {
  std::vector<double> rows;
  rows.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(static_cast<double>(start + i));
    rows.push_back(static_cast<double>(series) * 1e6 +
                   static_cast<double>(start + i));
  }
  return rows;
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    RemoveTree(dir_);
  }
  void TearDown() override { RemoveTree(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Routing and the pinned shard count
// ---------------------------------------------------------------------------

TEST_F(ShardTest, RoutingIsDeterministicAndCoversAllShards) {
  auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();
  std::set<size_t> hit;
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t k = eng.value()->ShardOf(key);
    ASSERT_LT(k, 4u);
    EXPECT_EQ(k, eng.value()->ShardOf(key));  // stable
    hit.insert(k);
  }
  // splitmix64 spreads even sequential keys across every shard.
  EXPECT_EQ(hit.size(), 4u);
}

TEST_F(ShardTest, ReopenWithDifferentShardCountIsRefused) {
  {
    auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(eng.value()->Close().ok());
  }
  auto wrong = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong.status().message().find("re-routing"), std::string::npos);

  // num_shards = 0 adopts the stored count instead.
  auto adopt = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(0));
  ASSERT_TRUE(adopt.ok()) << adopt.status().ToString();
  EXPECT_EQ(adopt.value()->num_shards(), 4u);
}

TEST_F(ShardTest, NewStoreRequiresNonZeroShardCount) {
  auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(0));
  ASSERT_FALSE(eng.ok());
  EXPECT_EQ(eng.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Append / read-back / recovery
// ---------------------------------------------------------------------------

TEST_F(ShardTest, AppendReadBackAcrossShards) {
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();

  const size_t kSeries = 32, kRows = 8;
  for (uint64_t s = 0; s < kSeries; ++s) {
    ASSERT_TRUE(eng.AppendBatch(s, Batch(s, 0, kRows)).ok());
  }
  EXPECT_EQ(eng.rows(), kSeries * kRows);

  auto all = eng.ReadColumn("v");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all.value().size(), kSeries * kRows);

  // Every row of every series landed on exactly the shard its key
  // routes to.
  auto shards = eng.SnapshotReadShards("v");
  ASSERT_TRUE(shards.ok());
  for (uint64_t s = 0; s < kSeries; ++s) {
    const size_t k = eng.ShardOf(s);
    size_t found = 0;
    for (double v : shards.value()[k]) {
      if (static_cast<uint64_t>(v / 1e6) == s) ++found;
    }
    EXPECT_EQ(found, kRows) << "series " << s << " on shard " << k;
  }
}

TEST_F(ShardTest, RecoveryPreservesRowsAndIsIdempotent) {
  const size_t kSeries = 16, kRows = 50;
  {
    auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
    ASSERT_TRUE(eng.ok());
    for (uint64_t s = 0; s < kSeries; ++s) {
      ASSERT_TRUE(eng.value()->AppendBatch(s, Batch(s, 0, kRows)).ok());
    }
    // No flush: recovery must replay every shard's WAL.
    ASSERT_TRUE(eng.value()->Close().ok());
  }
  for (int round = 0; round < 2; ++round) {
    auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(0));
    ASSERT_TRUE(eng.ok()) << eng.status().ToString();
    EXPECT_EQ(eng.value()->rows(), kSeries * kRows) << "round " << round;
    auto v = eng.value()->ReadColumn("v");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().size(), kSeries * kRows);
    ASSERT_TRUE(eng.value()->Close().ok());
  }
}

TEST_F(ShardTest, ReopenChargesRecoveredBufferedBytesToBudget) {
  {
    auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2));
    ASSERT_TRUE(eng.ok());
    ASSERT_TRUE(eng.value()->AppendBatch(7, Batch(7, 0, 100)).ok());
    ASSERT_TRUE(eng.value()->Close().ok());
  }
  auto eng = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2));
  ASSERT_TRUE(eng.ok());
  // WAL replay refilled the memtable; admission accounting must see it.
  const uint64_t buffered = 100 * 2 * sizeof(double);
  EXPECT_EQ(eng.value()->budget().used(), buffered);
  EXPECT_EQ(eng.value()->budget().shard_used(eng.value()->ShardOf(7)),
            buffered);
  // Flushing drains the recovered charge back to zero.
  ASSERT_TRUE(eng.value()->Flush().ok());
  EXPECT_EQ(eng.value()->budget().used(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(ShardTest, OverBudgetAppendFailsFastWithOverloaded) {
  // Quota: 64 rows of 16B. Batches of 24 rows: two fit, the third not.
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2, 1024));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  ASSERT_TRUE(eng.AppendBatch(1, Batch(1, 0, 24)).ok());
  ASSERT_TRUE(eng.AppendBatch(1, Batch(1, 24, 24)).ok());
  const Status st = eng.AppendBatch(1, Batch(1, 48, 24));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_NE(st.message().find("admission"), std::string::npos);

  // Overload is transient by design: flushing returns the bytes.
  ASSERT_TRUE(eng.Flush().ok());
  EXPECT_TRUE(eng.AppendBatch(1, Batch(1, 48, 24)).ok());
  // Rows were never lost across the overload episode.
  EXPECT_EQ(eng.rows(), 72u);
}

TEST_F(ShardTest, DeadlineWaiterAdmittedWhenBudgetDrains) {
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2, 1024));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  ASSERT_TRUE(eng.AppendBatch(1, Batch(1, 0, 60)).ok());  // 960B of 1024

  std::thread flusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(eng.Flush().ok());
  });
  // 60 more rows do not fit now; they must be admitted once the flush
  // releases the first batch — well before the 5 s deadline.
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = eng.AppendBatchUntil(
      1, Batch(1, 60, 60), t0 + std::chrono::seconds(5));
  const auto waited = std::chrono::steady_clock::now() - t0;
  flusher.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_LT(waited, std::chrono::seconds(4));
  EXPECT_EQ(eng.rows(), 120u);
}

TEST_F(ShardTest, DeadlineExceededReturnsOverloaded) {
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2, 1024));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  ASSERT_TRUE(eng.AppendBatch(1, Batch(1, 0, 60)).ok());
  // Nothing will drain the budget: the wait must end at the deadline.
  const Status st = eng.AppendBatchUntil(
      1, Batch(1, 60, 60),
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_NE(st.message().find("deadline exceeded"), std::string::npos);
}

TEST_F(ShardTest, OversizedBatchIsRejectedWithoutWaitingOutDeadline) {
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2, 1024));
  ASSERT_TRUE(opened.ok());
  // 128 rows = 2048B can never fit a 1024B quota; a 5 s deadline must
  // not be slept out for a request that cannot ever be admitted.
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = opened.value()->AppendBatchUntil(
      1, Batch(1, 0, 128), t0 + std::chrono::seconds(5));
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_NE(st.message().find("over hard cap"), std::string::npos);
  EXPECT_LT(waited, std::chrono::seconds(1));
}

TEST_F(ShardTest, CloseWakesDeadlineWaitersWithOverloaded) {
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2, 1024));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  ASSERT_TRUE(eng.AppendBatch(1, Batch(1, 0, 60)).ok());

  std::atomic<bool> woke{false};
  Status st;
  std::thread waiter([&] {
    st = eng.AppendBatchUntil(
        1, Batch(1, 60, 60),
        std::chrono::steady_clock::now() + std::chrono::seconds(30));
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(eng.Close().ok());
  waiter.join();
  // Close unblocked the waiter immediately — not after 30 s.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_NE(st.message().find("shutting down"), std::string::npos);
}

TEST_F(ShardTest, PerShardQuotaIsolatesTenants) {
  // Series routed to DIFFERENT shards must not contend: one tenant
  // saturating its shard's quota leaves the sibling's quota untouched
  // (the default total budget is the sum of the quotas).
  auto opened =
      ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4, 1024));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  // Find two keys on different shards.
  uint64_t a = 0, b = 1;
  while (eng.ShardOf(b) == eng.ShardOf(a)) ++b;
  ASSERT_TRUE(eng.AppendBatch(a, Batch(a, 0, 60)).ok());
  ASSERT_EQ(eng.AppendBatch(a, Batch(a, 60, 60)).code(),
            StatusCode::kOverloaded);
  // Shard of `b` is unaffected by `a`'s overload.
  EXPECT_TRUE(eng.AppendBatch(b, Batch(b, 0, 60)).ok());
}

// ---------------------------------------------------------------------------
// Snapshot-consistent cross-shard reads
// ---------------------------------------------------------------------------

TEST_F(ShardTest, SnapshotNeverTearsBatchesDuringConcurrentIngest) {
  ShardOptions opt = TestOptions(4);
  opt.engine.memtable_bytes = 4 << 10;  // frequent inline flushes
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), opt);
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();

  constexpr size_t kWriters = 3;
  constexpr size_t kBatch = 7;
  constexpr size_t kBatchesPerWriter = 60;
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer owns one series; rows are consecutive within it.
      for (size_t i = 0; i < kBatchesPerWriter; ++i) {
        ASSERT_TRUE(
            eng.AppendBatch(w, Batch(w, i * kBatch, kBatch)).ok());
      }
    });
  }

  // Snapshot continuously while writers run: every snapshot must hold a
  // whole number of batches per series (a torn batch would leave a
  // remainder), and each series' rows must be the exact prefix
  // 0..n-1 of its value sequence.
  size_t snapshots = 0;
  while (snapshots < 50) {
    auto shards = eng.SnapshotReadShards("v");
    ASSERT_TRUE(shards.ok()) << shards.status().ToString();
    for (uint64_t s = 0; s < kWriters; ++s) {
      std::vector<double> seq;
      for (double v : shards.value()[eng.ShardOf(s)]) {
        if (static_cast<uint64_t>(v / 1e6) == s) {
          seq.push_back(v - static_cast<double>(s) * 1e6);
        }
      }
      ASSERT_EQ(seq.size() % kBatch, 0u)
          << "torn batch: series " << s << " has " << seq.size() << " rows";
      for (size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(seq[i], static_cast<double>(i)) << "series " << s;
      }
    }
    ++snapshots;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(eng.rows(), kWriters * kBatch * kBatchesPerWriter);
}

// ---------------------------------------------------------------------------
// Coordinated flush, scrub, health
// ---------------------------------------------------------------------------

TEST_F(ShardTest, CoordinatedFlushDrainsEveryShard) {
  ShardOptions opt = TestOptions(4);
  opt.engine.background_flush = true;  // overlap on the shared pool
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), opt);
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  for (uint64_t s = 0; s < 16; ++s) {
    ASSERT_TRUE(eng.AppendBatch(s, Batch(s, 0, 20)).ok());
  }
  ASSERT_TRUE(eng.Flush().ok());
  const HealthReport h = eng.Health();
  for (const auto& sh : h.shards) {
    EXPECT_EQ(sh.buffered_bytes, 0u) << "shard " << sh.shard;
  }
  EXPECT_EQ(h.budget_used, 0u);
  EXPECT_EQ(eng.rows(), 16u * 20u);
  // Flushed rows are still all readable.
  auto v = eng.ReadColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().size(), 16u * 20u);
}

TEST_F(ShardTest, ScrubAggregatesAcrossShards) {
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  for (uint64_t s = 0; s < 16; ++s) {
    ASSERT_TRUE(eng.AppendBatch(s, Batch(s, 0, 20)).ok());
  }
  ASSERT_TRUE(eng.Flush().ok());
  const ScrubSummary sum = eng.Scrub();
  EXPECT_TRUE(sum.all_clean);
  EXPECT_EQ(sum.shards.size(), 4u);
  EXPECT_GT(sum.segments_checked, 0u);
  EXPECT_EQ(sum.segments_quarantined, 0u);
  for (const auto& entry : sum.shards) {
    EXPECT_TRUE(entry.status.ok()) << entry.status.ToString();
    EXPECT_TRUE(entry.report.wal_clean) << "shard " << entry.shard;
  }
}

TEST_F(ShardTest, HealthReportsHealthyStore) {
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(4));
  ASSERT_TRUE(opened.ok());
  auto& eng = *opened.value();
  ASSERT_TRUE(eng.AppendBatch(3, Batch(3, 0, 10)).ok());
  const HealthReport h = eng.Health();
  EXPECT_TRUE(h.all_healthy());
  EXPECT_EQ(h.degraded_shards, 0u);
  ASSERT_EQ(h.shards.size(), 4u);
  EXPECT_EQ(h.budget_used, 10u * 2u * sizeof(double));
  EXPECT_GT(h.budget_total, 0u);
  for (const auto& sh : h.shards) {
    EXPECT_FALSE(sh.read_only);
    EXPECT_TRUE(sh.error.ok());
  }
}

TEST_F(ShardTest, MalformedBatchIsRejected) {
  auto opened = ShardedIngestEngine::Open(dir_, TestSchema(), TestOptions(2));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->AppendBatch(0, {1.0, 2.0, 3.0}).code(),
            StatusCode::kInvalidArgument);  // not a multiple of 2 columns
  EXPECT_EQ(opened.value()->AppendBatch(0, {}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fcbench::db::shard
