// Tests for the scan/aggregate query layer (src/db/query.h) and BUFF's
// predicate + aggregation pushdown on encoded streams (§3.3).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "compressors/buff.h"
#include "db/dataframe.h"
#include "db/query.h"
#include "util/rng.h"

namespace fcbench::db {
namespace {

using compressors::BuffCompressor;

DataFrame MakeFrame(const std::vector<double>& values, size_t cols = 1) {
  std::vector<double> data = values;
  DataDesc desc;
  desc.dtype = DType::kFloat64;
  if (cols == 1) {
    desc.extent = {values.size()};
  } else {
    desc.extent = {values.size() / cols, cols};
  }
  auto r = DataFrame::FromBytes(AsBytes(data), desc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.TakeValue();
}

TEST(QueryFilterTest, EachOperatorMatchesReference) {
  Rng rng(7);
  std::vector<double> values(2000);
  for (auto& v : values) v = std::floor(rng.Normal() * 10.0);
  DataFrame df = MakeFrame(values);

  const double c = 3.0;
  const double hi = 12.0;
  struct Case {
    CompareOp op;
    bool (*ref)(double, double, double);
  };
  const Case cases[] = {
      {CompareOp::kEq, [](double v, double a, double) { return v == a; }},
      {CompareOp::kNe, [](double v, double a, double) { return v != a; }},
      {CompareOp::kLt, [](double v, double a, double) { return v < a; }},
      {CompareOp::kLe, [](double v, double a, double) { return v <= a; }},
      {CompareOp::kGt, [](double v, double a, double) { return v > a; }},
      {CompareOp::kGe, [](double v, double a, double) { return v >= a; }},
      {CompareOp::kBetween,
       [](double v, double a, double b) { return v >= a && v <= b; }},
  };
  for (const Case& tc : cases) {
    ScanPredicate pred{.column = 0, .op = tc.op, .value = c, .upper = hi};
    auto sel = Filter(df, pred);
    ASSERT_TRUE(sel.ok());
    Selection expect;
    for (size_t i = 0; i < values.size(); ++i) {
      if (tc.ref(values[i], c, hi)) expect.push_back(uint32_t(i));
    }
    EXPECT_EQ(sel.value(), expect) << "op=" << static_cast<int>(tc.op);
  }
}

TEST(QueryFilterTest, BadColumnRejected) {
  DataFrame df = MakeFrame({1, 2, 3});
  auto sel = Filter(df, ScanPredicate{.column = 5});
  EXPECT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryFilterTest, ConjunctionRefinesSelection) {
  // Two columns: c0 = row index, c1 = row index % 10.
  std::vector<double> data;
  const size_t rows = 1000;
  for (size_t i = 0; i < rows; ++i) {
    data.push_back(double(i));
    data.push_back(double(i % 10));
  }
  DataFrame df = MakeFrame(data, 2);
  std::vector<ScanPredicate> preds = {
      {.column = 0, .op = CompareOp::kLt, .value = 500},
      {.column = 1, .op = CompareOp::kEq, .value = 3},
  };
  auto sel = FilterAll(df, preds);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel.value().size(), 50u);  // rows 3, 13, ..., 493
  for (uint32_t row : sel.value()) {
    EXPECT_LT(row, 500u);
    EXPECT_EQ(row % 10, 3u);
  }
}

TEST(QueryFilterTest, EmptyPredicateListSelectsAll) {
  DataFrame df = MakeFrame({5, 6, 7, 8});
  auto sel = FilterAll(df, {});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().size(), 4u);
}

TEST(QueryAggregateTest, MatchesReferenceWithAndWithoutSelection) {
  Rng rng(11);
  std::vector<double> values(5000);
  for (auto& v : values) v = rng.Normal() * 100.0;
  DataFrame df = MakeFrame(values);

  double ref_sum = 0, ref_min = values[0], ref_max = values[0];
  for (double v : values) {
    ref_sum += v;
    ref_min = std::min(ref_min, v);
    ref_max = std::max(ref_max, v);
  }
  EXPECT_DOUBLE_EQ(Aggregate(df, 0, AggregateOp::kSum).value(), ref_sum);
  EXPECT_DOUBLE_EQ(Aggregate(df, 0, AggregateOp::kMin).value(), ref_min);
  EXPECT_DOUBLE_EQ(Aggregate(df, 0, AggregateOp::kMax).value(), ref_max);
  EXPECT_DOUBLE_EQ(Aggregate(df, 0, AggregateOp::kCount).value(),
                   double(values.size()));
  EXPECT_DOUBLE_EQ(Aggregate(df, 0, AggregateOp::kMean).value(),
                   ref_sum / values.size());

  ScanPredicate pred{.column = 0, .op = CompareOp::kGe, .value = 0.0};
  auto sel = Filter(df, pred);
  ASSERT_TRUE(sel.ok());
  double fsum = 0;
  for (uint32_t r : sel.value()) fsum += values[r];
  EXPECT_DOUBLE_EQ(
      Aggregate(df, 0, AggregateOp::kSum, &sel.value()).value(), fsum);
  EXPECT_DOUBLE_EQ(
      Aggregate(df, 0, AggregateOp::kCount, &sel.value()).value(),
      double(sel.value().size()));
}

TEST(QueryAggregateTest, EmptySelectionIdentities) {
  DataFrame df = MakeFrame({1, 2, 3});
  Selection empty;
  EXPECT_EQ(Aggregate(df, 0, AggregateOp::kCount, &empty).value(), 0.0);
  EXPECT_EQ(Aggregate(df, 0, AggregateOp::kSum, &empty).value(), 0.0);
  EXPECT_EQ(Aggregate(df, 0, AggregateOp::kMean, &empty).value(), 0.0);
  EXPECT_TRUE(std::isinf(Aggregate(df, 0, AggregateOp::kMin, &empty).value()));
  EXPECT_TRUE(std::isinf(Aggregate(df, 0, AggregateOp::kMax, &empty).value()));
}

TEST(QueryAggregateTest, OutOfRangeSelectionRejected) {
  DataFrame df = MakeFrame({1, 2, 3});
  Selection bad = {0, 9};
  EXPECT_FALSE(Aggregate(df, 0, AggregateOp::kSum, &bad).ok());
  EXPECT_FALSE(Gather(df, 0, bad).ok());
}

TEST(QueryGatherTest, ProjectsSelectedRows) {
  DataFrame df = MakeFrame({10, 20, 30, 40, 50});
  Selection sel = {1, 3};
  auto got = Gather(df, 0, sel);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), (std::vector<double>{20, 40}));
}

TEST(QueryWorkloadTest, HistogramScanCoversTable) {
  Rng rng(13);
  std::vector<double> values(10000);
  for (auto& v : values) v = rng.Normal();
  DataFrame df = MakeFrame(values);
  // The largest histogram edge is the column max, so the last scan matches
  // every row: total >= num_rows.
  uint64_t total = RunHistogramScanWorkload(df, 0, 10);
  EXPECT_GE(total, df.num_rows());
}

// --- BUFF pushdown vs. decode-then-scan equivalence -------------------------

class BuffPushdown : public ::testing::TestWithParam<int> {
 protected:
  // Low-precision sensor-like values, the BUFF target workload.
  void Generate(size_t n) {
    Rng rng(17);
    raw_.resize(n);
    for (auto& v : raw_) {
      v = std::round((20.0 + rng.Normal() * 5.0) * 100.0) / 100.0;
    }
    desc_.dtype = DType::kFloat64;
    desc_.extent = {n};
    desc_.precision_digits = 2;
    CompressorConfig cfg;
    BuffCompressor buff(cfg);
    ASSERT_TRUE(buff.Compress(AsBytes(raw_), desc_, &compressed_).ok());
    Buffer round;
    ASSERT_TRUE(buff.Decompress(compressed_.span(), desc_, &round).ok());
    decoded_.resize(n);
    std::memcpy(decoded_.data(), round.data(), round.size());
  }

  std::vector<double> raw_;
  std::vector<double> decoded_;
  DataDesc desc_;
  Buffer compressed_;
};

TEST_P(BuffPushdown, ScanAgreesWithDecodedScan) {
  Generate(20000);
  const double constant = 20.0 + GetParam();  // sweeps the value range
  struct Pair {
    BuffCompressor::Predicate pred;
    CompareOp op;
  };
  for (auto [pred, op] : {Pair{BuffCompressor::Predicate::kEqual,
                               CompareOp::kEq},
                          Pair{BuffCompressor::Predicate::kLess,
                               CompareOp::kLt},
                          Pair{BuffCompressor::Predicate::kGreaterEqual,
                               CompareOp::kGe}}) {
    auto hits = BuffCompressor::SubColumnScan(compressed_.span(), pred,
                                              constant);
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits.value().size(), decoded_.size());
    ScanPredicate sp{.column = 0, .op = op, .value = constant};
    size_t mismatches = 0;
    for (size_t i = 0; i < decoded_.size(); ++i) {
      if (hits.value()[i] != sp.Matches(decoded_[i])) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << "op=" << static_cast<int>(op) << " constant=" << constant;
  }
}

TEST_P(BuffPushdown, FilteredAggregateAgreesWithDecodedAggregate) {
  Generate(20000);
  const double constant = 20.0 + GetParam();
  auto agg = BuffCompressor::FilteredAggregate(
      compressed_.span(), BuffCompressor::Predicate::kLess, constant,
      BuffCompressor::Aggregate::kSum);
  ASSERT_TRUE(agg.ok());

  uint64_t ref_count = 0;
  double ref_sum = 0;
  for (double v : decoded_) {
    if (v < constant) {
      ++ref_count;
      ref_sum += v;
    }
  }
  EXPECT_EQ(agg.value().count, ref_count);
  EXPECT_NEAR(agg.value().value, ref_sum, 1e-6 * std::max(1.0, ref_sum));

  auto mn = BuffCompressor::FilteredAggregate(
      compressed_.span(), BuffCompressor::Predicate::kLess, constant,
      BuffCompressor::Aggregate::kMin);
  auto mx = BuffCompressor::FilteredAggregate(
      compressed_.span(), BuffCompressor::Predicate::kLess, constant,
      BuffCompressor::Aggregate::kMax);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  if (ref_count > 0) {
    double ref_min = std::numeric_limits<double>::infinity();
    double ref_max = -std::numeric_limits<double>::infinity();
    for (double v : decoded_) {
      if (v < constant) {
        ref_min = std::min(ref_min, v);
        ref_max = std::max(ref_max, v);
      }
    }
    EXPECT_DOUBLE_EQ(mn.value().value, ref_min);
    EXPECT_DOUBLE_EQ(mx.value().value, ref_max);
  } else {
    EXPECT_TRUE(std::isinf(mn.value().value));
    EXPECT_TRUE(std::isinf(mx.value().value));
  }
}

// Constants sweep from far below the minimum (-20) to far above the
// maximum (+20), exercising both short-circuit branches and the
// sub-column compare path.
INSTANTIATE_TEST_SUITE_P(ConstantSweep, BuffPushdown,
                         ::testing::Values(-40, -10, -2, 0, 2, 10, 40));

TEST(BuffPushdownTest, CorruptStreamRejected) {
  Buffer empty;
  auto r = BuffCompressor::SubColumnScan(empty.span(),
                                         BuffCompressor::Predicate::kLess, 0);
  EXPECT_FALSE(r.ok());
  auto a = BuffCompressor::FilteredAggregate(
      empty.span(), BuffCompressor::Predicate::kLess, 0,
      BuffCompressor::Aggregate::kSum);
  EXPECT_FALSE(a.ok());
}

}  // namespace
}  // namespace fcbench::db
