// Tests for xxHash64 and the self-describing .fcz container.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/container.h"
#include "test_names.h"
#include "util/hash.h"
#include "util/rng.h"

namespace fcbench {
namespace {

// --- xxHash64 ---------------------------------------------------------------

TEST(XxHash64Test, ReferenceVectors) {
  // Published XXH64 test vectors (seed 0).
  Buffer empty;
  EXPECT_EQ(XxHash64(empty.span()), 0xEF46DB3751D8E999ull);
  const char* abc = "abc";
  EXPECT_EQ(XxHash64(abc, 3), 0x44BC2CF5AD770999ull);
}

TEST(XxHash64Test, SeedChangesHash) {
  const char* msg = "floating point compression benchmark";
  EXPECT_NE(XxHash64(msg, std::strlen(msg), 0),
            XxHash64(msg, std::strlen(msg), 1));
}

TEST(XxHash64Test, AllLengthsStable) {
  // Exercise every tail path (0..3 bytes, 4-byte, 8-byte lanes, 32-byte
  // stripes): hashing the same prefix twice must agree, and extending by
  // one byte must change the hash.
  Rng rng(3);
  std::vector<uint8_t> data(100);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  uint64_t prev = XxHash64(data.data(), 0);
  for (size_t len = 1; len <= data.size(); ++len) {
    uint64_t h1 = XxHash64(data.data(), len);
    uint64_t h2 = XxHash64(data.data(), len);
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, prev) << "extension collision at len " << len;
    prev = h1;
  }
}

TEST(XxHash64Test, SingleBitFlipsChangeHash) {
  std::vector<uint8_t> data(64, 0x5a);
  uint64_t base = XxHash64(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(XxHash64(data.data(), data.size()), base) << "byte " << i;
    data[i] ^= 1;
  }
}

// --- .fcz container ----------------------------------------------------------

std::vector<uint8_t> SmoothBytes(DType dtype, size_t count) {
  Rng rng(5);
  std::vector<uint8_t> bytes(count * DTypeSize(dtype));
  double x = 42.0;
  for (size_t i = 0; i < count; ++i) {
    x += rng.Normal() * 0.1;
    if (dtype == DType::kFloat32) {
      float f = static_cast<float>(x);
      std::memcpy(&bytes[i * 4], &f, 4);
    } else {
      std::memcpy(&bytes[i * 8], &x, 8);
    }
  }
  return bytes;
}

class ContainerRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ContainerRoundTrip, PackUnpackBitExact) {
  RegisterAllCompressors();
  const std::string method = GetParam();
  auto comp = CompressorRegistry::Global().Create(method).TakeValue();
  DataDesc desc;
  desc.dtype =
      comp->traits().supports_f64 ? DType::kFloat64 : DType::kFloat32;
  const size_t count = method == "dzip_nn" ? 256 : 2048;
  desc.extent = {count};
  desc.precision_digits = 6;
  auto raw = SmoothBytes(desc.dtype, count);

  Buffer fcz;
  ASSERT_TRUE(FczContainer::Pack(method, desc, ByteSpan(raw.data(),
                                                        raw.size()),
                                 CompressorConfig{}, &fcz)
                  .ok());

  auto info = FczContainer::Inspect(fcz.span());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().method, method);
  EXPECT_EQ(info.value().raw_bytes, raw.size());
  EXPECT_EQ(info.value().desc.dtype, desc.dtype);

  ContainerInfo out_info;
  auto back = FczContainer::Unpack(fcz.span(), &out_info);
  // BUFF is the documented lossy-without-precision exception; with
  // precision_digits understating smooth doubles the raw checksum check
  // must fire rather than silently returning changed data.
  if (method == "buff" && !back.ok()) {
    EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
    return;
  }
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), raw.size());
  EXPECT_EQ(std::memcmp(back.value().data(), raw.data(), raw.size()), 0);
  EXPECT_EQ(out_info.method, method);
}

TEST_P(ContainerRoundTrip, AnyBitFlipIsDetected) {
  RegisterAllCompressors();
  const std::string method = GetParam();
  if (method == "dzip_nn") GTEST_SKIP() << "slow; covered by PackUnpack";
  auto comp = CompressorRegistry::Global().Create(method).TakeValue();
  DataDesc desc;
  desc.dtype =
      comp->traits().supports_f64 ? DType::kFloat64 : DType::kFloat32;
  desc.extent = {512};
  desc.precision_digits = 10;
  auto raw = SmoothBytes(desc.dtype, 512);

  Buffer fcz;
  ASSERT_TRUE(FczContainer::Pack(method, desc, ByteSpan(raw.data(),
                                                        raw.size()),
                                 CompressorConfig{}, &fcz)
                  .ok());
  Buffer pristine = Buffer::FromSpan(fcz.span());
  auto clean = FczContainer::Unpack(pristine.span());
  if (!clean.ok()) GTEST_SKIP() << "method not bit-exact on this data";

  // The container guarantee: a flip anywhere either fails parsing or
  // fails a checksum — it can never return success with altered data.
  for (size_t victim = 0; victim < fcz.size();
       victim += fcz.size() / 211 + 1) {
    Buffer copy = Buffer::FromSpan(fcz.span());
    copy.data()[victim] ^= 0x10;
    auto r = FczContainer::Unpack(copy.span());
    if (r.ok()) {
      EXPECT_EQ(std::memcmp(r.value().data(), raw.data(), raw.size()), 0)
          << "flip at byte " << victim << " silently altered the data";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ContainerRoundTrip,
    ::testing::ValuesIn([] {
      RegisterAllCompressors();
      return CompressorRegistry::Global().Names();
    }()),
    [](const auto& param_info) { return SanitizeTestName(param_info.param); });

TEST(ContainerTest, RejectsUnknownMethod) {
  DataDesc desc;
  desc.dtype = DType::kFloat32;
  desc.extent = {4};
  std::vector<uint8_t> raw(16, 0);
  Buffer out;
  EXPECT_FALSE(FczContainer::Pack("no_such_method", desc,
                                  ByteSpan(raw.data(), raw.size()),
                                  CompressorConfig{}, &out)
                   .ok());
}

TEST(ContainerTest, RejectsSizeMismatch) {
  DataDesc desc;
  desc.dtype = DType::kFloat32;
  desc.extent = {100};  // 400 bytes declared
  std::vector<uint8_t> raw(16, 0);
  Buffer out;
  auto st = FczContainer::Pack("gorilla", desc,
                               ByteSpan(raw.data(), raw.size()),
                               CompressorConfig{}, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ContainerTest, RejectsGarbageAndTruncation) {
  RegisterAllCompressors();
  Rng rng(9);
  Buffer garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage.data()[i] = static_cast<uint8_t>(rng.Next());
  }
  EXPECT_FALSE(FczContainer::Unpack(garbage.span()).ok());
  EXPECT_FALSE(FczContainer::Inspect(garbage.span()).ok());

  DataDesc desc;
  desc.dtype = DType::kFloat64;
  desc.extent = {64};
  auto raw = SmoothBytes(DType::kFloat64, 64);
  Buffer fcz;
  ASSERT_TRUE(FczContainer::Pack("gorilla", desc,
                                 ByteSpan(raw.data(), raw.size()),
                                 CompressorConfig{}, &fcz)
                  .ok());
  for (size_t len = 0; len < fcz.size(); len += 7) {
    EXPECT_FALSE(FczContainer::Unpack(fcz.span().subspan(0, len)).ok());
  }
}

}  // namespace
}  // namespace fcbench
